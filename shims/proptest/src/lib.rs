//! Minimal, API-compatible shim for the subset of `proptest` that this
//! workspace uses (see `shims/README.md`).
//!
//! Differences from upstream worth knowing about:
//!
//! * No shrinking: a failing case reports the generated inputs (via the
//!   assertion message) but does not minimise them.
//! * Deterministic: the RNG seed is derived from the test-function name, so
//!   a CI failure reproduces locally. Set `PROPTEST_SEED=<u64>` to override.
//! * `prop_assume!` counts the skipped case as passed instead of drawing a
//!   replacement case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` generated cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG driving generation.
    pub type TestRng = rand::rngs::StdRng;

    /// Builds the RNG for one property test, seeded from the test name (or
    /// `PROPTEST_SEED` when set) so failures are reproducible.
    pub fn new_rng(test_name: &str) -> TestRng {
        use rand::SeedableRng;
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .trim()
                .parse::<u64>()
                .expect("PROPTEST_SEED must be a u64"),
            // FNV-1a over the test name.
            Err(_) => test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
            }),
        };
        TestRng::seed_from_u64(seed)
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);
}

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Returns the canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy generating uniformly random primitive values.
    #[derive(Debug)]
    pub struct AnyPrimitive<T>(PhantomData<T>);

    impl<T> Clone for AnyPrimitive<T> {
        fn clone(&self) -> Self {
            AnyPrimitive(PhantomData)
        }
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    <$t as rand::Random>::random(rng)
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(PhantomData)
                }
            }
        )*};
    }
    impl_arbitrary_prim!(
        u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
    );
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng, self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies, mirroring `proptest::array`.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `[S::Value; N]` from independent draws of `S`.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),*) => {$(
            /// Generates arrays from independent draws of `strategy`.
            pub fn $name<S: Strategy>(strategy: S) -> UniformArray<S, $n> {
                UniformArray(strategy)
            }
        )*};
    }
    uniform_fns!(
        uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
        uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8
    );
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the current case.
/// Like upstream, an optional trailing format message is appended to the
/// mismatch report.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
                left,
                right,
                format!($($fmt)*)
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left != *right) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `left != right` (both `{:?}`)",
                left
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left != *right) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `left != right` (both `{:?}`)\n{}",
                left,
                format!($($fmt)*)
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold. Unlike
/// upstream, the skipped case counts as passed rather than being redrawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::new_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(message) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Entry point for `prop::collection::...` / `prop::array::...` paths.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0usize..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn map_and_collections_compose(
            v in prop::collection::vec(any::<u8>(), 0..=16),
            arr in prop::array::uniform6(0u64..101),
            mut w in (1u32..5).prop_map(|n| n * 2),
        ) {
            prop_assert!(v.len() <= 16);
            prop_assert!(arr.iter().all(|&c| c < 101));
            w += 1;
            prop_assert!(w % 2 == 1 && w < 10);
            prop_assert_eq!(arr.len(), 6);
            prop_assert_ne!(w, 0);
        }

        #[test]
        fn assume_skips_case(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn seeds_are_stable_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::new_rng("mod::case");
        let mut b = crate::test_runner::new_rng("mod::case");
        let s = 0u64..1_000_000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}

//! Minimal, API-compatible shim for the subset of `rand` 0.8 that this
//! workspace uses (see `shims/README.md`).
//!
//! The generators are xoshiro256++ (Blackman–Vigna), seeded via SplitMix64 —
//! statistically strong and fast, but **not** cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw word and byte output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the shim's
/// stand-in for sampling from the `Standard` distribution).
pub trait Random: Sized {
    /// Draws a uniformly random value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for i128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that `Rng::gen_range` can sample a value from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (sample_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as $t as u64 && hi.wrapping_sub(lo) == <$t>::MAX {
                    return <$t as Random>::random(rng);
                }
                lo + (sample_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform value in `[0, bound)` by rejection sampling (no modulo bias).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of an inferred primitive type.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators seedable from fixed state, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same construction upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// A freshly (time-)seeded generator, stand-in for `rand::rngs::ThreadRng`.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a freshly seeded generator (entropy from the system clock and a
/// per-process counter — not cryptographically secure).
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};

    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED_5EED);
    let uniquifier = COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = u64::from(std::process::id());
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(
        nanos ^ pid.rotate_left(32) ^ uniquifier.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    ))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(1..=255u8);
            assert!((1..=255).contains(&v));
            let w = rng.gen_range(0usize..200);
            assert!(w < 200);
        }
    }

    #[test]
    fn unsized_rng_is_usable_through_generic_fns() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut dyn super::RngCore = &mut rng;
        let _ = draw(dynrng);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

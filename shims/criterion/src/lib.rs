//! Minimal, API-compatible shim for the subset of `criterion` that this
//! workspace uses (see `shims/README.md`).
//!
//! It times closures with `std::time::Instant`, prints mean/min/max per
//! benchmark, and understands just enough of the harness protocol that
//! `cargo bench` and `cargo test --benches` both work:
//!
//! * `--test` (passed by `cargo test --benches`) runs every benchmark body
//!   exactly once, without timing.
//! * `CRITERION_FAST=1` shrinks sample counts and measurement time to a
//!   smoke-test budget (used by CI so the bench suite can't silently rot).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// An opaque barrier preventing the optimiser from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    fast_mode: bool,
    filter: Option<String>,
}

impl Config {
    fn from_env() -> Config {
        // cargo bench/test pass harness flags (--bench, --test) plus an
        // optional positional filter; ignore everything else. Like upstream
        // criterion, measure only when invoked through `cargo bench` (which
        // passes `--bench`); under `cargo test --benches` each body runs
        // once, untimed.
        let mut test_mode = false;
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => bench_mode = true,
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        let test_mode = test_mode || !bench_mode;
        let fast_mode = std::env::var_os("CRITERION_FAST").is_some_and(|v| v != "0");
        Config {
            sample_size: if fast_mode { 10 } else { 100 },
            measurement_time: if fast_mode {
                Duration::from_millis(100)
            } else {
                Duration::from_secs(5)
            },
            test_mode,
            fast_mode,
            filter,
        }
    }

    fn effective_sample_size(&self) -> usize {
        if self.fast_mode {
            self.sample_size.min(10)
        } else {
            self.sample_size
        }
    }

    fn effective_measurement_time(&self) -> Duration {
        if self.fast_mode {
            self.measurement_time.min(Duration::from_millis(100))
        } else {
            self.measurement_time
        }
    }
}

/// The benchmark manager handed to `criterion_group!` target functions.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config::from_env(),
        }
    }
}

impl Criterion {
    /// Benchmarks `f`, reporting under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.config, &id.into(), f);
        self
    }

    /// Starts a named group of benchmarks sharing tuned settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config.clone();
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            config,
        }
    }
}

/// A group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    config: Config,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.config.sample_size = n;
        self
    }

    /// Sets the target wall-clock budget for each benchmark's measurement.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Benchmarks `f`, reporting under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&self.config, &id, f);
        self
    }

    /// Finishes the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Times the routine under benchmark.
pub struct Bencher<'a> {
    config: &'a Config,
    samples_ns: Vec<f64>,
    executed: bool,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.executed = true;
        if self.config.test_mode {
            black_box(routine());
            return;
        }

        // Warm-up and per-iteration estimate: run for ~1/10 of the budget.
        let warmup_budget = self.config.effective_measurement_time() / 10;
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget || warmup_iters == 0 {
            black_box(routine());
            warmup_iters += 1;
        }
        let est_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Spread the remaining budget over `sample_size` samples.
        let sample_size = self.config.effective_sample_size();
        let budget = self.config.effective_measurement_time().as_secs_f64() * 0.9;
        let iters_per_sample =
            ((budget / sample_size as f64 / est_iter.max(1e-9)).round() as u64).max(1);

        self.samples_ns.reserve(sample_size);
        for _ in 0..sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Config, id: &str, mut f: F) {
    if let Some(filter) = &config.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        config,
        samples_ns: Vec::new(),
        executed: false,
    };
    f(&mut bencher);
    assert!(
        bencher.executed,
        "benchmark `{id}` never called Bencher::iter"
    );
    if config.test_mode {
        println!("test {id} ... ok");
        return;
    }
    let s = &bencher.samples_ns;
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    let min = s.iter().copied().fold(f64::INFINITY, f64::min);
    let max = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:<48} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines a function running each target against a default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the given `criterion_group!` groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Config {
        Config {
            sample_size: 3,
            measurement_time: Duration::from_millis(20),
            test_mode: false,
            fast_mode: true,
            filter: None,
        }
    }

    #[test]
    fn bencher_collects_samples() {
        let config = fast_config();
        let mut b = Bencher {
            config: &config,
            samples_ns: Vec::new(),
            executed: false,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        assert!(b.executed);
        assert!(!b.samples_ns.is_empty());
        assert!(b.samples_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut config = fast_config();
        config.test_mode = true;
        let mut b = Bencher {
            config: &config,
            samples_ns: Vec::new(),
            executed: false,
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(b.samples_ns.is_empty());
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with(" s"));
    }
}

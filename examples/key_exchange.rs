//! Key exchange with all three systems of the paper — CEILIDH (torus), ECC
//! and RSA — comparing the number of transmitted bytes, the work performed
//! and the simulated latency on the FPGA platform model.
//!
//! Run with `cargo run -p suite --release --example key_exchange`.

use bignum::BigUint;
use ceilidh::{CeilidhParams, KeyPair};
use ecc::prelude::*;
use platform::{CostModel, Hierarchy, Platform};
use rsa_torus::RsaKeyPair;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();
    let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
    let cost = *plat.cost();

    println!("=== CEILIDH (170-bit torus) ===");
    let params = CeilidhParams::date2008()?;
    let alice = KeyPair::generate(&params, &mut rng);
    let bob = KeyPair::generate(&params, &mut rng);
    let shared = ceilidh::shared_secret(&params, alice.secret(), bob.public());
    let compressed = bob.public().compress(&params)?;
    println!(
        "  transmitted public key: {} bytes (factor-3 compression)",
        compressed.byte_len(params.p().bit_len())
    );
    let (check, report) =
        plat.torus_exponentiation(&params, bob.public().element(), alice.secret().scalar());
    assert_eq!(check, shared);
    println!(
        "  simulated exponentiation: {} cycles = {:.1} ms at 74 MHz",
        report.cycles,
        report.time_ms(&cost)
    );

    println!("=== ECC (160-bit prime field) ===");
    let curve = Curve::p160_reproduction()?;
    let e_alice = EccKeyPair::generate(&curve, &mut rng);
    let e_bob = EccKeyPair::generate(&curve, &mut rng);
    let k1 = curve.shared_secret(e_alice.secret(), e_bob.public())?;
    let k2 = curve.shared_secret(e_bob.secret(), e_alice.public())?;
    assert_eq!(k1, k2);
    let (x, _) = curve.compress_point(e_bob.public())?;
    println!(
        "  transmitted public key: {} bytes (compressed point)",
        x.to_be_bytes().len() + 1
    );
    let (_, report) = plat.ecc_scalar_multiplication(&curve, e_bob.public(), e_alice.secret());
    println!(
        "  simulated scalar multiplication: {} cycles = {:.1} ms",
        report.cycles,
        report.time_ms(&cost)
    );

    println!("=== ECC (P-256, beyond-paper prediction) ===");
    let p256 = Curve::by_name("p256")?;
    let n_alice = EccKeyPair::generate(&p256, &mut rng);
    let n_bob = EccKeyPair::generate(&p256, &mut rng);
    assert_eq!(
        p256.shared_secret(n_alice.secret(), n_bob.public())?,
        p256.shared_secret(n_bob.secret(), n_alice.public())?
    );
    let (_, report) = plat.ecc_scalar_multiplication(&p256, n_bob.public(), n_alice.secret());
    println!(
        "  simulated scalar multiplication ({}-bit, a = -3 fast PD): {} cycles = {:.1} ms",
        p256.bits(),
        report.cycles,
        report.time_ms(&cost)
    );

    println!("=== RSA (1024-bit, key transport) ===");
    let keys = RsaKeyPair::generate(1024, &mut rng)?;
    let session_key = BigUint::random_bits(&mut rng, 128);
    let ct = keys.public().raw_encrypt(&session_key)?;
    assert_eq!(keys.raw_decrypt(&ct)?, session_key);
    println!(
        "  transmitted ciphertext: {} bytes",
        keys.public().byte_len()
    );
    let (_, report) =
        plat.rsa_exponentiation(keys.public().modulus(), &ct, keys.private_exponent());
    println!(
        "  simulated private-key exponentiation: {} cycles = {:.1} ms",
        report.cycles,
        report.time_ms(&cost)
    );

    Ok(())
}

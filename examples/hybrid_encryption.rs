//! Hybrid encryption and signatures on the torus: the complete protocol
//! stack built on CEILIDH — compressed ephemeral keys, KDF-derived key
//! streams and Schnorr signatures with compressed commitments.
//!
//! Run with `cargo run -p suite --release --example hybrid_encryption`.

use ceilidh::{decrypt_hybrid, encrypt_hybrid, sign, verify, CeilidhParams, KeyPair};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();
    let params = CeilidhParams::date2008()?;

    // Long-term keys.
    let alice = KeyPair::generate(&params, &mut rng); // signer / sender
    let bob = KeyPair::generate(&params, &mut rng); // recipient

    let message = b"Algebraic tori give you the security of Fp6 while transmitting \
                    only two elements of Fp.";

    // Alice signs the message and encrypts it (plus the signature) to Bob.
    let signature = sign(&params, alice.secret(), message, &mut rng)?;
    println!(
        "signature scalars: e = {} bits, s = {} bits",
        signature.e.bit_len(),
        signature.s.bit_len()
    );

    let ciphertext = encrypt_hybrid(&params, bob.public(), message, &mut rng)?;
    println!(
        "ciphertext: {} payload bytes + {} bytes of compressed ephemeral key",
        ciphertext.payload.len(),
        ciphertext.ephemeral.byte_len(params.p().bit_len())
    );

    // Bob decrypts and verifies.
    let recovered = decrypt_hybrid(&params, bob.secret(), &ciphertext)?;
    assert_eq!(recovered, message);
    verify(&params, alice.public(), &recovered, &signature)?;
    println!(
        "decrypted and verified: \"{}...\"",
        String::from_utf8_lossy(&recovered[..40])
    );

    // Tampering is detected.
    let mut forged = recovered.clone();
    forged[0] ^= 1;
    assert!(verify(&params, alice.public(), &forged, &signature).is_err());
    println!("tampered message rejected: ok");
    Ok(())
}

//! Serve a mixed RSA/ECC/torus traffic profile on fleets of 1–8
//! coprocessor instances and print the throughput scaling table — the
//! paper's Fig. 5 "cores per Montgomery multiplication" story extended
//! to "requests per second per instance count".
//!
//! Run with `cargo run -p suite --release --example serve_fleet`.
//!
//! Set `ENGINE_REPORT_JSON=path.json` to additionally write the sweep as
//! a flat JSON object (the engine section CI uploads as an artifact).

use std::fmt::Write as _;

use engine::prelude::*;
use platform::CostModel;

/// Requests per trace: enough to fill every fleet past its warm-up.
const REQUESTS: usize = 200;
/// Trace seed (fixed: the sweep compares fleets, not traces).
const SEED: u64 = 2008;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = TrafficProfile::mixed_date2008();
    println!("== traffic profile (seed {SEED}, {REQUESTS} requests) ==");
    let total: u64 = profile.mix.iter().map(|(_, w)| w).sum();
    for (op, weight) in &profile.mix {
        println!("  {:<16} weight {weight}/{total}", op.label(),);
    }
    println!(
        "  mean inter-arrival {} cycles (uniform integer gaps)\n",
        profile.mean_interarrival
    );

    let trace = profile.generate(SEED, REQUESTS);
    let cost = CostModel::paper();
    let mut json = String::from("{\n");
    println!("== fleet sweep (4-core Type-B instances, 74 MHz) ==");
    println!(
        "{:>9} {:>9} {:>10} {:>10} {:>6} {:>8} {:>7} {:>5}",
        "instances", "ops/sec", "p50 ms", "p99 ms", "util", "batches", "depth", "hit%"
    );
    for (i, instances) in [1usize, 2, 4, 8].iter().enumerate() {
        let mut fleet = Fleet::new(FleetConfig::date2008(*instances));
        let summary = fleet.run(trace.clone());
        assert_eq!(summary.completed, REQUESTS as u64);
        println!(
            "{:>9} {:>9} {:>10.3} {:>10.3} {:>5}% {:>8} {:>7} {:>4}%",
            instances,
            summary.ops_per_sec,
            cost.cycles_to_ms(summary.p50_latency_cycles),
            cost.cycles_to_ms(summary.p99_latency_cycles),
            summary.utilization_pct(),
            summary.batches(),
            summary.peak_queue_depth,
            summary.cache_hit_rate_pct(),
        );
        if i > 0 {
            json.push_str(",\n");
        }
        write!(
            json,
            "  \"engine_ops_per_sec_x{instances}\": {},\n  \
             \"engine_p50_latency_cycles_x{instances}\": {},\n  \
             \"engine_p99_latency_cycles_x{instances}\": {},\n  \
             \"engine_cache_hit_rate_pct_x{instances}\": {}",
            summary.ops_per_sec,
            summary.p50_latency_cycles,
            summary.p99_latency_cycles,
            summary.cache_hit_rate_pct(),
        )?;
    }
    json.push_str("\n}\n");

    println!("\nbatch sizes on the 4-instance run:");
    let mut fleet = Fleet::new(FleetConfig::date2008(4));
    let summary = fleet.run(trace);
    for (size, count) in &summary.batch_size_histogram {
        println!("  {size:>2} requests x {count} batches");
    }
    println!(
        "  mean batch size {:.2}, cache {}/{} hits/misses",
        summary.mean_batch_size_x100() as f64 / 100.0,
        summary.cache_hits,
        summary.cache_misses,
    );

    if let Ok(path) = std::env::var("ENGINE_REPORT_JSON") {
        if !path.is_empty() {
            std::fs::write(&path, &json)?;
            println!("\nwrote engine report to {path}");
        }
    }
    Ok(())
}

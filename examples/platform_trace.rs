//! A guided tour of the platform simulator: the 7-instruction core ISA, the
//! level-2 sequences stored in InsRom1 and the Type-A/Type-B control
//! hierarchies of the paper.
//!
//! Run with `cargo run -p suite --release --example platform_trace`.

use bignum::BigUint;
use ceilidh::CeilidhParams;
use platform::isa::{Core, MicroOp, Program};
use platform::{
    compile, count_modadds, count_modmuls, Coprocessor, CostModel, FormulaDb, Hierarchy, OpKind,
    Platform,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Level 3: a microinstruction program on a single core. ------------
    println!("== level 3: core microcode (7-instruction ISA) ==");
    let mut program = Program::new();
    program.push(MicroOp::LoadImm {
        dst: 0,
        imm: 0x1234,
    });
    program.push(MicroOp::LoadImm {
        dst: 1,
        imm: 0x5678,
    });
    program.push(MicroOp::MulAcc { a: 0, b: 1 });
    program.push(MicroOp::AccOut { dst: 2 });
    program.push(MicroOp::AccOut { dst: 3 });
    program.push(MicroOp::Store { src: 2, addr: 0 });
    program.push(MicroOp::Store { src: 3, addr: 1 });
    println!("{}", program.listing());
    let mut memory = vec![0u64; 4];
    let mut core = Core::new(16);
    core.execute(&program, &mut memory);
    println!(
        "0x1234 * 0x5678 = 0x{:04x}{:04x} (computed by the simulated core)\n",
        memory[1], memory[0]
    );

    // --- Level 3: a full Montgomery multiplication on the coprocessor. ----
    println!("== level 3: multicore Montgomery multiplication ==");
    let coproc = Coprocessor::new(CostModel::paper(), 4);
    let p = BigUint::from_hex("2e14985ba5778232ba167ef32f9741a9a30db4650f7")?;
    let x = BigUint::from(123_456_789u64);
    let y = BigUint::from(987_654_321u64);
    let result = coproc.mont_mul(&x, &y, &p);
    println!(
        "170-bit MM: {} cycles, {} instructions, {} memory accesses",
        result.cycles, result.instructions, result.memory_accesses
    );

    // --- Level 2: the formula database behind the InsRom1 sequences. -------
    println!("\n== level 2: formula database (InsRom1 sequences) ==");
    for formula in FormulaDb::builtin().formulas() {
        let seq = platform::program::Program::author(formula.kind()).into_ops();
        println!(
            "{:<14} ({}): {} steps = {} MM + {} MA/MS",
            formula.name(),
            formula.kind(),
            seq.len(),
            count_modmuls(&seq),
            count_modadds(&seq)
        );
    }
    let curve = ecc::Curve::p160_reproduction()?;
    let db = FormulaDb::builtin();
    println!(
        "derived for {} under the paper calibration: PA -> {}, PD -> {}",
        curve.name(),
        db.best_for(OpKind::EccPaMixed, &curve, &CostModel::paper())
            .name(),
        db.best_for(OpKind::EccPd, &curve, &CostModel::paper())
            .name()
    );

    // --- Level 2: the pass pipeline + program cache. -----------------------
    println!("\n== level 2: pass pipeline (Program -> passes -> CompiledProgram) ==");
    let compiled = compile(OpKind::EccPdFast, 160, &CostModel::paper());
    for pass in compiled.passes() {
        println!(
            "pass {:<14} steps {:>2} -> {:<2} prefetch pairs {:>2} -> {:<2} scored cycles {:>5} -> {:<5}",
            pass.pass,
            pass.steps_before,
            pass.steps_after,
            pass.pairs_before,
            pass.pairs_after,
            pass.cycles_before,
            pass.cycles_after
        );
    }
    let plat_cache = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
    let _ = plat_cache.ecc_point_doubling_fast_report(160);
    let _ = plat_cache.ecc_point_doubling_fast_report(160);
    let _ = plat_cache.ecc_point_doubling_report(160);
    println!(
        "program cache after three reports: {} programs, {} hits / {} misses",
        plat_cache.program_cache().len(),
        plat_cache.program_cache().hits(),
        plat_cache.program_cache().misses()
    );

    // --- Level 1: the MicroBlaze view (Type-A vs Type-B). ------------------
    println!("\n== level 1: control hierarchies ==");
    let params = CeilidhParams::toy()?;
    let mut rng = rand::thread_rng();
    let (_, base) = params.random_subgroup_element(&mut rng);
    let exponent = BigUint::from(0b1_0110_1101_u64);
    for hierarchy in [Hierarchy::TypeA, Hierarchy::TypeB] {
        let plat = Platform::new(CostModel::paper(), 4, hierarchy);
        let (value, report) = plat.torus_exponentiation(&params, &base, &exponent);
        assert_eq!(value, params.pow(&base, &exponent));
        println!(
            "{hierarchy:?}: exponentiation by {exponent} took {report} ({:.3} ms at 74 MHz)",
            report.time_ms(plat.cost())
        );
    }
    Ok(())
}

//! Quickstart: CEILIDH key agreement with compressed public keys.
//!
//! Run with `cargo run -p suite --release --example quickstart`.

use ceilidh::{compress, decompress, shared_secret_bytes, CeilidhParams, KeyPair};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();

    // The 170-bit parameter set evaluated in the paper (Table 3).
    let params = CeilidhParams::date2008()?;
    println!(
        "CEILIDH parameters: p has {} bits, subgroup order q has {} bits",
        params.p().bit_len(),
        params.q().bit_len()
    );

    // Alice and Bob generate key pairs (one torus exponentiation each).
    let alice = KeyPair::generate(&params, &mut rng);
    let bob = KeyPair::generate(&params, &mut rng);

    // Public keys travel compressed: two Fp elements + 2 bits instead of six
    // Fp elements — the factor-3 bandwidth saving of torus cryptography.
    let alice_compressed = alice.public().compress(&params)?;
    let wire_bytes = alice_compressed.byte_len(params.p().bit_len());
    let uncompressed_bytes = 6 * params.p().bit_len().div_ceil(8);
    println!(
        "public key on the wire: {wire_bytes} bytes (uncompressed Fp6: {uncompressed_bytes} bytes)"
    );

    // Bob decompresses Alice's key and both derive the shared secret.
    let alice_restored = decompress(&params, &alice_compressed)?;
    assert_eq!(&alice_restored, alice.public().element());

    let k_ab = shared_secret_bytes(&params, alice.secret(), bob.public(), 32);
    let k_ba = shared_secret_bytes(&params, bob.secret(), alice.public(), 32);
    assert_eq!(k_ab, k_ba);
    println!(
        "shared secret established: {} bytes, first byte {:#04x}",
        k_ab.len(),
        k_ab[0]
    );

    // Round-trip the compression explicitly as well.
    let c = compress(&params, bob.public().element())?;
    assert_eq!(&decompress(&params, &c)?, bob.public().element());
    println!("compression round-trip: ok");
    Ok(())
}

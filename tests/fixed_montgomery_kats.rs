//! Known-answer tests pinning `bignum::fixed::MontgomeryContext` to the
//! heap `MontgomeryParams` backend on the standards 256-bit moduli, plus
//! the published secp256k1/P-256 generator multiples re-run through the
//! fixed-width curve ladder.
//!
//! Both backends use the Montgomery radix `R = 2^256` on these moduli
//! (8 × 32-bit heap limbs, 4 × 64-bit fixed limbs), so everything —
//! `n'`, `R²`, Montgomery forms, products — must agree *bit for bit*, not
//! just modulo `p`. The `n'` and `R²` values are additionally checked
//! against independently derived constants so a shared bug in the two
//! Newton–Hensel inversions could not hide.

use bignum::fixed::{MontgomeryContext, Uint};
use bignum::{BigUint, MontgomeryParams};
use ecc::prelude::*;
use field::FpElement;
use proptest::prelude::*;
use rand::SeedableRng;

/// The secp256k1 prime `2^256 - 2^32 - 977`.
const SECP256K1_P: &str = "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f";
/// The P-256 (secp256r1) prime `2^256 - 2^224 + 2^192 + 2^96 - 1`.
const P256_P: &str = "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";

fn hex(s: &str) -> BigUint {
    BigUint::from_hex(s).expect("valid hex test vector")
}

/// Both backends over the same modulus.
fn contexts(p_hex: &str) -> (MontgomeryContext<4>, MontgomeryParams) {
    let p = hex(p_hex);
    let fixed = MontgomeryContext::<4>::new(&p).expect("256-bit odd prime fits 4 limbs");
    let heap = MontgomeryParams::new(&p).expect("odd modulus");
    (fixed, heap)
}

#[test]
fn n_prime_matches_known_answers_and_heap_truncation() {
    // -p⁻¹ mod 2^64 for secp256k1, from an independent computation.
    let (fixed, heap) = contexts(SECP256K1_P);
    assert_eq!(fixed.n0_inv(), 0xd838_091d_d225_3531);
    // The heap backend computes n' mod 2^32; the fixed value must truncate
    // to it (same Hensel lift, twice the precision).
    assert_eq!(fixed.n0_inv() as u32, heap.n0_inv());

    // P-256's low limb is 2^64 - 1, i.e. p ≡ -1 (mod 2^64), so n' = 1.
    let (fixed, heap) = contexts(P256_P);
    assert_eq!(fixed.n0_inv(), 1);
    assert_eq!(fixed.n0_inv() as u32, heap.n0_inv());
}

#[test]
fn r_squared_matches_independent_computation() {
    for p_hex in [SECP256K1_P, P256_P] {
        let p = hex(p_hex);
        let (fixed, _) = contexts(p_hex);
        // R² = 2^512 mod p, derived here with nothing but shifts.
        let r2 = &BigUint::one().shl_bits(512) % &p;
        assert_eq!(fixed.r2().to_biguint(), r2, "R² mismatch on {p_hex}");
        // And R = 2^256 mod p is the Montgomery form of 1.
        let r = &BigUint::one().shl_bits(256) % &p;
        assert_eq!(fixed.one_mont().to_biguint(), r, "R mismatch on {p_hex}");
    }
}

#[test]
fn montgomery_forms_are_bit_identical_across_backends() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xf17e_d256);
    for p_hex in [SECP256K1_P, P256_P] {
        let p = hex(p_hex);
        let (fixed, heap) = contexts(p_hex);
        assert_eq!(fixed.one_mont().to_biguint(), heap.to_mont(&BigUint::one()));
        for _ in 0..16 {
            let a = &BigUint::random_bits(&mut rng, 256) % &p;
            let b = &BigUint::random_bits(&mut rng, 256) % &p;
            let af = Uint::<4>::from_biguint(&a).unwrap();
            let bf = Uint::<4>::from_biguint(&b).unwrap();
            // Same residue representation after conversion...
            let am = fixed.to_mont(&af);
            let bm = fixed.to_mont(&bf);
            assert_eq!(am.to_biguint(), heap.to_mont(&a));
            // ...the same product residue (not merely the same value)...
            assert_eq!(
                fixed.mont_mul(&am, &bm).to_biguint(),
                heap.mont_mul(&heap.to_mont(&a), &heap.to_mont(&b))
            );
            // ...and the same way back out.
            assert_eq!(fixed.from_mont(&am).to_biguint(), a);
        }
    }
}

#[test]
fn known_products_match_on_the_secp256k1_modulus() {
    // A handful of fully pinned products: operand, operand, expected
    // (a · b mod p), recomputed through the Montgomery round-trip.
    let (fixed, _) = contexts(SECP256K1_P);
    let p = hex(SECP256K1_P);
    let cases = [
        (BigUint::from(2u64), BigUint::from(3u64)),
        (&p - &BigUint::one(), &p - &BigUint::one()), // (-1)² = 1
        (
            &p - &BigUint::from(977u64),
            BigUint::one().shl_bits(255) % &p,
        ),
    ];
    for (a, b) in cases {
        let expected = &(&a * &b) % &p;
        let am = fixed.to_mont(&Uint::from_biguint(&a).unwrap());
        let bm = fixed.to_mont(&Uint::from_biguint(&b).unwrap());
        let got = fixed.from_mont(&fixed.mont_mul(&am, &bm));
        assert_eq!(
            got.to_biguint(),
            expected,
            "{} * {}",
            a.to_hex(),
            b.to_hex()
        );
    }
    // (-1)² = 1 specifically must come back as the Montgomery form of 1.
    let minus_one = fixed.to_mont(&Uint::from_biguint(&(&p - &BigUint::one())).unwrap());
    assert_eq!(fixed.mont_mul(&minus_one, &minus_one), fixed.one_mont());
}

#[test]
fn backend_presence_matches_field_width() {
    for (name, expect) in [
        ("secp256k1", true),
        ("p256", true),
        ("p160-reproduction", false),
        ("toy-1009", false),
    ] {
        let curve = Curve::by_name(name).unwrap();
        assert_eq!(
            curve.fixed_backend().is_some(),
            expect,
            "{name}: fixed backend presence"
        );
        assert_eq!(
            curve.fp().fixed256().is_some(),
            expect,
            "{name}: field fast path"
        );
    }
}

/// Runs `k · G` directly through the fixed backend (no dispatch), returning
/// the affine result as field elements.
fn fixed_mul_base(curve: &Curve, k: u64) -> Option<(FpElement, FpElement)> {
    let backend = curve.fixed_backend().expect("256-bit curve has a backend");
    let (gx, gy) = curve.base_point().coordinates().expect("G is finite");
    let to_residue = |e: &FpElement| Uint::<4>::from_biguint(e.mont_repr()).unwrap();
    backend
        .scalar_mul(&to_residue(gx), &to_residue(gy), &Uint::from_u64(k))
        .map(|(x, y)| {
            (
                FpElement::from_mont_repr(x.to_biguint()),
                FpElement::from_mont_repr(y.to_biguint()),
            )
        })
}

#[test]
fn fixed_ladder_reproduces_published_generator_multiples() {
    // The same SEC 2 / FIPS 186-4 vectors `tests/named_curves.rs` pins on
    // the heap ladder, this time evaluated on the stack backend alone.
    let vectors = [
        (
            "secp256k1",
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5",
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a",
            "fff97bd5755eeea420453a14355235d382f6472f8568a18b2f057a1460297556",
        ),
        (
            "p256",
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978",
            "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1",
            "b01a172a76a4602c92d3242cb897dde3024c740debb215b4c6b0aae93c2291a9",
        ),
    ];
    for (name, x2, y2, x6) in vectors {
        let curve = Curve::by_name(name).unwrap();
        let (gx2, gy2) = fixed_mul_base(&curve, 2).expect("2G is finite");
        assert_eq!(gx2, curve.fp().from_biguint(&hex(x2)), "{name}: x(2G)");
        assert_eq!(gy2, curve.fp().from_biguint(&hex(y2)), "{name}: y(2G)");
        let (gx6, _) = fixed_mul_base(&curve, 6).expect("6G is finite");
        assert_eq!(gx6, curve.fp().from_biguint(&hex(x6)), "{name}: x(6G)");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The dispatching ladder (which routes 256-bit double-and-add through
    /// the fixed backend) agrees with the always-heap reference ladder on
    /// random full-width scalars, on both named 256-bit curves.
    #[test]
    fn dispatch_matches_reference_ladder(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for name in ["secp256k1", "p256"] {
            let curve = Curve::by_name(name).unwrap();
            let k = BigUint::random_bits(&mut rng, 256);
            let dispatched =
                curve.scalar_mul(curve.base_point(), &k, ScalarMulAlgorithm::DoubleAndAdd);
            let reference =
                curve.scalar_mul_reference(curve.base_point(), &k, ScalarMulAlgorithm::DoubleAndAdd);
            prop_assert_eq!(dispatched, reference);
        }
    }
}

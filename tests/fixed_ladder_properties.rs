//! Differential proptests pinning the fixed-backend ladder suite and the
//! batch entry points to the serial heap reference.
//!
//! Every fixed ladder variant (double-and-add, NAF, windowed/comb) and
//! every batch kernel (`Curve::scalar_mul_batch`, `FpContext::exp_batch`
//! / `inv_batch`, `MontgomeryContext::mont_mul_batch`) must agree with
//! its one-at-a-time heap reference — `Curve::scalar_mul_reference` runs
//! the whole ladder on `BigUint`, so a fixed-backend bug cannot mask
//! itself. Edge coverage: empty batches, batches of one, lengths that are
//! not a multiple of the kernel lane counts, and the scalars
//! {0, 1, order − 1, order} that straddle the group boundary.

use bignum::fixed::{MontgomeryContext, Uint};
use bignum::BigUint;
use ecc::prelude::*;
use proptest::prelude::*;

fn curve() -> Curve {
    Curve::from_parameters::<Secp256k1>().expect("registered curve")
}

/// Packs four limbs into a 256-bit scalar without the fixed conversions.
fn scalar(limbs: [u64; 4]) -> BigUint {
    let mut acc = BigUint::zero();
    for &l in limbs.iter().rev() {
        acc = &acc.shl_bits(64) + &BigUint::from(l);
    }
    acc
}

/// The four boundary scalars of the satellite checklist.
fn edge_scalars(curve: &Curve) -> Vec<BigUint> {
    let order = curve.order().expect("secp256k1 has an order").clone();
    vec![
        BigUint::zero(),
        BigUint::one(),
        &order - &BigUint::one(),
        order,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All three fixed ladder algorithms match the heap reference ladder
    /// on random 256-bit scalars, on the base point (comb path) and on a
    /// non-base point (window path).
    #[test]
    fn fixed_ladders_match_heap_reference(limbs in prop::array::uniform4(any::<u64>())) {
        let curve = curve();
        let k = scalar(limbs);
        let g = curve.base_point().clone();
        let h = curve.scalar_mul_reference(&g, &BigUint::from(2u64), ScalarMulAlgorithm::DoubleAndAdd);
        for point in [&g, &h] {
            let reference = curve.scalar_mul_reference(point, &k, ScalarMulAlgorithm::DoubleAndAdd);
            for algorithm in [
                ScalarMulAlgorithm::DoubleAndAdd,
                ScalarMulAlgorithm::Naf,
                ScalarMulAlgorithm::Window4,
            ] {
                prop_assert_eq!(
                    curve.scalar_mul(point, &k, algorithm),
                    reference.clone(),
                    "algorithm {:?}",
                    algorithm
                );
                prop_assert_eq!(
                    curve.scalar_mul_reference(point, &k, algorithm),
                    reference.clone(),
                    "heap algorithm {:?}",
                    algorithm
                );
            }
        }
    }

    /// `Curve::scalar_mul_batch` is element-wise identical to serial
    /// `scalar_mul` for batch lengths that are not multiples of the
    /// vector kernels' lane counts (1, 3, 5, 7, 9), with edge scalars and
    /// the point at infinity mixed into the requests.
    #[test]
    fn scalar_mul_batch_matches_serial(limbs in prop::array::uniform8(any::<u64>())) {
        let curve = curve();
        let g = curve.base_point().clone();
        let h = curve.scalar_mul_reference(&g, &BigUint::from(3u64), ScalarMulAlgorithm::DoubleAndAdd);
        let mut requests: Vec<(AffinePoint, BigUint)> = Vec::new();
        for (i, k) in edge_scalars(&curve).into_iter().enumerate() {
            requests.push((if i % 2 == 0 { g.clone() } else { h.clone() }, k));
        }
        requests.push((AffinePoint::Infinity, scalar([limbs[0], limbs[1], limbs[2], limbs[3]])));
        for chunk in limbs.chunks(2) {
            requests.push((h.clone(), scalar([chunk[0], chunk[1], 0, 0])));
        }
        for len in [0usize, 1, 3, 5, 7, 9] {
            let slice = &requests[..len];
            let batch = curve.scalar_mul_batch(slice);
            prop_assert_eq!(batch.len(), len);
            for (i, (point, k)) in slice.iter().enumerate() {
                prop_assert_eq!(
                    &batch[i],
                    &curve.scalar_mul_reference(point, k, ScalarMulAlgorithm::DoubleAndAdd),
                    "len {} request {}",
                    len,
                    i
                );
            }
        }
    }

    /// `FpContext::exp_batch` and `inv_batch` match their serial
    /// counterparts for ragged lengths, including empty and length one,
    /// with a zero element mixed in (whose inverse must come back `None`).
    #[test]
    fn field_batches_match_serial(limbs in prop::array::uniform8(any::<u64>())) {
        let curve = curve();
        let fp = curve.fp();
        let pairs: Vec<_> = (0..5)
            .map(|i| {
                (
                    fp.from_biguint(&scalar([limbs[i], limbs[(i + 1) % 8], limbs[(i + 2) % 8], 0])),
                    scalar([limbs[(i + 3) % 8], i as u64, 0, 0]),
                )
            })
            .collect();
        for len in [0usize, 1, 3, 5] {
            let got = fp.exp_batch(&pairs[..len]);
            prop_assert_eq!(got.len(), len);
            for (i, (base, exp)) in pairs[..len].iter().enumerate() {
                prop_assert_eq!(&got[i], &fp.exp(base, exp), "exp lane {}", i);
            }
            let mut elems: Vec<_> = pairs[..len].iter().map(|(b, _)| b.clone()).collect();
            elems.push(fp.zero());
            let inv = fp.inv_batch(&elems);
            prop_assert_eq!(inv.len(), elems.len());
            for (i, e) in elems.iter().enumerate() {
                prop_assert_eq!(&inv[i], &fp.inv(e), "inv lane {}", i);
            }
        }
    }

    /// `mont_mul_batch` is lane-for-lane identical to serial `mont_mul`
    /// at lane counts straddling the vector kernels' block sizes,
    /// including the {0, 1, p − 1} residues in every lane position.
    #[test]
    fn mont_mul_batch_matches_serial_ragged(limbs in prop::array::uniform8(any::<u64>())) {
        let curve = curve();
        let p = curve.fp().modulus().clone();
        let ctx = MontgomeryContext::<4>::new(&p).expect("odd prime modulus");
        let residue = |seed: [u64; 4]| {
            let v = &scalar(seed) % &p;
            ctx.to_mont(&Uint::from_biguint(&v).expect("reduced"))
        };
        let pm1 = Uint::from_biguint(&(&p - &BigUint::one())).expect("fits");
        let specials = [Uint::ZERO, ctx.one_mont(), ctx.to_mont(&pm1)];
        macro_rules! check {
            ($lanes:literal) => {{
                let a: [Uint<4>; $lanes] = core::array::from_fn(|l| {
                    residue([limbs[l % 8], limbs[(l + 1) % 8], l as u64, 7])
                });
                let mut b: [Uint<4>; $lanes] = core::array::from_fn(|l| {
                    residue([limbs[(l + 2) % 8], limbs[(l + 3) % 8], l as u64, 11])
                });
                // Rotate the boundary residues through the lanes.
                for (i, s) in specials.iter().enumerate() {
                    b[(limbs[i] as usize) % $lanes] = *s;
                }
                let batched = ctx.mont_mul_batch(&a, &b);
                for l in 0..$lanes {
                    prop_assert_eq!(batched[l], ctx.mont_mul(&a[l], &b[l]), "lane {}", l);
                }
            }};
        }
        check!(3);
        check!(5);
        check!(8);
        check!(13);
    }
}

//! Property-based tests for the typed program IR, its compile pipeline
//! and the compile-once cache (the fifth layer of the cost model,
//! `CostModel::fast_pd`, rides along):
//!
//! * **refactor safety net** — `compile()` output is cycle-identical (and
//!   slot-state-identical) to the legacy hand-built sequences for every
//!   pre-existing `OpKind × CostModel × bits` combination: the passes are
//!   provably no-ops on the calibrated InsRom programs;
//! * **cache semantics** — the same `(OpKind, bits, cost fingerprint)`
//!   key yields the same `CompiledProgram` allocation (a hit), any knob
//!   change misses;
//! * **fast doubling** — the 8-MM `a = -3` sequence agrees with the
//!   general doubling functionally and never costs more, and its Type-A
//!   cycle count reproduces Table 2's 5793-cycle ECC PD row within ±5%.

use bignum::BigUint;
use ecc::Curve;
use platform::program::{compile, compile_unoptimized, OpKind, ProgramCache};
use platform::{CostModel, Hierarchy, Platform, ScheduleModel};
use proptest::prelude::*;
use std::sync::Arc;

/// The cost-model variants every pipeline identity must hold under.
fn cost_variants() -> Vec<CostModel> {
    vec![
        CostModel::paper(),
        CostModel::paper_sequential(),
        CostModel::paper().with_dual_path(false),
        CostModel::paper().with_mixed_pa(false),
        CostModel::paper().with_fast_pd(false),
        CostModel {
            mac_pipeline_depth: 4,
            ..CostModel::paper()
        },
    ]
}

/// Deterministic probe state shared by both executions under test.
fn probe_modulus(bits: usize) -> BigUint {
    let m = BigUint::one().shl_bits(bits - 1) + BigUint::one().shl_bits(bits / 2);
    &m + &BigUint::from(13u64)
}

fn probe_slots(n: usize) -> Vec<BigUint> {
    (0..n)
        .map(|i| BigUint::from((i % 251 + 1) as u64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The refactor safety net: for every legacy kind, cost model and
    /// operand length, the optimizing pipeline produces a program whose
    /// execution is cycle-identical — and slot-for-slot state-identical —
    /// to the authored (legacy hand-built) sequence.
    #[test]
    fn compile_is_cycle_identical_to_legacy_sequences(bits in 16usize..512) {
        for cost in cost_variants() {
            for hierarchy in [Hierarchy::TypeA, Hierarchy::TypeB] {
                let plat = Platform::new(cost, 4, hierarchy);
                let modulus = probe_modulus(bits);
                for kind in OpKind::LEGACY {
                    let optimized = compile(kind, bits, &cost);
                    let legacy = compile_unoptimized(kind, bits, &cost);
                    prop_assert_eq!(optimized.ops(), legacy.ops(), "{} step stream", kind);
                    let mut slots_a = probe_slots(optimized.slot_budget());
                    let mut slots_b = probe_slots(legacy.slot_budget());
                    let ra = plat.execute(&optimized, &modulus, &mut slots_a);
                    let rb = plat.execute(&legacy, &modulus, &mut slots_b);
                    prop_assert_eq!(ra, rb, "{} report ({:?})", kind, hierarchy);
                    prop_assert_eq!(slots_a, slots_b, "{} slot state", kind);
                }
            }
        }
    }

    /// The scheduled fast doubling stays semantically equal to its
    /// authored order at every operand length, and never costs more than
    /// the general doubling under any hierarchy or schedule.
    #[test]
    fn fast_pd_scheduled_semantics_and_cost_bound(bits in 8usize..420) {
        for cost in [
            CostModel::paper(),
            CostModel::paper().with_dual_path(false),
            CostModel::paper_sequential(),
        ] {
            let modulus = probe_modulus(bits);
            let fast = compile(OpKind::EccPdFast, bits, &cost);
            let authored = compile_unoptimized(OpKind::EccPdFast, bits, &cost);
            for hierarchy in [Hierarchy::TypeA, Hierarchy::TypeB] {
                let plat = Platform::new(cost, 4, hierarchy);
                // Scheduling preserves the computed outputs exactly.
                let mut scheduled_slots = probe_slots(fast.slot_budget());
                let mut authored_slots = probe_slots(authored.slot_budget());
                plat.execute(&fast, &modulus, &mut scheduled_slots);
                plat.execute(&authored, &modulus, &mut authored_slots);
                for out in fast.outputs() {
                    prop_assert_eq!(
                        &scheduled_slots[*out],
                        &authored_slots[*out],
                        "output slot {} ({:?})", out, hierarchy
                    );
                }
                // And the fast program is never slower than the general.
                let fast_report = plat.composite_report(OpKind::EccPdFast, bits);
                let general_report = plat.composite_report(OpKind::EccPd, bits);
                prop_assert!(
                    fast_report.cycles < general_report.cycles,
                    "fast {} !< general {} at {} bits ({:?})",
                    fast_report.cycles,
                    general_report.cycles,
                    bits,
                    hierarchy
                );
                prop_assert_eq!(fast_report.modmuls, 8);
                prop_assert_eq!(general_report.modmuls, 10);
            }
        }
    }

    /// Platform-level functional equality of the two doubling sequences
    /// on random 160-bit points with generic (non-one) Z coordinates.
    #[test]
    fn platform_fast_doubling_matches_general(seed in 0u64..1_000) {
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
        let p = curve.random_point(&mut rng);
        let jp = curve.jacobian_double(&curve.to_jacobian(&p)); // generic Z
        let (fast, _) = plat.run_ecc_point_doubling_fast(&curve, &jp);
        let (general, _) = plat.run_ecc_point_doubling(&curve, &jp);
        prop_assert_eq!(curve.to_affine(&fast), curve.to_affine(&general));
    }

    /// Cache-hit semantics: equal fingerprints share one allocation,
    /// every knob difference is a miss.
    #[test]
    fn cache_key_distinguishes_exactly_the_knobs(bits in 16usize..512) {
        let cache = ProgramCache::new();
        let base = CostModel::paper();
        let a = cache.get_or_compile(OpKind::Fp6Mul, bits, &base);
        // A re-built but equal cost model is the same key.
        let same = CostModel::paper();
        let b = cache.get_or_compile(OpKind::Fp6Mul, bits, &same);
        prop_assert!(Arc::ptr_eq(&a, &b));
        prop_assert_eq!(cache.misses(), 1);
        // Knob changes (and bits changes) miss.
        let variants = [
            base.with_dual_path(false),
            base.with_mixed_pa(false),
            base.with_fast_pd(false),
            base.with_schedule(ScheduleModel::Sequential),
        ];
        for v in variants {
            let c = cache.get_or_compile(OpKind::Fp6Mul, bits, &v);
            prop_assert!(!Arc::ptr_eq(&a, &c));
        }
        let d = cache.get_or_compile(OpKind::Fp6Mul, bits + 1, &base);
        prop_assert!(!Arc::ptr_eq(&a, &d));
        prop_assert_eq!(cache.misses(), 6);
        prop_assert_eq!(cache.hits(), 1);
    }
}

#[test]
fn fast_pd_reproduces_table2_type_a_within_tolerance() {
    // The headline the tentpole exists for: the Type-A ECC PD row lands
    // within ±5% of the paper's 5793 cycles when priced through the
    // IR-authored fast a = -3 doubling (the Type-B row stays with the
    // general InsRom doubling, reproduced since PR 2).
    let paper_type_a = 5793.0;
    let a = Platform::new(CostModel::paper(), 4, Hierarchy::TypeA)
        .ecc_point_doubling_fast_report(160)
        .cycles as f64;
    let delta_a = 100.0 * (a - paper_type_a) / paper_type_a;
    assert!(delta_a.abs() <= 5.0, "Type-A fast PD off by {delta_a:.1}%");

    let paper_type_b = 2665.0;
    let b = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB)
        .ecc_point_doubling_report(160)
        .cycles as f64;
    let delta_b = 100.0 * (b - paper_type_b) / paper_type_b;
    assert!(
        delta_b.abs() <= 6.0,
        "Type-B general PD off by {delta_b:.1}%"
    );
}

#[test]
fn compiled_programs_expose_stats_and_pass_trace() {
    let cost = CostModel::paper();
    let pd = compile(OpKind::EccPdFast, 160, &cost);
    assert_eq!(pd.stats().modmuls, 8);
    assert_eq!(pd.stats().modaddsubs(), 12);
    assert_eq!(pd.stats().copies, 0);
    assert!(pd.stats().slot_high_water <= pd.slot_budget());
    // validate, dead-temp-elim, list-schedule — in that order (search is
    // off in the paper calibration).
    let names: Vec<_> = pd.passes().iter().map(|p| p.pass).collect();
    assert_eq!(names, ["validate", "dead-temp-elim", "list-schedule"]);
    // The scheduler strictly raises the prefetch-pair density of the
    // authored derivation order.
    let reorder = pd.passes().last().unwrap();
    assert!(reorder.pairs_after > reorder.pairs_before);
    assert!(reorder.changed());
    // Calibrated programs pass through unchanged.
    let fp6 = compile(OpKind::Fp6Mul, 170, &cost);
    assert!(fp6.passes().iter().all(|p| !p.changed()));
    assert_eq!(fp6.stats().modmuls, 18);
    // Named operands survive compilation (the marshalling shims rely on
    // the layout, tests may rely on the names).
    assert_eq!(fp6.operand("a0"), Some(0));
    assert_eq!(fp6.operand("r5"), Some(17));
    assert_eq!(pd.operand("X3"), Some(3));
}

#[test]
fn under_sequential_schedule_fast_pd_keeps_authored_order() {
    // There is no sequencer overlap to win under the flat model, so the
    // compiler leaves even the uncalibrated program in authored order —
    // compiled output must be deterministic per (kind, cost) key.
    let seq = CostModel::paper_sequential();
    let compiled = compile(OpKind::EccPdFast, 160, &seq);
    let authored = compile_unoptimized(OpKind::EccPdFast, 160, &seq);
    assert_eq!(compiled.ops(), authored.ops());
    // And compilation is deterministic.
    let again = compile(OpKind::EccPdFast, 160, &seq);
    assert_eq!(compiled.ops(), again.ops());
    let pip = compile(OpKind::EccPdFast, 160, &CostModel::paper());
    assert_eq!(
        pip.ops(),
        compile(OpKind::EccPdFast, 160, &CostModel::paper()).ops()
    );
}

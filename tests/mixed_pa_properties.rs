//! Property-based tests for the mixed-coordinate ECC point addition (the
//! fourth layer of the cost model, `CostModel::mixed_coordinate_pa`):
//!
//! * **functional equality** — the mixed formulas (`Z2 = 1`) and the
//!   general Jacobian addition produce the *same point* whenever the
//!   addend is affine, across random curves, points and scalars, both in
//!   the host `ecc` crate and through the simulated platform sequences;
//! * **never slower** — the 13-MM mixed sequence costs at most the 16-MM
//!   general sequence at every operand length, under both hierarchies and
//!   both schedules;
//! * **ladder invariant** — every addend a ladder feeds to the mixed
//!   addition is in normalized (`Z = 1`) form: the base point and its
//!   negation trivially, and the windowed ladder's precomputed table by
//!   its one-time normalization.

use bignum::BigUint;
use ecc::{AffinePoint, Curve, CurveSpec, ScalarMulAlgorithm};
use field::FpContext;
use platform::{CostModel, Hierarchy, Platform};
use proptest::prelude::*;

/// Builds a random short-Weierstrass curve over the toy prime 1009 from a
/// seed: coefficients are derived from the seed and the base point is found
/// by scanning x-coordinates. Returns `None` when the derived curve is
/// singular or has no point in the scanned range (the caller `prop_assume`s
/// those seeds away).
fn random_toy_curve(seed: u64) -> Option<Curve> {
    let p = BigUint::from(1009u64);
    let fp = FpContext::new(&p).ok()?;
    let a = BigUint::from(seed % 1009);
    let b = BigUint::from((seed / 1009) % 1009);
    let (ax, bx) = (fp.from_biguint(&a), fp.from_biguint(&b));
    for xi in 0..64u64 {
        let x = fp.from_u64(xi);
        let rhs = fp.add(&fp.add(&fp.mul(&x, &fp.square(&x)), &fp.mul(&ax, &x)), &bx);
        let y = if rhs.is_zero() {
            fp.zero()
        } else {
            match fp.sqrt(&rhs) {
                Some(y) => y,
                None => continue,
            }
        };
        return CurveSpec::new(p, a, b, BigUint::from(xi), fp.to_biguint(&y))
            .name("prop-toy")
            .build()
            .ok();
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Mixed and general addition agree on every `Z2 = 1` input: for
    /// random curves and scalars, adding `k·P` (accumulated, arbitrary Z)
    /// and `m·P` (affine) through both paths lands on the same point.
    #[test]
    fn mixed_equals_general_on_affine_addends(seed in 0u64..1_000_000, k in 1u64..500, m in 1u64..500) {
        let curve = random_toy_curve(seed);
        prop_assume!(curve.is_some());
        let curve = curve.unwrap();
        let base = curve.base_point().clone();
        // An accumulator with a generic (non-one) Z coordinate.
        let acc = curve.jacobian_double(&curve.jacobian_add_mixed(
            &curve.to_jacobian(&curve.scalar_mul(&base, &BigUint::from(k), ScalarMulAlgorithm::DoubleAndAdd)),
            &base,
        ));
        let addend = curve.scalar_mul(&base, &BigUint::from(m), ScalarMulAlgorithm::DoubleAndAdd);
        let mixed = curve.jacobian_add_mixed(&acc, &addend);
        let general = curve.jacobian_add(&acc, &curve.to_jacobian(&addend));
        prop_assert_eq!(curve.to_affine(&mixed), curve.to_affine(&general));
    }

    /// (a, ladder level) All three ladder algorithms — every addition now
    /// mixed — still agree with each other and with first principles.
    #[test]
    fn mixed_ladders_agree_across_algorithms(seed in 0u64..1_000_000, k in 0u64..100_000) {
        let curve = random_toy_curve(seed);
        prop_assume!(curve.is_some());
        let curve = curve.unwrap();
        let p = curve.base_point().clone();
        let k = BigUint::from(k);
        let reference = curve.scalar_mul(&p, &k, ScalarMulAlgorithm::DoubleAndAdd);
        prop_assert_eq!(curve.scalar_mul(&p, &k, ScalarMulAlgorithm::Naf), reference.clone());
        prop_assert_eq!(curve.scalar_mul(&p, &k, ScalarMulAlgorithm::Window4), reference.clone());
        prop_assert!(curve.is_on_curve(&reference));
    }

    /// (b) The mixed sequence never costs more than the general one: at
    /// every operand length, under both hierarchies, both schedules and
    /// with the dual-path layer on or off. (The saving is exactly the
    /// three eliminated Montgomery products minus the two extra
    /// modular additions' worth of schedule interaction, so strict
    /// inequality must hold everywhere.)
    #[test]
    fn mixed_pa_cycles_bounded_by_general(bits in 8usize..420) {
        for cost in [
            CostModel::paper(),
            CostModel::paper().with_dual_path(false),
            CostModel::paper_sequential(),
        ] {
            for hierarchy in [Hierarchy::TypeA, Hierarchy::TypeB] {
                let plat = Platform::new(cost, 4, hierarchy);
                let mixed = plat.ecc_point_addition_mixed_report(bits);
                let general = plat.ecc_point_addition_report(bits);
                prop_assert!(
                    mixed.cycles < general.cycles,
                    "mixed {} !< general {} at {} bits ({:?})",
                    mixed.cycles,
                    general.cycles,
                    bits,
                    hierarchy
                );
                prop_assert_eq!(mixed.modmuls, 13);
                prop_assert_eq!(general.modmuls, 16);
            }
        }
    }

    /// (c) The windowed ladder's one-time normalization holds: every table
    /// entry the main loop may feed to the mixed addition is in `Z = 1`
    /// form and is the correct multiple of the base point.
    #[test]
    fn window_table_addends_are_normalized_multiples(seed in 0u64..1_000_000, window in 2usize..5) {
        let curve = random_toy_curve(seed);
        prop_assume!(curve.is_some());
        let curve = curve.unwrap();
        let p = curve.base_point().clone();
        let table = curve.affine_window_table(&p, window);
        prop_assert_eq!(table.len(), 1 << window);
        for (i, entry) in table.iter().enumerate() {
            let expected = curve.scalar_mul(&p, &BigUint::from(i as u64), ScalarMulAlgorithm::DoubleAndAdd);
            prop_assert_eq!(entry.clone(), expected);
            // Affine entries lift to normalized Jacobian form — the mixed
            // sequence's precondition — except the identity, which the
            // main loop skips (digit 0 adds nothing).
            if !entry.is_infinity() {
                prop_assert!(curve.to_jacobian(entry).is_normalized(curve.fp()));
            }
        }
    }

    /// (a, platform level) The simulated mixed sequence computes the same
    /// sum as the simulated general sequence on random 160-bit points.
    #[test]
    fn platform_mixed_sequence_matches_general(seed in 0u64..1_000) {
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
        let p = curve.random_point(&mut rng);
        let q = curve.random_point(&mut rng);
        let jp = curve.jacobian_double(&curve.to_jacobian(&p)); // generic Z
        let (mixed, _) = plat.run_ecc_point_addition_mixed(&curve, &jp, &q);
        let (general, _) = plat.run_ecc_point_addition(&curve, &jp, &curve.to_jacobian(&q));
        prop_assert_eq!(curve.to_affine(&mixed), curve.to_affine(&general));
    }
}

#[test]
fn mixed_pa_reproduces_table2_within_tolerance() {
    // The headline the tentpole exists for: both Table 2 ECC PA rows land
    // within ±5% of the paper when priced through the mixed sequence.
    let paper_type_a = 7185.0;
    let paper_type_b = 2888.0;
    let a = Platform::new(CostModel::paper(), 4, Hierarchy::TypeA)
        .ecc_point_addition_mixed_report(160)
        .cycles as f64;
    let b = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB)
        .ecc_point_addition_mixed_report(160)
        .cycles as f64;
    let delta_a = 100.0 * (a - paper_type_a) / paper_type_a;
    let delta_b = 100.0 * (b - paper_type_b) / paper_type_b;
    assert!(delta_a.abs() <= 5.0, "Type-A mixed PA off by {delta_a:.1}%");
    assert!(delta_b.abs() <= 5.0, "Type-B mixed PA off by {delta_b:.1}%");
}

#[test]
fn degenerate_mixed_additions_are_handled() {
    // Infinity accumulator, doubling case and inverse case all route
    // through the host formulas' guards rather than the straight-line
    // sequence.
    let curve = Curve::toy().unwrap();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let p = curve.random_point(&mut rng);
    let inf = curve.to_jacobian(&AffinePoint::Infinity);
    assert_eq!(curve.to_affine(&curve.jacobian_add_mixed(&inf, &p)), p);
    assert!(curve
        .jacobian_add_mixed(&curve.to_jacobian(&p), &AffinePoint::Infinity)
        .is_normalized(curve.fp()));
    let doubled = curve.jacobian_add_mixed(&curve.to_jacobian(&p), &p);
    assert_eq!(curve.to_affine(&doubled), curve.double(&p));
    let cancelled = curve.jacobian_add_mixed(&curve.to_jacobian(&p), &curve.negate(&p));
    assert!(cancelled.is_infinity());
}

//! Differential proptests pinning the fixed-width backend to `BigUint`.
//!
//! For random operands at 4, 5 and 8 limbs, every `Uint<LIMBS>` operation —
//! add/sub with carries, widening multiplication, modular reduction,
//! Montgomery multiplication and exponentiation — round-trips through
//! `BigUint` and matches the heap result exactly, including the carry-chain
//! boundary cases (`MAX` limbs, operands equal to the modulus, zero).
//!
//! The reference values are rebuilt with independent heap arithmetic
//! (`shl_bits` + add for packing, `bignum::modular` and `MontgomeryParams`
//! for the modular ops), so a packing bug in the conversions cannot mask
//! itself.

use bignum::fixed::{self, MontgomeryContext, Uint};
use bignum::{mod_add, mod_exp, mod_mul, mod_neg, mod_sub, BigUint, MontgomeryParams};
use proptest::prelude::*;

/// Packs limbs into a `BigUint` without using the conversions under test.
fn big_from_limbs(limbs: &[u64]) -> BigUint {
    let mut acc = BigUint::zero();
    for &l in limbs.iter().rev() {
        acc = &acc.shl_bits(64) + &BigUint::from(l);
    }
    acc
}

/// Differentially checks every `Uint` operation at one width.
fn check_ops<const L: usize>(a_limbs: [u64; L], b_limbs: [u64; L], e: u64) {
    let a = Uint::from_limbs(a_limbs);
    let b = Uint::from_limbs(b_limbs);
    let big_a = big_from_limbs(&a_limbs);
    let big_b = big_from_limbs(&b_limbs);
    let width = BigUint::one().shl_bits(Uint::<L>::BITS);

    // Conversion round-trips, in both directions.
    assert_eq!(a.to_biguint(), big_a);
    assert_eq!(Uint::<L>::from_biguint(&big_a), Some(a));

    // Structural queries agree with the heap representation.
    assert_eq!(a.bit_len(), big_a.bit_len());
    assert_eq!(a.is_zero(), big_a.is_zero());
    assert_eq!(a.is_odd(), big_a.is_odd());
    assert_eq!(a.cmp(&b), big_a.cmp(&big_b));
    for i in [0usize, 1, 63, 64, Uint::<L>::BITS - 1, Uint::<L>::BITS + 7] {
        assert_eq!(a.bit(i), big_a.bit(i), "bit {i}");
    }

    // Addition with carry out.
    let (sum, carry) = a.carrying_add(&b, 0);
    let big_sum = &big_a + &big_b;
    assert_eq!(
        &sum.to_biguint() + &BigUint::from(carry).shl_bits(Uint::<L>::BITS),
        big_sum
    );
    let (sum1, carry1) = a.carrying_add(&b, 1);
    assert_eq!(
        &sum1.to_biguint() + &BigUint::from(carry1).shl_bits(Uint::<L>::BITS),
        &big_sum + &BigUint::one()
    );

    // Subtraction with borrow out.
    let (diff, borrow) = a.borrowing_sub(&b, 0);
    if big_a >= big_b {
        assert_eq!(borrow, 0);
        assert_eq!(diff.to_biguint(), &big_a - &big_b);
        assert_eq!(a.checked_sub(&b), Some(diff));
    } else {
        assert_eq!(borrow, 1);
        assert_eq!(diff.to_biguint(), &(&width + &big_a) - &big_b);
        assert_eq!(a.checked_sub(&b), None);
    }

    // Widening multiplication: lo + hi·2^BITS is the exact product.
    let (lo, hi) = a.mul_wide(&b);
    assert_eq!(
        &lo.to_biguint() + &hi.to_biguint().shl_bits(Uint::<L>::BITS),
        &big_a * &big_b
    );

    // Modular ops against `bignum::modular`, with the modulus forced odd
    // (for the Montgomery contexts) and the operands reduced.
    let mut m_limbs = b_limbs;
    if L > 0 {
        m_limbs[0] |= 1;
    }
    let big_m = big_from_limbs(&m_limbs);
    if big_m <= BigUint::one() {
        return;
    }
    let m = Uint::from_limbs(m_limbs);
    let big_ar = &big_a % &big_m;
    let big_br = &(&big_a + &big_b) % &big_m; // a second reduced operand
    let ar = Uint::<L>::from_biguint(&big_ar).expect("reduced residue fits");
    let br = Uint::<L>::from_biguint(&big_br).expect("reduced residue fits");

    assert_eq!(
        fixed::add_mod(&ar, &br, &m).to_biguint(),
        mod_add(&big_ar, &big_br, &big_m)
    );
    assert_eq!(
        fixed::sub_mod(&ar, &br, &m).to_biguint(),
        mod_sub(&big_ar, &big_br, &big_m)
    );
    assert_eq!(
        fixed::neg_mod(&ar, &m).to_biguint(),
        mod_neg(&big_ar, &big_m)
    );

    // Reduction of the full double-width product, and of unreduced operands.
    let (plo, phi) = a.mul_wide(&b);
    assert_eq!(
        fixed::reduce_wide(&plo, &phi, &m).to_biguint(),
        &(&big_a * &big_b) % &big_m
    );
    assert_eq!(
        fixed::mul_mod(&a, &b, &m).to_biguint(),
        mod_mul(&big_a, &big_b, &big_m)
    );

    // Montgomery multiplication and exponentiation against both the plain
    // modular reference and the heap Montgomery backend.
    let ctx = MontgomeryContext::<L>::new(&big_m).expect("odd modulus > 1 fits");
    let heap = MontgomeryParams::new(&big_m).expect("odd modulus > 1");
    let am = ctx.to_mont(&ar);
    let bm = ctx.to_mont(&br);
    assert_eq!(ctx.from_mont(&am), ar, "to/from Montgomery round-trip");
    assert_eq!(
        ctx.from_mont(&ctx.mont_mul(&am, &bm)).to_biguint(),
        mod_mul(&big_ar, &big_br, &big_m)
    );
    assert_eq!(
        ctx.from_mont(&ctx.mont_mul(&am, &bm)).to_biguint(),
        heap.from_mont(&heap.mont_mul(&heap.to_mont(&big_ar), &heap.to_mont(&big_br)))
    );
    let exp = Uint::<L>::from_u64(e);
    assert_eq!(
        ctx.mod_exp(&ar, &exp).to_biguint(),
        mod_exp(&big_ar, &BigUint::from(e), &big_m)
    );
    assert_eq!(
        ctx.mod_exp(&ar, &exp).to_biguint(),
        heap.mod_exp(&big_ar, &BigUint::from(e))
    );
}

/// The boundary values the proptest generators rarely hit by chance.
const EDGE_LIMBS: [u64; 3] = [0, 1, u64::MAX];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn limb_primitives_match_u128(a in any::<u64>(), b in any::<u64>(), c in 0u64..2) {
        let (s, carry) = fixed::carrying_add64(a, b, c);
        prop_assert_eq!(s as u128 + ((carry as u128) << 64), a as u128 + b as u128 + c as u128);
        let (d, borrow) = fixed::borrowing_sub64(a, b, c);
        prop_assert_eq!(
            (a as u128).wrapping_sub(b as u128).wrapping_sub(c as u128) & u128::from(u64::MAX),
            d as u128
        );
        prop_assert_eq!(borrow == 1, (a as u128) < b as u128 + c as u128);
        let (lo, hi) = fixed::widening_mul64(a, b);
        prop_assert_eq!(lo as u128 | ((hi as u128) << 64), a as u128 * b as u128);
        let (lo, hi) = fixed::mac64(a, b, c, u64::MAX);
        prop_assert_eq!(
            lo as u128 | ((hi as u128) << 64),
            a as u128 + (b as u128) * (c as u128) + u64::MAX as u128
        );
    }

    #[test]
    fn differential_at_4_limbs(
        a in prop::array::uniform4(any::<u64>()),
        b in prop::array::uniform4(any::<u64>()),
        e in any::<u64>(),
    ) {
        check_ops::<4>(a, b, e);
    }

    #[test]
    fn differential_at_5_limbs(
        a in prop::array::uniform5(any::<u64>()),
        b in prop::array::uniform5(any::<u64>()),
        e in any::<u64>(),
    ) {
        check_ops::<5>(a, b, e);
    }

    #[test]
    fn differential_at_8_limbs(
        a in prop::array::uniform8(any::<u64>()),
        b in prop::array::uniform8(any::<u64>()),
        e in any::<u64>(),
    ) {
        check_ops::<8>(a, b, e);
    }

    #[test]
    fn differential_at_carry_boundaries(
        sa in prop::array::uniform4(0usize..3),
        sb in prop::array::uniform4(0usize..3),
        e in any::<u64>(),
    ) {
        // Limbs drawn from {0, 1, MAX} exercise full-width carry chains
        // (e.g. MAX+MAX+1 rippling across every limb) far more often than
        // uniform sampling would.
        check_ops::<4>(sa.map(|s| EDGE_LIMBS[s]), sb.map(|s| EDGE_LIMBS[s]), e);
    }
}

#[test]
fn all_max_limbs_round_trip_exactly() {
    check_ops::<4>([u64::MAX; 4], [u64::MAX; 4], u64::MAX);
    check_ops::<5>([u64::MAX; 5], [u64::MAX; 5], u64::MAX);
    check_ops::<8>([u64::MAX; 8], [u64::MAX; 8], u64::MAX);
}

#[test]
fn zero_operands_round_trip_exactly() {
    check_ops::<4>([0; 4], [0; 4], 0);
    check_ops::<5>([0; 5], [1, 0, 0, 0, 0], 1);
    check_ops::<8>([0; 8], [u64::MAX; 8], 0);
}

#[test]
fn operands_equal_to_the_modulus_reduce_to_zero() {
    // m = 2^255 - 19-ish odd modulus; the operand *equal* to the modulus
    // must behave as zero through reduction, Montgomery conversion and
    // exponentiation.
    let m_limbs = [
        0xffff_ffff_ffff_ffedu64,
        u64::MAX,
        u64::MAX,
        0x7fff_ffff_ffff_ffff,
    ];
    let m = Uint::<4>::from_limbs(m_limbs);
    let big_m = big_from_limbs(&m_limbs);
    let ctx = MontgomeryContext::<4>::new(&big_m).unwrap();
    assert_eq!(fixed::reduce_wide(&m, &Uint::ZERO, &m), Uint::ZERO);
    assert_eq!(fixed::mul_mod(&m, &m, &m), Uint::ZERO);
    assert_eq!(ctx.to_mont(&m), Uint::ZERO);
    assert_eq!(ctx.mod_exp(&m, &Uint::from_u64(7)), Uint::ZERO);
    assert_eq!(
        ctx.mod_exp(&m, &Uint::from_u64(7)).to_biguint(),
        mod_exp(&big_m, &BigUint::from(7u64), &big_m)
    );
    assert!(
        ctx.mod_inv_prime(&m).is_none(),
        "multiple of p has no inverse"
    );
    // One below and one above the modulus straddle the reduction boundary.
    let below = m.wrapping_sub(&Uint::from_u64(1));
    let above = m.wrapping_add(&Uint::from_u64(1));
    assert_eq!(
        ctx.from_mont(&ctx.to_mont(&below)),
        below,
        "p - 1 is already reduced"
    );
    assert_eq!(
        ctx.from_mont(&ctx.to_mont(&above)),
        Uint::from_u64(1),
        "p + 1 reduces to 1"
    );
}

//! Zero-allocation regression test for the fixed-width backend.
//!
//! The point of `bignum::fixed` is that the hot loops — Montgomery
//! multiplication, exponentiation, and the full scalar-multiplication
//! ladder — run entirely on stack arrays. This test installs a counting
//! global allocator and asserts that, after setup, those loops perform
//! **zero** heap allocations; a `Vec` sneaking back into the CIOS kernel or
//! the ladder would fail here immediately. The counter itself is
//! sanity-checked against the heap backend, which must allocate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;

use bignum::fixed::Uint;
use bignum::{BigUint, MontgomeryParams};
use ecc::prelude::*;

thread_local! {
    /// Allocations observed on this thread (the test harness runs each
    /// test on its own thread, so other tests cannot interfere).
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// `System`, with every allocation path counted per thread.
struct CountingAlloc;

// SAFETY: defers entirely to `System`; the bookkeeping is a thread-local
// `Cell` update, which itself never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn fixed_backend_loops_do_not_touch_the_heap() {
    // Setup may allocate freely: curve construction, context setup, and the
    // BigUint conversions all happen before the measured window.
    let curve = Curve::from_parameters::<Secp256k1>().unwrap();
    let backend = curve
        .fixed_backend()
        .expect("secp256k1 has a fixed backend");
    let ctx = backend.context().clone();
    let (gx, gy) = curve.base_point().coordinates().expect("G is finite");
    let x = Uint::<4>::from_biguint(gx.mont_repr()).unwrap();
    let y = Uint::<4>::from_biguint(gy.mont_repr()).unwrap();
    let k = Uint::<4>::from_biguint(
        &BigUint::from_hex("4727b5cc3a1b2eff9db127aa7412a7641eb87a766e6c46cfe0f5ab7ad8b33bb2")
            .unwrap(),
    )
    .unwrap();
    let a = ctx.to_mont(&x);
    let b = ctx.to_mont(&y);

    // The measured window: the CIOS kernel under sustained iteration, one
    // full exponentiation, one Fermat inversion, and one complete 256-bit
    // scalar-multiplication ladder.
    let before = allocations();
    let mut acc = a;
    for _ in 0..1000 {
        acc = ctx.mont_mul(black_box(&acc), black_box(&b));
    }
    let powed = ctx.mont_pow(black_box(&acc), black_box(&k));
    let inverted = ctx.mont_inv_prime(black_box(&powed)).unwrap();
    let point = backend.scalar_mul(black_box(&x), black_box(&y), black_box(&k));
    let after = allocations();

    black_box((acc, powed, inverted, point));
    assert_eq!(
        after - before,
        0,
        "fixed Montgomery/ladder loops must not allocate"
    );
}

#[test]
fn the_counter_itself_observes_heap_traffic() {
    // If the counting allocator were wired up wrong, the test above would
    // pass vacuously; the heap backend doing the same multiplication must
    // be seen allocating.
    let p = BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
        .unwrap();
    let heap = MontgomeryParams::new(&p).unwrap();
    let a = heap.to_mont(&BigUint::from(123_456_789u64));
    let before = allocations();
    let product = heap.mont_mul(black_box(&a), black_box(&a));
    let after = allocations();
    black_box(product);
    assert!(
        after > before,
        "heap Montgomery multiplication should allocate (counter sanity check)"
    );
}

//! Property-based tests (proptest) on the core data structures and
//! invariants: multi-precision arithmetic, Montgomery reduction, the field
//! tower and torus compression.

use bignum::{mod_exp, BigUint, MontgomeryParams};
use ceilidh::{compress, decompress, CeilidhParams};
use field::{Fp6Context, FpContext};
use proptest::prelude::*;

/// Strategy: arbitrary big integers up to `max_bytes` bytes.
fn biguint(max_bytes: usize) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u8>(), 0..=max_bytes)
        .prop_map(|bytes| BigUint::from_be_bytes(&bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------- BigUint ring axioms ----------------------- //

    #[test]
    fn addition_is_commutative_and_associative(a in biguint(40), b in biguint(40), c in biguint(40)) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn multiplication_distributes_over_addition(a in biguint(32), b in biguint(32), c in biguint(32)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn subtraction_inverts_addition(a in biguint(40), b in biguint(40)) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn division_recomposes(a in biguint(48), b in biguint(24)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shifts_are_multiplication_by_powers_of_two(a in biguint(32), k in 0usize..200) {
        prop_assert_eq!(a.shl_bits(k).shr_bits(k), a.clone());
        prop_assert_eq!(a.shl_bits(k), &a * &BigUint::one().shl_bits(k));
    }

    #[test]
    fn hex_and_decimal_roundtrip(a in biguint(32)) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a.clone());
        prop_assert_eq!(a.to_string().parse::<BigUint>().unwrap(), a.clone());
        prop_assert_eq!(BigUint::from_be_bytes(&a.to_be_bytes()), a);
    }

    // --------------------- Montgomery multiplication --------------------- //

    #[test]
    fn montgomery_matches_plain_modular_multiplication(
        a in biguint(24),
        b in biguint(24),
        mut m in biguint(24),
    ) {
        m = &m + &BigUint::from(3u64);
        if m.is_even() {
            m = &m + &BigUint::one();
        }
        let a = &a % &m;
        let b = &b % &m;
        let mont = MontgomeryParams::new(&m).unwrap();
        let got = mont.from_mont(&mont.mont_mul(&mont.to_mont(&a), &mont.to_mont(&b)));
        prop_assert_eq!(got, &(&a * &b) % &m);
    }

    #[test]
    fn montgomery_exponentiation_matches_reference(
        base in biguint(16),
        exp in biguint(6),
        mut m in biguint(16),
    ) {
        m = &m + &BigUint::from(3u64);
        if m.is_even() {
            m = &m + &BigUint::one();
        }
        let mont = MontgomeryParams::new(&m).unwrap();
        prop_assert_eq!(mont.mod_exp(&base, &exp), mod_exp(&base, &exp, &m));
    }

    // --------------------------- Field tower ----------------------------- //

    #[test]
    fn fp6_field_axioms_hold(coeffs_a in prop::array::uniform6(0u64..101), coeffs_b in prop::array::uniform6(0u64..101)) {
        let fp = FpContext::new(&BigUint::from(101u64)).unwrap();
        let fp6 = Fp6Context::new(fp).unwrap();
        let a = fp6.from_u64_coeffs(coeffs_a);
        let b = fp6.from_u64_coeffs(coeffs_b);
        prop_assert_eq!(fp6.mul(&a, &b), fp6.mul(&b, &a));
        prop_assert_eq!(fp6.add(&a, &b), fp6.add(&b, &a));
        // Frobenius is multiplicative.
        prop_assert_eq!(
            fp6.frobenius(&fp6.mul(&a, &b), 1),
            fp6.mul(&fp6.frobenius(&a, 1), &fp6.frobenius(&b, 1))
        );
        // Non-zero elements invert.
        if !a.is_zero() {
            let inv = fp6.inv(&a).unwrap();
            prop_assert_eq!(fp6.mul(&a, &inv), fp6.one());
        }
    }

    // ------------------------- Torus invariants -------------------------- //

    #[test]
    fn torus_exponentiation_stays_in_torus_and_compresses(exponent in 1u64..10_000) {
        let params = CeilidhParams::toy().unwrap();
        let g = params.generator();
        let element = params.pow(&g, &BigUint::from(exponent));
        prop_assert!(params.is_torus_member(element.as_fp6()));
        if element != params.identity() {
            let c = compress(&params, &element).unwrap();
            prop_assert!(c.hint < 4);
            prop_assert_eq!(decompress(&params, &c).unwrap(), element);
        }
    }

    #[test]
    fn torus_inverse_is_conjugate(exponent in 1u64..10_000) {
        let params = CeilidhParams::toy().unwrap();
        let g = params.generator();
        let element = params.pow(&g, &BigUint::from(exponent));
        prop_assert_eq!(params.mul(&element, &params.invert(&element)), params.identity());
    }
}

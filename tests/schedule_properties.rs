//! Property-based tests for the pipelined schedule model: the pipelined
//! cycle counts must never beat the pure data-dependency critical path and
//! never lose to the flat sequential model, and the single-port data memory
//! must serialise all loads and stores.

use bignum::BigUint;
use platform::isa::{MicroOp, Program, NUM_REGS};
use platform::schedule::schedule_program;
use platform::{Coprocessor, CostModel};
use proptest::prelude::*;

/// Decodes one packed word into a valid microinstruction (registers within
/// range, addresses inside a 64-word memory).
fn decode_op(word: u64) -> MicroOp {
    let kind = word % 7;
    let r = |shift: u32| ((word >> shift) % NUM_REGS as u64) as u8;
    let addr = ((word >> 20) % 64) as u16;
    match kind {
        0 => MicroOp::Load { dst: r(4), addr },
        1 => MicroOp::Store { src: r(4), addr },
        2 => MicroOp::LoadImm {
            dst: r(4),
            imm: word >> 8,
        },
        3 => MicroOp::MulAcc { a: r(4), b: r(8) },
        4 => MicroOp::AccAdd { a: r(4) },
        5 => MicroOp::AccOut { dst: r(4) },
        _ => MicroOp::SubB {
            dst: r(4),
            a: r(8),
            b: r(12),
        },
    }
}

fn program_from_words(words: &[u64]) -> Program {
    let mut p = Program::new();
    for &w in words {
        p.push(decode_op(w));
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary straight-line programs, the scoreboard's makespan is
    /// bounded below by the data-dependency critical path, the memory-port
    /// occupancy (single port!) and the MAC issue count (one issue/cycle).
    #[test]
    fn program_schedule_respects_structural_lower_bounds(
        words in prop::collection::vec(0u64..u64::MAX, 1..60),
    ) {
        let program = program_from_words(&words);
        let cost = CostModel::paper();
        let s = schedule_program(&program, &cost);
        prop_assert!(
            s.cycles >= s.critical_path,
            "makespan {} beat the critical path {}",
            s.cycles,
            s.critical_path
        );
        prop_assert!(
            s.cycles >= s.mem_busy,
            "makespan {} under memory-port occupancy {}",
            s.cycles,
            s.mem_busy
        );
        prop_assert!(s.cycles >= s.mac_issues, "MAC pipeline issues one per cycle");
        // The structural bounds are consistent with the instruction counts.
        prop_assert_eq!(s.mem_busy, program.memory_accesses() * cost.mem_cycles);
    }

    /// Pipelined Montgomery multiplication: never below the dataflow
    /// critical path, never above the sequential baseline, at every operand
    /// length and core count.
    #[test]
    fn mont_mul_pipelined_is_bracketed(bits in 8usize..420, cores in 1usize..8) {
        let pipelined = Coprocessor::new(CostModel::paper(), cores);
        let sequential = Coprocessor::new(CostModel::paper_sequential(), cores);
        let pip = pipelined.mont_mul_cycles(bits);
        let seq = sequential.mont_mul_cycles(bits);
        let lower = pipelined.mont_mul_critical_path(bits);
        prop_assert!(
            lower <= pip,
            "bits={} cores={}: pipelined {} beat the critical path {}",
            bits, cores, pip, lower
        );
        prop_assert!(
            pip <= seq,
            "bits={} cores={}: pipelined {} lost to sequential {}",
            bits, cores, pip, seq
        );
    }

    /// The single-core modular add/sub microcode keeps its layer bracket at
    /// every operand length: the speculative dual-path schedule never loses
    /// to the conditional-correction model *when the correction actually
    /// runs*, and the conditional-correction pipelined schedule never loses
    /// to the flat sequential sum of the same microcode. (The constant-time
    /// dual-path program may cost a few cycles more than the *lucky*
    /// branch-not-taken case at tiny operand lengths — that is the price of
    /// speculation, pinned separately in `tests/dual_path_properties.rs`.)
    #[test]
    fn mod_add_sub_layer_bracket_holds(bits in 8usize..420) {
        let dual = Coprocessor::new(CostModel::paper(), 4);
        let conditional = Coprocessor::new(CostModel::paper().with_dual_path(false), 4);
        let sequential = Coprocessor::new(CostModel::paper_sequential(), 4);

        // Worst-case probes: the addition's correction subtracts, the
        // subtraction's correction adds back (see mod_add_worst_cycles).
        let add_dual = dual.mod_add_worst_cycles(bits);
        let add_cond = conditional.mod_add_worst_cycles(bits);
        let add_seq = sequential.mod_add_worst_cycles(bits);
        prop_assert!(add_dual <= add_cond, "MA: dual {add_dual} > conditional {add_cond}");
        prop_assert!(add_cond <= add_seq, "MA: conditional {add_cond} > sequential {add_seq}");

        let sub_dual = dual.mod_sub_worst_cycles(bits);
        let sub_cond = conditional.mod_sub_worst_cycles(bits);
        let sub_seq = sequential.mod_sub_worst_cycles(bits);
        prop_assert!(sub_dual <= sub_cond, "MS: dual {sub_dual} > conditional {sub_cond}");
        prop_assert!(sub_cond <= sub_seq, "MS: conditional {sub_cond} > sequential {sub_seq}");
    }
}

#[test]
fn single_port_memory_hazard_serialises_concurrent_streams() {
    // Ten independent loads share one port: the makespan cannot dip below
    // ten memory cycles no matter how deep the pipelining.
    let cost = CostModel::paper();
    let mut p = Program::new();
    for i in 0..10u8 {
        p.push(MicroOp::Load {
            dst: i % 8,
            addr: i as u16,
        });
    }
    let s = schedule_program(&p, &cost);
    assert!(s.cycles >= 10 * cost.mem_cycles);
    assert_eq!(s.mem_busy, 10 * cost.mem_cycles);
}

#[test]
fn pipelined_mm170_lands_within_ten_percent_of_paper() {
    // The acceptance target of the pipelined schedule: Table 1's 193-cycle
    // 170-bit Montgomery multiplication, reproduced within ±10%.
    let cp = Coprocessor::new(CostModel::paper(), 4);
    let cycles = cp.mont_mul_cycles(170) as f64;
    let paper = 193.0;
    let deviation = (cycles - paper).abs() / paper;
    assert!(
        deviation <= 0.10,
        "170-bit MM: {cycles} cycles vs paper {paper} ({:.1}% off)",
        100.0 * deviation
    );
    // The sequential baseline stays where the flat model always put it.
    let seq = Coprocessor::new(CostModel::paper_sequential(), 4).mont_mul_cycles(170);
    assert_eq!(seq, 311, "sequential baseline must not drift");
}

#[test]
fn pipelined_and_sequential_agree_on_functional_results() {
    // Schedule selection changes cycle accounting only — the computed
    // Montgomery products are identical.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let p = bignum::gen_prime(170, &mut rng);
    let x = BigUint::random_below(&mut rng, &p);
    let y = BigUint::random_below(&mut rng, &p);
    let pip = Coprocessor::new(CostModel::paper(), 4).mont_mul(&x, &y, &p);
    let seq = Coprocessor::new(CostModel::paper_sequential(), 4).mont_mul(&x, &y, &p);
    assert_eq!(pip.value, seq.value);
    assert_eq!(pip.instructions, seq.instructions);
    assert_eq!(pip.memory_accesses, seq.memory_accesses);
    assert!(pip.cycles < seq.cycles);
}

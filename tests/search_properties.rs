//! Property-based tests for the superoptimizing search pass (the sixth
//! layer of the cost model, `CostModel::sequence_search`):
//!
//! * **semantics** — for every `OpKind × CostModel × bits × hierarchy`,
//!   the searched program leaves the declared output slots
//!   state-identical to the hand-authored sequence on a probe execution;
//! * **never worse** — the searched program's scheduled cycle count is
//!   ≤ the authored baseline under the exact engine (the same property
//!   the `search_sweep` ablation reports per formula and the acceptance
//!   gate rests on);
//! * **determinism** — recompiling under the same `(kind, bits, cost)`
//!   key yields an identical `CompiledProgram` fingerprint, and the
//!   `ProgramCache` treats the search knobs as part of the key.

use bignum::BigUint;
use platform::program::{compile, OpKind, ProgramCache};
use platform::{CostModel, Hierarchy, Platform};
use proptest::prelude::*;
use std::sync::Arc;

/// Search-enabled cost variants the pipeline identities must hold under.
fn search_variants() -> Vec<CostModel> {
    vec![
        CostModel::paper().with_search(true),
        CostModel::paper().with_search(true).with_beam_width(1),
        CostModel::paper().with_search(true).with_beam_width(3),
        CostModel::paper().with_dual_path(false).with_search(true),
    ]
}

fn probe_modulus(bits: usize) -> BigUint {
    let m = BigUint::one().shl_bits(bits - 1) + BigUint::one().shl_bits(bits / 2);
    &m + &BigUint::from(13u64)
}

fn probe_slots(n: usize) -> Vec<BigUint> {
    (0..n)
        .map(|i| BigUint::from((i % 251 + 1) as u64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The searched program computes exactly what the authored one does:
    /// same values in every declared output slot, on both hierarchies,
    /// at every operand length, under every search-enabled cost variant.
    /// And under the executing engine it never costs more.
    #[test]
    fn search_is_state_identical_and_never_worse(bits in 16usize..512) {
        for cost in search_variants() {
            let authored_cost = cost.with_search(false);
            let modulus = probe_modulus(bits);
            for kind in OpKind::ALL {
                let searched = compile(kind, bits, &cost);
                let authored = compile(kind, bits, &authored_cost);
                prop_assert_eq!(
                    searched.stats().modmuls,
                    authored.stats().modmuls,
                    "{} formula drift", kind
                );
                for hierarchy in [Hierarchy::TypeA, Hierarchy::TypeB] {
                    let plat = Platform::new(cost, 4, hierarchy);
                    let mut sa = probe_slots(searched.slot_budget());
                    let mut sb = probe_slots(authored.slot_budget());
                    let ra = plat.execute(&searched, &modulus, &mut sa);
                    let rb = plat.execute(&authored, &modulus, &mut sb);
                    for out in searched.outputs() {
                        prop_assert_eq!(
                            &sa[*out], &sb[*out],
                            "{} output slot {} ({:?})", kind, out, hierarchy
                        );
                    }
                    // Type-B is what the search scores; Type-A has no
                    // overlap credit so any order prices the same.
                    prop_assert!(
                        ra.cycles <= rb.cycles,
                        "{} searched {} > authored {} at {} bits ({:?})",
                        kind, ra.cycles, rb.cycles, bits, hierarchy
                    );
                }
            }
        }
    }

    /// Same inputs ⇒ identical compiled artifact: the step streams and
    /// the `CompiledProgram` fingerprints agree across recompiles.
    #[test]
    fn search_compilation_is_deterministic(bits in 16usize..512) {
        for cost in search_variants() {
            for kind in OpKind::ALL {
                let a = compile(kind, bits, &cost);
                let b = compile(kind, bits, &cost);
                prop_assert_eq!(a.ops(), b.ops(), "{} step stream", kind);
                prop_assert_eq!(a.fingerprint(), b.fingerprint(), "{} fingerprint", kind);
            }
        }
    }

    /// The search knobs are part of the cache key: toggling the search
    /// or changing the beam width misses, re-presenting the same model
    /// hits.
    #[test]
    fn cache_key_covers_the_search_knobs(bits in 16usize..512) {
        let cache = ProgramCache::new();
        let on = CostModel::paper().with_search(true);
        let a = cache.get_or_compile(OpKind::EccPdFast, bits, &on);
        let b = cache.get_or_compile(OpKind::EccPdFast, bits, &on);
        prop_assert!(Arc::ptr_eq(&a, &b));
        let off = cache.get_or_compile(OpKind::EccPdFast, bits, &on.with_search(false));
        prop_assert!(!Arc::ptr_eq(&a, &off));
        let narrow = cache.get_or_compile(OpKind::EccPdFast, bits, &on.with_beam_width(2));
        prop_assert!(!Arc::ptr_eq(&a, &narrow));
        prop_assert_eq!((cache.hits(), cache.misses()), (1, 3));
    }
}

#[test]
fn paper_calibration_is_bit_identical_with_search_off() {
    // The 27 gated paper-reproduction rows rest on this: `paper()` keeps
    // the search layer off, so compilation under the published
    // calibration must not change a single step.
    let paper = CostModel::paper();
    assert!(!paper.uses_search());
    for kind in OpKind::ALL {
        let compiled = compile(kind, 160, &paper);
        let authored = platform::program::compile_unoptimized(kind, 160, &paper);
        if OpKind::LEGACY.contains(&kind) {
            assert_eq!(compiled.ops(), authored.ops(), "{kind}");
        }
    }
}

#[test]
fn search_discovers_at_least_one_win_at_the_calibration_point() {
    // The acceptance criterion's "discovered improvement": with search
    // on, at least one formula schedules strictly cheaper than its
    // authored order under the executing Type-B engine at 160 bits.
    let on = CostModel::paper().with_search(true);
    let off = CostModel::paper();
    let improved = OpKind::ALL.iter().any(|&kind| {
        let plat_on = Platform::new(on, 4, Hierarchy::TypeB);
        let plat_off = Platform::new(off, 4, Hierarchy::TypeB);
        let searched = plat_on.composite_report(kind, 160).cycles;
        let authored = plat_off.composite_report(kind, 160).cycles;
        searched < authored
    });
    assert!(improved, "search found no win on any formula at 160 bits");
}

//! Cross-crate integration tests: the complete CEILIDH stack, the two
//! comparators and the platform simulator working together.

use bignum::BigUint;
use ceilidh::{
    compress, decompress, decrypt_hybrid, encrypt_hybrid, shared_secret, shared_secret_bytes, sign,
    verify, CeilidhParams, KeyPair,
};
use ecc::prelude::*;
use platform::{CostModel, Hierarchy, Platform};
use rand::SeedableRng;
use rsa_torus::RsaKeyPair;

#[test]
fn ceilidh_full_protocol_on_paper_parameters() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1001);
    let params = CeilidhParams::date2008().expect("built-in 170-bit parameters");

    // Key agreement.
    let alice = KeyPair::generate(&params, &mut rng);
    let bob = KeyPair::generate(&params, &mut rng);
    assert_eq!(
        shared_secret(&params, alice.secret(), bob.public()),
        shared_secret(&params, bob.secret(), alice.public())
    );
    let k = shared_secret_bytes(&params, alice.secret(), bob.public(), 16);
    assert_eq!(k.len(), 16);

    // Compressed public keys round-trip at the 170-bit size.
    let c = alice.public().compress(&params).expect("compressible");
    assert_eq!(
        &decompress(&params, &c).expect("valid"),
        alice.public().element()
    );

    // Hybrid encryption + signature.
    let msg = b"reproduction of the DATE 2008 torus cryptosystem";
    let ct = encrypt_hybrid(&params, bob.public(), msg, &mut rng).expect("encrypt");
    assert_eq!(
        decrypt_hybrid(&params, bob.secret(), &ct).expect("decrypt"),
        msg
    );
    let sig = sign(&params, alice.secret(), msg, &mut rng).expect("sign");
    assert!(verify(&params, alice.public(), msg, &sig).is_ok());
    assert!(verify(&params, bob.public(), msg, &sig).is_err());
}

#[test]
fn torus_exponentiation_agrees_between_host_and_platform() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1002);
    let params = CeilidhParams::toy().expect("toy parameters");
    let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
    for _ in 0..3 {
        let (_, base) = params.random_subgroup_element(&mut rng);
        let exponent = BigUint::random_bits(&mut rng, 24);
        let host = params.pow(&base, &exponent);
        let (simulated, report) = plat.torus_exponentiation(&params, &base, &exponent);
        assert_eq!(simulated, host);
        assert!(report.cycles > 0);
        assert_eq!(report.modmuls, 18 * (report.interrupts));
    }
}

#[test]
fn compressed_torus_elements_stay_in_the_subgroup_after_transport() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1003);
    let params = CeilidhParams::date2008().expect("built-in parameters");
    for _ in 0..5 {
        let (_, g) = params.random_subgroup_element(&mut rng);
        if g == params.identity() {
            continue;
        }
        let c = compress(&params, &g).expect("compressible");
        let restored = decompress(&params, &c).expect("valid");
        assert!(params.is_torus_member(restored.as_fp6()));
        assert!(params.is_subgroup_member(restored.as_fp6()));
        assert_eq!(restored, g);
    }
}

#[test]
fn ecc_and_rsa_comparators_interoperate_with_the_platform() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1004);
    let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);

    // ECC: host and platform scalar multiplication agree.
    let curve = Curve::p160_reproduction().expect("built-in curve");
    let kp = EccKeyPair::generate(&curve, &mut rng);
    let k = BigUint::random_bits(&mut rng, 48);
    let host = curve.scalar_mul(kp.public(), &k, ScalarMulAlgorithm::Naf);
    let (simulated, _) = plat.ecc_scalar_multiplication(&curve, kp.public(), &k);
    assert_eq!(simulated, host);

    // RSA: host and platform exponentiation agree.
    let keys = RsaKeyPair::generate(256, &mut rng).expect("keygen");
    let m = BigUint::random_below(&mut rng, keys.public().modulus());
    let c = keys.public().raw_encrypt(&m).expect("encrypt");
    let (recovered, _) =
        plat.rsa_exponentiation(keys.public().modulus(), &c, keys.private_exponent());
    assert_eq!(recovered, m);
}

#[test]
fn security_levels_line_up_as_in_the_paper_introduction() {
    // The paper's pitch: a 170-bit torus field gives the security of Fp6
    // (~1020 bits) while transmitting two Fp elements; ECC at 160 bits and
    // RSA at 1024 bits are the comparators.
    let params = CeilidhParams::date2008().expect("params");
    assert_eq!(params.p().bit_len(), 170);
    assert_eq!(params.p().bit_len() * 6, 1020);
    // Transmitted data: 2 Fp elements ≈ 1/3 of an Fp6 element.
    let compressed_bits = 2 * params.p().bit_len();
    assert!(compressed_bits * 3 == params.p().bit_len() * 6);
    // Subgroup order is large (no small-subgroup weakening from the cofactor).
    assert!(params.q().bit_len() >= 2 * params.p().bit_len() - 16);
}

//! Property-based tests for the throughput engine and the platform's
//! batched execution path:
//!
//! * **batching is invisible** — the platform's batch drivers
//!   (`run_fp6_multiplication_batch`, `ecc_scalar_multiplication_batch`,
//!   `execute_batch`) return results *and per-request cycle reports*
//!   identical to serial calls, for every batch size and seed;
//! * **scaling never hurts** — on closed (burst) workloads, fleet
//!   throughput is monotone non-decreasing in the instance count;
//! * **percentiles are ordered** — p50 ≤ p99 ≤ max on every run, and the
//!   nearest-rank estimator is monotone and bounded by the sample.

use bignum::BigUint;
use ceilidh::CeilidhParams;
use ecc::Curve;
use engine::prelude::*;
use platform::{CostModel, Hierarchy, OpKind, Platform};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn platform() -> Platform {
    Platform::new(CostModel::paper(), 4, Hierarchy::TypeB)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched `Fp6` multiplication is result- and report-identical to
    /// serial execution, and fetches its program exactly once.
    #[test]
    fn fp6_batch_is_identical_to_serial(seed in 0u64..1000, len in 1usize..7) {
        let params = CeilidhParams::toy().unwrap();
        let fp6 = params.fp6();
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<_> = (0..len)
            .map(|_| (fp6.random(&mut rng), fp6.random(&mut rng)))
            .collect();
        let serial_plat = platform();
        let serial: Vec<_> = pairs
            .iter()
            .map(|(a, b)| serial_plat.run_fp6_multiplication(fp6, a, b))
            .collect();
        let batch_plat = platform();
        let batched = batch_plat.run_fp6_multiplication_batch(fp6, &pairs);
        prop_assert_eq!(&batched, &serial);
        prop_assert_eq!(batch_plat.program_cache().misses(), 1);
        prop_assert_eq!(batch_plat.program_cache().hits(), 0);
    }

    /// Batched scalar multiplication is result- and report-identical to
    /// serial execution, and fetches its two ladder programs exactly once
    /// for the whole batch.
    #[test]
    fn scalar_mult_batch_is_identical_to_serial(seed in 0u64..1000, len in 1usize..5) {
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let requests: Vec<_> = (0..len)
            .map(|_| {
                let point = curve.random_point(&mut rng);
                let k = &BigUint::random_bits(&mut rng, 24) + &BigUint::one();
                (point, k)
            })
            .collect();
        let serial_plat = platform();
        let serial: Vec<_> = requests
            .iter()
            .map(|(p, k)| serial_plat.ecc_scalar_multiplication(&curve, p, k))
            .collect();
        let batch_plat = platform();
        let batched = batch_plat.ecc_scalar_multiplication_batch(&curve, &requests);
        prop_assert_eq!(&batched, &serial);
        prop_assert_eq!(batch_plat.program_cache().misses(), 2);
        prop_assert_eq!(batch_plat.program_cache().hits(), 0);
    }

    /// The raw slot-bank batch executor leaves results and reports
    /// identical to serial `execute` calls over the same banks.
    #[test]
    fn execute_batch_is_identical_to_serial(seed in 1u64..500, banks in 1usize..5) {
        let plat = platform();
        let program = plat.compiled(OpKind::Fp6Mul, 170);
        // Odd (Montgomery-compatible) 170-bit probe modulus.
        let modulus = BigUint::one().shl_bits(169) + BigUint::from(seed * 2 + 13);
        let bank = |salt: u64| -> Vec<BigUint> {
            (0..program.slot_budget())
                .map(|i| BigUint::from((seed * 31 + salt * 7 + i as u64) % 251 + 1))
                .collect()
        };
        let mut serial_banks: Vec<Vec<BigUint>> = (0..banks as u64).map(bank).collect();
        let serial: Vec<_> = serial_banks
            .iter_mut()
            .map(|b| plat.execute(&program, &modulus, b))
            .collect();
        let mut batch_banks: Vec<Vec<BigUint>> = (0..banks as u64).map(bank).collect();
        let batched = plat.execute_batch(&program, &modulus, &mut batch_banks);
        prop_assert_eq!(batched, serial);
        prop_assert_eq!(batch_banks, serial_banks);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On a closed (burst) workload, adding instances never lowers
    /// throughput: batch formation is instance-count-invariant when every
    /// request is already queued, so the dispatch sequence list-schedules
    /// onto more machines without anomalies.
    #[test]
    fn burst_throughput_is_monotone_in_instance_count(seed in 0u64..200, n in 8usize..48) {
        let trace = TrafficProfile::mixed_date2008().burst(seed, n);
        let mut last = 0u64;
        for instances in 1usize..=4 {
            let summary = Fleet::new(FleetConfig::date2008(instances)).run(trace.clone());
            prop_assert_eq!(summary.completed, n as u64);
            prop_assert!(
                summary.ops_per_sec >= last,
                "seed {}, n {}: {} instances dropped to {} ops/s (from {})",
                seed, n, instances, summary.ops_per_sec, last
            );
            last = summary.ops_per_sec;
        }
    }

    /// Every run's latency percentiles are ordered p50 ≤ p99 ≤ max, on
    /// open (arrival-process) traffic across fleet sizes.
    #[test]
    fn percentiles_are_ordered_on_open_traffic(seed in 0u64..200, instances in 1usize..5) {
        let trace = TrafficProfile::mixed_date2008().generate(seed, 30);
        let summary = Fleet::new(FleetConfig::date2008(instances)).run(trace);
        prop_assert_eq!(summary.completed, 30);
        prop_assert!(summary.p50_latency_cycles <= summary.p99_latency_cycles);
        prop_assert!(summary.p99_latency_cycles <= summary.max_latency_cycles);
        prop_assert!(summary.p50_latency_cycles > 0);
    }

    /// The nearest-rank estimator is monotone in rank and always returns
    /// an observed sample between min and max.
    #[test]
    fn percentile_estimator_is_monotone_and_bounded(seed in 0u64..500, n in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sample: Vec<u64> = (0..n)
            .map(|_| rand::Rng::gen_range(&mut rng, 0u64..10_000))
            .collect();
        sample.sort_unstable();
        let mut prev = 0u64;
        for pct in 1..=100 {
            let v = percentile(&sample, pct);
            prop_assert!(v >= prev);
            prop_assert!(sample.contains(&v));
            prev = v;
        }
        prop_assert_eq!(percentile(&sample, 100), *sample.last().unwrap());
    }
}

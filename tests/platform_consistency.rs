//! Integration tests pinning the platform simulator against the host
//! implementations and against the qualitative claims of the evaluation.

use bignum::BigUint;
use ecc::Curve;
use field::Fp6Context;
use platform::{Coprocessor, CostModel, Hierarchy, Platform};
use proptest::prelude::*;
use rand::SeedableRng;

#[test]
fn table1_shape() {
    let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
    let mm170 = plat.montgomery_multiplication_report(170).cycles;
    let mm160 = plat.montgomery_multiplication_report(160).cycles;
    let mm1024 = plat.montgomery_multiplication_report(1024).cycles;
    let ma170 = plat.modular_addition_report(170).cycles;
    let ms170 = plat.modular_subtraction_report(170).cycles;

    assert!(mm160 < mm170);
    assert!(ma170 < mm170 && ms170 < mm170);
    let big_ratio = mm1024 as f64 / mm170 as f64;
    assert!(
        (10.0..40.0).contains(&big_ratio),
        "paper reports ≈23x, got {big_ratio:.1}x"
    );
    assert_eq!(plat.interrupt_cycles(), 184);
}

#[test]
fn table2_shape() {
    let a = Platform::new(CostModel::paper(), 4, Hierarchy::TypeA);
    let b = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
    let pairs = [
        (
            a.fp6_multiplication_report(170),
            b.fp6_multiplication_report(170),
        ),
        (
            a.ecc_point_addition_report(160),
            b.ecc_point_addition_report(160),
        ),
        (
            a.ecc_point_doubling_report(160),
            b.ecc_point_doubling_report(160),
        ),
    ];
    for (ra, rb) in pairs {
        assert!(ra.cycles > rb.cycles, "Type-B must always win");
        assert_eq!(rb.interrupts, 1, "Type-B: one interrupt per composite op");
        assert_eq!(
            ra.interrupts,
            ra.modmuls + ra.modadds + ra.modsubs,
            "Type-A: one interrupt per modular op"
        );
    }
    // The T6 multiplication issues 18 MM + ~60 MA/MS, as in Section 2.2.2.
    let t6 = b.fp6_multiplication_report(170);
    assert_eq!(t6.modmuls, 18);
    assert!((55..=70).contains(&(t6.modadds + t6.modsubs)));
}

#[test]
fn table3_shape_full_drivers() {
    // Small exponents keep this fast while preserving the per-bit cost; the
    // full-size run lives in the bench harness.
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);

    let params = ceilidh::CeilidhParams::toy().unwrap();
    let (_, base) = params.random_subgroup_element(&mut rng);
    let (_, torus) = plat.torus_exponentiation(&params, &base, &BigUint::from(0x2aaaau64));

    let curve = Curve::toy().unwrap();
    let point = curve.random_point(&mut rng);
    let (_, ecc) = plat.ecc_scalar_multiplication(&curve, &point, &BigUint::from(0x2aaaau64));

    // Per-bit cost comparison: the torus pays one Fp6 mult per bit plus one
    // per set bit; ECC pays one PD per bit plus one PA per set bit. With the
    // same exponent the torus is more expensive per bit, and RSA (1024-bit
    // operands) is more expensive still.
    assert!(torus.cycles > ecc.cycles);
    let (_, rsa) = plat.rsa_exponentiation(
        &(BigUint::one().shl_bits(1023) + BigUint::from(13u64)),
        &BigUint::from(3u64),
        &BigUint::from(0x2aaaau64),
    );
    assert!(rsa.cycles > torus.cycles);
}

#[test]
fn fig5_multicore_scaling_shape() {
    let c1 = Coprocessor::new(CostModel::paper(), 1).mont_mul_cycles(256);
    let c2 = Coprocessor::new(CostModel::paper(), 2).mont_mul_cycles(256);
    let c4 = Coprocessor::new(CostModel::paper(), 4).mont_mul_cycles(256);
    assert!(c1 > c2 && c2 > c4);
    let speedup = c1 as f64 / c4 as f64;
    assert!(
        (1.8..4.0).contains(&speedup),
        "paper: 2.96x, got {speedup:.2}x"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulated coprocessor's Montgomery product satisfies the defining
    /// relation `result * R ≡ x * y (mod p)` for random reduced operands.
    #[test]
    fn simulated_montgomery_is_correct_for_random_operands(seed in any::<u64>(), cores in 1usize..6) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = bignum::gen_prime(96, &mut rng);
        let x = BigUint::random_below(&mut rng, &p);
        let y = BigUint::random_below(&mut rng, &p);
        let cp = Coprocessor::new(CostModel::paper(), cores);
        let got = cp.mont_mul(&x, &y, &p);
        let s = cp.cost().limbs(p.bit_len());
        let r = BigUint::one().shl_bits(cp.cost().word_bits * s) % &p;
        prop_assert_eq!(&(&got.value * &r) % &p, &(&x * &y) % &p);
        prop_assert!(got.value < p);
    }

    /// The platform's Fp6 multiplication agrees with the host field tower
    /// for random operands over the toy field.
    #[test]
    fn simulated_fp6_multiplication_is_correct(coeffs_a in prop::array::uniform6(0u64..101), coeffs_b in prop::array::uniform6(0u64..101)) {
        let fp = field::FpContext::new(&BigUint::from(101u64)).unwrap();
        let fp6 = Fp6Context::new(fp).unwrap();
        let a = fp6.from_u64_coeffs(coeffs_a);
        let b = fp6.from_u64_coeffs(coeffs_b);
        let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
        let (got, _) = plat.run_fp6_multiplication(&fp6, &a, &b);
        prop_assert_eq!(got, fp6.mul(&a, &b));
    }
}

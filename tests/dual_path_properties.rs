//! Properties of the speculative dual-path MA/MS model (the third layer of
//! the cost model, `CostModel::dual_path_addsub`):
//!
//! * **never worse than the correction it replaces** — dual-path cycles
//!   are bounded by the conditional-correction model whenever the
//!   correction actually runs, at every operand length;
//! * **constant time** — the dual-path cycle count is independent of the
//!   operand values (the correction branch is gone), while the
//!   conditional-correction model visibly is not;
//! * **select-cycle accounting** — the 1-cycle select and the two compute
//!   pipes are priced exactly as the scoreboard promises;
//! * **layer isolation** — the knob changes MA/MS only: Montgomery
//!   multiplication and the sequential baseline are bit-identical with it
//!   on or off, and every layer computes the same numeric results.

use bignum::BigUint;
use platform::isa::{MicroOp, Program};
use platform::schedule::schedule_program;
use platform::{sample_modulus, Coprocessor, CostModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dual-path MA/MS never lose to the conditional-correction model when
    /// the correction runs, at every operand length: speculation hides the
    /// correction entirely instead of serialising it behind the primary
    /// pass.
    #[test]
    fn dual_path_bounded_by_conditional_correction(bits in 8usize..420) {
        let dual = Coprocessor::new(CostModel::paper(), 4);
        let cond = Coprocessor::new(CostModel::paper().with_dual_path(false), 4);
        prop_assert!(dual.mod_add_worst_cycles(bits) <= cond.mod_add_worst_cycles(bits));
        prop_assert!(dual.mod_sub_worst_cycles(bits) <= cond.mod_sub_worst_cycles(bits));
    }

    /// The dual-path cycle count is a function of the operand length only:
    /// whether the select commits the primary or the speculative path is
    /// invisible in time. The conditional-correction model leaks the
    /// branch through its cycle count — that contrast is the whole point.
    #[test]
    fn dual_path_is_constant_time(bits in 8usize..300, seed in 0u64..1_000) {
        let dual = Coprocessor::new(CostModel::paper(), 4);
        let cond = Coprocessor::new(CostModel::paper().with_dual_path(false), 4);
        let p = sample_modulus(bits);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = BigUint::random_below(&mut rng, &p);
        let y = BigUint::random_below(&mut rng, &p);
        let hi = &p - &BigUint::from(1u64);
        let lo = BigUint::from(1u64);

        // Random operands, corrected and uncorrected extremes: one cycle
        // count for all of them.
        let ma = dual.mod_add(&lo, &lo, &p).cycles;
        prop_assert_eq!(dual.mod_add(&x, &y, &p).cycles, ma);
        prop_assert_eq!(dual.mod_add(&hi, &hi, &p).cycles, ma);
        let ms = dual.mod_sub(&hi, &lo, &p).cycles;
        prop_assert_eq!(dual.mod_sub(&x, &y, &p).cycles, ms);
        prop_assert_eq!(dual.mod_sub(&lo, &hi, &p).cycles, ms);
        // The two dual-path programs are structurally symmetric; the only
        // divergence is a 1-cycle boundary effect of the trailing
        // writeback at two-word operands.
        prop_assert!(ma.abs_diff(ms) <= 1, "MA {ma} vs MS {ms}");

        // The conditional model charges the taken correction.
        prop_assert!(
            cond.mod_add(&hi, &hi, &p).cycles > cond.mod_add(&lo, &lo, &p).cycles,
            "conditional MA must leak the correction branch"
        );
        prop_assert!(
            cond.mod_sub(&lo, &hi, &p).cycles > cond.mod_sub(&hi, &lo, &p).cycles,
            "conditional MS must leak the add-back branch"
        );
    }

    /// Every layer computes the same numeric results — the knob moves
    /// cycles, never values.
    #[test]
    fn all_layers_agree_functionally(bits in 8usize..300, seed in 0u64..1_000) {
        let p = sample_modulus(bits);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = BigUint::random_below(&mut rng, &p);
        let y = BigUint::random_below(&mut rng, &p);
        let want_add = bignum::mod_add(&x, &y, &p);
        let want_sub = bignum::mod_sub(&x, &y, &p);
        for cost in [
            CostModel::paper(),
            CostModel::paper().with_dual_path(false),
            CostModel::paper_sequential(),
        ] {
            let cp = Coprocessor::new(cost, 4);
            prop_assert_eq!(&cp.mod_add(&x, &y, &p).value, &want_add);
            prop_assert_eq!(&cp.mod_sub(&x, &y, &p).value, &want_sub);
        }
    }

    /// The knob is scoped to MA/MS: Montgomery multiplication prices
    /// identically with the dual-path adder on or off, and the sequential
    /// baseline ignores the knob entirely.
    #[test]
    fn dual_path_knob_is_isolated(bits in 8usize..420) {
        let on = Coprocessor::new(CostModel::paper(), 4);
        let off = Coprocessor::new(CostModel::paper().with_dual_path(false), 4);
        prop_assert_eq!(on.mont_mul_cycles(bits), off.mont_mul_cycles(bits));
        let seq = Coprocessor::new(CostModel::paper_sequential(), 4);
        let seq_knob = Coprocessor::new(CostModel::paper_sequential().with_dual_path(true), 4);
        prop_assert_eq!(seq.mod_add_cycles(bits), seq_knob.mod_add_cycles(bits));
        prop_assert_eq!(seq.mod_sub_cycles(bits), seq_knob.mod_sub_cycles(bits));
    }
}

/// One speculative word-step per pipe: `AddC` (carry chain, primary pipe)
/// and `SubB` (borrow chain, speculative pipe) issue in the same cycle
/// once their operands are ready, which a single compute pipe cannot do.
#[test]
fn both_pipes_issue_in_parallel() {
    // Two independent chains with no shared registers.
    let mut p = Program::new();
    for i in 0..4u8 {
        p.push(MicroOp::AddC { dst: i, a: 8, b: 9 });
        p.push(MicroOp::SubB {
            dst: 4 + i,
            a: 10,
            b: 11,
        });
    }
    let dual = schedule_program(&p, &CostModel::paper());
    let single = schedule_program(&p, &CostModel::paper().with_dual_path(false));
    let c = CostModel::paper();
    // One pipe: 8 ALU issue slots. Two pipes: the chains interleave, 4
    // slots per pipe.
    assert_eq!(single.cycles, 8 * c.alu_cycles);
    assert_eq!(dual.cycles, 4 * c.alu_cycles);
}

/// The select costs exactly one cycle on top of the resolved paths.
#[test]
fn select_adds_exactly_one_cycle() {
    let c = CostModel::paper();
    let mut without = Program::new();
    without.push(MicroOp::LoadImm { dst: 0, imm: 1 });
    without.push(MicroOp::AddC { dst: 2, a: 0, b: 0 });
    without.push(MicroOp::SubB { dst: 3, a: 2, b: 0 });
    let mut with = without.clone();
    with.push(MicroOp::Select { dst: 4, a: 2, b: 3 });
    let base = schedule_program(&without, &c).cycles;
    let selected = schedule_program(&with, &c).cycles;
    assert_eq!(
        selected,
        base + c.alu_cycles,
        "the select mux is a 1-cycle commit"
    );
}

/// The serial chains themselves are respected on both pipes: a carry chain
/// cannot issue faster than one word per cycle even with the second pipe
/// open, and the same holds for the borrow chain.
#[test]
fn chains_stay_serial_on_their_pipes() {
    let c = CostModel::paper();
    for make in [
        (|i: u8| MicroOp::AddC {
            dst: i,
            a: 12,
            b: 13,
        }) as fn(u8) -> MicroOp,
        (|i: u8| MicroOp::SubB {
            dst: i,
            a: 12,
            b: 13,
        }) as fn(u8) -> MicroOp,
    ] {
        let mut p = Program::new();
        for i in 0..6u8 {
            p.push(make(i));
        }
        let s = schedule_program(&p, &c);
        assert_eq!(s.critical_path, 6 * c.alu_cycles, "chain is serial");
        assert!(s.cycles >= 6 * c.alu_cycles);
    }
}

/// The dual-path MA microcode is port-bound: three memory accesses per
/// word (two operand loads, one writeback), with a short prologue and the
/// select/dispatch tail — not compute-bound like the single-pipe schedule.
#[test]
fn dual_path_ma_is_port_bound() {
    let cp = Coprocessor::new(CostModel::paper(), 4);
    let c = CostModel::paper();
    for bits in [160usize, 170, 1024] {
        let s = c.limbs(bits) as u64;
        let cycles = cp.mod_add_cycles(bits);
        let port = 3 * s * c.mem_cycles;
        assert!(
            cycles >= port + c.dispatch_cycles,
            "{bits}-bit MA: {cycles} below port occupancy {port}"
        );
        assert!(
            cycles <= port + c.dispatch_cycles + 8,
            "{bits}-bit MA: {cycles} far above port occupancy {port} — not port-bound"
        );
    }
}

/// Golden anchors for the headline dual-path rows (the cycle gate pins
/// these via `crates/bench/golden/cycles.json` too; the duplication here
/// makes `cargo test` self-contained).
#[test]
fn dual_path_headline_cycles() {
    let dual = Coprocessor::new(CostModel::paper(), 4);
    assert_eq!(dual.mod_add_cycles(170), 42);
    assert_eq!(dual.mod_sub_cycles(170), 42);
    assert_eq!(dual.mod_add_cycles(160), 39);
    // The pre-dual-path models must not drift either: they are the
    // ablation baselines.
    let cond = Coprocessor::new(CostModel::paper().with_dual_path(false), 4);
    assert_eq!(cond.mod_add_cycles(170), 61);
    assert_eq!(cond.mod_sub_cycles(170), 50);
    let seq = Coprocessor::new(CostModel::paper_sequential(), 4);
    assert_eq!(seq.mod_add_cycles(170), 72);
    assert_eq!(seq.mod_sub_cycles(170), 61);
}

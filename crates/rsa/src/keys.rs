//! RSA key generation and the public/private operations.

use bignum::{gen_prime, mod_inv, BigUint, MontgomeryParams};
use rand::Rng;

use crate::error::RsaError;
use crate::padding::{pad_encrypt, pad_sign, unpad_encrypt, unpad_sign};

/// Public exponent used throughout (F4 = 65537).
const PUBLIC_EXPONENT: u64 = 65_537;

/// An RSA public key `(n, e)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    mont: MontgomeryParams,
}

/// An RSA private key with CRT components.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RsaPrivateKey {
    d: BigUint,
    p: BigUint,
    q: BigUint,
    d_p: BigUint,
    d_q: BigUint,
    q_inv: BigUint,
    mont_p: MontgomeryParams,
    mont_q: MontgomeryParams,
}

/// A full RSA key pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    private: RsaPrivateKey,
}

impl RsaPublicKey {
    /// The modulus `n = p·q`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus size in whole bytes.
    pub fn byte_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// The raw public operation `m^e mod n`.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::ValueOutOfRange`] if `m >= n`.
    pub fn raw_encrypt(&self, m: &BigUint) -> Result<BigUint, RsaError> {
        if m >= &self.n {
            return Err(RsaError::ValueOutOfRange);
        }
        Ok(self.mont.mod_exp(m, &self.e))
    }

    /// Encrypts a message with PKCS#1 v1.5-style padding.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::MessageTooLong`] if the message exceeds the key's
    /// capacity.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        message: &[u8],
        rng: &mut R,
    ) -> Result<Vec<u8>, RsaError> {
        let block = pad_encrypt(message, self.byte_len(), rng)?;
        let c = self.raw_encrypt(&BigUint::from_be_bytes(&block))?;
        Ok(to_fixed_bytes(&c, self.byte_len()))
    }

    /// Verifies a signature, returning the recovered digest on success.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::VerificationFailed`] if the signature is invalid.
    pub fn verify(&self, digest: &[u8], signature: &[u8]) -> Result<(), RsaError> {
        let s = BigUint::from_be_bytes(signature);
        let m = self
            .raw_encrypt(&s)
            .map_err(|_| RsaError::VerificationFailed)?;
        let block = to_fixed_bytes(&m, self.byte_len());
        let recovered = unpad_sign(&block).map_err(|_| RsaError::VerificationFailed)?;
        if recovered == digest {
            Ok(())
        } else {
            Err(RsaError::VerificationFailed)
        }
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with an `bits`-bit modulus.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::KeyTooSmall`] if `bits < 128`.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Result<Self, RsaError> {
        if bits < 128 {
            return Err(RsaError::KeyTooSmall(bits));
        }
        let e = BigUint::from(PUBLIC_EXPONENT);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bit_len() != bits {
                continue;
            }
            let one = BigUint::one();
            let phi = &(&p - &one) * &(&q - &one);
            let Some(d) = mod_inv(&e, &phi) else {
                continue; // e not coprime to φ(n); resample primes
            };
            let d_p = &d % &(&p - &one);
            let d_q = &d % &(&q - &one);
            let Some(q_inv) = mod_inv(&q, &p) else {
                continue;
            };
            let mont = MontgomeryParams::new(&n).expect("n = p*q is odd");
            let mont_p = MontgomeryParams::new(&p).expect("p is odd");
            let mont_q = MontgomeryParams::new(&q).expect("q is odd");
            return Ok(RsaKeyPair {
                public: RsaPublicKey { n, e, mont },
                private: RsaPrivateKey {
                    d,
                    p,
                    q,
                    d_p,
                    d_q,
                    q_inv,
                    mont_p,
                    mont_q,
                },
            });
        }
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private exponent `d` (exposed for the benchmark harness, which
    /// replays the full-length exponentiation the paper times).
    pub fn private_exponent(&self) -> &BigUint {
        &self.private.d
    }

    /// The raw private operation `c^d mod n`, computed without CRT
    /// (this is the 1024-bit exponentiation the paper's 96 ms row measures).
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::ValueOutOfRange`] if `c >= n`.
    pub fn raw_decrypt(&self, c: &BigUint) -> Result<BigUint, RsaError> {
        if c >= &self.public.n {
            return Err(RsaError::ValueOutOfRange);
        }
        Ok(self.public.mont.mod_exp(c, &self.private.d))
    }

    /// The raw private operation computed with the Chinese Remainder
    /// Theorem (about 4× faster; provided for the ablation bench).
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::ValueOutOfRange`] if `c >= n`.
    pub fn raw_decrypt_crt(&self, c: &BigUint) -> Result<BigUint, RsaError> {
        if c >= &self.public.n {
            return Err(RsaError::ValueOutOfRange);
        }
        let sk = &self.private;
        let m_p = sk.mont_p.mod_exp(&(c % &sk.p), &sk.d_p);
        let m_q = sk.mont_q.mod_exp(&(c % &sk.q), &sk.d_q);
        // h = q_inv * (m_p - m_q) mod p
        let diff = if m_p >= m_q {
            &m_p - &(&m_q % &sk.p)
        } else {
            &(&m_p + &sk.p) - &(&m_q % &sk.p)
        };
        let diff = &diff % &sk.p;
        let h = &(&sk.q_inv * &diff) % &sk.p;
        Ok(&m_q + &(&h * &sk.q))
    }

    /// Decrypts a padded ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::InvalidPadding`] if the recovered block is
    /// malformed.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        let c = BigUint::from_be_bytes(ciphertext);
        let m = self.raw_decrypt_crt(&c)?;
        let block = to_fixed_bytes(&m, self.public.byte_len());
        unpad_encrypt(&block)
    }

    /// Signs a digest (PKCS#1 v1.5-style block, full-length exponentiation).
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::MessageTooLong`] if the digest exceeds the key's
    /// capacity.
    pub fn sign(&self, digest: &[u8]) -> Result<Vec<u8>, RsaError> {
        let block = pad_sign(digest, self.public.byte_len())?;
        let s = self.raw_decrypt_crt(&BigUint::from_be_bytes(&block))?;
        Ok(to_fixed_bytes(&s, self.public.byte_len()))
    }
}

/// Big-endian encoding left-padded with zeros to exactly `len` bytes.
fn to_fixed_bytes(v: &BigUint, len: usize) -> Vec<u8> {
    let bytes = v.to_be_bytes();
    let mut out = vec![0u8; len.saturating_sub(bytes.len())];
    out.extend_from_slice(&bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn keys() -> RsaKeyPair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        RsaKeyPair::generate(512, &mut rng).unwrap()
    }

    #[test]
    fn rejects_tiny_keys() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        assert_eq!(
            RsaKeyPair::generate(64, &mut rng).unwrap_err(),
            RsaError::KeyTooSmall(64)
        );
    }

    #[test]
    fn raw_roundtrip_and_crt_agreement() {
        let kp = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        for _ in 0..5 {
            let m = BigUint::random_below(&mut rng, kp.public().modulus());
            let c = kp.public().raw_encrypt(&m).unwrap();
            assert_eq!(kp.raw_decrypt(&c).unwrap(), m);
            assert_eq!(kp.raw_decrypt_crt(&c).unwrap(), m);
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = keys();
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        for msg in [&b""[..], b"x", b"hello rsa world", &[7u8; 40]] {
            let ct = kp.public().encrypt(msg, &mut rng).unwrap();
            assert_eq!(ct.len(), kp.public().byte_len());
            assert_eq!(kp.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keys();
        let digest = [0xABu8; 32];
        let sig = kp.sign(&digest).unwrap();
        assert!(kp.public().verify(&digest, &sig).is_ok());
        // Tampered digest fails.
        let mut bad = digest;
        bad[0] ^= 1;
        assert_eq!(
            kp.public().verify(&bad, &sig).unwrap_err(),
            RsaError::VerificationFailed
        );
        // Tampered signature fails.
        let mut bad_sig = sig.clone();
        bad_sig[10] ^= 1;
        assert!(kp.public().verify(&digest, &bad_sig).is_err());
    }

    #[test]
    fn oversize_values_rejected() {
        let kp = keys();
        let too_big = kp.public().modulus().clone();
        assert_eq!(
            kp.public().raw_encrypt(&too_big).unwrap_err(),
            RsaError::ValueOutOfRange
        );
        assert_eq!(
            kp.raw_decrypt(&too_big).unwrap_err(),
            RsaError::ValueOutOfRange
        );
        let huge_msg = vec![1u8; 200];
        assert!(matches!(
            kp.public()
                .encrypt(&huge_msg, &mut rand::rngs::StdRng::seed_from_u64(1)),
            Err(RsaError::MessageTooLong { .. })
        ));
    }

    #[test]
    fn key_structure_invariants() {
        let kp = keys();
        assert_eq!(kp.public().modulus().bit_len(), 512);
        assert_eq!(kp.public().exponent().to_u64(), Some(65_537));
        // d·e ≡ 1 mod φ(n) implies raw ops invert each other, which the
        // roundtrip test already covers; here check the byte length helper.
        assert_eq!(kp.public().byte_len(), 64);
    }
}

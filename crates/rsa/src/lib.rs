//! RSA — the second comparator of the DATE 2008 evaluation.
//!
//! The paper reports one 1024-bit RSA exponentiation at 96 ms on the same
//! platform that runs the 170-bit torus exponentiation in 20 ms (Table 3),
//! and a 1024-bit Montgomery modular multiplication at 4447 cycles versus
//! 193 cycles for the 170-bit one (Table 1). This crate provides the
//! host-side RSA implementation used to verify the platform simulator and
//! to drive those benchmark rows: key generation, raw and padded
//! encryption/decryption, signatures, and CRT-accelerated private-key
//! operations.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), rsa_torus::RsaError> {
//! use rsa_torus::RsaKeyPair;
//!
//! let mut rng = rand::thread_rng();
//! // 512-bit keys keep the doc test fast; the benches use 1024 bits.
//! let keys = RsaKeyPair::generate(512, &mut rng)?;
//! let msg = b"torus beats us on bandwidth";
//! let ct = keys.public().encrypt(msg, &mut rng)?;
//! assert_eq!(keys.decrypt(&ct)?, msg);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod keys;
mod padding;

pub use error::RsaError;
pub use keys::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
pub use padding::{pad_encrypt, pad_sign, unpad_encrypt, unpad_sign};

//! PKCS#1 v1.5-style block formatting.
//!
//! The paper benchmarks the raw exponentiation; padding is provided so the
//! examples can run a complete encrypt/decrypt/sign/verify flow. The format
//! follows the classic `00 02 PS 00 M` (encryption) and `00 01 FF.. 00 M`
//! (signature) block types.

use rand::Rng;

use crate::error::RsaError;

/// Minimum number of random/fixed padding bytes (PKCS#1 requires 8).
const MIN_PAD_LEN: usize = 8;

/// Pads a message for encryption: `00 02 <nonzero random> 00 <message>`.
///
/// # Errors
///
/// Returns [`RsaError::MessageTooLong`] if the message cannot fit in
/// `block_len` bytes with at least 8 bytes of padding.
pub fn pad_encrypt<R: Rng + ?Sized>(
    message: &[u8],
    block_len: usize,
    rng: &mut R,
) -> Result<Vec<u8>, RsaError> {
    let capacity = block_len.saturating_sub(3 + MIN_PAD_LEN);
    if message.len() > capacity {
        return Err(RsaError::MessageTooLong {
            capacity,
            got: message.len(),
        });
    }
    let pad_len = block_len - 3 - message.len();
    let mut block = Vec::with_capacity(block_len);
    block.push(0x00);
    block.push(0x02);
    for _ in 0..pad_len {
        // Padding bytes must be non-zero.
        block.push(rng.gen_range(1..=255u8));
    }
    block.push(0x00);
    block.extend_from_slice(message);
    Ok(block)
}

/// Removes encryption padding.
///
/// # Errors
///
/// Returns [`RsaError::InvalidPadding`] if the block structure is malformed.
pub fn unpad_encrypt(block: &[u8]) -> Result<Vec<u8>, RsaError> {
    if block.len() < 3 + MIN_PAD_LEN || block[0] != 0x00 || block[1] != 0x02 {
        return Err(RsaError::InvalidPadding);
    }
    let separator = block[2..]
        .iter()
        .position(|&b| b == 0x00)
        .ok_or(RsaError::InvalidPadding)?;
    if separator < MIN_PAD_LEN {
        return Err(RsaError::InvalidPadding);
    }
    Ok(block[2 + separator + 1..].to_vec())
}

/// Pads a digest for signing: `00 01 FF..FF 00 <digest>`.
///
/// # Errors
///
/// Returns [`RsaError::MessageTooLong`] if the digest cannot fit.
pub fn pad_sign(digest: &[u8], block_len: usize) -> Result<Vec<u8>, RsaError> {
    let capacity = block_len.saturating_sub(3 + MIN_PAD_LEN);
    if digest.len() > capacity {
        return Err(RsaError::MessageTooLong {
            capacity,
            got: digest.len(),
        });
    }
    let pad_len = block_len - 3 - digest.len();
    let mut block = Vec::with_capacity(block_len);
    block.push(0x00);
    block.push(0x01);
    block.extend(std::iter::repeat_n(0xFF, pad_len));
    block.push(0x00);
    block.extend_from_slice(digest);
    Ok(block)
}

/// Removes signature padding, returning the digest.
///
/// # Errors
///
/// Returns [`RsaError::InvalidPadding`] if the block structure is malformed.
pub fn unpad_sign(block: &[u8]) -> Result<Vec<u8>, RsaError> {
    if block.len() < 3 + MIN_PAD_LEN || block[0] != 0x00 || block[1] != 0x01 {
        return Err(RsaError::InvalidPadding);
    }
    let mut i = 2;
    while i < block.len() && block[i] == 0xFF {
        i += 1;
    }
    if i < 2 + MIN_PAD_LEN || i >= block.len() || block[i] != 0x00 {
        return Err(RsaError::InvalidPadding);
    }
    Ok(block[i + 1..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn encrypt_padding_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for msg_len in [0usize, 1, 10, 100] {
            let msg: Vec<u8> = (0..msg_len as u8).collect();
            let block = pad_encrypt(&msg, 128, &mut rng).unwrap();
            assert_eq!(block.len(), 128);
            assert_eq!(unpad_encrypt(&block).unwrap(), msg);
        }
    }

    #[test]
    fn sign_padding_roundtrip() {
        for digest_len in [16usize, 32, 64] {
            let digest: Vec<u8> = (0..digest_len as u8).collect();
            let block = pad_sign(&digest, 128).unwrap();
            assert_eq!(block.len(), 128);
            assert_eq!(unpad_sign(&block).unwrap(), digest);
        }
    }

    #[test]
    fn oversized_messages_are_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert!(matches!(
            pad_encrypt(&[0u8; 120], 128, &mut rng),
            Err(RsaError::MessageTooLong { .. })
        ));
        assert!(matches!(
            pad_sign(&[0u8; 120], 128),
            Err(RsaError::MessageTooLong { .. })
        ));
    }

    #[test]
    fn malformed_blocks_are_rejected() {
        assert_eq!(
            unpad_encrypt(&[0x00, 0x01, 0xFF]),
            Err(RsaError::InvalidPadding)
        );
        assert_eq!(
            unpad_sign(&[0x00, 0x02, 0xFF]),
            Err(RsaError::InvalidPadding)
        );
        // No zero separator.
        let block = vec![0x00, 0x02, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
        assert_eq!(unpad_encrypt(&block), Err(RsaError::InvalidPadding));
        // Separator too early (padding shorter than 8 bytes).
        let mut block = vec![0x00, 0x02, 1, 2, 0x00];
        block.extend_from_slice(&[9; 20]);
        assert_eq!(unpad_encrypt(&block), Err(RsaError::InvalidPadding));
        // Signature block without terminating zero.
        let block = vec![
            0x00, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
        ];
        assert_eq!(unpad_sign(&block), Err(RsaError::InvalidPadding));
    }
}

//! Error type for the RSA crate.

use std::error::Error;
use std::fmt;

/// Errors raised by RSA key generation and the public/private operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Requested key size is too small to hold the padding overhead.
    KeyTooSmall(usize),
    /// The message does not fit under the modulus with the required padding.
    MessageTooLong {
        /// Bytes available for the message under this key.
        capacity: usize,
        /// Bytes that were supplied.
        got: usize,
    },
    /// A ciphertext or signature value is not a canonical residue.
    ValueOutOfRange,
    /// The padding of a decrypted block is malformed.
    InvalidPadding,
    /// A signature failed verification.
    VerificationFailed,
    /// Internal arithmetic failure (e.g. non-invertible exponent); indicates
    /// an unlucky prime pair and is retried internally.
    ArithmeticFailure,
}

impl fmt::Display for RsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsaError::KeyTooSmall(bits) => write!(f, "key size {bits} bits is too small"),
            RsaError::MessageTooLong { capacity, got } => {
                write!(
                    f,
                    "message of {got} bytes exceeds capacity of {capacity} bytes"
                )
            }
            RsaError::ValueOutOfRange => write!(f, "value is not a canonical residue"),
            RsaError::InvalidPadding => write!(f, "invalid padding"),
            RsaError::VerificationFailed => write!(f, "signature verification failed"),
            RsaError::ArithmeticFailure => write!(f, "internal arithmetic failure"),
        }
    }
}

impl Error for RsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RsaError::KeyTooSmall(64).to_string().contains("64"));
        assert!(RsaError::MessageTooLong {
            capacity: 100,
            got: 200
        }
        .to_string()
        .contains("200"));
        assert!(RsaError::InvalidPadding.to_string().contains("padding"));
        assert!(RsaError::VerificationFailed
            .to_string()
            .contains("verification"));
    }
}

//! Shared plumbing for the benchmark harness: the paper's reported numbers
//! and small helpers for rendering paper-vs-measured tables.
//!
//! Each table/figure of the evaluation has a report binary
//! (`cargo run -p bench --bin table1|table2|table3|fig1_hierarchy|fig5_multicore|ablations|report`)
//! and a Criterion bench (`cargo bench -p bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Paper-reported values (DATE 2008, Tables 1–3 and Section 3.3/Fig. 5).
pub mod paper {
    /// Table 1: interrupt handling cycles.
    pub const INTERRUPT_CYCLES: u64 = 184;
    /// Table 1: 170-bit Montgomery modular multiplication cycles.
    pub const MM_170: u64 = 193;
    /// Table 1: 170-bit modular addition cycles.
    pub const MA_170: u64 = 47;
    /// Table 1: 170-bit modular subtraction cycles.
    pub const MS_170: u64 = 61;
    /// Table 1: 160-bit Montgomery modular multiplication cycles.
    pub const MM_160: u64 = 163;
    /// Table 1: 160-bit modular addition cycles.
    pub const MA_160: u64 = 40;
    /// Table 1: 160-bit modular subtraction cycles.
    pub const MS_160: u64 = 53;
    /// Table 1: 1024-bit Montgomery modular multiplication cycles.
    pub const MM_1024: u64 = 4447;

    /// Table 2: Type-A T6 multiplication cycles.
    pub const T6_MULT_TYPE_A: u64 = 22348;
    /// Table 2: Type-A ECC point addition cycles.
    pub const ECC_PA_TYPE_A: u64 = 7185;
    /// Table 2: Type-A ECC point doubling cycles.
    pub const ECC_PD_TYPE_A: u64 = 5793;
    /// Table 2: Type-B T6 multiplication cycles.
    pub const T6_MULT_TYPE_B: u64 = 5908;
    /// Table 2: Type-B ECC point addition cycles.
    pub const ECC_PA_TYPE_B: u64 = 2888;
    /// Table 2: Type-B ECC point doubling cycles.
    pub const ECC_PD_TYPE_B: u64 = 2665;

    /// Table 3: 170-bit torus exponentiation latency (ms at 74 MHz).
    pub const TORUS_MS: f64 = 20.0;
    /// Table 3: 1024-bit RSA exponentiation latency (ms).
    pub const RSA_MS: f64 = 96.0;
    /// Table 3: 160-bit ECC scalar multiplication latency (ms).
    pub const ECC_MS: f64 = 9.4;
    /// Table 3: total area in slices (not reproducible without synthesis).
    pub const AREA_SLICES: u64 = 5419;
    /// Table 3: clock frequency in MHz.
    pub const FREQ_MHZ: f64 = 74.0;

    /// Section 3.3 / Fig. 5: speed-up of a 256-bit MM on 4 cores vs 1 core.
    pub const MULTICORE_SPEEDUP_4: f64 = 2.96;

    /// The paper value a gated cycle metric reproduces, when the paper
    /// reports one. Model-internal baselines (the sequential, conditional
    /// and general-PA rows, the Fig. 5 core-count probes, the cache
    /// hit-rate) return `None`: they are gated for bit-identity as
    /// ablation anchors, not as reproductions of a published number. The
    /// ECC PA rows of Table 2 map to the **mixed** metrics — the paper's
    /// cycle counts are only consistent with the 13-MM mixed-coordinate
    /// sequence. The ECC PD rows split by hierarchy: the **Type-A** row
    /// maps to the fast `a = -3` doubling (the MicroBlaze generates
    /// Type-A sequences on the fly and the paper's 5793 cycles are only
    /// consistent with the 8-MM shortened formulas) while the **Type-B**
    /// row maps to the general 10-MM doubling (the InsRom1 image its
    /// 2665 cycles are consistent with). See DESIGN.md.
    pub fn reference_cycles(metric: &str) -> Option<u64> {
        match metric {
            "interrupt_cycles" => Some(INTERRUPT_CYCLES),
            "mm_170_pipelined" => Some(MM_170),
            "mm_160_pipelined" => Some(MM_160),
            "mm_1024_pipelined" => Some(MM_1024),
            "ma_170_pipelined" => Some(MA_170),
            "ms_170_pipelined" => Some(MS_170),
            "t6_mult_type_a" => Some(T6_MULT_TYPE_A),
            "t6_mult_type_b" => Some(T6_MULT_TYPE_B),
            "ecc_pa_mixed_type_a" => Some(ECC_PA_TYPE_A),
            "ecc_pa_mixed_type_b" => Some(ECC_PA_TYPE_B),
            "ecc_pd_fast_type_a" => Some(ECC_PD_TYPE_A),
            "ecc_pd_type_b" => Some(ECC_PD_TYPE_B),
            _ => None,
        }
    }
}

/// Minimal flat-JSON plumbing for the cycle-accuracy gate (the build
/// environment has no serde). Two shapes are supported:
///
/// * the *report* emitted by the `report` binary — a flat
///   `{"name": count}` object of unsigned integers;
/// * the *golden* file `crates/bench/golden/cycles.json` — each value is
///   either a bare count (gated at the default tolerance) or an object
///   `{"cycles": count, "tol_pct": percent}` carrying the per-row drift
///   tolerance the `cycle_gate` binary enforces.
pub mod json {
    /// One row of the golden file: a gated cycle count plus its allowed
    /// relative drift (`None` means the gate's default applies).
    #[derive(Debug, Clone, PartialEq)]
    pub struct GoldenRow {
        /// Metric name.
        pub name: String,
        /// Golden cycle count.
        pub cycles: u64,
        /// Allowed drift before the gate fails, in percent.
        pub tol_pct: Option<f64>,
    }

    /// Resolves a `BENCH_REPORT_JSON` value to the file every producer
    /// shares. `cargo bench` runs harnesses with the *package* directory
    /// (`crates/bench/`) as cwd while `cargo run` binaries keep the
    /// caller's cwd (the workspace root in CI), so a relative path would
    /// split the report across two files. Relative paths are therefore
    /// anchored at the workspace root; absolute paths pass through.
    pub fn report_path(path: &str) -> std::path::PathBuf {
        let p = std::path::Path::new(path);
        if p.is_absolute() {
            p.to_path_buf()
        } else {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(p)
        }
    }

    /// Renders `pairs` as a pretty-printed flat JSON object.
    pub fn write_object(pairs: &[(String, u64)]) -> String {
        let body = pairs
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{body}\n}}\n")
    }

    /// Parses a flat `{"name": count}` JSON object (string keys, unsigned
    /// integer values). Nested object values — even golden-style
    /// `{"cycles": N}` rows — are rejected: a report is flat by contract.
    pub fn parse_object(text: &str) -> Result<Vec<(String, u64)>, String> {
        if text
            .trim()
            .strip_prefix('{')
            .is_some_and(|inner| inner.contains('{'))
        {
            return Err("nested object in flat report".to_string());
        }
        parse_golden(text).map(|rows| rows.into_iter().map(|row| (row.name, row.cycles)).collect())
    }

    /// Renders golden rows, attaching the per-row tolerance objects.
    pub fn write_golden(rows: &[GoldenRow]) -> String {
        let body = rows
            .iter()
            .map(|row| match row.tol_pct {
                Some(tol) => format!(
                    "  \"{}\": {{ \"cycles\": {}, \"tol_pct\": {} }}",
                    row.name, row.cycles, tol
                ),
                None => format!("  \"{}\": {}", row.name, row.cycles),
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{body}\n}}\n")
    }

    /// Parses a golden object whose values are bare counts or
    /// `{"cycles": N, "tol_pct": T}` rows.
    pub fn parse_golden(text: &str) -> Result<Vec<GoldenRow>, String> {
        let inner = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| "expected a top-level JSON object".to_string())?;
        // Split on commas at nesting depth zero only, so the per-row
        // tolerance objects survive.
        let mut entries = Vec::new();
        let mut depth = 0usize;
        let mut start = 0usize;
        for (i, c) in inner.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| "unbalanced braces".to_string())?
                }
                ',' if depth == 0 => {
                    entries.push(&inner[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        if depth != 0 {
            return Err("unbalanced braces".to_string());
        }
        entries.push(&inner[start..]);

        let mut rows = Vec::new();
        for entry in entries {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once(':')
                .ok_or_else(|| format!("malformed entry: {entry:?}"))?;
            let name = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted key in entry: {entry:?}"))?
                .to_string();
            let value = value.trim();
            let row = if let Some(obj) = value.strip_prefix('{').and_then(|v| v.strip_suffix('}')) {
                let mut cycles = None;
                let mut tol_pct = None;
                for field in obj.split(',') {
                    let (fk, fv) = field
                        .split_once(':')
                        .ok_or_else(|| format!("malformed field in {name:?}: {field:?}"))?;
                    let fk = fk.trim().trim_matches('"');
                    match fk {
                        "cycles" => {
                            cycles = Some(
                                fv.trim()
                                    .parse::<u64>()
                                    .map_err(|e| format!("bad cycles for {name:?}: {e}"))?,
                            )
                        }
                        "tol_pct" => {
                            tol_pct = Some(
                                fv.trim()
                                    .parse::<f64>()
                                    .map_err(|e| format!("bad tol_pct for {name:?}: {e}"))?,
                            )
                        }
                        other => return Err(format!("unknown field {other:?} in {name:?}")),
                    }
                }
                GoldenRow {
                    cycles: cycles.ok_or_else(|| format!("{name:?} is missing \"cycles\""))?,
                    tol_pct,
                    name,
                }
            } else {
                GoldenRow {
                    cycles: value
                        .parse()
                        .map_err(|e| format!("bad value for {name:?}: {e}"))?,
                    tol_pct: None,
                    name,
                }
            };
            rows.push(row);
        }
        Ok(rows)
    }
}

/// The simulated cycle counts gated by CI: every metric is a deterministic
/// function of the cost model (no RNG), so any drift is a calibration
/// change that must be acknowledged by regenerating the golden file.
pub mod metrics {
    use platform::{Coprocessor, CostModel, Hierarchy, Platform};

    /// Deterministic 256-bit scalar driving the beyond-paper ladder rows
    /// (an arbitrary fixed value with a balanced bit pattern; any drift in
    /// the rows it produces is a cost-model change, never RNG noise).
    pub const PREDICTION_SCALAR_HEX: &str =
        "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721";

    /// Whether a metric row is a **beyond-paper prediction**: a cycle
    /// count at an operand size the paper never reports (the 256-bit
    /// standards curves secp256k1 and P-256), quoted from the same
    /// calibrated model as the reproduction rows but with no published
    /// number to check against. The cycle gate still pins these rows —
    /// at the looser prediction tolerance — and the scorecard renders
    /// them in their own section.
    pub fn is_beyond_paper(name: &str) -> bool {
        name.contains("secp256k1") || name.contains("p256")
    }

    /// The beyond-paper 256-bit rows: one PA, one PD and one full scalar
    /// multiplication per standards curve and hierarchy, produced by the
    /// *drivers* on the real curves (not the curve-independent composite
    /// reports) so the `a = -3` dispatch is part of what is gated —
    /// P-256 rows price the shortened 8-MM doubling, secp256k1 rows the
    /// general 10-MM one.
    fn beyond_paper_rows() -> Vec<(String, u64)> {
        let k = bignum::BigUint::from_hex(PREDICTION_SCALAR_HEX).expect("valid scalar constant");
        let mut out = Vec::new();
        for (curve_name, key) in [("secp256k1", "secp256k1"), ("p256", "p256")] {
            let curve = ecc::Curve::by_name(curve_name).expect("registered curve");
            let g = curve.base_point().clone();
            // A generic-Z (Z ≠ 1) operand, as the ladder's accumulator is.
            let acc = curve.jacobian_double(&curve.to_jacobian(&g));
            for (hierarchy, suffix) in [(Hierarchy::TypeA, "type_a"), (Hierarchy::TypeB, "type_b")]
            {
                let plat = Platform::new(CostModel::paper(), 4, hierarchy);
                let (_, pa) = plat.run_ecc_point_addition_mixed(&curve, &acc, &g);
                out.push((format!("ecc_pa_mixed_{key}_{suffix}"), pa.cycles));
                let (pd_name, pd) = if curve.a_is_minus_three() {
                    let (_, r) = plat.run_ecc_point_doubling_fast(&curve, &acc);
                    (format!("ecc_pd_fast_{key}_{suffix}"), r)
                } else {
                    let (_, r) = plat.run_ecc_point_doubling(&curve, &acc);
                    (format!("ecc_pd_{key}_{suffix}"), r)
                };
                out.push((pd_name, pd.cycles));
                let (_, ladder) = plat.ecc_scalar_multiplication(&curve, &g, &k);
                out.push((format!("ecc_scalar_mult_{key}_{suffix}"), ladder.cycles));
            }
        }
        out
    }

    /// Program-cache hit rate over a fixed batch workload (four scalar
    /// multiplications with deterministic 64-bit scalars on the
    /// reproduction curve), rounded to whole percent. The first ladder
    /// compiles its doubling and addition programs; the remaining three
    /// reuse them, so the expected rate is 6 hits / 8 lookups = 75%. The
    /// value is a pure function of the compile-once plumbing — any drift
    /// means the drivers started re-compiling (or stopped caching) and
    /// the gate catches it.
    pub fn program_cache_hit_rate_pct() -> u64 {
        let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
        let curve = ecc::Curve::p160_reproduction().expect("built-in curve");
        let point = curve.base_point().clone();
        for scalar in [
            0xdead_beef_0bad_cafeu64,
            0x1234_5678_9abc_def0,
            0x0fed_cba9_8765_4321,
            0xa5a5_a5a5_5a5a_5a5a,
        ] {
            let k = bignum::BigUint::from(scalar);
            plat.ecc_scalar_multiplication(&curve, &point, &k);
        }
        plat.program_cache().hit_rate_pct().round() as u64
    }

    /// Seed of the fixed serving trace behind the gated engine rows.
    pub const ENGINE_TRACE_SEED: u64 = 2008;
    /// Length of the fixed serving trace behind the gated engine rows.
    pub const ENGINE_TRACE_REQUESTS: usize = 200;

    /// The gated throughput-engine rows: the fixed mixed RSA/ECC/torus
    /// trace (seed [`ENGINE_TRACE_SEED`], [`ENGINE_TRACE_REQUESTS`]
    /// requests) served on fleets of 1 and 4 paper-platform instances.
    /// Ops/sec at both instance counts pin the Fig. 5-style scaling
    /// story; the 4-instance p99 latency pins the batching tail; the
    /// batch cache hit rate pins the compile-once amortisation. The
    /// engine is pure integer virtual-time arithmetic over the seeded
    /// shim RNG, so — like every other row — any drift is a model
    /// change, never noise.
    pub fn engine_rows() -> Vec<(String, u64)> {
        use engine::{Fleet, FleetConfig, TrafficProfile};
        let trace =
            TrafficProfile::mixed_date2008().generate(ENGINE_TRACE_SEED, ENGINE_TRACE_REQUESTS);
        let mut out = Vec::new();
        for instances in [1usize, 4] {
            let mut fleet = Fleet::new(FleetConfig::date2008(instances));
            let summary = fleet.run(trace.clone());
            out.push((
                format!("engine_ops_per_sec_x{instances}"),
                summary.ops_per_sec,
            ));
            if instances == 4 {
                out.push((
                    "engine_batch_cache_hit_rate_pct".to_string(),
                    summary.cache_hit_rate_pct(),
                ));
                out.push((
                    "engine_p99_latency_cycles_x4".to_string(),
                    summary.p99_latency_cycles,
                ));
            }
        }
        out
    }

    /// Collects the gated cycle metrics, sorted by name.
    pub fn collect() -> Vec<(String, u64)> {
        let type_a = Platform::new(CostModel::paper(), 4, Hierarchy::TypeA);
        let type_b = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
        let seq = Coprocessor::new(CostModel::paper_sequential(), 4);
        // The conditional-correction middle layer (pipelined, speculative
        // adder off) stays gated in both of its faces — correction not
        // taken and correction taken (worst case, the dual_path_sweep
        // ablation baseline) — so neither can drift silently.
        let cond = Coprocessor::new(CostModel::paper().with_dual_path(false), 4);
        let m = |name: &str, cycles: u64| (name.to_string(), cycles);
        let mut out = vec![
            m("interrupt_cycles", type_b.interrupt_cycles()),
            m(
                "mm_170_pipelined",
                type_b.montgomery_multiplication_report(170).cycles,
            ),
            m(
                "mm_160_pipelined",
                type_b.montgomery_multiplication_report(160).cycles,
            ),
            m(
                "mm_1024_pipelined",
                type_b.montgomery_multiplication_report(1024).cycles,
            ),
            m("mm_170_sequential", seq.mont_mul_cycles(170)),
            m("mm_1024_sequential", seq.mont_mul_cycles(1024)),
            m(
                "ma_170_pipelined",
                type_b.modular_addition_report(170).cycles,
            ),
            m(
                "ms_170_pipelined",
                type_b.modular_subtraction_report(170).cycles,
            ),
            m("ma_170_conditional", cond.mod_add_cycles(170)),
            m("ms_170_conditional", cond.mod_sub_cycles(170)),
            m("ma_170_conditional_worst", cond.mod_add_worst_cycles(170)),
            m("ms_170_conditional_worst", cond.mod_sub_worst_cycles(170)),
            m("ma_170_sequential", seq.mod_add_cycles(170)),
            m("ms_170_sequential", seq.mod_sub_cycles(170)),
            m(
                "mm_256_1core_pipelined",
                Coprocessor::new(CostModel::paper(), 1).mont_mul_cycles(256),
            ),
            m(
                "mm_256_4core_pipelined",
                Coprocessor::new(CostModel::paper(), 4).mont_mul_cycles(256),
            ),
            m(
                "t6_mult_type_a",
                type_a.fp6_multiplication_report(170).cycles,
            ),
            m(
                "t6_mult_type_b",
                type_b.fp6_multiplication_report(170).cycles,
            ),
            m(
                "ecc_pa_type_a",
                type_a.ecc_point_addition_report(160).cycles,
            ),
            m(
                "ecc_pd_type_a",
                type_a.ecc_point_doubling_report(160).cycles,
            ),
            m(
                "ecc_pa_type_b",
                type_b.ecc_point_addition_report(160).cycles,
            ),
            m(
                "ecc_pd_type_b",
                type_b.ecc_point_doubling_report(160).cycles,
            ),
            // The mixed-coordinate PA rows are the Table 2 reproduction;
            // the general rows above stay gated bit-identical as the
            // coordinate-form ablation baseline.
            m(
                "ecc_pa_mixed_type_a",
                type_a.ecc_point_addition_mixed_report(160).cycles,
            ),
            m(
                "ecc_pa_mixed_type_b",
                type_b.ecc_point_addition_mixed_report(160).cycles,
            ),
            // The fast a = -3 doubling is the Table 2 Type-A PD
            // reproduction (the on-the-fly generated sequence); the
            // general rows above stay gated bit-identical — the Type-B
            // one doubling as the InsRom reproduction of the paper's
            // 2665-cycle row.
            m(
                "ecc_pd_fast_type_a",
                type_a.ecc_point_doubling_fast_report(160).cycles,
            ),
            m(
                "ecc_pd_fast_type_b",
                type_b.ecc_point_doubling_fast_report(160).cycles,
            ),
            // Compile-once plumbing: any drift here means the drivers
            // started re-compiling per call.
            m("program_cache_hit_rate_pct", program_cache_hit_rate_pct()),
        ];
        // The 256-bit standards-curve predictions ride along in the same
        // gated set, flagged by `is_beyond_paper` for their own scorecard
        // section and the looser prediction tolerance.
        out.extend(beyond_paper_rows());
        // The throughput-engine serving rows (ops/sec, tail latency,
        // batch cache hit rate) are gated alongside the cycle rows.
        out.extend(engine_rows());
        out.sort();
        out
    }

    /// The drift tolerance CI grants a metric, in percent: Table 1 leaf
    /// operations are pinned tight (±2%), Table 2/3 composite rows — whose
    /// cycle counts stack many leaf operations and sequencer overlap — get
    /// ±5%, the throughput-engine serving rows get ±5% (deterministic,
    /// but downstream of every composite calibration at once), and the
    /// beyond-paper 256-bit predictions get ±10% (they have no published
    /// anchor, so the gate only guards against silent model drift, not
    /// reproduction accuracy). Written into the golden file by
    /// `cycle_gate --write-golden` so the gate reads per-row tolerances
    /// instead of one hardcoded constant.
    pub fn tolerance_pct(name: &str) -> f64 {
        if name.starts_with("engine_") {
            5.0
        } else if is_beyond_paper(name) {
            10.0
        } else if name.starts_with("t6_") || name.starts_with("ecc_") {
            5.0
        } else {
            2.0
        }
    }
}

/// A row comparing a paper value against the reproduction's measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label.
    pub label: String,
    /// Value reported in the paper (formatted).
    pub paper: String,
    /// Value measured by the reproduction (formatted).
    pub measured: String,
}

impl Row {
    /// Builds a row from cycle counts.
    pub fn cycles(label: &str, paper: u64, measured: u64) -> Row {
        Row {
            label: label.to_string(),
            paper: format!("{paper}"),
            measured: format!("{measured}"),
        }
    }

    /// Builds a row from millisecond latencies.
    pub fn millis(label: &str, paper: f64, measured: f64) -> Row {
        Row {
            label: label.to_string(),
            paper: format!("{paper:.1}"),
            measured: format!("{measured:.1}"),
        }
    }

    /// Builds a row from dimensionless ratios.
    pub fn ratio(label: &str, paper: f64, measured: f64) -> Row {
        Row {
            label: label.to_string(),
            paper: format!("{paper:.2}x"),
            measured: format!("{measured:.2}x"),
        }
    }
}

/// Renders a paper-vs-measured table to stdout.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!("{:<44} {:>12} {:>12}", "metric", "paper", "measured");
    println!("{}", "-".repeat(70));
    for row in rows {
        println!("{:<44} {:>12} {:>12}", row.label, row.paper, row.measured);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips() {
        let pairs = vec![("mm_170".to_string(), 198u64), ("ma_170".to_string(), 61)];
        let text = json::write_object(&pairs);
        assert_eq!(json::parse_object(&text).unwrap(), pairs);
        assert!(json::parse_object("[1, 2]").is_err());
        assert!(json::parse_object("{\"k\": -3}").is_err());
        assert!(json::parse_object("{k: 3}").is_err());
    }

    #[test]
    fn golden_rows_roundtrip_with_tolerances() {
        let rows = vec![
            json::GoldenRow {
                name: "mm_170_pipelined".to_string(),
                cycles: 198,
                tol_pct: Some(2.0),
            },
            json::GoldenRow {
                name: "t6_mult_type_b".to_string(),
                cycles: 5883,
                tol_pct: Some(5.0),
            },
            json::GoldenRow {
                name: "legacy_row".to_string(),
                cycles: 7,
                tol_pct: None,
            },
        ];
        let text = json::write_golden(&rows);
        assert_eq!(json::parse_golden(&text).unwrap(), rows);
        // The old flat format still parses as golden rows without
        // tolerances, so pre-existing golden files keep working.
        let flat = json::write_object(&[("a".to_string(), 1)]);
        let parsed = json::parse_golden(&flat).unwrap();
        assert_eq!(parsed[0].tol_pct, None);
        // A flat report must not smuggle object rows — with or without a
        // tolerance field.
        assert!(json::parse_object(&text).is_err());
        assert!(json::parse_object("{\"x\": {\"cycles\": 1}}").is_err());
        assert!(json::parse_golden("{\"x\": {\"tol_pct\": 5}}").is_err());
        assert!(json::parse_golden("{\"x\": {\"cycles\": 1, \"bogus\": 2}}").is_err());
        assert!(json::parse_golden("{\"x\": {\"cycles\": 1}").is_err());
    }

    #[test]
    fn tolerances_split_leaf_and_composite_rows() {
        assert_eq!(metrics::tolerance_pct("mm_170_pipelined"), 2.0);
        assert_eq!(metrics::tolerance_pct("interrupt_cycles"), 2.0);
        assert_eq!(metrics::tolerance_pct("t6_mult_type_b"), 5.0);
        assert_eq!(metrics::tolerance_pct("ecc_pa_type_a"), 5.0);
        // Beyond-paper predictions get the loosest tier.
        assert_eq!(metrics::tolerance_pct("ecc_scalar_mult_p256_type_b"), 10.0);
        assert_eq!(
            metrics::tolerance_pct("ecc_pa_mixed_secp256k1_type_a"),
            10.0
        );
        // The 256-bit MM rows are paper-era model baselines, not curve
        // predictions — they stay in the tight tier.
        assert!(!metrics::is_beyond_paper("mm_256_1core_pipelined"));
        assert_eq!(metrics::tolerance_pct("mm_256_1core_pipelined"), 2.0);
        // Every collected metric gets some positive tolerance.
        for (name, _) in metrics::collect() {
            assert!(metrics::tolerance_pct(&name) > 0.0, "{name}");
        }
    }

    #[test]
    fn beyond_paper_rows_cover_both_curves_hierarchies_and_knobs() {
        let collected = metrics::collect();
        let has = |name: &str| collected.iter().any(|(k, _)| k == name);
        // P-256 (a = -3) prices the fast 8-MM doubling; secp256k1 the
        // general 10-MM one — the knob dispatch is visible in the names.
        for name in [
            "ecc_pa_mixed_secp256k1_type_a",
            "ecc_pa_mixed_secp256k1_type_b",
            "ecc_pa_mixed_p256_type_a",
            "ecc_pa_mixed_p256_type_b",
            "ecc_pd_secp256k1_type_a",
            "ecc_pd_secp256k1_type_b",
            "ecc_pd_fast_p256_type_a",
            "ecc_pd_fast_p256_type_b",
            "ecc_scalar_mult_secp256k1_type_a",
            "ecc_scalar_mult_secp256k1_type_b",
            "ecc_scalar_mult_p256_type_a",
            "ecc_scalar_mult_p256_type_b",
        ] {
            assert!(has(name), "{name} missing from collect()");
            assert!(metrics::is_beyond_paper(name), "{name}");
            // Predictions have no published anchor.
            assert_eq!(paper::reference_cycles(name), None, "{name}");
        }
        // Exactly the twelve rows above are beyond-paper.
        assert_eq!(
            collected
                .iter()
                .filter(|(k, _)| metrics::is_beyond_paper(k))
                .count(),
            12
        );
        // Same sequence, wider operands: every 256-bit row must cost more
        // than its 160-bit counterpart on the same hierarchy.
        let get = |name: &str| {
            collected
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(get("ecc_pa_mixed_p256_type_b") > get("ecc_pa_mixed_type_b"));
        assert!(get("ecc_pd_fast_p256_type_b") > get("ecc_pd_fast_type_b"));
        assert!(get("ecc_pd_secp256k1_type_b") > get("ecc_pd_type_b"));
        // The a = -3 shortcut is visible at 256 bits: P-256's doubling is
        // cheaper than secp256k1's on the same hierarchy.
        assert!(get("ecc_pd_fast_p256_type_b") < get("ecc_pd_secp256k1_type_b"));
        assert!(get("ecc_pd_fast_p256_type_a") < get("ecc_pd_secp256k1_type_a"));
    }

    #[test]
    fn paper_references_attach_to_real_metrics() {
        // The Table 2 ECC PA reproduction is the mixed sequence; the
        // general rows are gated baselines with no paper counterpart.
        assert_eq!(paper::reference_cycles("ecc_pa_mixed_type_b"), Some(2888));
        assert_eq!(paper::reference_cycles("ecc_pa_mixed_type_a"), Some(7185));
        assert_eq!(paper::reference_cycles("ecc_pa_type_b"), None);
        assert_eq!(paper::reference_cycles("mm_170_sequential"), None);
        assert_eq!(paper::reference_cycles("ma_170_conditional_worst"), None);
        // The Table 2 ECC PD rows split by hierarchy: the fast a = -3
        // doubling reproduces the Type-A row, the general (InsRom)
        // doubling keeps the Type-B row; the other two combinations are
        // gated baselines with no paper counterpart.
        assert_eq!(paper::reference_cycles("ecc_pd_fast_type_a"), Some(5793));
        assert_eq!(paper::reference_cycles("ecc_pd_type_b"), Some(2665));
        assert_eq!(paper::reference_cycles("ecc_pd_type_a"), None);
        assert_eq!(paper::reference_cycles("ecc_pd_fast_type_b"), None);
        assert_eq!(paper::reference_cycles("program_cache_hit_rate_pct"), None);
        // Every metric with a paper reference is actually collected, so
        // the scorecard can never carry a dangling paper column.
        let collected = metrics::collect();
        for name in [
            "interrupt_cycles",
            "mm_170_pipelined",
            "mm_160_pipelined",
            "mm_1024_pipelined",
            "ma_170_pipelined",
            "ms_170_pipelined",
            "t6_mult_type_a",
            "t6_mult_type_b",
            "ecc_pa_mixed_type_a",
            "ecc_pa_mixed_type_b",
            "ecc_pd_fast_type_a",
            "ecc_pd_type_b",
        ] {
            assert!(paper::reference_cycles(name).is_some(), "{name}");
            assert!(collected.iter().any(|(k, _)| k == name), "{name}");
        }
    }

    #[test]
    fn engine_rows_are_gated_deterministic_and_meaningful() {
        let rows = metrics::engine_rows();
        assert_eq!(
            rows,
            metrics::engine_rows(),
            "serving model must be deterministic"
        );
        let collected = metrics::collect();
        let get = |name: &str| {
            collected
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} missing from collect()"))
        };
        for (name, value) in &rows {
            assert_eq!(get(name), *value, "{name}");
            // Engine rows are serving-model telemetry, not paper numbers
            // and not curve predictions.
            assert_eq!(paper::reference_cycles(name), None, "{name}");
            assert!(!metrics::is_beyond_paper(name), "{name}");
            assert_eq!(metrics::tolerance_pct(name), 5.0, "{name}");
        }
        // Four instances serve the fixed trace strictly faster than one,
        // and batching amortises most program fetches into cache hits.
        assert!(get("engine_ops_per_sec_x4") > get("engine_ops_per_sec_x1"));
        assert!(get("engine_batch_cache_hit_rate_pct") >= 75);
        assert!(get("engine_p99_latency_cycles_x4") > 0);
    }

    #[test]
    fn cache_hit_rate_metric_reflects_compile_once_drivers() {
        // Four ladders, two compilations: 6 hits / 8 lookups. A different
        // value means a driver regressed to per-call compilation (or the
        // cache stopped being consulted).
        assert_eq!(metrics::program_cache_hit_rate_pct(), 75);
    }

    #[test]
    fn metrics_are_deterministic_and_sorted() {
        let a = metrics::collect();
        let b = metrics::collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(a.iter().any(|(k, _)| k == "mm_170_pipelined"));
    }

    #[test]
    fn rows_format_cleanly() {
        let r = Row::cycles("MM 170-bit", 193, 200);
        assert_eq!(r.paper, "193");
        let r = Row::millis("torus", 20.0, 33.25);
        assert_eq!(r.measured, "33.2");
        let r = Row::ratio("speedup", 2.96, 3.015);
        assert_eq!(r.measured, "3.02x");
        print_table("smoke", &[r]);
    }
}

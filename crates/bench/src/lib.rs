//! Shared plumbing for the benchmark harness: the paper's reported numbers
//! and small helpers for rendering paper-vs-measured tables.
//!
//! Each table/figure of the evaluation has a report binary
//! (`cargo run -p bench --bin table1|table2|table3|fig1_hierarchy|fig5_multicore|ablations|report`)
//! and a Criterion bench (`cargo bench -p bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Paper-reported values (DATE 2008, Tables 1–3 and Section 3.3/Fig. 5).
pub mod paper {
    /// Table 1: interrupt handling cycles.
    pub const INTERRUPT_CYCLES: u64 = 184;
    /// Table 1: 170-bit Montgomery modular multiplication cycles.
    pub const MM_170: u64 = 193;
    /// Table 1: 170-bit modular addition cycles.
    pub const MA_170: u64 = 47;
    /// Table 1: 170-bit modular subtraction cycles.
    pub const MS_170: u64 = 61;
    /// Table 1: 160-bit Montgomery modular multiplication cycles.
    pub const MM_160: u64 = 163;
    /// Table 1: 160-bit modular addition cycles.
    pub const MA_160: u64 = 40;
    /// Table 1: 160-bit modular subtraction cycles.
    pub const MS_160: u64 = 53;
    /// Table 1: 1024-bit Montgomery modular multiplication cycles.
    pub const MM_1024: u64 = 4447;

    /// Table 2: Type-A T6 multiplication cycles.
    pub const T6_MULT_TYPE_A: u64 = 22348;
    /// Table 2: Type-A ECC point addition cycles.
    pub const ECC_PA_TYPE_A: u64 = 7185;
    /// Table 2: Type-A ECC point doubling cycles.
    pub const ECC_PD_TYPE_A: u64 = 5793;
    /// Table 2: Type-B T6 multiplication cycles.
    pub const T6_MULT_TYPE_B: u64 = 5908;
    /// Table 2: Type-B ECC point addition cycles.
    pub const ECC_PA_TYPE_B: u64 = 2888;
    /// Table 2: Type-B ECC point doubling cycles.
    pub const ECC_PD_TYPE_B: u64 = 2665;

    /// Table 3: 170-bit torus exponentiation latency (ms at 74 MHz).
    pub const TORUS_MS: f64 = 20.0;
    /// Table 3: 1024-bit RSA exponentiation latency (ms).
    pub const RSA_MS: f64 = 96.0;
    /// Table 3: 160-bit ECC scalar multiplication latency (ms).
    pub const ECC_MS: f64 = 9.4;
    /// Table 3: total area in slices (not reproducible without synthesis).
    pub const AREA_SLICES: u64 = 5419;
    /// Table 3: clock frequency in MHz.
    pub const FREQ_MHZ: f64 = 74.0;

    /// Section 3.3 / Fig. 5: speed-up of a 256-bit MM on 4 cores vs 1 core.
    pub const MULTICORE_SPEEDUP_4: f64 = 2.96;
}

/// Minimal flat-JSON plumbing for the cycle-accuracy gate (the build
/// environment has no serde; the golden file is a single `{"name": count}`
/// object of unsigned integers).
pub mod json {
    /// Renders `pairs` as a pretty-printed flat JSON object.
    pub fn write_object(pairs: &[(String, u64)]) -> String {
        let body = pairs
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{body}\n}}\n")
    }

    /// Parses a flat `{"name": count}` JSON object (string keys, unsigned
    /// integer values, no nesting).
    pub fn parse_object(text: &str) -> Result<Vec<(String, u64)>, String> {
        let inner = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| "expected a top-level JSON object".to_string())?;
        let mut pairs = Vec::new();
        for entry in inner.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once(':')
                .ok_or_else(|| format!("malformed entry: {entry:?}"))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted key in entry: {entry:?}"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|e| format!("bad value for {key:?}: {e}"))?;
            pairs.push((key.to_string(), value));
        }
        Ok(pairs)
    }
}

/// The simulated cycle counts gated by CI: every metric is a deterministic
/// function of the cost model (no RNG), so any drift is a calibration
/// change that must be acknowledged by regenerating the golden file.
pub mod metrics {
    use platform::{Coprocessor, CostModel, Hierarchy, Platform};

    /// Collects the gated cycle metrics, sorted by name.
    pub fn collect() -> Vec<(String, u64)> {
        let type_a = Platform::new(CostModel::paper(), 4, Hierarchy::TypeA);
        let type_b = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
        let seq = Coprocessor::new(CostModel::paper_sequential(), 4);
        let m = |name: &str, cycles: u64| (name.to_string(), cycles);
        let mut out = vec![
            m("interrupt_cycles", type_b.interrupt_cycles()),
            m(
                "mm_170_pipelined",
                type_b.montgomery_multiplication_report(170).cycles,
            ),
            m(
                "mm_160_pipelined",
                type_b.montgomery_multiplication_report(160).cycles,
            ),
            m(
                "mm_1024_pipelined",
                type_b.montgomery_multiplication_report(1024).cycles,
            ),
            m("mm_170_sequential", seq.mont_mul_cycles(170)),
            m("mm_1024_sequential", seq.mont_mul_cycles(1024)),
            m(
                "ma_170_pipelined",
                type_b.modular_addition_report(170).cycles,
            ),
            m(
                "ms_170_pipelined",
                type_b.modular_subtraction_report(170).cycles,
            ),
            m(
                "mm_256_1core_pipelined",
                Coprocessor::new(CostModel::paper(), 1).mont_mul_cycles(256),
            ),
            m(
                "mm_256_4core_pipelined",
                Coprocessor::new(CostModel::paper(), 4).mont_mul_cycles(256),
            ),
            m(
                "t6_mult_type_a",
                type_a.fp6_multiplication_report(170).cycles,
            ),
            m(
                "t6_mult_type_b",
                type_b.fp6_multiplication_report(170).cycles,
            ),
            m(
                "ecc_pa_type_b",
                type_b.ecc_point_addition_report(160).cycles,
            ),
            m(
                "ecc_pd_type_b",
                type_b.ecc_point_doubling_report(160).cycles,
            ),
        ];
        out.sort();
        out
    }
}

/// A row comparing a paper value against the reproduction's measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label.
    pub label: String,
    /// Value reported in the paper (formatted).
    pub paper: String,
    /// Value measured by the reproduction (formatted).
    pub measured: String,
}

impl Row {
    /// Builds a row from cycle counts.
    pub fn cycles(label: &str, paper: u64, measured: u64) -> Row {
        Row {
            label: label.to_string(),
            paper: format!("{paper}"),
            measured: format!("{measured}"),
        }
    }

    /// Builds a row from millisecond latencies.
    pub fn millis(label: &str, paper: f64, measured: f64) -> Row {
        Row {
            label: label.to_string(),
            paper: format!("{paper:.1}"),
            measured: format!("{measured:.1}"),
        }
    }

    /// Builds a row from dimensionless ratios.
    pub fn ratio(label: &str, paper: f64, measured: f64) -> Row {
        Row {
            label: label.to_string(),
            paper: format!("{paper:.2}x"),
            measured: format!("{measured:.2}x"),
        }
    }
}

/// Renders a paper-vs-measured table to stdout.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!("{:<44} {:>12} {:>12}", "metric", "paper", "measured");
    println!("{}", "-".repeat(70));
    for row in rows {
        println!("{:<44} {:>12} {:>12}", row.label, row.paper, row.measured);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips() {
        let pairs = vec![("mm_170".to_string(), 198u64), ("ma_170".to_string(), 61)];
        let text = json::write_object(&pairs);
        assert_eq!(json::parse_object(&text).unwrap(), pairs);
        assert!(json::parse_object("[1, 2]").is_err());
        assert!(json::parse_object("{\"k\": -3}").is_err());
        assert!(json::parse_object("{k: 3}").is_err());
    }

    #[test]
    fn metrics_are_deterministic_and_sorted() {
        let a = metrics::collect();
        let b = metrics::collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(a.iter().any(|(k, _)| k == "mm_170_pipelined"));
    }

    #[test]
    fn rows_format_cleanly() {
        let r = Row::cycles("MM 170-bit", 193, 200);
        assert_eq!(r.paper, "193");
        let r = Row::millis("torus", 20.0, 33.25);
        assert_eq!(r.measured, "33.2");
        let r = Row::ratio("speedup", 2.96, 3.015);
        assert_eq!(r.measured, "3.02x");
        print_table("smoke", &[r]);
    }
}

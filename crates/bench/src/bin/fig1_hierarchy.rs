//! Renders Figure 1: the hierarchy of torus operations and representations,
//! and demonstrates that every level of the figure is implemented by
//! exercising it on the built-in toy parameters.

use bignum::BigUint;
use ceilidh::{compress, decompress, CeilidhParams};
use rand::SeedableRng;

fn main() {
    let params = CeilidhParams::toy().expect("toy parameters");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    println!("Figure 1: T6(Fp) operation hierarchy (representation F1 and F2)\n");
    println!("            T6(Fp)  --ρ-->  A^2(Fp)   (compress / decompress)");
    println!("              |");
    println!("   F1 = Fp[z]/(z^6+z^3+1)   --τ-->   F2 = Fp3[y]/(y^2 - x·y + 1)");
    println!("              |                               |");
    println!("        Fp6: add, mul (18M), inv        Fp3: add, mul (6M), inv");
    println!("              |                               |");
    println!("             Fp: add, mul (Montgomery), inv  Fp");
    println!();

    // Exercise every arrow of the figure.
    let fp6 = params.fp6();
    let repr = params.repr();
    let a = fp6.random(&mut rng);
    let b = fp6.random(&mut rng);

    // F1 arithmetic.
    let prod_f1 = fp6.mul(&a, &b);
    // τ / τ⁻¹: same product computed in representation F2.
    let prod_f2 = repr.mul(&repr.from_f1(&a), &repr.from_f1(&b));
    assert_eq!(repr.to_f1(&prod_f2), prod_f1);
    println!("τ/τ⁻¹ : F1 and F2 multiplications agree            ... ok");

    // ρ / ψ: compression round-trip on a torus element.
    let (_, g) = params.random_subgroup_element(&mut rng);
    let c = compress(&params, &g).expect("compressible");
    assert_eq!(decompress(&params, &c).expect("decompressible"), g);
    println!("ρ/ψ   : factor-3 compression round-trips            ... ok");

    // Fp6 inversion against the norm tower.
    let inv = fp6.inv(&a).expect("non-zero");
    assert_eq!(fp6.mul(&a, &inv), fp6.one());
    println!("inv   : Fp6 inversion via the Frobenius/norm tower  ... ok");

    // Level-3 operation counts for one Fp6 multiplication.
    params.fp().reset_op_count();
    let _ = fp6.mul(&a, &b);
    let ops = params.fp().op_count();
    println!(
        "cost  : one Fp6 multiplication = {}M + {}A (paper: 18M + 60A)",
        ops.mul,
        ops.additions_total()
    );

    let exp = BigUint::from(29u64);
    params.fp().reset_op_count();
    let _ = params.pow(&g, &exp);
    let ops = params.fp().op_count();
    println!(
        "cost  : one 5-bit torus exponentiation = {}M + {}A",
        ops.mul,
        ops.additions_total()
    );
}

//! Regenerates Figure 5: the parallelised 256-bit Montgomery multiplication
//! and its scaling with the number of cores (Section 3.3, which cites a
//! 2.96x speed-up of 4 cores over 1 core).

use bench::{paper, print_table, Row};
use platform::{Coprocessor, CostModel};

fn main() {
    let single = Coprocessor::new(CostModel::paper(), 1).mont_mul_cycles(256);
    let mut rows = Vec::new();
    for cores in [1usize, 2, 3, 4, 6, 8] {
        let cycles = Coprocessor::new(CostModel::paper(), cores).mont_mul_cycles(256);
        let speedup = single as f64 / cycles as f64;
        let paper_value = if cores == 4 {
            format!("{:.2}x", paper::MULTICORE_SPEEDUP_4)
        } else if cores == 1 {
            "1.00x".to_string()
        } else {
            "-".to_string()
        };
        rows.push(Row {
            label: format!("256-bit MM on {cores} core(s): {cycles} cycles"),
            paper: paper_value,
            measured: format!("{speedup:.2}x"),
        });
    }
    print_table(
        "Figure 5: multicore Montgomery multiplication (speed-up vs 1 core)",
        &rows,
    );
    println!("\nAlso swept for the torus operand length (170-bit):");
    for cores in [1usize, 2, 4] {
        let cycles = Coprocessor::new(CostModel::paper(), cores).mont_mul_cycles(170);
        let seq = Coprocessor::new(CostModel::paper_sequential(), cores).mont_mul_cycles(170);
        println!(
            "  170-bit MM on {cores} core(s): {cycles} cycles pipelined, {seq} sequential baseline"
        );
    }
}

//! Ablation studies called out in DESIGN.md:
//!
//! * schedule-model ablation — the pipelined stage schedule against the
//!   flat sequential baseline, across operand lengths and MAC depths;
//! * dual-path sweep — the speculative constant-time MA/MS adder against
//!   the conditional-correction model, per Table 1/2 row;
//! * mixed-PA sweep — the 13-MM mixed-coordinate point addition against
//!   the general 16-MM Jacobian addition, per ECC row of Tables 2 and 3;
//! * fast-PD sweep — the 8-MM shortened `a = -3` doubling against the
//!   general 10-MM Jacobian doubling, per ECC row of Tables 2 and 3,
//!   plus the compiler's scheduling win on the sequence itself;
//! * interrupt-cost sweep — where the Type-A bottleneck comes from and when
//!   the two hierarchies cross over;
//! * exponentiation window size for the torus;
//! * core-count sweep for the 1024-bit RSA multiplication;
//! * the paper's future-work items (faster modular adders, overlap between
//!   modular operations), modelled as cost-model what-ifs;
//! * search sweep — the superoptimizing beam-search pass against the
//!   hand-authored sequences, per formula in the database (ROADMAP item
//!   4's "search the sequence space"); honours `SEARCH_BEAM_WIDTH` and
//!   merges the per-formula cycle counts into `BENCH_REPORT_JSON`.

use bench::{paper, print_table, Row};
use bignum::BigUint;
use ceilidh::CeilidhParams;
use platform::{Coprocessor, CostModel, Hierarchy, Platform};
use rand::SeedableRng;

fn main() {
    schedule_sweep();
    dual_path_sweep();
    pa_mixed_sweep();
    pd_fast_sweep();
    search_sweep();
    interrupt_sweep();
    window_sweep();
    core_sweep_rsa();
    future_work();
}

fn search_sweep() {
    // ROADMAP item 4: the superoptimizing search pass versus the
    // hand-authored InsRom orders, one row per formula in the database,
    // priced by the executing Type-B engine at each formula's calibration
    // point. The search is gated never-worse (the assert below is the
    // same property the proptests pin); discovered wins land in the
    // table and, when `BENCH_REPORT_JSON` is set, in the flat report.
    // `SEARCH_BEAM_WIDTH` bounds the beam so CI smoke runs stay cheap.
    let beam: usize = std::env::var("SEARCH_BEAM_WIDTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CostModel::paper().search_beam_width);
    let searched_cost = CostModel::paper().with_search(true).with_beam_width(beam);
    let authored_cost = CostModel::paper();
    let mut rows = Vec::new();
    let mut pairs: Vec<(String, u64)> = Vec::new();
    let mut wins = 0usize;
    for formula in platform::FormulaDb::builtin().formulas() {
        let kind = formula.kind();
        let bits = if kind == platform::OpKind::Fp6Mul {
            170
        } else {
            160
        };
        let authored = Platform::new(authored_cost, 4, Hierarchy::TypeB)
            .composite_report(kind, bits)
            .cycles;
        let searched = Platform::new(searched_cost, 4, Hierarchy::TypeB)
            .composite_report(kind, bits)
            .cycles;
        assert!(
            searched <= authored,
            "{}: searched {searched} > authored {authored}",
            formula.name()
        );
        if searched < authored {
            wins += 1;
        }
        rows.push(Row {
            label: format!(
                "{} ({bits} bits): authored {authored}, searched {searched}",
                formula.name()
            ),
            paper: "-".into(),
            measured: format!("{:+.1}%", delta_pct(authored, searched)),
        });
        let key = formula.name().replace('-', "_");
        pairs.push((format!("search_{key}_authored_cycles"), authored));
        pairs.push((format!("search_{key}_searched_cycles"), searched));
    }
    rows.push(Row {
        label: format!("formulas with a discovered win (beam width {beam})"),
        paper: "-".into(),
        measured: format!("{wins}/{}", platform::FormulaDb::builtin().formulas().len()),
    });
    print_table(
        "Ablation: superoptimizing search vs hand-authored sequences",
        &rows,
    );
    if let Ok(path) = std::env::var("BENCH_REPORT_JSON") {
        let path = bench::json::report_path(&path);
        let mut merged = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| bench::json::parse_object(&text).ok())
            .unwrap_or_default();
        merged.retain(|(k, _)| !k.starts_with("search_"));
        merged.extend(pairs);
        std::fs::write(&path, bench::json::write_object(&merged)).expect("write BENCH_REPORT_JSON");
    }
}

fn pd_fast_sweep() {
    // The Table 2 ECC PD ablation: the same doubling priced through the
    // general 10-MM Jacobian sequence versus the shortened 8-MM a = -3
    // sequence. The Type-A delta is the fidelity story (the paper's 5793
    // row matches the fast sequence); the last rows propagate the delta
    // into the Table 3 scalar-multiplication latency via the ladder knob
    // and show the compiler's scheduling win on the sequence itself.
    let mut rows = Vec::new();
    let pd = |hierarchy: Hierarchy, fast: bool| -> u64 {
        let plat = Platform::new(CostModel::paper(), 4, hierarchy);
        if fast {
            plat.ecc_point_doubling_fast_report(160).cycles
        } else {
            plat.ecc_point_doubling_report(160).cycles
        }
    };
    for (label, paper_cycles, hierarchy) in [
        ("Type-A ECC PD", paper::ECC_PD_TYPE_A, Hierarchy::TypeA),
        ("Type-B ECC PD", paper::ECC_PD_TYPE_B, Hierarchy::TypeB),
    ] {
        let general = pd(hierarchy, false);
        let fast = pd(hierarchy, true);
        rows.push(Row {
            label: format!("{label}: general {general}, fast {fast}"),
            paper: format!("{paper_cycles}"),
            measured: format!("{:+.1}%", delta_pct(general, fast)),
        });
    }
    // The compiler's list-scheduling pass on the fast sequence: hazard-free
    // neighbour pairs before and after scheduling.
    let compiled = platform::compile(platform::OpKind::EccPdFast, 160, &CostModel::paper());
    let reorder = compiled
        .passes()
        .iter()
        .find(|p| p.pass == "list-schedule")
        .expect("fast PD is scheduled");
    rows.push(Row {
        label: format!(
            "fast PD prefetch pairs: authored {}, scheduled {}",
            reorder.pairs_before, reorder.pairs_after
        ),
        paper: "-".into(),
        measured: format!(
            "{:+.1}%",
            delta_pct(reorder.pairs_before as u64, reorder.pairs_after as u64)
        ),
    });
    // Full 160-bit ladder (Table 3): the knob swaps the PD sequence under
    // the double-and-add driver; everything else is identical.
    let curve = ecc::Curve::p160_reproduction().expect("built-in curve");
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let point = curve.random_point(&mut rng);
    let scalar = BigUint::random_bits(&mut rng, 160);
    let ladder = |fast: bool| -> u64 {
        let cost = CostModel::paper().with_fast_pd(fast);
        let plat = Platform::new(cost, 4, Hierarchy::TypeB);
        plat.ecc_scalar_multiplication(&curve, &point, &scalar)
            .1
            .cycles
    };
    let (general, fast) = (ladder(false), ladder(true));
    rows.push(Row {
        label: format!("160-bit scalar mult.: general {general}, fast {fast}"),
        paper: format!("{:.1} ms", paper::ECC_MS),
        measured: format!("{:+.1}%", delta_pct(general, fast)),
    });
    print_table(
        "Ablation: general Jacobian vs fast a=-3 ECC point doubling",
        &rows,
    );
}

fn pa_mixed_sweep() {
    // The Table 2 ECC fidelity ablation: the same point addition priced
    // through the general 16-MM Jacobian sequence versus the 13-MM
    // mixed-coordinate sequence the scalar ladder actually runs (affine
    // addend, Z2 = 1). The last row propagates the delta into the Table 3
    // scalar-multiplication latency via the ladder knob.
    let mut rows = Vec::new();
    let pa = |hierarchy: Hierarchy, mixed: bool| -> u64 {
        let plat = Platform::new(CostModel::paper(), 4, hierarchy);
        if mixed {
            plat.ecc_point_addition_mixed_report(160).cycles
        } else {
            plat.ecc_point_addition_report(160).cycles
        }
    };
    for (label, paper_cycles, hierarchy) in [
        ("Type-A ECC PA", paper::ECC_PA_TYPE_A, Hierarchy::TypeA),
        ("Type-B ECC PA", paper::ECC_PA_TYPE_B, Hierarchy::TypeB),
    ] {
        let general = pa(hierarchy, false);
        let mixed = pa(hierarchy, true);
        rows.push(Row {
            label: format!("{label}: general {general}, mixed {mixed}"),
            paper: format!("{paper_cycles}"),
            measured: format!("{:+.1}%", delta_pct(general, mixed)),
        });
    }
    // Full 160-bit ladder (Table 3): the knob swaps the PA sequence under
    // the double-and-add driver; everything else is identical.
    let curve = ecc::Curve::p160_reproduction().expect("built-in curve");
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let point = curve.random_point(&mut rng);
    let scalar = BigUint::random_bits(&mut rng, 160);
    let ladder = |mixed: bool| -> u64 {
        let cost = CostModel::paper().with_mixed_pa(mixed);
        let plat = Platform::new(cost, 4, Hierarchy::TypeB);
        plat.ecc_scalar_multiplication(&curve, &point, &scalar)
            .1
            .cycles
    };
    let (general, mixed) = (ladder(false), ladder(true));
    rows.push(Row {
        label: format!("160-bit scalar mult.: general {general}, mixed {mixed}"),
        paper: format!("{:.1} ms", paper::ECC_MS),
        measured: format!("{:+.1}%", delta_pct(general, mixed)),
    });
    print_table(
        "Ablation: general Jacobian vs mixed-coordinate ECC point addition",
        &rows,
    );
}

fn dual_path_sweep() {
    // The Table 2 fidelity ablation: the same sequences priced with the
    // data-dependent conditional-correction MA/MS (dual-path off) versus
    // the speculative constant-time adder (paper calibration). The leaf
    // rows show the worst case (correction taken), which the dual path
    // turns into the only case.
    let speculative = CostModel::paper();
    let conditional = CostModel::paper().with_dual_path(false);
    let mut rows = Vec::new();

    let worst_ma_ms = |cost: CostModel, bits: usize| -> (u64, u64) {
        let cp = Coprocessor::new(cost, 4);
        (cp.mod_add_worst_cycles(bits), cp.mod_sub_worst_cycles(bits))
    };
    for bits in [160usize, 170] {
        let (ma_cond, ms_cond) = worst_ma_ms(conditional, bits);
        let (ma_dual, ms_dual) = worst_ma_ms(speculative, bits);
        rows.push(Row {
            label: format!("{bits}-bit MA worst case: conditional {ma_cond}, dual-path {ma_dual}"),
            paper: "-".into(),
            measured: format!("{:+.1}%", delta_pct(ma_cond, ma_dual)),
        });
        rows.push(Row {
            label: format!("{bits}-bit MS worst case: conditional {ms_cond}, dual-path {ms_dual}"),
            paper: "-".into(),
            measured: format!("{:+.1}%", delta_pct(ms_cond, ms_dual)),
        });
    }

    let composite =
        |label: &str, paper_cycles: u64, probe: &dyn Fn(&Platform) -> u64, hierarchy: Hierarchy| {
            let cond = probe(&Platform::new(conditional, 4, hierarchy));
            let dual = probe(&Platform::new(speculative, 4, hierarchy));
            Row {
                label: format!("{label}: conditional {cond}, dual-path {dual}"),
                paper: format!("{paper_cycles}"),
                measured: format!("{:+.1}%", delta_pct(cond, dual)),
            }
        };
    rows.push(composite(
        "Type-A T6 mult.",
        paper::T6_MULT_TYPE_A,
        &|p| p.fp6_multiplication_report(170).cycles,
        Hierarchy::TypeA,
    ));
    rows.push(composite(
        "Type-B T6 mult.",
        paper::T6_MULT_TYPE_B,
        &|p| p.fp6_multiplication_report(170).cycles,
        Hierarchy::TypeB,
    ));
    rows.push(composite(
        "Type-B ECC PA",
        paper::ECC_PA_TYPE_B,
        &|p| p.ecc_point_addition_report(160).cycles,
        Hierarchy::TypeB,
    ));
    rows.push(composite(
        "Type-B ECC PD",
        paper::ECC_PD_TYPE_B,
        &|p| p.ecc_point_doubling_report(160).cycles,
        Hierarchy::TypeB,
    ));
    print_table(
        "Ablation: conditional-correction vs speculative dual-path MA/MS",
        &rows,
    );
}

/// Relative change going from `from` to `to`, in percent.
fn delta_pct(from: u64, to: u64) -> f64 {
    100.0 * (to as f64 - from as f64) / from as f64
}

fn schedule_sweep() {
    // The headline fidelity ablation: the same microcode, accounted flat
    // (every event sequential) versus through the pipelined stage model.
    let mut rows = Vec::new();
    for (bits, paper_cycles) in [
        (160usize, paper::MM_160),
        (170, paper::MM_170),
        (256, 0),
        (1024, paper::MM_1024),
    ] {
        let seq = Coprocessor::new(CostModel::paper_sequential(), 4).mont_mul_cycles(bits);
        let pip = Coprocessor::new(CostModel::paper(), 4).mont_mul_cycles(bits);
        rows.push(Row {
            label: format!("{bits}-bit MM: sequential {seq}, pipelined {pip}"),
            paper: if paper_cycles > 0 {
                format!("{paper_cycles}")
            } else {
                "-".into()
            },
            measured: format!("{:.2}x overlap win", seq as f64 / pip as f64),
        });
    }
    // MAC pipeline depth: deeper pipelines stretch the dependent
    // T-computation chain without helping throughput-bound phases.
    for depth in [1u64, 2, 4, 8] {
        let cost = CostModel {
            mac_pipeline_depth: depth,
            ..CostModel::paper()
        };
        let pip = Coprocessor::new(cost, 4).mont_mul_cycles(170);
        rows.push(Row {
            label: format!("170-bit MM, MAC pipeline depth {depth}"),
            paper: if depth == CostModel::paper().mac_pipeline_depth {
                format!("{}", paper::MM_170)
            } else {
                "-".into()
            },
            measured: format!("{pip} cycles"),
        });
    }
    print_table(
        "Ablation: schedule model (sequential baseline vs pipelined stages)",
        &rows,
    );
}

fn interrupt_sweep() {
    let mut rows = Vec::new();
    for interrupt in [0u64, 46, 92, 184, 368] {
        let cost = CostModel {
            interrupt_cycles: interrupt,
            ..CostModel::paper()
        };
        let a = Platform::new(cost, 4, Hierarchy::TypeA)
            .fp6_multiplication_report(170)
            .cycles;
        let b = Platform::new(cost, 4, Hierarchy::TypeB)
            .fp6_multiplication_report(170)
            .cycles;
        rows.push(Row {
            label: format!("interrupt = {interrupt} cycles: Type-A {a}, Type-B {b}"),
            paper: if interrupt == 184 {
                "3.78x".into()
            } else {
                "-".into()
            },
            measured: format!("{:.2}x", a as f64 / b as f64),
        });
    }
    print_table(
        "Ablation: communication overhead (Type-A / Type-B ratio)",
        &rows,
    );
}

fn window_sweep() {
    let params = CeilidhParams::toy().expect("toy parameters");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let (_, g) = params.random_subgroup_element(&mut rng);
    let exponent = BigUint::random_bits(&mut rng, 160);
    let mut rows = Vec::new();
    for window in [1usize, 2, 4, 6] {
        params.fp().reset_op_count();
        let _ = params.pow_window(&g, &exponent, window);
        let ops = params.fp().op_count();
        rows.push(Row {
            label: format!("torus exponentiation, {window}-bit window"),
            paper: "-".into(),
            measured: format!("{}M", ops.mul),
        });
    }
    print_table(
        "Ablation: windowed torus exponentiation (Fp multiplications)",
        &rows,
    );
}

fn core_sweep_rsa() {
    let mut rows = Vec::new();
    let single = Coprocessor::new(CostModel::paper(), 1).mont_mul_cycles(1024);
    for cores in [1usize, 2, 4, 8] {
        let cycles = Coprocessor::new(CostModel::paper(), cores).mont_mul_cycles(1024);
        rows.push(Row {
            label: format!("1024-bit MM on {cores} core(s)"),
            paper: "-".into(),
            measured: format!("{cycles} cycles ({:.2}x)", single as f64 / cycles as f64),
        });
    }
    print_table("Ablation: core count for the RSA multiplication", &rows);
}

fn future_work() {
    // Paper, Section 5: "by deploying fast modular adders, the performance
    // can be improved" — model a 2x faster memory/ALU path for MA/MS.
    let baseline = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
    let fast_adder_cost = CostModel {
        alu_cycles: 1,
        mem_cycles: 1,
        dispatch_cycles: 2,
        ..CostModel::paper()
    };
    let fast = Platform::new(fast_adder_cost, 4, Hierarchy::TypeB);
    let t6_base = baseline.fp6_multiplication_report(170).cycles;
    let t6_fast = fast.fp6_multiplication_report(170).cycles;
    let rows = vec![
        Row::cycles("T6 mult., baseline cost model", 5908, t6_base),
        Row::cycles("T6 mult., fast-adder cost model", 5908, t6_fast),
        Row::ratio("improvement", 1.0, t6_base as f64 / t6_fast as f64),
    ];
    print_table(
        "Ablation: the paper's future-work item (faster adders)",
        &rows,
    );
}

//! Regenerates Table 3: full public-key operations on the same platform.
//!
//! The latencies are obtained by running the full operations on the
//! simulated platform (Type-B hierarchy, 4 cores) with representative
//! exponents: a 170-bit exponent for the torus (as in the paper's 20 ms
//! figure), a 160-bit scalar for ECC and a full-length exponent for RSA.

use bench::{paper, print_table, Row};
use bignum::BigUint;
use ceilidh::CeilidhParams;
use ecc::Curve;
use platform::{CostModel, Hierarchy, Platform};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2008);
    let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
    let cost = *plat.cost();

    // 170-bit torus exponentiation.
    let params = CeilidhParams::date2008().expect("built-in parameters");
    let (_, base) = params.random_subgroup_element(&mut rng);
    let exponent = BigUint::random_bits(&mut rng, 170);
    let (_, torus_report) = plat.torus_exponentiation(&params, &base, &exponent);

    // 160-bit ECC scalar multiplication.
    let curve = Curve::p160_reproduction().expect("built-in curve");
    let point = curve.random_point(&mut rng);
    let scalar = BigUint::random_bits(&mut rng, 160);
    let (_, ecc_report) = plat.ecc_scalar_multiplication(&curve, &point, &scalar);

    // 1024-bit RSA exponentiation.
    let keys = rsa_torus::RsaKeyPair::generate(1024, &mut rng).expect("key generation");
    let message = BigUint::random_below(&mut rng, keys.public().modulus());
    let (_, rsa_report) =
        plat.rsa_exponentiation(keys.public().modulus(), &message, keys.private_exponent());

    let torus_ms = torus_report.time_ms(&cost);
    let ecc_ms = ecc_report.time_ms(&cost);
    let rsa_ms = rsa_report.time_ms(&cost);

    let rows = vec![
        Row {
            label: "Area [slices] (paper-reported only)".into(),
            paper: paper::AREA_SLICES.to_string(),
            measured: "n/a (no synthesis)".into(),
        },
        Row::millis("Frequency [MHz]", paper::FREQ_MHZ, cost.clock_mhz),
        Row::millis(
            "170-bit torus exponentiation [ms]",
            paper::TORUS_MS,
            torus_ms,
        ),
        Row::millis("1024-bit RSA exponentiation [ms]", paper::RSA_MS, rsa_ms),
        Row::millis("160-bit ECC scalar mult. [ms]", paper::ECC_MS, ecc_ms),
        Row::ratio(
            "RSA / torus",
            paper::RSA_MS / paper::TORUS_MS,
            rsa_ms / torus_ms,
        ),
        Row::ratio(
            "torus / ECC",
            paper::TORUS_MS / paper::ECC_MS,
            torus_ms / ecc_ms,
        ),
    ];
    print_table("Table 3: full public-key operations at 74 MHz", &rows);
    println!(
        "\n(torus: {} MM / {} MA+MS; ECC: {} MM; RSA: {} MM)",
        torus_report.modmuls,
        torus_report.modadds + torus_report.modsubs,
        ecc_report.modmuls,
        rsa_report.modmuls
    );
}

//! Regenerates Table 2: composite operations under Type-A and Type-B.
//!
//! The ECC point-addition rows are reproduced by the **mixed-coordinate**
//! sequence (affine addend, 13 MM) — the paper's cycle counts are only
//! consistent with that variant, and the scalar ladder always satisfies
//! its `Z2 = 1` precondition. The point-doubling rows split by hierarchy:
//! the **Type-A** row is reproduced by the fast `a = -3` doubling (8 MM —
//! the MicroBlaze generates Type-A sequences on the fly, and 5793 cycles
//! are only consistent with the shortened formulas), while the **Type-B**
//! row is reproduced by the general 10-MM doubling (the InsRom1 image).
//! The two remaining combinations are printed alongside as ablations
//! (no paper row).

use bench::{paper, print_table, Row};
use platform::{CostModel, Hierarchy, Platform};

fn main() {
    let type_a = Platform::new(CostModel::paper(), 4, Hierarchy::TypeA);
    let type_b = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);

    let t6_a = type_a.fp6_multiplication_report(170).cycles;
    let t6_b = type_b.fp6_multiplication_report(170).cycles;
    let pa_a = type_a.ecc_point_addition_mixed_report(160).cycles;
    let pa_b = type_b.ecc_point_addition_mixed_report(160).cycles;
    let pa_gen_a = type_a.ecc_point_addition_report(160).cycles;
    let pa_gen_b = type_b.ecc_point_addition_report(160).cycles;
    let pd_fast_a = type_a.ecc_point_doubling_fast_report(160).cycles;
    let pd_fast_b = type_b.ecc_point_doubling_fast_report(160).cycles;
    let pd_a = type_a.ecc_point_doubling_report(160).cycles;
    let pd_b = type_b.ecc_point_doubling_report(160).cycles;

    let rows = vec![
        Row::cycles("Type-A  torus T6 mult.", paper::T6_MULT_TYPE_A, t6_a),
        Row::cycles("Type-A  ECC PA (mixed)", paper::ECC_PA_TYPE_A, pa_a),
        Row::cycles(
            "Type-A  ECC PD (fast, a=-3)",
            paper::ECC_PD_TYPE_A,
            pd_fast_a,
        ),
        Row::cycles("Type-B  torus T6 mult.", paper::T6_MULT_TYPE_B, t6_b),
        Row::cycles("Type-B  ECC PA (mixed)", paper::ECC_PA_TYPE_B, pa_b),
        Row::cycles("Type-B  ECC PD (general)", paper::ECC_PD_TYPE_B, pd_b),
        Row {
            label: "Type-A  ECC PA (general, ablation)".into(),
            paper: "-".into(),
            measured: format!("{pa_gen_a}"),
        },
        Row {
            label: "Type-B  ECC PA (general, ablation)".into(),
            paper: "-".into(),
            measured: format!("{pa_gen_b}"),
        },
        Row {
            label: "Type-A  ECC PD (general, ablation)".into(),
            paper: "-".into(),
            measured: format!("{pd_a}"),
        },
        Row {
            label: "Type-B  ECC PD (fast, ablation)".into(),
            paper: "-".into(),
            measured: format!("{pd_fast_b}"),
        },
        Row::ratio(
            "T6 mult. speed-up (Type-B vs Type-A)",
            paper::T6_MULT_TYPE_A as f64 / paper::T6_MULT_TYPE_B as f64,
            t6_a as f64 / t6_b as f64,
        ),
        Row::ratio(
            "ECC PA speed-up (Type-B vs Type-A)",
            paper::ECC_PA_TYPE_A as f64 / paper::ECC_PA_TYPE_B as f64,
            pa_a as f64 / pa_b as f64,
        ),
        Row::ratio(
            "ECC PD speed-up (Type-B vs Type-A)",
            paper::ECC_PD_TYPE_A as f64 / paper::ECC_PD_TYPE_B as f64,
            pd_fast_a as f64 / pd_b as f64,
        ),
    ];
    print_table(
        "Table 2: cycles per composite operation (Type-A vs Type-B)",
        &rows,
    );
}

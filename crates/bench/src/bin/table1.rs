//! Regenerates Table 1: clock cycles of the primitive modular operations.

use bench::{paper, print_table, Row};
use platform::{CostModel, Hierarchy, Platform};

fn main() {
    let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
    let seq = Platform::new(CostModel::paper_sequential(), 4, Hierarchy::TypeB);
    let rows = vec![
        Row::cycles(
            "Interrupt handling",
            paper::INTERRUPT_CYCLES,
            plat.interrupt_cycles(),
        ),
        Row::cycles(
            "170-bit (torus) modular mult.",
            paper::MM_170,
            plat.montgomery_multiplication_report(170).cycles,
        ),
        Row::cycles(
            "170-bit (torus) modular add.",
            paper::MA_170,
            plat.modular_addition_report(170).cycles,
        ),
        Row::cycles(
            "170-bit (torus) modular sub.",
            paper::MS_170,
            plat.modular_subtraction_report(170).cycles,
        ),
        Row::cycles(
            "160-bit (ECC) modular mult.",
            paper::MM_160,
            plat.montgomery_multiplication_report(160).cycles,
        ),
        Row::cycles(
            "160-bit (ECC) modular add.",
            paper::MA_160,
            plat.modular_addition_report(160).cycles,
        ),
        Row::cycles(
            "160-bit (ECC) modular sub.",
            paper::MS_160,
            plat.modular_subtraction_report(160).cycles,
        ),
        Row::cycles(
            "1024-bit (RSA) modular mult.",
            paper::MM_1024,
            plat.montgomery_multiplication_report(1024).cycles,
        ),
        Row::ratio(
            "1024-bit MM / 170-bit MM",
            paper::MM_1024 as f64 / paper::MM_170 as f64,
            plat.montgomery_multiplication_report(1024).cycles as f64
                / plat.montgomery_multiplication_report(170).cycles as f64,
        ),
        Row::cycles(
            "170-bit MM (sequential baseline)",
            paper::MM_170,
            seq.montgomery_multiplication_report(170).cycles,
        ),
    ];
    print_table("Table 1: cycles per modular operation", &rows);
}

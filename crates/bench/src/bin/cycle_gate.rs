//! Cycle-accuracy regression gate for CI.
//!
//! Diffs the simulated cycle counts (either recomputed, or read from a
//! `BENCH_report.json` emitted by the `report` binary) against the
//! checked-in golden file `crates/bench/golden/cycles.json`, failing the
//! build when any metric drifts by more than its **per-row tolerance**:
//! Table 1 leaf operations carry ±2%, Table 2/3 composite rows ±5% (see
//! `bench::metrics::tolerance_pct`). The tolerances live in the golden
//! file itself (`{"cycles": N, "tol_pct": T}` rows), so review sees them
//! next to the numbers they guard; a bare `"name": N` row falls back to
//! the default ±2%. Setting `CYCLE_TOLERANCE_PCT` overrides every row's
//! tolerance — an escape hatch for local debugging, never for CI.
//!
//! Calibration changes are legitimate — but they must be acknowledged by
//! regenerating the golden file with `--write-golden`, which shows up in
//! review.
//!
//! When `$GITHUB_STEP_SUMMARY` is set (as it is inside every GitHub
//! Actions job), the gate additionally appends a markdown **reproduction
//! scorecard** to it — one row per gated metric with the model cycles,
//! the paper's value and delta where the paper reports one, the golden
//! drift against its tolerance, and a pass/fail verdict — so every PR
//! shows the per-row accuracy without digging through logs.
//!
//! Usage:
//!
//! ```text
//! cycle_gate                      # recompute metrics, diff against golden
//! cycle_gate --report FILE.json   # diff an emitted report against golden
//! cycle_gate --write-golden       # regenerate the golden file
//! ```

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use bench::{json, metrics, paper};
use platform::{CostModel, FormulaDb, Hierarchy, OpKind, Platform};

/// One row of the informational "searched vs authored" section: a formula
/// from the database priced through the executing Type-B engine with the
/// hand-authored order and with the superoptimizing search pass enabled.
struct SearchRow {
    formula: &'static str,
    bits: usize,
    authored: u64,
    searched: u64,
}

/// Prices every database formula under the authored order and the search
/// pass (beam width from `SEARCH_BEAM_WIDTH` when set, so CI smoke runs
/// stay cheap). Not gated: the golden rows pin the search-off calibration
/// bit-identical; the never-worse property itself is pinned by the
/// `search_properties` proptests and asserted by the `search_sweep`
/// ablation.
fn search_rows() -> Vec<SearchRow> {
    let beam: usize = std::env::var("SEARCH_BEAM_WIDTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CostModel::paper().search_beam_width);
    let searched_cost = CostModel::paper().with_search(true).with_beam_width(beam);
    FormulaDb::builtin()
        .formulas()
        .iter()
        .map(|f| {
            let bits = if f.kind() == OpKind::Fp6Mul { 170 } else { 160 };
            SearchRow {
                formula: f.name(),
                bits,
                authored: Platform::new(CostModel::paper(), 4, Hierarchy::TypeB)
                    .composite_report(f.kind(), bits)
                    .cycles,
                searched: Platform::new(searched_cost, 4, Hierarchy::TypeB)
                    .composite_report(f.kind(), bits)
                    .cycles,
            }
        })
        .collect()
}

/// One fully-evaluated scorecard row: a golden metric joined with its
/// measurement and, where the paper reports the number, the paper value.
struct ScoreRow {
    name: String,
    measured: u64,
    golden: u64,
    drift_pct: f64,
    tolerance_pct: f64,
    passed: bool,
}

impl ScoreRow {
    /// Delta of the measured value against the paper's, when the metric
    /// reproduces a published number.
    fn paper_delta(&self) -> Option<(u64, f64)> {
        let reference = paper::reference_cycles(&self.name)?;
        let delta = 100.0 * (self.measured as f64 - reference as f64) / reference as f64;
        Some((reference, delta))
    }
}

/// Renders one markdown table body for the given rows.
fn markdown_rows(out: &mut String, rows: &[&ScoreRow]) {
    out.push_str("| metric | model | paper | Δ paper | golden | drift | tol | status |\n");
    out.push_str("|---|---:|---:|---:|---:|---:|---:|:---:|\n");
    for row in rows {
        let (paper_col, delta_col) = match row.paper_delta() {
            Some((reference, delta)) => (reference.to_string(), format!("{delta:+.1}%")),
            None => ("—".to_string(), "—".to_string()),
        };
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {:+.2}% | ±{}% | {} |\n",
            row.name,
            row.measured,
            paper_col,
            delta_col,
            row.golden,
            row.drift_pct,
            row.tolerance_pct,
            if row.passed { "✅" } else { "❌" },
        ));
    }
}

/// Renders the markdown reproduction scorecard appended to
/// `$GITHUB_STEP_SUMMARY`: the paper-reproduction rows first, then the
/// beyond-paper 256-bit predictions and the throughput-engine serving
/// rows in their own sections so reviewers never mistake a prediction or
/// a serving number for a reproduced one.
fn markdown_scorecard(rows: &[ScoreRow], search: &[SearchRow], failures: &[String]) -> String {
    let (engine, model): (Vec<&ScoreRow>, Vec<&ScoreRow>) =
        rows.iter().partition(|row| row.name.starts_with("engine_"));
    let (predictions, reproductions): (Vec<&ScoreRow>, Vec<&ScoreRow>) = model
        .into_iter()
        .partition(|row| metrics::is_beyond_paper(&row.name));
    let mut out = String::from("## Cycle-accuracy scorecard\n\n");
    markdown_rows(&mut out, &reproductions);
    if !predictions.is_empty() {
        out.push_str(
            "\n### Beyond-paper predictions (256-bit standards curves)\n\n\
             Cycle counts from the same calibrated model at an operand size \
             the paper never reports — gated against drift at the prediction \
             tolerance, with no paper column by construction.\n\n",
        );
        markdown_rows(&mut out, &predictions);
    }
    if !engine.is_empty() {
        out.push_str(
            "\n### Throughput-engine serving rows\n\n\
             Deterministic virtual-time serving metrics (ops/sec, tail \
             latency, batch cache hit rate) from the fixed mixed traffic \
             trace — the Fig. 5 scaling story extended from cores to \
             coprocessor instances. Model columns are not cycles for the \
             ops/sec and hit-rate rows; the gate pins them for drift like \
             every other row.\n\n",
        );
        markdown_rows(&mut out, &engine);
    }
    if !search.is_empty() {
        out.push_str(
            "\n### Searched vs authored sequences\n\n\
             The superoptimizing search pass against the hand-authored \
             InsRom orders, per formula in the database (informational — \
             the gated rows above run with search off, and the never-worse \
             property is pinned by the `search_properties` proptests).\n\n\
             | formula | bits | authored | searched | Δ |\n\
             |---|---:|---:|---:|---:|\n",
        );
        for row in search {
            let delta = 100.0 * (row.searched as f64 - row.authored as f64) / row.authored as f64;
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {delta:+.1}% |\n",
                row.formula, row.bits, row.authored, row.searched
            ));
        }
    }
    let verdict = if failures.is_empty() {
        format!(
            "\nAll {} metrics within tolerance. Paper deltas are relative to \
             Tables 1–3 of the paper; golden drift is relative to the \
             checked-in calibration (`crates/bench/golden/cycles.json`).\n",
            rows.len()
        )
    } else {
        let mut v = String::from("\n**Gate failed:**\n\n");
        for f in failures {
            v.push_str(&format!("- {f}\n"));
        }
        v
    };
    out.push_str(&verdict);
    out
}

/// Appends the scorecard to `$GITHUB_STEP_SUMMARY` when the variable is
/// set (i.e. when running inside a GitHub Actions step).
fn publish_step_summary(rows: &[ScoreRow], search: &[SearchRow], failures: &[String]) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let card = markdown_scorecard(rows, search, failures);
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        Ok(mut f) => {
            if let Err(e) = f.write_all(card.as_bytes()) {
                eprintln!("warning: cannot write step summary {path}: {e}");
            }
        }
        Err(e) => eprintln!("warning: cannot open step summary {path}: {e}"),
    }
}

/// Relative drift allowed for golden rows without an explicit tolerance,
/// in percent.
const DEFAULT_TOLERANCE_PCT: f64 = 2.0;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("cycles.json")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let golden = golden_path();

    if args.iter().any(|a| a == "--write-golden") {
        let rows: Vec<json::GoldenRow> = metrics::collect()
            .into_iter()
            .map(|(name, cycles)| json::GoldenRow {
                tol_pct: Some(metrics::tolerance_pct(&name)),
                name,
                cycles,
            })
            .collect();
        let text = json::write_golden(&rows);
        std::fs::create_dir_all(golden.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&golden, text).expect("write golden file");
        println!("wrote {}", golden.display());
        return ExitCode::SUCCESS;
    }

    let measured = match args.iter().position(|a| a == "--report") {
        Some(i) => {
            let path = args.get(i + 1).expect("--report needs a file argument");
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read report {path}: {e}"));
            json::parse_object(&text).expect("malformed report JSON")
        }
        None => metrics::collect(),
    };

    let golden_text = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); run `cargo run -p bench --bin cycle_gate -- \
             --write-golden` to create it",
            golden.display()
        )
    });
    let expected = json::parse_golden(&golden_text).expect("malformed golden JSON");

    // The env override beats the per-row tolerances (a local-debugging
    // escape hatch to loosen or tighten the whole gate at once).
    let tolerance_override = std::env::var("CYCLE_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    let mut failures = Vec::new();
    let mut score_rows = Vec::new();
    println!(
        "{:<26} {:>10} {:>10} {:>9} {:>7}",
        "metric", "golden", "measured", "drift", "tol"
    );
    for row in &expected {
        let tolerance_pct =
            tolerance_override.unwrap_or_else(|| row.tol_pct.unwrap_or(DEFAULT_TOLERANCE_PCT));
        match measured.iter().find(|(k, _)| *k == row.name) {
            None => failures.push(format!("metric {} missing from measurement", row.name)),
            Some((_, got)) => {
                let drift_pct = if row.cycles == 0 {
                    if *got == 0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    100.0 * (*got as f64 - row.cycles as f64) / row.cycles as f64
                };
                let ok = drift_pct.abs() <= tolerance_pct;
                println!(
                    "{:<26} {:>10} {got:>10} {drift_pct:>+8.2}% {:>6.1}% {}",
                    row.name,
                    row.cycles,
                    tolerance_pct,
                    if ok { "" } else { " <-- FAIL" }
                );
                if !ok {
                    failures.push(format!(
                        "{}: golden {}, measured {got} ({drift_pct:+.2}%, tolerance ±{tolerance_pct}%)",
                        row.name, row.cycles
                    ));
                }
                score_rows.push(ScoreRow {
                    name: row.name.clone(),
                    measured: *got,
                    golden: row.cycles,
                    drift_pct,
                    tolerance_pct,
                    passed: ok,
                });
            }
        }
    }
    // Informational rows ride along in the same report file but are
    // never gated: `info_` keys from the report binary and the speedup
    // ratios the Criterion harnesses merge in (host-dependent, so no
    // golden value can pin them).
    const INFORMATIONAL_PREFIXES: [&str; 4] = ["info_", "fixed_vs_heap_", "ladder_", "mont_batch_"];
    for (name, _) in &measured {
        if INFORMATIONAL_PREFIXES.iter().any(|p| name.starts_with(p)) {
            continue;
        }
        if !expected.iter().any(|row| &row.name == name) {
            failures.push(format!(
                "metric {name} not in golden file — regenerate with --write-golden"
            ));
        }
    }

    // The informational searched-vs-authored comparison: printed for every
    // run and appended to the step summary, never part of the gate.
    let search = search_rows();
    println!("\nsearched vs authored (informational, search off in the gated rows):");
    for row in &search {
        let delta = 100.0 * (row.searched as f64 - row.authored as f64) / row.authored as f64;
        println!(
            "  {:<16} {:>4} bits: authored {:>6}, searched {:>6} ({delta:+.1}%)",
            row.formula, row.bits, row.authored, row.searched
        );
    }

    publish_step_summary(&score_rows, &search, &failures);

    if failures.is_empty() {
        println!(
            "\ncycle-accuracy gate: all {} metrics within tolerance",
            expected.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\ncycle-accuracy gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "If the calibration change is intentional, regenerate the golden file:\n  \
             cargo run -p bench --bin cycle_gate -- --write-golden"
        );
        ExitCode::FAILURE
    }
}

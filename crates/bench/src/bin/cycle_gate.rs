//! Cycle-accuracy regression gate for CI.
//!
//! Diffs the simulated cycle counts (either recomputed, or read from a
//! `BENCH_report.json` emitted by the `report` binary) against the
//! checked-in golden file `crates/bench/golden/cycles.json`, failing the
//! build when any metric drifts by more than its **per-row tolerance**:
//! Table 1 leaf operations carry ±2%, Table 2/3 composite rows ±5% (see
//! `bench::metrics::tolerance_pct`). The tolerances live in the golden
//! file itself (`{"cycles": N, "tol_pct": T}` rows), so review sees them
//! next to the numbers they guard; a bare `"name": N` row falls back to
//! the default ±2%. Setting `CYCLE_TOLERANCE_PCT` overrides every row's
//! tolerance — an escape hatch for local debugging, never for CI.
//!
//! Calibration changes are legitimate — but they must be acknowledged by
//! regenerating the golden file with `--write-golden`, which shows up in
//! review.
//!
//! Usage:
//!
//! ```text
//! cycle_gate                      # recompute metrics, diff against golden
//! cycle_gate --report FILE.json   # diff an emitted report against golden
//! cycle_gate --write-golden       # regenerate the golden file
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use bench::{json, metrics};

/// Relative drift allowed for golden rows without an explicit tolerance,
/// in percent.
const DEFAULT_TOLERANCE_PCT: f64 = 2.0;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("cycles.json")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let golden = golden_path();

    if args.iter().any(|a| a == "--write-golden") {
        let rows: Vec<json::GoldenRow> = metrics::collect()
            .into_iter()
            .map(|(name, cycles)| json::GoldenRow {
                tol_pct: Some(metrics::tolerance_pct(&name)),
                name,
                cycles,
            })
            .collect();
        let text = json::write_golden(&rows);
        std::fs::create_dir_all(golden.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&golden, text).expect("write golden file");
        println!("wrote {}", golden.display());
        return ExitCode::SUCCESS;
    }

    let measured = match args.iter().position(|a| a == "--report") {
        Some(i) => {
            let path = args.get(i + 1).expect("--report needs a file argument");
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read report {path}: {e}"));
            json::parse_object(&text).expect("malformed report JSON")
        }
        None => metrics::collect(),
    };

    let golden_text = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); run `cargo run -p bench --bin cycle_gate -- \
             --write-golden` to create it",
            golden.display()
        )
    });
    let expected = json::parse_golden(&golden_text).expect("malformed golden JSON");

    // The env override beats the per-row tolerances (a local-debugging
    // escape hatch to loosen or tighten the whole gate at once).
    let tolerance_override = std::env::var("CYCLE_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    let mut failures = Vec::new();
    println!(
        "{:<26} {:>10} {:>10} {:>9} {:>7}",
        "metric", "golden", "measured", "drift", "tol"
    );
    for row in &expected {
        let tolerance_pct =
            tolerance_override.unwrap_or_else(|| row.tol_pct.unwrap_or(DEFAULT_TOLERANCE_PCT));
        match measured.iter().find(|(k, _)| *k == row.name) {
            None => failures.push(format!("metric {} missing from measurement", row.name)),
            Some((_, got)) => {
                let drift_pct = if row.cycles == 0 {
                    if *got == 0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    100.0 * (*got as f64 - row.cycles as f64) / row.cycles as f64
                };
                let ok = drift_pct.abs() <= tolerance_pct;
                println!(
                    "{:<26} {:>10} {got:>10} {drift_pct:>+8.2}% {:>6.1}% {}",
                    row.name,
                    row.cycles,
                    tolerance_pct,
                    if ok { "" } else { " <-- FAIL" }
                );
                if !ok {
                    failures.push(format!(
                        "{}: golden {}, measured {got} ({drift_pct:+.2}%, tolerance ±{tolerance_pct}%)",
                        row.name, row.cycles
                    ));
                }
            }
        }
    }
    for (name, _) in &measured {
        if !expected.iter().any(|row| &row.name == name) {
            failures.push(format!(
                "metric {name} not in golden file — regenerate with --write-golden"
            ));
        }
    }

    if failures.is_empty() {
        println!(
            "\ncycle-accuracy gate: all {} metrics within tolerance",
            expected.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\ncycle-accuracy gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "If the calibration change is intentional, regenerate the golden file:\n  \
             cargo run -p bench --bin cycle_gate -- --write-golden"
        );
        ExitCode::FAILURE
    }
}

//! Prints the derived claims of the paper's running text in one place
//! (the per-table binaries print the full tables).
//!
//! With `BENCH_REPORT_JSON=<path>` set, additionally emits the gated cycle
//! metrics as flat JSON — CI diffs that file against
//! `crates/bench/golden/cycles.json` via the `cycle_gate` binary.

use bench::{metrics, paper, print_table, Row};
use engine::{Fleet, FleetConfig, TrafficProfile};
use platform::{Coprocessor, CostModel, Hierarchy, Platform};

fn main() {
    let type_a = Platform::new(CostModel::paper(), 4, Hierarchy::TypeA);
    let type_b = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);

    let mm170 = type_b.montgomery_multiplication_report(170).cycles;
    let mm1024 = type_b.montgomery_multiplication_report(1024).cycles;
    let t6_a = type_a.fp6_multiplication_report(170).cycles;
    let t6_b = type_b.fp6_multiplication_report(170).cycles;
    // Table 2's ECC PA rows are reproduced by the mixed-coordinate
    // sequence (the ladder's case); the general 16-MM addition stays a
    // gated ablation baseline. The PD rows split by hierarchy: Type-A is
    // the fast a = -3 doubling, Type-B the general InsRom doubling.
    let pa_a = type_a.ecc_point_addition_mixed_report(160).cycles;
    let pa_b = type_b.ecc_point_addition_mixed_report(160).cycles;
    let pd_fast_a = type_a.ecc_point_doubling_fast_report(160).cycles;
    let pd_fast_b = type_b.ecc_point_doubling_fast_report(160).cycles;
    let pd_b = type_b.ecc_point_doubling_report(160).cycles;

    // Table 3 shape from composite costs (full drivers are in `table3`).
    // The default ladder (CostModel::paper) runs the fast doubling; the
    // InsRom-faithful composition with the general doubling is what the
    // paper's own Table 2 rows compose to.
    let torus = (170 + 85) * t6_b;
    let ecc = 160 * pd_fast_b + 80 * pa_b;
    let ecc_insrom = 160 * pd_b + 80 * pa_b;
    let rsa = 1536 * (mm1024 + type_b.interrupt_cycles());
    let to_ms = |c: u64| type_b.cost().cycles_to_ms(c);

    let mc1 = Coprocessor::new(CostModel::paper(), 1).mont_mul_cycles(256);
    let mc4 = Coprocessor::new(CostModel::paper(), 4).mont_mul_cycles(256);
    let mm170_seq = Coprocessor::new(CostModel::paper_sequential(), 4).mont_mul_cycles(170);

    let rows = vec![
        Row::cycles(
            "170-bit MM, pipelined schedule (Table 1)",
            paper::MM_170,
            mm170,
        ),
        Row::cycles(
            "170-bit MM, sequential baseline (ablation)",
            paper::MM_170,
            mm170_seq,
        ),
        Row::ratio(
            "1024-bit MM vs 170-bit MM (Table 1)",
            paper::MM_1024 as f64 / paper::MM_170 as f64,
            mm1024 as f64 / mm170 as f64,
        ),
        Row::ratio(
            "Type-B speed-up, T6 mult (Table 2)",
            paper::T6_MULT_TYPE_A as f64 / paper::T6_MULT_TYPE_B as f64,
            t6_a as f64 / t6_b as f64,
        ),
        Row::ratio(
            "Type-B speed-up, ECC PA (Table 2)",
            paper::ECC_PA_TYPE_A as f64 / paper::ECC_PA_TYPE_B as f64,
            pa_a as f64 / pa_b as f64,
        ),
        Row::ratio(
            "Type-B speed-up, ECC PD (Table 2)",
            paper::ECC_PD_TYPE_A as f64 / paper::ECC_PD_TYPE_B as f64,
            pd_fast_a as f64 / pd_b as f64,
        ),
        Row::millis(
            "torus exponentiation [ms] (Table 3)",
            paper::TORUS_MS,
            to_ms(torus),
        ),
        Row::millis(
            "RSA exponentiation [ms] (Table 3)",
            paper::RSA_MS,
            to_ms(rsa),
        ),
        Row::millis(
            "ECC scalar mult [ms] (Table 3, fast-PD ladder)",
            paper::ECC_MS,
            to_ms(ecc),
        ),
        Row::millis(
            "ECC scalar mult [ms] (InsRom-general PD)",
            paper::ECC_MS,
            to_ms(ecc_insrom),
        ),
        Row::ratio(
            "CEILIDH faster than RSA (headline)",
            paper::RSA_MS / paper::TORUS_MS,
            rsa as f64 / torus as f64,
        ),
        Row::ratio(
            "ECC faster than CEILIDH",
            paper::TORUS_MS / paper::ECC_MS,
            torus as f64 / ecc as f64,
        ),
        Row::ratio(
            "4-core MM speed-up, 256-bit (Fig. 5)",
            paper::MULTICORE_SPEEDUP_4,
            mc1 as f64 / mc4 as f64,
        ),
    ];
    print_table("Derived claims: paper vs reproduction", &rows);

    // Throughput-engine serving numbers (beyond the paper): the gated
    // mixed trace served on growing fleets of the 4-core Type-B platform
    // — the Fig. 5 scaling story extended from cores to instances.
    let trace = TrafficProfile::mixed_date2008()
        .generate(metrics::ENGINE_TRACE_SEED, metrics::ENGINE_TRACE_REQUESTS);
    println!(
        "\nThroughput engine: {} requests, mixed sign/ECDH/RSA/torus trace (seed {})",
        metrics::ENGINE_TRACE_REQUESTS,
        metrics::ENGINE_TRACE_SEED
    );
    println!(
        "{:<11} {:>8} {:>10} {:>10} {:>6} {:>6}",
        "instances", "ops/sec", "p50 [ms]", "p99 [ms]", "util", "hit%"
    );
    for instances in [1usize, 2, 4, 8] {
        let summary = Fleet::new(FleetConfig::date2008(instances)).run(trace.clone());
        println!(
            "{instances:<11} {:>8} {:>10.2} {:>10.2} {:>5}% {:>5}%",
            summary.ops_per_sec,
            to_ms(summary.p50_latency_cycles),
            to_ms(summary.p99_latency_cycles),
            summary.utilization_pct(),
            summary.cache_hit_rate_pct(),
        );
    }

    // Saturation knee per fleet size: the offered load rises (mean
    // inter-arrival gap halves, starting from 2× the profile default)
    // until throughput stops improving by ≥ 5% — past that point extra
    // arrivals only grow the queue, so the gap where growth stalls is
    // where the fleet saturates. Informational (`info_` keys are exempt
    // from the cycle gate): it extends the scaling table above along the
    // load axis.
    println!("\nSaturation knee (gap halved until ops/sec growth stalls below 5%):");
    println!(
        "{:<11} {:>16} {:>8} {:>6}",
        "instances", "knee gap [cyc]", "ops/sec", "util"
    );
    let mut knee_rows: Vec<(String, u64)> = Vec::new();
    for instances in [1usize, 2, 4, 8] {
        let mut profile = TrafficProfile::mixed_date2008();
        profile.mean_interarrival *= 2;
        let run = |gap: u64| {
            let mut p = profile.clone();
            p.mean_interarrival = gap;
            let trace = p.generate(metrics::ENGINE_TRACE_SEED, metrics::ENGINE_TRACE_REQUESTS);
            Fleet::new(FleetConfig::date2008(instances)).run(trace)
        };
        let mut gap = profile.mean_interarrival;
        let mut summary = run(gap);
        let knee = loop {
            if gap == 0 {
                break summary; // saturated only at a pure burst
            }
            let next_gap = gap / 2;
            let next = run(next_gap);
            if next.ops_per_sec * 100 < summary.ops_per_sec * 105 {
                break summary; // < 5% growth: knee reached at `gap`
            }
            gap = next_gap;
            summary = next;
        };
        println!(
            "{instances:<11} {gap:>16} {:>8} {:>5}%",
            knee.ops_per_sec,
            knee.utilization_pct(),
        );
        knee_rows.push((format!("info_engine_knee_interarrival_x{instances}"), gap));
        knee_rows.push((
            format!("info_engine_knee_ops_per_sec_x{instances}"),
            knee.ops_per_sec,
        ));
    }

    if let Ok(path) = std::env::var("BENCH_REPORT_JSON") {
        let path = bench::json::report_path(&path);
        let mut collected = metrics::collect();
        let hit_rate = collected
            .iter()
            .find(|(k, _)| k == "program_cache_hit_rate_pct")
            .map(|&(_, v)| v)
            .unwrap_or(0);
        collected.extend(knee_rows);
        let text = bench::json::write_object(&collected);
        std::fs::write(&path, text).expect("write BENCH_REPORT_JSON");
        println!(
            "\nwrote gated cycle metrics to {} \
             (program-cache hit rate over the batch workload: {hit_rate}%)",
            path.display()
        );
    }
}

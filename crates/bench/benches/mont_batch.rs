//! Lane-interleaved Montgomery batch-kernel bench: `mont_mul_batch` at
//! LANES ∈ {2, 4, 8} against the same number of serial `mont_mul` calls
//! on the 256-bit secp256k1 field. The portable batch kernel advances
//! all lanes limb-by-limb, so the out-of-order core overlaps the
//! independent u128 carry chains; on AVX-512 IFMA hosts LANES ∈ {4, 8}
//! instead hit the vectorized radix-2^52 kernels — throughput, not
//! latency, is what improves either way.
//!
//! Under `cargo bench` with `BENCH_REPORT_JSON=<path>` set, the harness
//! re-times batch vs serial with a plain `Instant` loop and merges the
//! per-lane-count throughput ratios (×100, flat integer keys prefixed
//! `mont_batch_`) into that report file.

use bignum::fixed::{MontgomeryContext, Uint};
use bignum::BigUint;
use criterion::{black_box, criterion_group, Criterion};
use ecc::prelude::*;
use rand::SeedableRng;
use std::time::{Duration, Instant};

struct Fixture {
    ctx: MontgomeryContext<4>,
    a: [Uint<4>; 8],
    b: [Uint<4>; 8],
}

impl Fixture {
    fn new() -> Fixture {
        let curve = Curve::from_parameters::<Secp256k1>().expect("registered curve");
        let p = curve.fp().modulus().clone();
        let ctx = curve.fp().fixed256().expect("256-bit field").clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2048);
        let residue = |rng: &mut rand::rngs::StdRng| {
            let v = &BigUint::random_bits(rng, 256) % &p;
            ctx.to_mont(&Uint::from_biguint(&v).expect("reduced"))
        };
        let a = std::array::from_fn(|_| residue(&mut rng));
        let b = std::array::from_fn(|_| residue(&mut rng));
        Fixture { ctx, a, b }
    }

    fn lanes<const LANES: usize>(&self) -> ([Uint<4>; LANES], [Uint<4>; LANES]) {
        (
            std::array::from_fn(|l| self.a[l % 8]),
            std::array::from_fn(|l| self.b[l % 8]),
        )
    }

    /// LANES independent serial multiplications — the baseline the batch
    /// kernel's one pass replaces. Every lane's product is returned so
    /// the optimizer cannot dead-code-eliminate any of the calls.
    fn serial<const LANES: usize>(
        &self,
        a: &[Uint<4>; LANES],
        b: &[Uint<4>; LANES],
    ) -> [Uint<4>; LANES] {
        std::array::from_fn(|l| self.ctx.mont_mul(&a[l], &b[l]))
    }
}

fn bench_lanes<const LANES: usize>(c: &mut Criterion, f: &Fixture) {
    let (a, b) = f.lanes::<LANES>();
    let mut group = c.benchmark_group(format!("mont_batch/lanes{LANES}"));
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("serial", |bench| {
        bench.iter(|| f.serial::<LANES>(black_box(&a), black_box(&b)))
    });
    group.bench_function("batch", |bench| {
        bench.iter(|| f.ctx.mont_mul_batch::<LANES>(black_box(&a), black_box(&b)))
    });
    group.finish();
}

fn bench_mont_batch(c: &mut Criterion) {
    let f = Fixture::new();
    bench_lanes::<2>(c, &f);
    bench_lanes::<4>(c, &f);
    bench_lanes::<8>(c, &f);
}

/// Mean seconds per call of `f`, from a single `Instant` window sized off
/// a one-shot estimate (~100 ms of measurement).
fn secs_per_iter<T, F: FnMut() -> T>(mut f: F) -> f64 {
    let start = Instant::now();
    black_box(f());
    let est = start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.1 / est) as u64).clamp(1, 1_000_000);
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn speedup<const LANES: usize>(f: &Fixture) -> f64 {
    let (a, b) = f.lanes::<LANES>();
    secs_per_iter(|| f.serial::<LANES>(&a, &b))
        / secs_per_iter(|| f.ctx.mont_mul_batch::<LANES>(&a, &b))
}

/// Measures the batch-over-serial throughput ratios and merges them
/// (×100, rounded) into the flat JSON report at `path`, preserving any
/// keys already there.
fn emit_speedup_report(path: &str) {
    let path = bench::json::report_path(path);
    let f = Fixture::new();
    let s2 = speedup::<2>(&f);
    let s4 = speedup::<4>(&f);
    let s8 = speedup::<8>(&f);
    println!(
        "mont_mul_batch throughput vs serial: lanes2 {s2:.2}x, lanes4 {s4:.2}x, lanes8 {s8:.2}x"
    );

    let mut pairs = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| bench::json::parse_object(&text).ok())
        .unwrap_or_default();
    pairs.retain(|(k, _)| !k.starts_with("mont_batch_"));
    for (lanes, s) in [(2u64, s2), (4, s4), (8, s8)] {
        pairs.push((
            format!("mont_batch_lanes{lanes}_speedup_x100"),
            (s * 100.0).round() as u64,
        ));
    }
    std::fs::write(path, bench::json::write_object(&pairs)).expect("write BENCH_REPORT_JSON");
}

criterion_group!(benches, bench_mont_batch);

fn main() {
    benches();
    let bench_mode = std::env::args().skip(1).any(|arg| arg == "--bench");
    if bench_mode {
        if let Ok(path) = std::env::var("BENCH_REPORT_JSON") {
            emit_speedup_report(&path);
        }
    }
}

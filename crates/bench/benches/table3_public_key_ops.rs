//! Criterion bench behind Table 3: the three full public-key operations at
//! the paper's operand sizes, measured on the host library (wall clock).
//! The simulated-cycle version of Table 3 is produced by
//! `cargo run -p bench --bin table3`.

use bignum::BigUint;
use ceilidh::CeilidhParams;
use criterion::{criterion_group, criterion_main, Criterion};
use ecc::{Curve, ScalarMulAlgorithm};
use rand::SeedableRng;
use rsa_torus::RsaKeyPair;
use std::time::Duration;

fn bench_public_key_ops(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("table3/host");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    // 170-bit torus exponentiation.
    let params = CeilidhParams::date2008().unwrap();
    let (_, base) = params.random_subgroup_element(&mut rng);
    let exponent = BigUint::random_bits(&mut rng, 170);
    group.bench_function("torus_exponentiation_170", |b| {
        b.iter(|| params.pow(&base, &exponent))
    });

    // 160-bit ECC scalar multiplication.
    let curve = Curve::p160_reproduction().unwrap();
    let point = curve.random_point(&mut rng);
    let scalar = BigUint::random_bits(&mut rng, 160);
    group.bench_function("ecc_scalar_mult_160", |b| {
        b.iter(|| curve.scalar_mul(&point, &scalar, ScalarMulAlgorithm::DoubleAndAdd))
    });

    // 256-bit standards-curve scalar multiplication (beyond-paper size):
    // P-256 runs the shortened a = -3 doubling, secp256k1 the general one.
    for name in ["p256", "secp256k1"] {
        let curve = Curve::by_name(name).unwrap();
        let point = curve.random_point(&mut rng);
        let scalar = BigUint::random_bits(&mut rng, 256);
        group.bench_function(format!("ecc_scalar_mult_256_{name}"), |b| {
            b.iter(|| curve.scalar_mul(&point, &scalar, ScalarMulAlgorithm::DoubleAndAdd))
        });
    }

    // 1024-bit RSA private-key exponentiation (full length and CRT).
    let keys = RsaKeyPair::generate(1024, &mut rng).unwrap();
    let message = BigUint::random_below(&mut rng, keys.public().modulus());
    let ciphertext = keys.public().raw_encrypt(&message).unwrap();
    group.bench_function("rsa_exponentiation_1024", |b| {
        b.iter(|| keys.raw_decrypt(&ciphertext).unwrap())
    });
    group.bench_function("rsa_exponentiation_1024_crt", |b| {
        b.iter(|| keys.raw_decrypt_crt(&ciphertext).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_public_key_ops);
criterion_main!(benches);

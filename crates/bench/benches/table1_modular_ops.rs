//! Criterion bench behind Table 1: primitive modular operations, both on the
//! simulated coprocessor (cycle model) and on the host bignum library
//! (wall clock).

use bignum::{BigUint, MontgomeryParams};
use criterion::{criterion_group, criterion_main, Criterion};
use platform::{Coprocessor, CostModel};
use rand::SeedableRng;
use std::time::Duration;

fn bench_simulated_modular_ops(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let cp = Coprocessor::new(CostModel::paper(), 4);
    let mut group = c.benchmark_group("table1/simulated");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for bits in [160usize, 170, 1024] {
        let p = bignum::gen_prime(bits, &mut rng);
        let x = BigUint::random_below(&mut rng, &p);
        let y = BigUint::random_below(&mut rng, &p);
        group.bench_function(format!("mont_mul_{bits}"), |b| {
            b.iter(|| cp.mont_mul(&x, &y, &p))
        });
        group.bench_function(format!("mod_add_{bits}"), |b| {
            b.iter(|| cp.mod_add(&x, &y, &p))
        });
        group.bench_function(format!("mod_sub_{bits}"), |b| {
            b.iter(|| cp.mod_sub(&x, &y, &p))
        });
    }
    group.finish();
}

fn bench_host_montgomery(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("table1/host");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    for bits in [170usize, 1024] {
        let p = bignum::gen_prime(bits, &mut rng);
        let mont = MontgomeryParams::new(&p).unwrap();
        let x = mont.to_mont(&BigUint::random_below(&mut rng, &p));
        let y = mont.to_mont(&BigUint::random_below(&mut rng, &p));
        group.bench_function(format!("mont_mul_{bits}"), |b| {
            b.iter(|| mont.mont_mul(&x, &y))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulated_modular_ops, bench_host_montgomery);
criterion_main!(benches);

//! Fixed-backend ladder-variant bench: plain double-and-add against the
//! signed-digit NAF ladder and the `Window4` path (the cached fixed-base
//! comb for the curve's base point) on secp256k1, all running on the
//! stack-allocated `bignum::fixed` backend.
//!
//! Under `cargo bench` with `BENCH_REPORT_JSON=<path>` set, the harness
//! re-times the variants with a plain `Instant` loop and merges the
//! speedup-over-double-and-add ratios (×100, flat integer keys prefixed
//! `ladder_`) into that report file, next to the `fixed_vs_heap` rows.

use bignum::BigUint;
use criterion::{black_box, criterion_group, Criterion};
use ecc::prelude::*;
use rand::SeedableRng;
use std::time::{Duration, Instant};

struct Fixture {
    curve: Curve,
    k: BigUint,
}

impl Fixture {
    fn new() -> Fixture {
        let curve = Curve::from_parameters::<Secp256k1>().expect("registered curve");
        assert!(curve.fixed_backend().is_some(), "secp256k1 runs fixed");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1024);
        let k = BigUint::random_bits(&mut rng, 256);
        // Build (and cache) the comb table outside the timed region: the
        // bench measures the steady repeated-base state the engine sees.
        let _ = curve.scalar_mul(curve.base_point(), &k, ScalarMulAlgorithm::Window4);
        Fixture { curve, k }
    }

    fn run(&self, algorithm: ScalarMulAlgorithm) -> AffinePoint {
        self.curve.scalar_mul(
            black_box(self.curve.base_point()),
            black_box(&self.k),
            algorithm,
        )
    }
}

fn bench_ladder_variants(c: &mut Criterion) {
    let f = Fixture::new();
    let mut group = c.benchmark_group("ladder_variants/secp256k1_base");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("double_and_add", |b| {
        b.iter(|| f.run(ScalarMulAlgorithm::DoubleAndAdd))
    });
    group.bench_function("naf", |b| b.iter(|| f.run(ScalarMulAlgorithm::Naf)));
    group.bench_function("window4_comb", |b| {
        b.iter(|| f.run(ScalarMulAlgorithm::Window4))
    });
    group.finish();
}

/// Mean seconds per call of `f`, from a single `Instant` window sized off
/// a one-shot estimate (~100 ms of measurement).
fn secs_per_iter<T, F: FnMut() -> T>(mut f: F) -> f64 {
    let start = Instant::now();
    black_box(f());
    let est = start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.1 / est) as u64).clamp(1, 1_000_000);
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Measures the ladder speedups over double-and-add and merges them
/// (×100, rounded) into the flat JSON report at `path`, preserving any
/// keys already there.
fn emit_speedup_report(path: &str) {
    let path = bench::json::report_path(path);
    let f = Fixture::new();
    let baseline = secs_per_iter(|| f.run(ScalarMulAlgorithm::DoubleAndAdd));
    let naf = baseline / secs_per_iter(|| f.run(ScalarMulAlgorithm::Naf));
    let window = baseline / secs_per_iter(|| f.run(ScalarMulAlgorithm::Window4));
    println!("fixed ladder speedup over double-and-add: naf {naf:.2}x, window4(comb) {window:.2}x");

    let mut pairs = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| bench::json::parse_object(&text).ok())
        .unwrap_or_default();
    pairs.retain(|(k, _)| !k.starts_with("ladder_"));
    pairs.push((
        "ladder_naf_speedup_x100".to_string(),
        (naf * 100.0).round() as u64,
    ));
    pairs.push((
        "ladder_window_speedup_x100".to_string(),
        (window * 100.0).round() as u64,
    ));
    std::fs::write(path, bench::json::write_object(&pairs)).expect("write BENCH_REPORT_JSON");
}

criterion_group!(benches, bench_ladder_variants);

fn main() {
    benches();
    let bench_mode = std::env::args().skip(1).any(|arg| arg == "--bench");
    if bench_mode {
        if let Ok(path) = std::env::var("BENCH_REPORT_JSON") {
            emit_speedup_report(&path);
        }
    }
}

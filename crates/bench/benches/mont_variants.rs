//! Ablation bench: the three operand-scanning variants of Montgomery
//! multiplication (FIOS, as used by the paper's microcode, vs CIOS and SOS)
//! on the host bignum library.

use bignum::{BigUint, MontgomeryParams, ReductionKind};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::time::Duration;

fn bench_variants(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut group = c.benchmark_group("ablation/mont_variants");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    for bits in [170usize, 1024] {
        let p = bignum::gen_prime(bits, &mut rng);
        let mont = MontgomeryParams::new(&p).unwrap();
        let x = mont.to_mont(&BigUint::random_below(&mut rng, &p));
        let y = mont.to_mont(&BigUint::random_below(&mut rng, &p));
        for (name, kind) in [
            ("fios", ReductionKind::Fios),
            ("cios", ReductionKind::Cios),
            ("sos", ReductionKind::Sos),
        ] {
            group.bench_function(format!("{name}_{bits}"), |b| {
                b.iter(|| mont.mont_mul_with(&x, &y, kind))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);

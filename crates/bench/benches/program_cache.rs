//! Criterion bench behind the compile-once program layer: the cost of
//! rebuilding and re-scheduling a level-2 sequence on every call (the
//! pre-IR behaviour) versus fetching the `CompiledProgram` from the
//! `ProgramCache`, and the end-to-end effect on a full scalar
//! multiplication.

use bignum::BigUint;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecc::Curve;
use platform::{compile, sample_modulus, CostModel, Hierarchy, OpKind, Platform};
use std::time::Duration;

/// One compiled-program execution worth of probe state.
fn probe_slots(n: usize) -> Vec<BigUint> {
    (0..n)
        .map(|i| BigUint::from((i % 251 + 1) as u64))
        .collect()
}

fn bench_compile_vs_cache(c: &mut Criterion) {
    let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
    let cost = *plat.cost();
    let modulus = sample_modulus(160);
    let mut group = c.benchmark_group("program_cache/pd_fast");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    // The legacy shape: author + compile + schedule the sequence on every
    // iteration, then execute it.
    group.bench_function("compile_every_iteration", |b| {
        b.iter(|| {
            let program = compile(OpKind::EccPdFast, 160, &cost);
            let mut slots = probe_slots(program.slot_budget());
            black_box(plat.execute(&program, &modulus, &mut slots))
        })
    });
    // The compile-once shape: every iteration is a cache hit.
    group.bench_function("cache_reuse", |b| {
        b.iter(|| {
            let program = plat.compiled(OpKind::EccPdFast, 160);
            let mut slots = probe_slots(program.slot_budget());
            black_box(plat.execute(&program, &modulus, &mut slots))
        })
    });
    // Compilation alone, for scale (this is what every ladder step used
    // to pay implicitly by rebuilding the sequence vector).
    group.bench_function("compile_only", |b| {
        b.iter(|| black_box(compile(OpKind::Fp6Mul, 170, &cost)))
    });
    group.finish();
}

fn bench_ladder_end_to_end(c: &mut Criterion) {
    let curve = Curve::p160_reproduction().expect("built-in curve");
    let point = curve.base_point().clone();
    let k = BigUint::from(0x5ee5_c0de_dead_beefu64);
    let mut group = c.benchmark_group("program_cache/scalar_mult_64bit");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    // Warm cache (the production path): programs compiled once up front.
    let warm = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
    warm.ecc_scalar_multiplication(&curve, &point, &k);
    group.bench_function("warm_cache", |b| {
        b.iter(|| black_box(warm.ecc_scalar_multiplication(&curve, &point, &k)))
    });
    // Fresh platform per iteration: pays both compilations inside the
    // timed region (the closest analogue of the pre-IR rebuild cost that
    // still goes through the public API).
    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
            black_box(plat.ecc_scalar_multiplication(&curve, &point, &k))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compile_vs_cache, bench_ladder_end_to_end);
criterion_main!(benches);

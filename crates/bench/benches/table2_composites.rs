//! Criterion bench behind Table 2: composite operations (Fp6 multiplication,
//! ECC point addition/doubling) under Type-A and Type-B on the simulator,
//! plus the host field implementation as a baseline.

use ceilidh::CeilidhParams;
use criterion::{criterion_group, criterion_main, Criterion};
use platform::{CostModel, Hierarchy, Platform};
use rand::SeedableRng;
use std::time::Duration;

fn bench_simulated_composites(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/simulated");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for (name, hierarchy) in [("type_a", Hierarchy::TypeA), ("type_b", Hierarchy::TypeB)] {
        let plat = Platform::new(CostModel::paper(), 4, hierarchy);
        group.bench_function(format!("{name}/t6_mult_170"), |b| {
            b.iter(|| plat.fp6_multiplication_report(170))
        });
        group.bench_function(format!("{name}/ecc_pa_160"), |b| {
            b.iter(|| plat.ecc_point_addition_report(160))
        });
        group.bench_function(format!("{name}/ecc_pd_160"), |b| {
            b.iter(|| plat.ecc_point_doubling_report(160))
        });
    }
    group.finish();
}

fn bench_host_fp6_mult(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let params = CeilidhParams::date2008().unwrap();
    let fp6 = params.fp6();
    let a = fp6.random(&mut rng);
    let b = fp6.random(&mut rng);
    let mut group = c.benchmark_group("table2/host");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("fp6_mult_170", |bch| bch.iter(|| fp6.mul(&a, &b)));
    group.finish();
}

criterion_group!(benches, bench_simulated_composites, bench_host_fp6_mult);
criterion_main!(benches);

//! Host-backend bench: the const-generic fixed-limb backend
//! (`bignum::fixed`, 4 × 64-bit limbs on the stack) against the heap
//! `BigUint` backend (8 × 32-bit limbs in a `Vec`) on the two operations
//! the 256-bit curves live in — Montgomery multiplication and a full
//! scalar-multiplication ladder.
//!
//! Besides the usual Criterion timings, under `cargo bench` with
//! `BENCH_REPORT_JSON=<path>` set the harness re-times both backends with
//! a plain `Instant` loop and merges the speedup ratios (×100, as flat
//! integer keys) into that report file, so CI archives the measured
//! fixed-over-heap factor alongside the cycle metrics.

use bignum::fixed::Uint;
use bignum::{BigUint, MontgomeryParams};
use criterion::{black_box, criterion_group, Criterion};
use ecc::prelude::*;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Everything both backends need, built once: the secp256k1 curve, its
/// heap Montgomery parameters, the shared-radix fixed context, and one
/// reduced operand pair in both representations.
struct Fixture {
    curve: Curve,
    heap: MontgomeryParams,
    a_big: BigUint,
    b_big: BigUint,
    a_fix: Uint<4>,
    b_fix: Uint<4>,
    k: BigUint,
}

impl Fixture {
    fn new() -> Fixture {
        let curve = Curve::from_parameters::<Secp256k1>().expect("registered curve");
        let p = curve.fp().modulus().clone();
        let heap = MontgomeryParams::new(&p).expect("odd prime");
        let mut rng = rand::rngs::StdRng::seed_from_u64(256);
        let a = &BigUint::random_bits(&mut rng, 256) % &p;
        let b = &BigUint::random_bits(&mut rng, 256) % &p;
        let ctx = curve.fp().fixed256().expect("256-bit field").clone();
        let a_fix = ctx.to_mont(&Uint::from_biguint(&a).expect("reduced"));
        let b_fix = ctx.to_mont(&Uint::from_biguint(&b).expect("reduced"));
        let a_big = heap.to_mont(&a);
        let b_big = heap.to_mont(&b);
        let k = BigUint::random_bits(&mut rng, 256);
        Fixture {
            curve,
            heap,
            a_big,
            b_big,
            a_fix,
            b_fix,
            k,
        }
    }

    fn ctx(&self) -> &bignum::fixed::MontgomeryContext<4> {
        self.curve.fp().fixed256().expect("256-bit field")
    }
}

fn bench_montmul(c: &mut Criterion) {
    let f = Fixture::new();
    let mut group = c.benchmark_group("fixed_vs_heap/montmul_256");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("heap", |b| {
        b.iter(|| f.heap.mont_mul(black_box(&f.a_big), black_box(&f.b_big)))
    });
    group.bench_function("fixed", |b| {
        b.iter(|| f.ctx().mont_mul(black_box(&f.a_fix), black_box(&f.b_fix)))
    });
    group.finish();
}

fn bench_scalar_mul(c: &mut Criterion) {
    let f = Fixture::new();
    let mut group = c.benchmark_group("fixed_vs_heap/scalar_mul_256");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("heap", |b| {
        b.iter(|| {
            f.curve.scalar_mul_reference(
                black_box(f.curve.base_point()),
                black_box(&f.k),
                ScalarMulAlgorithm::DoubleAndAdd,
            )
        })
    });
    group.bench_function("fixed", |b| {
        b.iter(|| {
            f.curve.scalar_mul(
                black_box(f.curve.base_point()),
                black_box(&f.k),
                ScalarMulAlgorithm::DoubleAndAdd,
            )
        })
    });
    group.finish();
}

/// Mean seconds per call of `f`, from a single `Instant` window sized off
/// a one-shot estimate (~100 ms of measurement).
fn secs_per_iter<T, F: FnMut() -> T>(mut f: F) -> f64 {
    let start = Instant::now();
    black_box(f());
    let est = start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.1 / est) as u64).clamp(1, 1_000_000);
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Measures the fixed-over-heap speedups and merges them (×100, rounded)
/// into the flat JSON report at `path`, preserving any keys already there.
fn emit_speedup_report(path: &str) {
    let path = bench::json::report_path(path);
    let f = Fixture::new();
    let montmul = secs_per_iter(|| f.heap.mont_mul(&f.a_big, &f.b_big))
        / secs_per_iter(|| f.ctx().mont_mul(&f.a_fix, &f.b_fix));
    let ladder = secs_per_iter(|| {
        f.curve
            .scalar_mul_reference(f.curve.base_point(), &f.k, ScalarMulAlgorithm::DoubleAndAdd)
    }) / secs_per_iter(|| {
        f.curve
            .scalar_mul(f.curve.base_point(), &f.k, ScalarMulAlgorithm::DoubleAndAdd)
    });
    println!("fixed-over-heap speedup: montmul_256 {montmul:.2}x, scalar_mul_256 {ladder:.2}x");

    let mut pairs = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| bench::json::parse_object(&text).ok())
        .unwrap_or_default();
    pairs.retain(|(k, _)| !k.starts_with("fixed_vs_heap_"));
    pairs.push((
        "fixed_vs_heap_montmul_256_speedup_x100".to_string(),
        (montmul * 100.0).round() as u64,
    ));
    pairs.push((
        "fixed_vs_heap_scalar_mul_256_speedup_x100".to_string(),
        (ladder * 100.0).round() as u64,
    ));
    std::fs::write(path, bench::json::write_object(&pairs)).expect("write BENCH_REPORT_JSON");
}

criterion_group!(benches, bench_montmul, bench_scalar_mul);

fn main() {
    benches();
    // Speedup ratios only under a real `cargo bench` run (the harness
    // passes --bench; `cargo test --benches` passes --test) with a report
    // path to merge into.
    let bench_mode = std::env::args().skip(1).any(|arg| arg == "--bench");
    if bench_mode {
        if let Ok(path) = std::env::var("BENCH_REPORT_JSON") {
            emit_speedup_report(&path);
        }
    }
}

//! Criterion bench behind Figure 5: the multicore Montgomery multiplication
//! schedule swept over the number of cores.

use bignum::BigUint;
use criterion::{criterion_group, criterion_main, Criterion};
use platform::{Coprocessor, CostModel};
use rand::SeedableRng;
use std::time::Duration;

fn bench_multicore_schedule(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let p = bignum::gen_prime(256, &mut rng);
    let x = BigUint::random_below(&mut rng, &p);
    let y = BigUint::random_below(&mut rng, &p);
    let mut group = c.benchmark_group("fig5/simulated_256bit_mm");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for cores in [1usize, 2, 4, 8] {
        let cp = Coprocessor::new(CostModel::paper(), cores);
        group.bench_function(format!("{cores}_cores"), |b| {
            b.iter(|| cp.mont_mul(&x, &y, &p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multicore_schedule);
criterion_main!(benches);

//! Schnorr-style signatures over the torus subgroup.
//!
//! Signing uses one torus exponentiation (the operation the paper's
//! platform is benchmarked on) and verification uses two; the commitment is
//! hashed in compressed form, so signatures also benefit from the factor-3
//! bandwidth reduction.

use bignum::{mod_add, mod_mul, BigUint};
use rand::Rng;

use crate::compress::compress;
use crate::error::CeilidhError;
use crate::kdf::ToyKdf;
use crate::keys::{PublicKey, SecretKey};
use crate::params::CeilidhParams;
use crate::torus::TorusElement;

/// A Schnorr signature `(e, s)` with `e = H(R || m)` and `s = k + x·e mod q`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    /// The challenge scalar.
    pub e: BigUint,
    /// The response scalar.
    pub s: BigUint,
}

/// Signs `message` with the secret key.
///
/// # Errors
///
/// Returns [`CeilidhError::CompressionFailed`] only if no compressible
/// commitment could be sampled (practically unreachable).
pub fn sign<R: Rng + ?Sized>(
    params: &CeilidhParams,
    secret: &SecretKey,
    message: &[u8],
    rng: &mut R,
) -> Result<Signature, CeilidhError> {
    let one = BigUint::one();
    for _ in 0..64 {
        let k = &BigUint::random_below(rng, &(params.q() - &one)) + &one;
        let commitment = params.pow(&params.generator(), &k);
        let Ok(e) = challenge(params, &commitment, message) else {
            continue; // resample if the commitment is not compressible
        };
        if e.is_zero() {
            continue;
        }
        let s = mod_add(
            &k,
            &mod_mul(&(secret.scalar() % params.q()), &e, params.q()),
            params.q(),
        );
        return Ok(Signature { e, s });
    }
    Err(CeilidhError::CompressionFailed(
        "could not sample a compressible commitment",
    ))
}

/// Verifies a signature on `message` under `public`.
///
/// # Errors
///
/// Returns [`CeilidhError::VerificationFailed`] if the signature does not
/// verify (including malformed scalars).
pub fn verify(
    params: &CeilidhParams,
    public: &PublicKey,
    message: &[u8],
    signature: &Signature,
) -> Result<(), CeilidhError> {
    if signature.e >= *params.q() || signature.s >= *params.q() || signature.e.is_zero() {
        return Err(CeilidhError::VerificationFailed);
    }
    // R' = g^s · y^{-e}; inversion on the torus is a free conjugation.
    let gs = params.pow(&params.generator(), &signature.s);
    let ye = params.pow(public.element(), &signature.e);
    let r_prime = params.mul(&gs, &params.invert(&ye));
    let e_prime =
        challenge(params, &r_prime, message).map_err(|_| CeilidhError::VerificationFailed)?;
    if e_prime == signature.e {
        Ok(())
    } else {
        Err(CeilidhError::VerificationFailed)
    }
}

/// Fiat–Shamir challenge: hash of the compressed commitment and the message.
fn challenge(
    params: &CeilidhParams,
    commitment: &TorusElement,
    message: &[u8],
) -> Result<BigUint, CeilidhError> {
    let compressed = compress(params, commitment)?;
    let mut data = Vec::new();
    data.extend_from_slice(b"ceilidh-schnorr-v1");
    data.extend_from_slice(&compressed.u0.to_be_bytes());
    data.push(0xFF);
    data.extend_from_slice(&compressed.u1.to_be_bytes());
    data.push(compressed.hint);
    data.extend_from_slice(message);
    Ok(ToyKdf::hash_to_scalar(&data, params.q()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;
    use rand::SeedableRng;

    fn setup() -> (CeilidhParams, KeyPair, rand::rngs::StdRng) {
        let params = CeilidhParams::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(91);
        let kp = KeyPair::generate(&params, &mut rng);
        (params, kp, rng)
    }

    #[test]
    fn sign_and_verify() {
        let (params, kp, mut rng) = setup();
        for msg in [&b"hello"[..], b"", b"a much longer message to be signed"] {
            let sig = sign(&params, kp.secret(), msg, &mut rng).unwrap();
            assert!(verify(&params, kp.public(), msg, &sig).is_ok());
        }
    }

    #[test]
    fn tampered_message_fails() {
        let (params, kp, mut rng) = setup();
        let sig = sign(&params, kp.secret(), b"original", &mut rng).unwrap();
        assert_eq!(
            verify(&params, kp.public(), b"tampered", &sig).unwrap_err(),
            CeilidhError::VerificationFailed
        );
    }

    #[test]
    fn wrong_key_fails() {
        // The toy group has q = 37, so a signature still verifies under a
        // wrong key whenever the recomputed challenge collides (~1/36 per
        // draw); the seed is pinned to a rejecting draw of the workspace RNG.
        let params = CeilidhParams::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let kp = KeyPair::generate(&params, &mut rng);
        let other = KeyPair::generate(&params, &mut rng);
        let sig = sign(&params, kp.secret(), b"message", &mut rng).unwrap();
        if other.public() != kp.public() {
            assert!(verify(&params, other.public(), b"message", &sig).is_err());
        }
    }

    #[test]
    fn malformed_scalars_are_rejected() {
        let (params, kp, mut rng) = setup();
        let sig = sign(&params, kp.secret(), b"message", &mut rng).unwrap();
        let too_big = Signature {
            e: params.q().clone(),
            s: sig.s.clone(),
        };
        assert!(verify(&params, kp.public(), b"message", &too_big).is_err());
        let zero_e = Signature {
            e: BigUint::zero(),
            s: sig.s.clone(),
        };
        assert!(verify(&params, kp.public(), b"message", &zero_e).is_err());
    }

    #[test]
    fn signature_is_randomised_but_both_verify() {
        let (params, kp, mut rng) = setup();
        let s1 = sign(&params, kp.secret(), b"msg", &mut rng).unwrap();
        let s2 = sign(&params, kp.secret(), b"msg", &mut rng).unwrap();
        assert!(verify(&params, kp.public(), b"msg", &s1).is_ok());
        assert!(verify(&params, kp.public(), b"msg", &s2).is_ok());
    }
}

//! Key generation and Diffie–Hellman key agreement on the torus.

use bignum::BigUint;
use rand::Rng;

use crate::compress::{compress, CompressedTorus};
use crate::error::CeilidhError;
use crate::kdf::ToyKdf;
use crate::params::CeilidhParams;
use crate::torus::TorusElement;

/// A CEILIDH secret key: a scalar in `[1, q)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SecretKey {
    scalar: BigUint,
}

impl SecretKey {
    /// The secret scalar.
    pub fn scalar(&self) -> &BigUint {
        &self.scalar
    }
}

/// A CEILIDH public key: `g^x` on the torus.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PublicKey {
    element: TorusElement,
}

impl PublicKey {
    /// The torus element `g^x`.
    pub fn element(&self) -> &TorusElement {
        &self.element
    }

    /// Compresses the public key for transmission (two `Fp` elements plus a
    /// 2-bit hint — a third of the size of an `Fp6` element).
    ///
    /// # Errors
    ///
    /// Propagates [`CeilidhError::CompressionFailed`] in the (cryptographically
    /// impossible for honest keys) case `g^x = 1`.
    pub fn compress(&self, params: &CeilidhParams) -> Result<CompressedTorus, CeilidhError> {
        compress(params, &self.element)
    }
}

/// A CEILIDH key pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Generates a fresh key pair `(x, g^x)`.
    pub fn generate<R: Rng + ?Sized>(params: &CeilidhParams, rng: &mut R) -> Self {
        // x uniform in [1, q)
        let one = BigUint::one();
        let span = params.q() - &one;
        let scalar = &BigUint::random_below(rng, &span) + &one;
        Self::from_scalar(params, scalar)
    }

    /// Builds a key pair from an explicit secret scalar (reduced mod `q`).
    pub fn from_scalar(params: &CeilidhParams, scalar: BigUint) -> Self {
        let scalar = &scalar % params.q();
        let public = params.pow(&params.generator(), &scalar);
        KeyPair {
            secret: SecretKey { scalar },
            public: PublicKey { element: public },
        }
    }

    /// The secret half.
    pub fn secret(&self) -> &SecretKey {
        &self.secret
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }
}

/// Computes the Diffie–Hellman shared torus element `peer^x`.
pub fn shared_secret(params: &CeilidhParams, secret: &SecretKey, peer: &PublicKey) -> TorusElement {
    params.pow(&peer.element, &secret.scalar)
}

/// Computes a `len`-byte shared key by feeding the Diffie–Hellman element
/// through the [`ToyKdf`].
pub fn shared_secret_bytes(
    params: &CeilidhParams,
    secret: &SecretKey,
    peer: &PublicKey,
    len: usize,
) -> Vec<u8> {
    let element = shared_secret(params, secret, peer);
    let mut kdf = ToyKdf::new();
    for coeff in element.as_fp6().coeffs() {
        kdf.absorb(&params.fp().to_biguint(coeff).to_be_bytes());
        kdf.absorb(b"|");
    }
    kdf.squeeze(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::decompress;
    use rand::SeedableRng;

    fn params() -> CeilidhParams {
        CeilidhParams::toy().unwrap()
    }

    #[test]
    fn diffie_hellman_agreement() {
        let params = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        for _ in 0..5 {
            let alice = KeyPair::generate(&params, &mut rng);
            let bob = KeyPair::generate(&params, &mut rng);
            let k1 = shared_secret(&params, alice.secret(), bob.public());
            let k2 = shared_secret(&params, bob.secret(), alice.public());
            assert_eq!(k1, k2);
            assert_eq!(
                shared_secret_bytes(&params, alice.secret(), bob.public(), 32),
                shared_secret_bytes(&params, bob.secret(), alice.public(), 32)
            );
        }
    }

    #[test]
    fn keys_are_subgroup_members() {
        let params = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(72);
        let kp = KeyPair::generate(&params, &mut rng);
        assert!(params.is_subgroup_member(kp.public().element().as_fp6()));
        assert!(!kp.secret().scalar().is_zero());
        assert!(kp.secret().scalar() < params.q());
    }

    #[test]
    fn from_scalar_reduces() {
        let params = params();
        let big = BigUint::from(37u64 * 5 + 3);
        let kp = KeyPair::from_scalar(&params, big);
        assert_eq!(kp.secret().scalar().to_u64(), Some(3));
        let kp2 = KeyPair::from_scalar(&params, BigUint::from(3u64));
        assert_eq!(kp.public(), kp2.public());
    }

    #[test]
    fn public_key_compression_roundtrip() {
        let params = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        let kp = KeyPair::generate(&params, &mut rng);
        let compressed = kp.public().compress(&params).unwrap();
        let restored = decompress(&params, &compressed).unwrap();
        assert_eq!(&restored, kp.public().element());
    }

    #[test]
    fn different_peers_give_different_shared_keys() {
        let params = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(74);
        let alice = KeyPair::generate(&params, &mut rng);
        let bob = KeyPair::from_scalar(&params, BigUint::from(5u64));
        let carol = KeyPair::from_scalar(&params, BigUint::from(7u64));
        let kb = shared_secret_bytes(&params, alice.secret(), bob.public(), 16);
        let kc = shared_secret_bytes(&params, alice.secret(), carol.public(), 16);
        assert_ne!(kb, kc);
    }
}

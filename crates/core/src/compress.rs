//! Torus compression: the bandwidth advantage of CEILIDH.
//!
//! Rubin–Silverberg show that `T6(Fp)` is rational, so its elements can be
//! transmitted as two `Fp` values instead of six — the factor
//! `6/ϕ(6) = 3` the paper highlights. The DATE paper performs all
//! arithmetic in representation F1 and leaves the maps ρ/ψ unimplemented;
//! here we provide an equivalent-bandwidth scheme built from two exact
//! steps (see DESIGN.md for the substitution rationale):
//!
//! 1. **Factor-2 (exact, [`compress_t2`] / [`decompress_t2`]).**
//!    `T6(Fp) ⊂ T2(Fp3)`, and every `g ∈ T2(Fp3) \ {1}` can be written as
//!    `g = (a + γ)/(a - γ)` for a unique `a ∈ Fp3`, where
//!    `γ = ζ9 - ζ9^{-1}` is "purely imaginary" (`γ^{p³} = -γ`). The three
//!    `Fp` coordinates of `a` are the compressed form.
//!
//! 2. **Factor-3 ([`compress`] / [`decompress`]).** Membership of `g` in
//!    `T3` (norm to `Fp2` equal to 1) imposes one further algebraic
//!    condition on `a` that is *quadratic* in each coordinate, because
//!    `N(a+γ) - N(a-γ)` only keeps the terms odd in `γ`. We therefore
//!    transmit the first two coordinates plus a 2-bit hint selecting the
//!    right root of that quadratic; decompression interpolates the
//!    constraint polynomial, solves it with a modular square root, filters
//!    the candidates by torus membership and picks the hinted one. The
//!    transmitted payload is two `Fp` elements + 2 bits — the same
//!    bandwidth as the original CEILIDH maps.

use bignum::BigUint;
use field::{Fp6Element, FpElement};

use crate::error::CeilidhError;
use crate::params::CeilidhParams;
use crate::torus::TorusElement;

/// Factor-2 compressed torus element: the three `Fp` coordinates of the
/// `T2(Fp3)` parameter `a`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompressedT2 {
    /// Coordinates of `a ∈ Fp3` in the basis `{1, x, x²}`.
    pub coords: [BigUint; 3],
}

/// Factor-3 compressed torus element: two `Fp` coordinates plus a root-
/// selection hint (always < 4, i.e. 2 bits on the wire).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompressedTorus {
    /// Coordinate of `1` in the `Fp3` parameter `a`.
    pub u0: BigUint,
    /// Coordinate of `x` in the `Fp3` parameter `a`.
    pub u1: BigUint,
    /// Index of the correct candidate among the (canonically ordered) roots
    /// of the membership constraint.
    pub hint: u8,
}

impl CompressedTorus {
    /// Size of the compressed representation in bytes (two field elements
    /// plus one hint byte), versus `6 · ⌈log2 p / 8⌉` for an uncompressed
    /// `Fp6` element.
    pub fn byte_len(&self, p_bits: usize) -> usize {
        2 * p_bits.div_ceil(8) + 1
    }
}

/// Compresses a torus element to three `Fp` values (factor 2, exact).
///
/// # Errors
///
/// Returns [`CeilidhError::CompressionFailed`] for the identity element
/// (not covered by the rational parameterisation) and
/// [`CeilidhError::NotInTorus`] if the element is not in `T2(Fp3)`.
pub fn compress_t2(params: &CeilidhParams, g: &TorusElement) -> Result<CompressedT2, CeilidhError> {
    let fp6 = params.fp6();
    let value = g.as_fp6();
    if *value == fp6.one() {
        return Err(CeilidhError::CompressionFailed(
            "the identity has no affine parameter",
        ));
    }
    if fp6.norm_to_fp3(value) != fp6.one() {
        return Err(CeilidhError::NotInTorus);
    }
    // a = γ (g + 1) / (g - 1)
    let gamma = fp6.zeta_minus_inverse();
    let numer = fp6.mul(&gamma, &fp6.add(value, &fp6.one()));
    let denom = fp6.sub(value, &fp6.one());
    let a = fp6.mul(&numer, &fp6.inv(&denom)?);
    fp3_coords(params, &a)
}

/// Decompresses three `Fp` values back to a torus (`T2(Fp3)`) element.
///
/// The result always satisfies `N_{Fp6/Fp3}(g) = 1`; it lies on the full
/// torus `T6` only if the coordinates came from [`compress_t2`] applied to a
/// `T6` element.
pub fn decompress_t2(
    params: &CeilidhParams,
    compressed: &CompressedT2,
) -> Result<TorusElement, CeilidhError> {
    let fp = params.fp();
    let a = embed_fp3(
        params,
        &fp.from_biguint(&compressed.coords[0]),
        &fp.from_biguint(&compressed.coords[1]),
        &fp.from_biguint(&compressed.coords[2]),
    );
    let g = t2_point(params, &a)?;
    Ok(TorusElement::from_fp6_unchecked(g))
}

/// Compresses a `T6` element to two `Fp` values plus a 2-bit hint
/// (factor 3 — the bandwidth the paper advertises for CEILIDH).
///
/// # Errors
///
/// Returns [`CeilidhError::CompressionFailed`] for the identity and
/// [`CeilidhError::NotInTorus`] for elements outside `T6`.
pub fn compress(params: &CeilidhParams, g: &TorusElement) -> Result<CompressedTorus, CeilidhError> {
    if !params.is_torus_member(g.as_fp6()) {
        return Err(CeilidhError::NotInTorus);
    }
    let stage1 = compress_t2(params, g)?;
    let fp = params.fp();
    let u0 = fp.from_biguint(&stage1.coords[0]);
    let u1 = fp.from_biguint(&stage1.coords[1]);
    let candidates = constraint_roots(params, &u0, &u1)?;
    let hint = candidates
        .iter()
        .position(|t| *t == stage1.coords[2])
        .ok_or(CeilidhError::CompressionFailed(
            "true coordinate is not a constraint root",
        ))?;
    Ok(CompressedTorus {
        u0: stage1.coords[0].clone(),
        u1: stage1.coords[1].clone(),
        hint: hint as u8,
    })
}

/// Decompresses two `Fp` values plus a hint back to the `T6` element.
///
/// # Errors
///
/// Returns [`CeilidhError::DecompressionFailed`] if the coordinates do not
/// correspond to any torus element or the hint is out of range.
pub fn decompress(
    params: &CeilidhParams,
    compressed: &CompressedTorus,
) -> Result<TorusElement, CeilidhError> {
    let fp = params.fp();
    let u0 = fp.from_biguint(&compressed.u0);
    let u1 = fp.from_biguint(&compressed.u1);
    let candidates = constraint_roots(params, &u0, &u1)?;
    let t = candidates
        .get(compressed.hint as usize)
        .ok_or(CeilidhError::DecompressionFailed("hint out of range"))?;
    let reconstructed = CompressedT2 {
        coords: [compressed.u0.clone(), compressed.u1.clone(), t.clone()],
    };
    let g = decompress_t2(params, &reconstructed)?;
    debug_assert!(params.is_torus_member(g.as_fp6()));
    Ok(g)
}

/// Evaluates `g = (a + γ)/(a - γ)` for `a ∈ Fp3 ⊂ Fp6`.
fn t2_point(params: &CeilidhParams, a: &Fp6Element) -> Result<Fp6Element, CeilidhError> {
    let fp6 = params.fp6();
    let gamma = fp6.zeta_minus_inverse();
    let numer = fp6.add(a, &gamma);
    let denom = fp6.sub(a, &gamma);
    Ok(fp6.mul(&numer, &fp6.inv(&denom)?))
}

/// Embeds `(u0, u1, u2)` as `u0 + u1·x + u2·x² ∈ Fp3 ⊂ Fp6`.
fn embed_fp3(params: &CeilidhParams, u0: &FpElement, u1: &FpElement, u2: &FpElement) -> Fp6Element {
    let fp6 = params.fp6();
    let x = fp6.zeta_plus_inverse();
    let x2 = fp6.mul(&x, &x);
    let mut acc = fp6.from_fp(u0.clone());
    acc = fp6.add(&acc, &fp6.scalar_mul(&x, u1));
    fp6.add(&acc, &fp6.scalar_mul(&x2, u2))
}

/// Extracts the `Fp3` coordinates of an element known to lie in the `Fp3`
/// subfield, using the representation-F2 basis change.
fn fp3_coords(params: &CeilidhParams, a: &Fp6Element) -> Result<CompressedT2, CeilidhError> {
    let repr = params.repr();
    let f2 = repr.from_f1(a);
    if !f2.v().is_zero() {
        return Err(CeilidhError::CompressionFailed(
            "parameter does not lie in the Fp3 subfield",
        ));
    }
    let fp = params.fp();
    let coeffs = f2.u().coeffs();
    Ok(CompressedT2 {
        coords: [
            fp.to_biguint(&coeffs[0]),
            fp.to_biguint(&coeffs[1]),
            fp.to_biguint(&coeffs[2]),
        ],
    })
}

/// Computes the canonically ordered list of third coordinates `t` such that
/// `a = u0 + u1·x + t·x²` parameterises a `T6` element.
///
/// The membership constraint `N_{Fp6/Fp2}(a+γ) = N_{Fp6/Fp2}(a-γ)` is
/// quadratic in `t` (only the odd-in-γ terms survive the difference), so
/// there are at most two candidates; they are found by interpolating the
/// constraint polynomial at `t ∈ {0, 1, 2}` and solving with a modular
/// square root.
fn constraint_roots(
    params: &CeilidhParams,
    u0: &FpElement,
    u1: &FpElement,
) -> Result<Vec<BigUint>, CeilidhError> {
    let fp = params.fp();
    let fp6 = params.fp6();
    let gamma = fp6.zeta_minus_inverse();

    // D(t) = N(a(t)+γ) - N(a(t)-γ): an Fp2 element, quadratic in t.
    let eval = |t: &FpElement| -> [FpElement; 6] {
        let a = embed_fp3(params, u0, u1, t);
        let plus = fp6.norm_to_fp2(&fp6.add(&a, &gamma));
        let minus = fp6.norm_to_fp2(&fp6.sub(&a, &gamma));
        let d = fp6.sub(&plus, &minus);
        d.coeffs().clone()
    };

    // Interpolate each of the six coordinates of D as a quadratic in t from
    // the samples at t = 0, 1, 2:
    //   c2 = (d(0) - 2 d(1) + d(2)) / 2,  c1 = d(1) - d(0) - c2,  c0 = d(0).
    let d0 = eval(&fp.zero());
    let d1 = eval(&fp.one());
    let d2 = eval(&fp.from_u64(2));
    let half = fp
        .inv(&fp.from_u64(2))
        .expect("2 is invertible in odd characteristic");

    let mut polys: Vec<[FpElement; 3]> = Vec::with_capacity(6);
    for i in 0..6 {
        let c0 = d0[i].clone();
        let c2 = fp.mul(&fp.add(&fp.sub(&d0[i], &fp.double(&d1[i])), &d2[i]), &half);
        let c1 = fp.sub(&fp.sub(&d1[i], &d0[i]), &c2);
        polys.push([c0, c1, c2]);
    }

    // Pick the first coordinate whose constraint polynomial is not
    // identically zero (an element of Fp2 only has non-zero coordinates at
    // z^0 and z^3, but we scan all six for robustness).
    let poly = polys
        .into_iter()
        .find(|p| !(p[0].is_zero() && p[1].is_zero() && p[2].is_zero()));
    let Some([c0, c1, c2]) = poly else {
        return Err(CeilidhError::DecompressionFailed(
            "degenerate membership constraint",
        ));
    };

    // Solve c2 t² + c1 t + c0 = 0 over Fp.
    let mut roots: Vec<FpElement> = Vec::new();
    if c2.is_zero() {
        if c1.is_zero() {
            return Err(CeilidhError::DecompressionFailed(
                "constraint polynomial is constant and non-zero",
            ));
        }
        let t = fp.neg(&fp.mul(&c0, &fp.inv(&c1).expect("non-zero")));
        roots.push(t);
    } else {
        // discriminant = c1² - 4 c0 c2
        let disc = fp.sub(&fp.square(&c1), &fp.mul(&fp.from_u64(4), &fp.mul(&c0, &c2)));
        if let Some(sqrt_disc) = fp.sqrt(&disc) {
            let inv_2a = fp
                .inv(&fp.double(&c2))
                .expect("2·c2 non-zero in odd characteristic");
            let minus_c1 = fp.neg(&c1);
            roots.push(fp.mul(&fp.add(&minus_c1, &sqrt_disc), &inv_2a));
            roots.push(fp.mul(&fp.sub(&minus_c1, &sqrt_disc), &inv_2a));
        }
    }

    // Keep only roots that really produce T6 members, in canonical order.
    let mut candidates: Vec<BigUint> = Vec::new();
    for t in roots {
        let a = embed_fp3(params, u0, u1, &t);
        if let Ok(g) = t2_point(params, &a) {
            if params.is_torus_member(&g) {
                candidates.push(fp.to_biguint(&t));
            }
        }
    }
    candidates.sort();
    candidates.dedup();
    if candidates.is_empty() {
        return Err(CeilidhError::DecompressionFailed(
            "no torus point matches the transmitted coordinates",
        ));
    }
    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn params() -> CeilidhParams {
        CeilidhParams::toy().unwrap()
    }

    #[test]
    fn factor_two_roundtrip() {
        let params = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let mut tested = 0;
        for _ in 0..25 {
            let (_, g) = params.random_subgroup_element(&mut rng);
            if g == params.identity() {
                continue;
            }
            let compressed = compress_t2(&params, &g).unwrap();
            let back = decompress_t2(&params, &compressed).unwrap();
            assert_eq!(back, g);
            tested += 1;
        }
        assert!(tested > 5);
    }

    #[test]
    fn factor_three_roundtrip() {
        let params = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        let mut tested = 0;
        for _ in 0..25 {
            let (_, g) = params.random_subgroup_element(&mut rng);
            if g == params.identity() {
                continue;
            }
            let compressed = compress(&params, &g).unwrap();
            assert!(compressed.hint < 4);
            let back = decompress(&params, &compressed).unwrap();
            assert_eq!(back, g);
            tested += 1;
        }
        assert!(tested > 5);
    }

    #[test]
    fn every_subgroup_element_roundtrips() {
        // The toy subgroup has only 37 elements: test them exhaustively.
        let params = params();
        let g = params.generator();
        let mut acc = params.identity();
        for _ in 1..37u64 {
            acc = params.mul(&acc, &g);
            let compressed = compress(&params, &acc).unwrap();
            assert_eq!(decompress(&params, &compressed).unwrap(), acc);
        }
    }

    #[test]
    fn identity_cannot_be_compressed() {
        let params = params();
        assert!(matches!(
            compress_t2(&params, &params.identity()),
            Err(CeilidhError::CompressionFailed(_))
        ));
        assert!(matches!(
            compress(&params, &params.identity()),
            Err(CeilidhError::CompressionFailed(_))
        ));
    }

    #[test]
    fn non_torus_elements_are_rejected() {
        let params = params();
        let bogus =
            TorusElement::from_fp6_unchecked(params.fp6().from_u64_coeffs([2, 3, 0, 0, 0, 0]));
        assert_eq!(
            compress(&params, &bogus).unwrap_err(),
            CeilidhError::NotInTorus
        );
    }

    #[test]
    fn tampered_compression_fails_or_differs() {
        let params = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(63);
        let (_, g) = params.random_subgroup_element(&mut rng);
        if g == params.identity() {
            return;
        }
        let mut compressed = compress(&params, &g).unwrap();
        compressed.hint = 3;
        match decompress(&params, &compressed) {
            // Either the hint is out of range...
            Err(CeilidhError::DecompressionFailed(_)) => {}
            // ...or it selects a different (but valid) torus element.
            Ok(other) => assert!(params.is_torus_member(other.as_fp6())),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn compressed_size_is_one_third() {
        let compressed = CompressedTorus {
            u0: BigUint::zero(),
            u1: BigUint::zero(),
            hint: 0,
        };
        // 170-bit p: 2 * 22 bytes + 1 = 45 bytes versus 6 * 22 = 132 bytes.
        assert_eq!(compressed.byte_len(170), 45);
    }
}

//! Generates a fresh CEILIDH parameter set and prints it as hex constants.
//!
//! Usage: `cargo run -p ceilidh --release --bin gen_params -- [bits] [seed]`
//! (defaults: 170 bits, seed from the OS RNG).

use bignum::BigUint;
use ceilidh::CeilidhParams;
use rand::{Rng, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let bits: usize = args
        .next()
        .map(|a| a.parse().expect("bits must be an integer"))
        .unwrap_or(170);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be an integer"))
        .unwrap_or_else(|| rand::thread_rng().gen());

    eprintln!("searching for a {bits}-bit CEILIDH prime (seed {seed})...");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let start = std::time::Instant::now();
    let params = CeilidhParams::generate(bits, &mut rng).expect("generation cannot fail");
    eprintln!("found in {:.2?}", start.elapsed());

    println!(
        "p  ({} bits) = 0x{}",
        params.p().bit_len(),
        params.p().to_hex()
    );
    println!("p mod 9      = {}", params.p() % &BigUint::from(9u64));
    println!(
        "q  ({} bits) = 0x{}",
        params.q().bit_len(),
        params.q().to_hex()
    );
    println!("cofactor     = {}", params.cofactor());
    println!();
    println!("const P_{bits}_HEX: &str = \"{}\";", params.p().to_hex());
    println!("const Q_{bits}_HEX: &str = \"{}\";", params.q().to_hex());
}

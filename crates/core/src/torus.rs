//! The torus group `T6(Fp)` and its subgroup of prime order `q`.

use bignum::BigUint;
use field::Fp6Element;
use rand::Rng;

use crate::error::CeilidhError;
use crate::params::CeilidhParams;

/// An element of the algebraic torus `T6(Fp)`, stored in representation F1.
///
/// The newtype exists so that protocol-level code cannot accidentally feed
/// arbitrary `Fp6` values (outside the torus) into group operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TorusElement {
    value: Fp6Element,
}

impl TorusElement {
    /// Wraps an `Fp6` element **without** checking torus membership.
    ///
    /// Intended for internal use and for benchmarks that construct elements
    /// they already know are valid; use [`CeilidhParams::lift`] otherwise.
    pub fn from_fp6_unchecked(value: Fp6Element) -> Self {
        TorusElement { value }
    }

    /// The underlying `Fp6` (representation F1) element.
    pub fn as_fp6(&self) -> &Fp6Element {
        &self.value
    }

    /// Consumes the wrapper, returning the `Fp6` element.
    pub fn into_fp6(self) -> Fp6Element {
        self.value
    }
}

impl CeilidhParams {
    /// The identity element of the torus.
    pub fn identity(&self) -> TorusElement {
        TorusElement::from_fp6_unchecked(self.fp6().one())
    }

    /// Checks whether an `Fp6` element lies on the torus `T6(Fp)`, i.e.
    /// whether its relative norms to both `Fp3` and `Fp2` equal 1.
    pub fn is_torus_member(&self, value: &Fp6Element) -> bool {
        if value.is_zero() {
            return false;
        }
        let fp6 = self.fp6();
        fp6.norm_to_fp3(value) == fp6.one() && fp6.norm_to_fp2(value) == fp6.one()
    }

    /// Checks whether an element lies in the prime-order-`q` subgroup used
    /// by the cryptosystem (a subgroup of the torus).
    pub fn is_subgroup_member(&self, value: &Fp6Element) -> bool {
        !value.is_zero() && self.fp6().exp(value, self.q()) == self.fp6().one()
    }

    /// Validates and wraps an `Fp6` element as a torus element.
    ///
    /// # Errors
    ///
    /// Returns [`CeilidhError::NotInTorus`] if the element is not on `T6`.
    pub fn lift(&self, value: Fp6Element) -> Result<TorusElement, CeilidhError> {
        if self.is_torus_member(&value) {
            Ok(TorusElement { value })
        } else {
            Err(CeilidhError::NotInTorus)
        }
    }

    /// Group multiplication on the torus (one 18M `Fp6` multiplication).
    pub fn mul(&self, a: &TorusElement, b: &TorusElement) -> TorusElement {
        TorusElement {
            value: self.fp6().mul(&a.value, &b.value),
        }
    }

    /// Group inversion. For torus elements the inverse is the `Fp3`-conjugate
    /// (`g^{-1} = g^{p³}`), a free coefficient permutation — one of the
    /// operational advantages of torus-based systems.
    pub fn invert(&self, a: &TorusElement) -> TorusElement {
        TorusElement {
            value: self.fp6().conjugate(&a.value),
        }
    }

    /// Exponentiation `g^k` by square-and-multiply over representation F1
    /// (the operation the paper's platform spends its 20 ms on).
    pub fn pow(&self, base: &TorusElement, exponent: &BigUint) -> TorusElement {
        TorusElement {
            value: self.fp6().exp(&base.value, exponent),
        }
    }

    /// Windowed exponentiation (used by the exponentiation ablation bench).
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0 or larger than 8.
    pub fn pow_window(
        &self,
        base: &TorusElement,
        exponent: &BigUint,
        window: usize,
    ) -> TorusElement {
        TorusElement {
            value: self.fp6().exp_window(&base.value, exponent, window),
        }
    }

    /// A uniformly random element of the order-`q` subgroup, together with
    /// its discrete logarithm to the generator.
    pub fn random_subgroup_element<R: Rng + ?Sized>(&self, rng: &mut R) -> (BigUint, TorusElement) {
        let exponent = BigUint::random_below(rng, self.q());
        let element = self.pow(&self.generator(), &exponent);
        (exponent, element)
    }

    /// Projects an arbitrary non-zero field element onto the torus by
    /// raising it to `(p^6 - 1)/Φ6(p)`. Returns `None` if the projection is
    /// the identity.
    pub fn project_to_torus(&self, value: &Fp6Element) -> Option<TorusElement> {
        if value.is_zero() {
            return None;
        }
        let p6_minus_1 = &self.p().pow(6) - &BigUint::one();
        let (exp, rem) = p6_minus_1
            .div_rem(&self.torus_order())
            .expect("torus order is non-zero");
        debug_assert!(rem.is_zero());
        let projected = self.fp6().exp(value, &exp);
        if projected == self.fp6().one() {
            None
        } else {
            Some(TorusElement { value: projected })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn params() -> CeilidhParams {
        CeilidhParams::toy().unwrap()
    }

    #[test]
    fn generator_is_a_torus_member() {
        let params = params();
        let g = params.generator();
        assert!(params.is_torus_member(g.as_fp6()));
        assert!(params.is_subgroup_member(g.as_fp6()));
        assert!(params.is_torus_member(params.identity().as_fp6()));
        assert!(!params.is_torus_member(&params.fp6().zero()));
    }

    #[test]
    fn membership_by_norms_matches_membership_by_order() {
        let params = params();
        let fp6 = params.fp6();
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        let order = params.torus_order();
        for _ in 0..20 {
            let candidate = fp6.random(&mut rng);
            if candidate.is_zero() {
                continue;
            }
            let by_norms = params.is_torus_member(&candidate);
            let by_order = fp6.exp(&candidate, &order) == fp6.one();
            assert_eq!(by_norms, by_order);
        }
    }

    #[test]
    fn group_laws() {
        let params = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(52);
        let (_, a) = params.random_subgroup_element(&mut rng);
        let (_, b) = params.random_subgroup_element(&mut rng);
        let (_, c) = params.random_subgroup_element(&mut rng);
        assert_eq!(params.mul(&a, &b), params.mul(&b, &a));
        assert_eq!(
            params.mul(&params.mul(&a, &b), &c),
            params.mul(&a, &params.mul(&b, &c))
        );
        assert_eq!(params.mul(&a, &params.identity()), a);
        assert_eq!(params.mul(&a, &params.invert(&a)), params.identity());
    }

    #[test]
    fn conjugation_inverse_matches_field_inverse() {
        let params = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        let (_, a) = params.random_subgroup_element(&mut rng);
        let inv = params.invert(&a);
        let field_inv = params.fp6().inv(a.as_fp6()).unwrap();
        assert_eq!(inv.as_fp6(), &field_inv);
    }

    #[test]
    fn exponentiation_laws() {
        let params = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(54);
        let g = params.generator();
        let x = BigUint::random_below(&mut rng, params.q());
        let y = BigUint::random_below(&mut rng, params.q());
        // g^x * g^y = g^(x+y mod q)
        let lhs = params.mul(&params.pow(&g, &x), &params.pow(&g, &y));
        let sum = bignum::mod_add(&x, &y, params.q());
        assert_eq!(lhs, params.pow(&g, &sum));
        // g^q = 1
        assert_eq!(params.pow(&g, params.q()), params.identity());
        // windowed exponentiation agrees
        assert_eq!(params.pow_window(&g, &x, 4), params.pow(&g, &x));
    }

    #[test]
    fn lift_rejects_non_members() {
        let params = params();
        let bad = params.fp6().from_u64_coeffs([2, 0, 0, 0, 0, 0]);
        assert_eq!(params.lift(bad).unwrap_err(), CeilidhError::NotInTorus);
        let good = params.generator().into_fp6();
        assert!(params.lift(good).is_ok());
    }

    #[test]
    fn projection_lands_in_torus() {
        let params = params();
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for _ in 0..10 {
            let v = params.fp6().random(&mut rng);
            if v.is_zero() {
                continue;
            }
            if let Some(t) = params.project_to_torus(&v) {
                assert!(params.is_torus_member(t.as_fp6()));
            }
        }
        assert!(params.project_to_torus(&params.fp6().zero()).is_none());
    }
}

//! A small deterministic key-derivation / hashing helper.
//!
//! The DATE paper evaluates only the public-key primitives (exponentiation
//! on the torus, ECC and RSA); it does not specify or evaluate a hash
//! function. The protocols in this crate (hybrid ElGamal, Schnorr
//! signatures) still need a way to turn group elements and messages into
//! key streams and challenge scalars, so this module provides a compact
//! sponge built on the SplitMix64 mixing permutation.
//!
//! **This construction is a reproduction placeholder, not a vetted
//! cryptographic hash.** Swap in a real XOF before using any of the
//! protocol code outside of benchmarking and testing.

use bignum::BigUint;

/// Sponge-style extendable-output function over SplitMix64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ToyKdf {
    state: [u64; 4],
    absorbed: u64,
}

/// SplitMix64 mixing step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ToyKdf {
    /// Creates an empty sponge.
    pub fn new() -> Self {
        ToyKdf {
            state: [
                0x6a09_e667_f3bc_c908,
                0xbb67_ae85_84ca_a73b,
                0x3c6e_f372_fe94_f82b,
                0xa54f_f53a_5f1d_36f1,
            ],
            absorbed: 0,
        }
    }

    /// Absorbs a byte string into the sponge state.
    pub fn absorb(&mut self, data: &[u8]) -> &mut Self {
        for &b in data {
            let lane = (self.absorbed % 4) as usize;
            self.state[lane] =
                splitmix64(self.state[lane] ^ (b as u64) ^ self.absorbed.rotate_left(17));
            self.absorbed = self.absorbed.wrapping_add(1);
            // Cross-mix lanes after every word boundary.
            if self.absorbed.is_multiple_of(8) {
                self.mix();
            }
        }
        self
    }

    fn mix(&mut self) {
        let [a, b, c, d] = self.state;
        self.state = [
            splitmix64(a ^ d.rotate_left(7)),
            splitmix64(b ^ a.rotate_left(13)),
            splitmix64(c ^ b.rotate_left(29)),
            splitmix64(d ^ c.rotate_left(41)),
        ];
    }

    /// Squeezes `len` output bytes.
    pub fn squeeze(&self, len: usize) -> Vec<u8> {
        let mut st = *self;
        st.mix();
        let mut out = Vec::with_capacity(len);
        let mut counter = 0u64;
        while out.len() < len {
            let lane = (counter % 4) as usize;
            let word = splitmix64(st.state[lane] ^ counter.wrapping_mul(0xA076_1D64_78BD_642F));
            out.extend_from_slice(&word.to_le_bytes());
            counter += 1;
            if counter.is_multiple_of(4) {
                st.mix();
            }
        }
        out.truncate(len);
        out
    }

    /// One-shot convenience: absorbs `data` and squeezes `len` bytes.
    pub fn derive(data: &[u8], len: usize) -> Vec<u8> {
        let mut kdf = ToyKdf::new();
        kdf.absorb(data);
        kdf.squeeze(len)
    }

    /// Hashes arbitrary data to a scalar in `[0, modulus)`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn hash_to_scalar(data: &[u8], modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modulus must be positive");
        // Oversample by 16 bytes so the bias from reduction is negligible.
        let bytes = Self::derive(data, modulus.bit_len().div_ceil(8) + 16);
        &BigUint::from_be_bytes(&bytes) % modulus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_input_sensitive() {
        let a = ToyKdf::derive(b"hello world", 32);
        let b = ToyKdf::derive(b"hello world", 32);
        let c = ToyKdf::derive(b"hello worle", 32);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn squeeze_lengths() {
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 100] {
            assert_eq!(ToyKdf::derive(b"x", len).len(), len);
        }
        // Prefix property: longer output starts with shorter output.
        let short = ToyKdf::derive(b"prefix", 16);
        let long = ToyKdf::derive(b"prefix", 64);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn incremental_absorption_matches_one_shot() {
        let mut kdf = ToyKdf::new();
        kdf.absorb(b"hello ").absorb(b"world");
        assert_eq!(kdf.squeeze(24), ToyKdf::derive(b"hello world", 24));
    }

    #[test]
    fn hash_to_scalar_is_reduced() {
        let q = BigUint::from(1_000_003u64);
        for msg in [&b"a"[..], b"b", b"longer message with more entropy"] {
            let s = ToyKdf::hash_to_scalar(msg, &q);
            assert!(s < q);
        }
        // Different messages give different scalars (overwhelmingly likely).
        assert_ne!(
            ToyKdf::hash_to_scalar(b"m1", &q),
            ToyKdf::hash_to_scalar(b"m2", &q)
        );
    }

    #[test]
    fn output_distribution_is_not_degenerate() {
        // Cheap sanity check: byte histogram of a long output is not wildly
        // skewed (catches e.g. constantly-zero lanes).
        let out = ToyKdf::derive(b"distribution", 4096);
        let mut counts = [0usize; 256];
        for &b in &out {
            counts[b as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max < 64, "a single byte value dominates the output: {max}");
    }
}

//! ElGamal-style encryption on the torus.
//!
//! Two flavours are provided:
//!
//! * [`encrypt_element`]/[`decrypt_element`] — textbook group ElGamal where
//!   the plaintext is itself a torus element;
//! * [`encrypt_hybrid`]/[`decrypt_hybrid`] — a hybrid scheme in which the
//!   ephemeral public value is transmitted in the factor-3 compressed form
//!   and the message bytes are masked by a key stream derived from the
//!   shared element. This is the flow where CEILIDH's bandwidth advantage
//!   (Section 1 of the paper) is visible on the wire.

use bignum::BigUint;
use rand::Rng;

use crate::compress::{compress, decompress, CompressedTorus};
use crate::error::CeilidhError;
use crate::kdf::ToyKdf;
use crate::keys::{KeyPair, PublicKey, SecretKey};
use crate::params::CeilidhParams;
use crate::torus::TorusElement;

/// A textbook ElGamal ciphertext `(g^k, m · y^k)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ElGamalCiphertext {
    /// The ephemeral value `g^k`.
    pub c1: TorusElement,
    /// The masked message `m · y^k`.
    pub c2: TorusElement,
}

/// A hybrid ciphertext: compressed ephemeral key plus masked payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HybridCiphertext {
    /// The compressed ephemeral public value `g^k`.
    pub ephemeral: CompressedTorus,
    /// `message XOR keystream`.
    pub payload: Vec<u8>,
}

/// Encrypts a torus element under `recipient`.
pub fn encrypt_element<R: Rng + ?Sized>(
    params: &CeilidhParams,
    recipient: &PublicKey,
    message: &TorusElement,
    rng: &mut R,
) -> ElGamalCiphertext {
    let one = BigUint::one();
    let k = &BigUint::random_below(rng, &(params.q() - &one)) + &one;
    let c1 = params.pow(&params.generator(), &k);
    let shared = params.pow(recipient.element(), &k);
    let c2 = params.mul(message, &shared);
    ElGamalCiphertext { c1, c2 }
}

/// Decrypts a textbook ElGamal ciphertext.
pub fn decrypt_element(
    params: &CeilidhParams,
    secret: &SecretKey,
    ciphertext: &ElGamalCiphertext,
) -> TorusElement {
    let shared = params.pow(&ciphertext.c1, secret.scalar());
    params.mul(&ciphertext.c2, &params.invert(&shared))
}

/// Encrypts arbitrary bytes under `recipient` using a compressed ephemeral
/// key and a KDF-derived key stream.
///
/// # Errors
///
/// Returns [`CeilidhError::CompressionFailed`] only if no compressible
/// ephemeral key could be found after many attempts (practically
/// unreachable).
pub fn encrypt_hybrid<R: Rng + ?Sized>(
    params: &CeilidhParams,
    recipient: &PublicKey,
    message: &[u8],
    rng: &mut R,
) -> Result<HybridCiphertext, CeilidhError> {
    // Retry with a fresh ephemeral key in the rare event the compressed
    // encoding is degenerate for the sampled point.
    for _ in 0..64 {
        let ephemeral_pair = KeyPair::generate(params, rng);
        let Ok(compressed) = compress(params, ephemeral_pair.public().element()) else {
            continue;
        };
        let shared = params.pow(recipient.element(), ephemeral_pair.secret().scalar());
        let keystream = keystream_from(params, &shared, message.len());
        let payload = message
            .iter()
            .zip(keystream.iter())
            .map(|(m, k)| m ^ k)
            .collect();
        return Ok(HybridCiphertext {
            ephemeral: compressed,
            payload,
        });
    }
    Err(CeilidhError::CompressionFailed(
        "could not sample a compressible ephemeral key",
    ))
}

/// Decrypts a hybrid ciphertext.
///
/// # Errors
///
/// Returns [`CeilidhError::DecompressionFailed`] if the ephemeral key does
/// not decode to a torus element.
pub fn decrypt_hybrid(
    params: &CeilidhParams,
    secret: &SecretKey,
    ciphertext: &HybridCiphertext,
) -> Result<Vec<u8>, CeilidhError> {
    let ephemeral = decompress(params, &ciphertext.ephemeral)?;
    let shared = params.pow(&ephemeral, secret.scalar());
    let keystream = keystream_from(params, &shared, ciphertext.payload.len());
    Ok(ciphertext
        .payload
        .iter()
        .zip(keystream.iter())
        .map(|(c, k)| c ^ k)
        .collect())
}

/// Derives a key stream from a shared torus element.
fn keystream_from(params: &CeilidhParams, shared: &TorusElement, len: usize) -> Vec<u8> {
    let mut kdf = ToyKdf::new();
    kdf.absorb(b"ceilidh-hybrid-v1");
    for coeff in shared.as_fp6().coeffs() {
        kdf.absorb(&params.fp().to_biguint(coeff).to_be_bytes());
        kdf.absorb(b"|");
    }
    kdf.squeeze(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (CeilidhParams, KeyPair, rand::rngs::StdRng) {
        let params = CeilidhParams::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        let kp = KeyPair::generate(&params, &mut rng);
        (params, kp, rng)
    }

    #[test]
    fn element_encryption_roundtrip() {
        let (params, kp, mut rng) = setup();
        for _ in 0..5 {
            let (_, message) = params.random_subgroup_element(&mut rng);
            let ct = encrypt_element(&params, kp.public(), &message, &mut rng);
            assert_eq!(decrypt_element(&params, kp.secret(), &ct), message);
        }
    }

    #[test]
    fn element_encryption_is_randomised() {
        let (params, kp, mut rng) = setup();
        let (_, message) = params.random_subgroup_element(&mut rng);
        let ct1 = encrypt_element(&params, kp.public(), &message, &mut rng);
        let ct2 = encrypt_element(&params, kp.public(), &message, &mut rng);
        // With overwhelming probability the ephemeral keys differ.
        assert_ne!(ct1, ct2);
    }

    #[test]
    fn hybrid_roundtrip() {
        let (params, kp, mut rng) = setup();
        for msg in [&b""[..], b"a", b"attack at dawn", &[0u8; 257]] {
            let ct = encrypt_hybrid(&params, kp.public(), msg, &mut rng).unwrap();
            assert_eq!(ct.payload.len(), msg.len());
            let pt = decrypt_hybrid(&params, kp.secret(), &ct).unwrap();
            assert_eq!(pt, msg);
        }
    }

    #[test]
    fn hybrid_decryption_with_wrong_key_differs() {
        let (params, kp, mut rng) = setup();
        let other = KeyPair::from_scalar(&params, BigUint::from(29u64));
        let msg = b"the magic words are squeamish ossifrage";
        let ct = encrypt_hybrid(&params, kp.public(), msg, &mut rng).unwrap();
        if other.secret() != kp.secret() {
            let wrong = decrypt_hybrid(&params, other.secret(), &ct).unwrap();
            assert_ne!(wrong, msg.to_vec());
        }
    }

    #[test]
    fn decrypting_garbage_fails_or_differs() {
        let (params, kp, mut rng) = setup();
        let msg = b"payload";
        let mut ct = encrypt_hybrid(&params, kp.public(), msg, &mut rng).unwrap();
        // Corrupt the ephemeral coordinates.
        ct.ephemeral.u0 = &ct.ephemeral.u0 + &BigUint::one();
        match decrypt_hybrid(&params, kp.secret(), &ct) {
            Err(CeilidhError::DecompressionFailed(_)) => {}
            Ok(other) => assert_ne!(other, msg.to_vec()),
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}

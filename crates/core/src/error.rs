//! Error type for the CEILIDH crate.

use std::error::Error;
use std::fmt;

use field::FieldError;

/// Errors raised by parameter construction, torus arithmetic, compression
/// and the cryptographic protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CeilidhError {
    /// The supplied domain parameters are inconsistent.
    InvalidParameters(&'static str),
    /// An element was expected to lie on the torus `T6` (or in the prime
    /// order subgroup) but does not.
    NotInTorus,
    /// The element cannot be compressed (e.g. it is the identity, which the
    /// rational parameterisation does not cover).
    CompressionFailed(&'static str),
    /// The compressed representation does not decode to a torus element.
    DecompressionFailed(&'static str),
    /// A ciphertext or signature failed validation.
    VerificationFailed,
    /// An underlying field operation failed.
    Field(FieldError),
}

impl fmt::Display for CeilidhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CeilidhError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            CeilidhError::NotInTorus => write!(f, "element is not in the torus subgroup"),
            CeilidhError::CompressionFailed(msg) => write!(f, "compression failed: {msg}"),
            CeilidhError::DecompressionFailed(msg) => write!(f, "decompression failed: {msg}"),
            CeilidhError::VerificationFailed => write!(f, "verification failed"),
            CeilidhError::Field(e) => write!(f, "field error: {e}"),
        }
    }
}

impl Error for CeilidhError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CeilidhError::Field(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FieldError> for CeilidhError {
    fn from(e: FieldError) -> Self {
        CeilidhError::Field(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CeilidhError::InvalidParameters("p must be 2 mod 9");
        assert!(e.to_string().contains("p must be 2 mod 9"));
        assert!(CeilidhError::NotInTorus.to_string().contains("torus"));
        let wrapped = CeilidhError::from(FieldError::DivisionByZero);
        assert!(wrapped.source().is_some());
        assert!(CeilidhError::VerificationFailed.source().is_none());
    }
}

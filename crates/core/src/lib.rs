//! CEILIDH — public-key cryptography on the algebraic torus `T6(Fp)`.
//!
//! This crate is the primary contribution of the reproduction of
//! *"FPGA Design for Algebraic Tori-Based Public-Key Cryptography"*
//! (Fan, Batina, Sakiyama, Verbauwhede — DATE 2008). It implements the
//! CEILIDH cryptosystem of Rubin and Silverberg on top of the
//! representation F1 = `Fp[z]/(z^6 + z^3 + 1)` provided by the `field`
//! crate:
//!
//! * [`CeilidhParams`] — domain parameters: a prime `p ≡ 2, 5 (mod 9)`,
//!   a large prime `q` dividing `Φ6(p) = p² - p + 1`, and a generator of
//!   the order-`q` subgroup of the torus.
//! * [`TorusElement`] and the group operations (multiplication, cheap
//!   conjugation-based inversion, exponentiation, membership testing).
//! * [`compress`]/[`decompress`] — factor-3 bandwidth compression
//!   (two `Fp` elements plus a 2-bit hint), together with the exact
//!   factor-2 `T2` compression of the underlying quadratic torus.
//! * Key exchange ([`KeyPair`], [`shared_secret`]), ElGamal-style
//!   encryption ([`encrypt_element`]/[`decrypt_element`]) and Schnorr-style
//!   signatures ([`sign`]/[`verify`]).
//!
//! # Quick start
//!
//! ```
//! # fn main() -> Result<(), ceilidh::CeilidhError> {
//! use ceilidh::{CeilidhParams, KeyPair, shared_secret};
//!
//! let mut rng = rand::thread_rng();
//! let params = CeilidhParams::toy()?; // small parameters for demos/tests
//!
//! let alice = KeyPair::generate(&params, &mut rng);
//! let bob = KeyPair::generate(&params, &mut rng);
//!
//! let k_ab = shared_secret(&params, alice.secret(), bob.public());
//! let k_ba = shared_secret(&params, bob.secret(), alice.public());
//! assert_eq!(k_ab, k_ba);
//! # Ok(())
//! # }
//! ```
//!
//! The 170-bit parameter set matching the paper's evaluation is available
//! as [`CeilidhParams::date2008`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compress;
mod elgamal;
mod error;
mod kdf;
mod keys;
mod params;
mod schnorr;
mod torus;

pub use compress::{
    compress, compress_t2, decompress, decompress_t2, CompressedT2, CompressedTorus,
};
pub use elgamal::{
    decrypt_element, decrypt_hybrid, encrypt_element, encrypt_hybrid, ElGamalCiphertext,
    HybridCiphertext,
};
pub use error::CeilidhError;
pub use kdf::ToyKdf;
pub use keys::{shared_secret, shared_secret_bytes, KeyPair, PublicKey, SecretKey};
pub use params::CeilidhParams;
pub use schnorr::{sign, verify, Signature};
pub use torus::TorusElement;

//! CEILIDH domain parameters.
//!
//! A parameter set consists of a prime `p ≡ 2 or 5 (mod 9)`, a large prime
//! `q` dividing `Φ6(p) = p² - p + 1` (the order of the torus `T6(Fp)`), the
//! cofactor `h = Φ6(p)/q`, and a generator of the order-`q` subgroup. The
//! paper evaluates a 170-bit `p` (so `q` has about 340 bits), which gives
//! the "security of `Fp6`" with transmissions of two `Fp` elements.

use bignum::{gen_prime_congruent, is_prime, BigUint};
use field::{F2Repr, Fp6Context, Fp6Element, FpContext};
use rand::Rng;

use crate::error::CeilidhError;
use crate::torus::TorusElement;

/// Trial-division bound used when splitting `Φ6(p)` into cofactor × prime.
const SMALL_FACTOR_BOUND: u32 = 100_000;

/// CEILIDH domain parameters (field, subgroup and generator).
///
/// See the crate-level documentation for an end-to-end example; parameter
/// sets are obtained from [`CeilidhParams::toy`] (fast, small — for tests
/// and examples), [`CeilidhParams::date2008`] (the 170-bit size evaluated in
/// the paper) or [`CeilidhParams::generate`] (fresh random parameters).
#[derive(Clone)]
pub struct CeilidhParams {
    fp: FpContext,
    fp6: Fp6Context,
    repr: F2Repr,
    p: BigUint,
    q: BigUint,
    cofactor: BigUint,
    generator: Fp6Element,
}

impl std::fmt::Debug for CeilidhParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CeilidhParams(p: {} bits, q: {} bits, cofactor: {})",
            self.p.bit_len(),
            self.q.bit_len(),
            self.cofactor
        )
    }
}

impl CeilidhParams {
    /// Builds a parameter set from an explicit prime `p` and subgroup order
    /// `q`, deriving the cofactor and searching deterministically for a
    /// generator.
    ///
    /// # Errors
    ///
    /// Returns [`CeilidhError::InvalidParameters`] if `p` is not ≡ 2, 5
    /// (mod 9), if `q` is trivial, or if `q` does not divide
    /// `Φ6(p) = p² - p + 1`.
    pub fn from_components(p: &BigUint, q: &BigUint) -> Result<Self, CeilidhError> {
        let fp = FpContext::new(p)
            .map_err(|_| CeilidhError::InvalidParameters("p is not a usable odd prime"))?;
        let fp6 = Fp6Context::new(fp.clone())?;
        let repr = F2Repr::new(fp.clone())?;

        let phi6 = Self::phi6(p);
        if q.is_zero() || q.is_one() {
            return Err(CeilidhError::InvalidParameters("q must exceed 1"));
        }
        let (cofactor, rem) = phi6
            .div_rem(q)
            .map_err(|_| CeilidhError::InvalidParameters("q must be non-zero"))?;
        if !rem.is_zero() {
            return Err(CeilidhError::InvalidParameters("q must divide p^2 - p + 1"));
        }

        let generator = Self::find_generator(&fp6, p, q)?;
        Ok(CeilidhParams {
            fp,
            fp6,
            repr,
            p: p.clone(),
            q: q.clone(),
            cofactor,
            generator,
        })
    }

    /// Generates a fresh random parameter set with a `bits`-bit prime `p`.
    ///
    /// The search repeats until `Φ6(p)` splits as a smooth cofactor
    /// (trial division up to 100 000) times a prime `q`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 16` (the congruence and smoothness conditions need
    /// room to be satisfiable).
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Result<Self, CeilidhError> {
        assert!(bits >= 16, "parameter generation needs at least 16 bits");
        loop {
            // Alternate the two admissible residue classes.
            for residue in [2u32, 5] {
                let p = gen_prime_congruent(bits, residue, 9, rng);
                let phi6 = Self::phi6(&p);
                let (cofactor, q) = Self::strip_small_factors(&phi6);
                if q.bit_len() + 16 < phi6.bit_len() {
                    continue; // cofactor unexpectedly large; try again
                }
                if is_prime(&q, rng) {
                    let _ = cofactor;
                    return Self::from_components(&p, &q);
                }
            }
        }
    }

    /// A small parameter set (`p = 101`, `q = 37`) for unit tests, examples
    /// and documentation. Offers no security whatsoever.
    pub fn toy() -> Result<Self, CeilidhError> {
        Self::from_components(&BigUint::from(101u64), &BigUint::from(37u64))
    }

    /// The 170-bit parameter size evaluated in the paper (Table 3's
    /// "170-bit torus" row).
    ///
    /// The concrete prime was generated once with
    /// [`CeilidhParams::generate`] and fixed here so that benchmarks and
    /// tests are reproducible. `p ≡ 2 (mod 9)` and
    /// `q = Φ6(p) / cofactor` is prime.
    pub fn date2008() -> Result<Self, CeilidhError> {
        let p = BigUint::from_hex(P_170_HEX)
            .map_err(|_| CeilidhError::InvalidParameters("bad built-in prime"))?;
        let q = BigUint::from_hex(Q_170_HEX)
            .map_err(|_| CeilidhError::InvalidParameters("bad built-in subgroup order"))?;
        Self::from_components(&p, &q)
    }

    /// `Φ6(p) = p² - p + 1`, the order of `T6(Fp)`.
    pub fn phi6(p: &BigUint) -> BigUint {
        &(&(p * p) - p) + &BigUint::one()
    }

    /// The field prime `p`.
    pub fn p(&self) -> &BigUint {
        &self.p
    }

    /// The prime order `q` of the working subgroup.
    pub fn q(&self) -> &BigUint {
        &self.q
    }

    /// The cofactor `Φ6(p) / q`.
    pub fn cofactor(&self) -> &BigUint {
        &self.cofactor
    }

    /// The order of the full torus, `Φ6(p)`.
    pub fn torus_order(&self) -> BigUint {
        Self::phi6(&self.p)
    }

    /// The base prime-field context.
    pub fn fp(&self) -> &FpContext {
        &self.fp
    }

    /// The `Fp6` (representation F1) context.
    pub fn fp6(&self) -> &Fp6Context {
        &self.fp6
    }

    /// The representation-F2 machinery (maps τ / τ⁻¹), used by compression.
    pub fn repr(&self) -> &F2Repr {
        &self.repr
    }

    /// The generator of the order-`q` subgroup.
    pub fn generator(&self) -> TorusElement {
        TorusElement::from_fp6_unchecked(self.generator.clone())
    }

    /// Strips every prime factor below [`SMALL_FACTOR_BOUND`] from `n`,
    /// returning `(smooth_cofactor, remainder)`.
    fn strip_small_factors(n: &BigUint) -> (BigUint, BigUint) {
        let mut cofactor = BigUint::one();
        let mut rest = n.clone();
        for d in small_primes(SMALL_FACTOR_BOUND) {
            let db = BigUint::from(d as u64);
            loop {
                let (quot, rem) = rest.div_rem(&db).expect("divisor is non-zero");
                if rem.is_zero() {
                    cofactor = &cofactor * &db;
                    rest = quot;
                } else {
                    break;
                }
            }
            if rest.is_one() {
                break;
            }
        }
        (cofactor, rest)
    }

    /// Deterministically searches for an element of order exactly `q` by
    /// projecting candidate field elements into the torus subgroup.
    fn find_generator(
        fp6: &Fp6Context,
        p: &BigUint,
        q: &BigUint,
    ) -> Result<Fp6Element, CeilidhError> {
        // (p^6 - 1) / q
        let p6_minus_1 = &p.pow(6) - &BigUint::one();
        let (exp, rem) = p6_minus_1
            .div_rem(q)
            .map_err(|_| CeilidhError::InvalidParameters("q must be non-zero"))?;
        if !rem.is_zero() {
            return Err(CeilidhError::InvalidParameters(
                "q must divide the multiplicative group order",
            ));
        }
        // Try simple deterministic candidates h = z + c.
        for c in 1u64..1000 {
            let candidate = fp6.add(&fp6.gen_z(), &fp6.from_fp(fp6.fp().from_u64(c)));
            let g = fp6.exp(&candidate, &exp);
            if g != fp6.one() {
                debug_assert_eq!(fp6.exp(&g, q), fp6.one());
                return Ok(g);
            }
        }
        Err(CeilidhError::InvalidParameters(
            "failed to find a generator (q probably does not divide Φ6(p))",
        ))
    }
}

/// Simple sieve of Eratosthenes returning all primes below `bound`.
fn small_primes(bound: u32) -> Vec<u32> {
    let bound = bound as usize;
    let mut sieve = vec![true; bound];
    let mut out = Vec::new();
    for i in 2..bound {
        if sieve[i] {
            out.push(i as u32);
            let mut j = i * i;
            while j < bound {
                sieve[j] = false;
                j += i;
            }
        }
    }
    out
}

/// 170-bit CEILIDH prime `p ≡ 2 (mod 9)` (generated once with
/// `cargo run -p ceilidh --bin gen_params -- 170 20080314` and fixed for
/// reproducibility).
const P_170_HEX: &str = "2e14985ba5778232ba167ef32f9741a9a30db4650f7";
/// The 331-bit prime order `q = Φ6(p)/327` of the working subgroup of
/// `T6(Fp)` for [`P_170_HEX`].
const Q_170_HEX: &str =
    "67e5cb35a64054b95002ed1c23bce161cfe740e26415dcc6b4a57f167304b8ea12b4dd0c3f6d1e80d4d";

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn toy_parameters_are_consistent() {
        let params = CeilidhParams::toy().unwrap();
        assert_eq!(params.p().to_u64(), Some(101));
        assert_eq!(params.q().to_u64(), Some(37));
        // Φ6(101) = 10101 = 273 * 37
        assert_eq!(params.torus_order().to_u64(), Some(10101));
        assert_eq!(params.cofactor().to_u64(), Some(273));
        // Generator has order exactly q.
        let g = params.generator();
        let fp6 = params.fp6();
        assert_ne!(g.as_fp6(), &fp6.one());
        assert_eq!(fp6.exp(g.as_fp6(), params.q()), fp6.one());
    }

    #[test]
    fn rejects_inconsistent_components() {
        // q does not divide Φ6(p).
        assert!(matches!(
            CeilidhParams::from_components(&BigUint::from(101u64), &BigUint::from(41u64)),
            Err(CeilidhError::InvalidParameters(_))
        ));
        // p not congruent to 2 or 5 mod 9.
        assert!(
            CeilidhParams::from_components(&BigUint::from(19u64), &BigUint::from(7u64)).is_err()
        );
        // trivial q.
        assert!(matches!(
            CeilidhParams::from_components(&BigUint::from(101u64), &BigUint::one()),
            Err(CeilidhError::InvalidParameters(_))
        ));
    }

    #[test]
    fn phi6_formula() {
        assert_eq!(
            CeilidhParams::phi6(&BigUint::from(101u64)).to_u64(),
            Some(101 * 101 - 101 + 1)
        );
        assert_eq!(CeilidhParams::phi6(&BigUint::from(2u64)).to_u64(), Some(3));
    }

    #[test]
    fn small_primes_sieve() {
        let primes = small_primes(30);
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn strip_small_factors_splits_correctly() {
        // 10101 = 3 * 7 * 13 * 37 with 37 kept (it is below the bound, so it
        // is stripped too); use a composite with a big prime factor instead.
        let n = BigUint::from(2u64 * 3 * 1_000_003);
        let (cof, rest) = CeilidhParams::strip_small_factors(&n);
        assert_eq!(cof.to_u64(), Some(6));
        assert_eq!(rest.to_u64(), Some(1_000_003));
    }

    #[test]
    fn date2008_parameters_are_consistent() {
        let params = CeilidhParams::date2008().unwrap();
        assert_eq!(params.p().bit_len(), 170);
        assert_eq!((params.p() % &BigUint::from(9u64)).to_u64(), Some(2));
        assert_eq!(params.cofactor().to_u64(), Some(327));
        let (_, rem) = params.torus_order().div_rem(params.q()).unwrap();
        assert!(rem.is_zero());
        // The generator really has order q.
        let g = params.generator();
        assert_eq!(params.fp6().exp(g.as_fp6(), params.q()), params.fp6().one());
        assert_ne!(g.as_fp6(), &params.fp6().one());
        // p and q are prime.
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        assert!(bignum::is_prime(params.p(), &mut rng));
        assert!(bignum::is_prime(params.q(), &mut rng));
    }

    #[test]
    fn generate_small_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let params = CeilidhParams::generate(24, &mut rng).unwrap();
        assert_eq!(params.p().bit_len(), 24);
        let r = (params.p() % &BigUint::from(9u64)).to_u64().unwrap();
        assert!(r == 2 || r == 5);
        // q divides Φ6(p) and the generator has order q.
        let (_, rem) = params.torus_order().div_rem(params.q()).unwrap();
        assert!(rem.is_zero());
        let g = params.generator();
        assert_eq!(params.fp6().exp(g.as_fp6(), params.q()), params.fp6().one());
    }
}

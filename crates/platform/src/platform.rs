//! The MicroBlaze-level view of the platform: full public-key operations.
//!
//! Every composite operation flows through one path since the typed-IR
//! refactor: the [`crate::program::ProgramCache`] compiles the level-2
//! sequence once per `(OpKind, bits, cost-model)` key, and
//! [`Platform::execute`] runs the [`CompiledProgram`] against a slot
//! bank. The public `run_*` / `*_report` methods are thin marshalling
//! shims over that path, and the exponentiation/scalar ladders fetch
//! their programs once before the loop instead of rebuilding and
//! re-scheduling the same sequence on every iteration.

use std::sync::Arc;

use bignum::{mod_inv, mod_mul, BigUint};
use ceilidh::{CeilidhParams, TorusElement};
use ecc::{AffinePoint, Curve, JacobianPoint};
use field::{Fp6Context, Fp6Element};

use crate::coprocessor::Coprocessor;
use crate::cost::CostModel;
use crate::hierarchy::{Hierarchy, SequenceEngine};
use crate::program::{CompiledProgram, FormulaDb, OpKind, ProgramCache};
use crate::report::ExecutionReport;

/// The complete platform: MicroBlaze controller + multicore coprocessor.
///
/// All drivers execute *functionally* — results are computed through the
/// simulated coprocessor and can be compared with the host `ceilidh`, `ecc`
/// and `rsa` crates — while cycles are accumulated according to the cost
/// model and the selected control hierarchy.
///
/// Cloning a `Platform` shares its program cache, so a fleet of clones
/// (e.g. per-shard workers over the same cost model) compiles each
/// level-2 program exactly once.
#[derive(Debug, Clone)]
pub struct Platform {
    coprocessor: Coprocessor,
    engine: SequenceEngine,
    programs: ProgramCache,
}

impl Platform {
    /// Creates a platform with `num_cores` coprocessor cores under the given
    /// control hierarchy.
    pub fn new(cost: CostModel, num_cores: usize, hierarchy: Hierarchy) -> Self {
        Platform::with_program_cache(cost, num_cores, hierarchy, ProgramCache::new())
    }

    /// Creates a platform that draws compiled programs from a
    /// caller-supplied cache.
    ///
    /// [`Platform::clone`] already shares the cache between identical
    /// instances; this constructor is for *fleets* — pools of instances
    /// that may differ in hierarchy or core count but should still compile
    /// each `(OpKind, bits, cost-model)` program exactly once between
    /// them. The cache key includes the cost-model fingerprint, so
    /// instances with different knobs never alias each other's programs.
    ///
    /// ```
    /// use platform::{CostModel, Hierarchy, Platform, ProgramCache};
    ///
    /// let shared = ProgramCache::new();
    /// let a = Platform::with_program_cache(CostModel::paper(), 4, Hierarchy::TypeB, shared.clone());
    /// let b = Platform::with_program_cache(CostModel::paper(), 2, Hierarchy::TypeA, shared.clone());
    /// a.fp6_multiplication_report(170);
    /// b.fp6_multiplication_report(170); // same program: a hit, not a recompile
    /// assert_eq!((shared.misses(), shared.hits()), (1, 1));
    /// ```
    pub fn with_program_cache(
        cost: CostModel,
        num_cores: usize,
        hierarchy: Hierarchy,
        programs: ProgramCache,
    ) -> Self {
        Platform {
            coprocessor: Coprocessor::new(cost, num_cores),
            engine: SequenceEngine::new(hierarchy),
            programs,
        }
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        self.coprocessor.cost()
    }

    /// The underlying coprocessor.
    pub fn coprocessor(&self) -> &Coprocessor {
        &self.coprocessor
    }

    /// The control hierarchy in use.
    pub fn hierarchy(&self) -> Hierarchy {
        self.engine.hierarchy()
    }

    /// The compile-once program cache (shared between clones).
    pub fn program_cache(&self) -> &ProgramCache {
        &self.programs
    }

    /// The compiled program for `kind` at `bits` operand length, fetched
    /// from the cache (compiling on first use).
    pub fn compiled(&self, kind: OpKind, bits: usize) -> Arc<CompiledProgram> {
        self.programs.get_or_compile(kind, bits, self.cost())
    }

    /// Executes a compiled program against a slot bank — the single
    /// sequence → coprocessor → schedule path every composite driver and
    /// report shim goes through.
    ///
    /// Montgomery products operate on whatever representation the slots
    /// are in; callers needing plain-domain results are responsible for
    /// the domain conversions (as the `run_*` shims are).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is smaller than the program's slot budget.
    pub fn execute(
        &self,
        program: &CompiledProgram,
        modulus: &BigUint,
        slots: &mut [BigUint],
    ) -> ExecutionReport {
        assert!(
            slots.len() >= program.slot_budget(),
            "{}: {} slots provided, {} required",
            program.kind(),
            slots.len(),
            program.slot_budget()
        );
        self.engine
            .run(&self.coprocessor, modulus, slots, program.ops())
    }

    /// Executes a compiled program once per slot bank — the batched form
    /// of [`Platform::execute`] that the throughput engine's batch
    /// dispatch goes through.
    ///
    /// The program is compiled (and fetched from the cache) exactly once
    /// by the caller; every bank then pays only the execution cost, which
    /// is what makes same-`(OpKind, bits)` batch formation worthwhile.
    /// Each bank is executed independently and in order, so the returned
    /// reports — and the slot states left behind — are identical to `n`
    /// serial [`Platform::execute`] calls.
    ///
    /// # Panics
    ///
    /// Panics if any bank is smaller than the program's slot budget.
    pub fn execute_batch(
        &self,
        program: &CompiledProgram,
        modulus: &BigUint,
        banks: &mut [Vec<BigUint>],
    ) -> Vec<ExecutionReport> {
        banks
            .iter_mut()
            .map(|bank| self.execute(program, modulus, bank))
            .collect()
    }

    /// Cycles of one MicroBlaze register access + interrupt (Table 1 row 1).
    pub fn interrupt_cycles(&self) -> u64 {
        self.cost().interrupt_cycles
    }

    // ----------------------------------------------------------------- //
    // Table 1: modular-operation latencies.                              //
    // ----------------------------------------------------------------- //

    /// Cycles of one Montgomery modular multiplication at `bits` operand
    /// length.
    pub fn montgomery_multiplication_report(&self, bits: usize) -> ExecutionReport {
        ExecutionReport {
            cycles: self.coprocessor.mont_mul_cycles(bits),
            modmuls: 1,
            ..Default::default()
        }
    }

    /// Cycles of one modular addition at `bits` operand length.
    pub fn modular_addition_report(&self, bits: usize) -> ExecutionReport {
        ExecutionReport {
            cycles: self.coprocessor.mod_add_cycles(bits),
            modadds: 1,
            ..Default::default()
        }
    }

    /// Cycles of one modular subtraction at `bits` operand length.
    pub fn modular_subtraction_report(&self, bits: usize) -> ExecutionReport {
        ExecutionReport {
            cycles: self.coprocessor.mod_sub_cycles(bits),
            modsubs: 1,
            ..Default::default()
        }
    }

    // ----------------------------------------------------------------- //
    // Domain conversions (operands are loaded into the coprocessor in    //
    // Montgomery representation, as on the real platform).               //
    // ----------------------------------------------------------------- //

    /// `R = 2^{w·s} mod p` for this platform's datapath.
    fn platform_r(&self, modulus: &BigUint) -> BigUint {
        let bits = self.cost().word_bits * self.cost().limbs(modulus.bit_len());
        BigUint::one().shl_bits(bits) % modulus
    }

    /// Converts a residue into the platform's Montgomery domain.
    fn to_domain(&self, v: &BigUint, modulus: &BigUint) -> BigUint {
        mod_mul(v, &self.platform_r(modulus), modulus)
    }

    /// Converts a platform-domain value back to a plain residue.
    fn leave_domain(&self, v: &BigUint, modulus: &BigUint) -> BigUint {
        let r_inv =
            mod_inv(&self.platform_r(modulus), modulus).expect("R is invertible for odd moduli");
        mod_mul(v, &r_inv, modulus)
    }

    /// Reads a Jacobian point out of three consecutive output slots,
    /// converting back to the plain domain.
    fn read_jacobian(
        &self,
        curve: &Curve,
        slots: &[BigUint],
        modulus: &BigUint,
        base: usize,
    ) -> JacobianPoint {
        JacobianPoint {
            x: curve
                .fp()
                .from_biguint(&self.leave_domain(&slots[base], modulus)),
            y: curve
                .fp()
                .from_biguint(&self.leave_domain(&slots[base + 1], modulus)),
            z: curve
                .fp()
                .from_biguint(&self.leave_domain(&slots[base + 2], modulus)),
        }
    }

    // ----------------------------------------------------------------- //
    // Table 2: composite (level-2) operations.                           //
    // ----------------------------------------------------------------- //

    /// Cycle accounting of one compiled composite operation at `bits`
    /// operand length, executed on dummy (but valid) operands — the
    /// generic path behind every Table 2 report shim.
    pub fn composite_report(&self, kind: OpKind, bits: usize) -> ExecutionReport {
        let program = self.compiled(kind, bits);
        let modulus = probe_modulus(bits);
        let mut slots: Vec<BigUint> = (0..program.slot_budget())
            .map(|i| BigUint::from((i % 251 + 1) as u64))
            .collect();
        self.execute(&program, &modulus, &mut slots)
    }

    /// Executes one `Fp6` (torus `T6`) multiplication on the platform,
    /// returning the product and the cycle accounting.
    pub fn run_fp6_multiplication(
        &self,
        fp6: &Fp6Context,
        a: &Fp6Element,
        b: &Fp6Element,
    ) -> (Fp6Element, ExecutionReport) {
        let program = self.compiled(OpKind::Fp6Mul, fp6.fp().modulus().bit_len());
        self.execute_fp6_multiplication(&program, fp6, a, b)
    }

    /// [`Platform::run_fp6_multiplication`] against an already-compiled
    /// program (the exponentiation ladder's compile-once path).
    fn execute_fp6_multiplication(
        &self,
        program: &CompiledProgram,
        fp6: &Fp6Context,
        a: &Fp6Element,
        b: &Fp6Element,
    ) -> (Fp6Element, ExecutionReport) {
        let modulus = fp6.fp().modulus().clone();
        let mut slots = vec![BigUint::zero(); program.slot_budget()];
        for i in 0..6 {
            slots[i] = self.to_domain(&fp6.fp().to_biguint(&a.coeffs()[i]), &modulus);
            slots[6 + i] = self.to_domain(&fp6.fp().to_biguint(&b.coeffs()[i]), &modulus);
        }
        let report = self.execute(program, &modulus, &mut slots);
        let coeffs: [field::FpElement; 6] = std::array::from_fn(|i| {
            fp6.fp()
                .from_biguint(&self.leave_domain(&slots[12 + i], &modulus))
        });
        (fp6.from_coeffs(coeffs), report)
    }

    /// Executes a batch of `Fp6` multiplications against **one** compile
    /// of the `Fp6Mul` program.
    ///
    /// This is the driver the throughput engine's batch dispatch uses for
    /// torus traffic: the program is fetched from the cache once (a single
    /// miss-or-hit), then every pair pays only marshalling + execution.
    /// Results and per-pair reports are identical to calling
    /// [`Platform::run_fp6_multiplication`] once per pair.
    pub fn run_fp6_multiplication_batch(
        &self,
        fp6: &Fp6Context,
        pairs: &[(Fp6Element, Fp6Element)],
    ) -> Vec<(Fp6Element, ExecutionReport)> {
        let program = self.compiled(OpKind::Fp6Mul, fp6.fp().modulus().bit_len());
        pairs
            .iter()
            .map(|(a, b)| self.execute_fp6_multiplication(&program, fp6, a, b))
            .collect()
    }

    /// Cycle accounting of one `Fp6` multiplication at `bits` operand length
    /// (Table 2, "T6 Mult." rows) without needing real field elements.
    pub fn fp6_multiplication_report(&self, bits: usize) -> ExecutionReport {
        self.composite_report(OpKind::Fp6Mul, bits)
    }

    /// Cycle accounting of one **general** (16-MM Jacobian) ECC point
    /// addition at `bits` operand length.
    pub fn ecc_point_addition_report(&self, bits: usize) -> ExecutionReport {
        self.composite_report(OpKind::EccPaGeneral, bits)
    }

    /// Cycle accounting of one **mixed-coordinate** (13-MM, affine addend)
    /// ECC point addition at `bits` operand length — the sequence the
    /// scalar ladder runs and the one Table 2's ECC PA rows are calibrated
    /// against.
    pub fn ecc_point_addition_mixed_report(&self, bits: usize) -> ExecutionReport {
        self.composite_report(OpKind::EccPaMixed, bits)
    }

    /// Cycle accounting of one general ECC point doubling at `bits`
    /// operand length — the InsRom1 doubling Table 2's **Type-B** ECC PD
    /// row is calibrated against.
    pub fn ecc_point_doubling_report(&self, bits: usize) -> ExecutionReport {
        self.composite_report(OpKind::EccPd, bits)
    }

    /// Cycle accounting of one **fast `a = -3`** ECC point doubling (8 MM)
    /// at `bits` operand length — the shortened sequence Table 2's
    /// **Type-A** ECC PD row is calibrated against (the MicroBlaze
    /// generates Type-A sequences on the fly; see DESIGN.md).
    pub fn ecc_point_doubling_fast_report(&self, bits: usize) -> ExecutionReport {
        self.composite_report(OpKind::EccPdFast, bits)
    }

    /// Executes one Jacobian point addition on the platform.
    pub fn run_ecc_point_addition(
        &self,
        curve: &Curve,
        p: &JacobianPoint,
        q: &JacobianPoint,
    ) -> (JacobianPoint, ExecutionReport) {
        let program = self.compiled(OpKind::EccPaGeneral, curve.fp().modulus().bit_len());
        self.execute_ecc_point_addition(&program, curve, p, q)
    }

    fn execute_ecc_point_addition(
        &self,
        program: &CompiledProgram,
        curve: &Curve,
        p: &JacobianPoint,
        q: &JacobianPoint,
    ) -> (JacobianPoint, ExecutionReport) {
        let modulus = curve.fp().modulus().clone();
        let mut slots = vec![BigUint::zero(); program.slot_budget()];
        for (i, c) in [&p.x, &p.y, &p.z, &q.x, &q.y, &q.z].iter().enumerate() {
            slots[i] = self.to_domain(&curve.fp().to_biguint(c), &modulus);
        }
        slots[9] = self.to_domain(&curve.fp().to_biguint(curve.a()), &modulus);
        let report = self.execute(program, &modulus, &mut slots);
        let out = self.read_jacobian(curve, &slots, &modulus, 6);
        (out, report)
    }

    /// Executes one mixed-coordinate point addition on the platform:
    /// Jacobian `p` plus the **affine** addend `q` (`Z2 = 1`), the
    /// 13-multiplication sequence the scalar ladder runs.
    ///
    /// As on the real platform the affine operand is stored in **plain**
    /// (canonical) form — it is the public base point, written once by the
    /// MicroBlaze — and the sequence itself lifts it into the Montgomery
    /// domain with the preloaded `R² mod p` constant (slot 5).
    ///
    /// # Panics
    ///
    /// Panics if `q` is the point at infinity: the mixed sequence, like
    /// every InsRom program, has no data-dependent control flow and cannot
    /// represent the identity; the ladder never presents it.
    pub fn run_ecc_point_addition_mixed(
        &self,
        curve: &Curve,
        p: &JacobianPoint,
        q: &AffinePoint,
    ) -> (JacobianPoint, ExecutionReport) {
        let program = self.compiled(OpKind::EccPaMixed, curve.fp().modulus().bit_len());
        self.execute_ecc_point_addition_mixed(&program, curve, p, q)
    }

    fn execute_ecc_point_addition_mixed(
        &self,
        program: &CompiledProgram,
        curve: &Curve,
        p: &JacobianPoint,
        q: &AffinePoint,
    ) -> (JacobianPoint, ExecutionReport) {
        let (qx, qy) = q
            .coordinates()
            .expect("the mixed PA sequence needs a finite affine addend");
        let modulus = curve.fp().modulus().clone();
        let mut slots = vec![BigUint::zero(); program.slot_budget()];
        for (i, c) in [&p.x, &p.y, &p.z].iter().enumerate() {
            slots[i] = self.to_domain(&curve.fp().to_biguint(c), &modulus);
        }
        // Affine operand in plain form plus the Montgomery lift constant.
        slots[3] = curve.fp().to_biguint(qx);
        slots[4] = curve.fp().to_biguint(qy);
        let r_mod = self.platform_r(&modulus);
        slots[5] = mod_mul(&r_mod, &r_mod, &modulus);
        let report = self.execute(program, &modulus, &mut slots);
        let out = self.read_jacobian(curve, &slots, &modulus, 6);
        (out, report)
    }

    /// Executes one Jacobian point doubling on the platform (the general
    /// 10-MM sequence, valid for every curve coefficient `a`).
    pub fn run_ecc_point_doubling(
        &self,
        curve: &Curve,
        p: &JacobianPoint,
    ) -> (JacobianPoint, ExecutionReport) {
        let program = self.compiled(OpKind::EccPd, curve.fp().modulus().bit_len());
        self.execute_ecc_point_doubling(&program, curve, p)
    }

    /// Executes one **fast** Jacobian point doubling on the platform: the
    /// shortened 8-multiplication `a = -3` sequence the reproduction
    /// curve's ladder runs.
    ///
    /// # Panics
    ///
    /// Panics if the curve does not satisfy `a = -3` — the factored slope
    /// `3(X1 - Z1²)(X1 + Z1²)` is only the correct tangent numerator
    /// there; the ladder driver checks [`Curve::a_is_minus_three`] and
    /// falls back to the general doubling otherwise.
    pub fn run_ecc_point_doubling_fast(
        &self,
        curve: &Curve,
        p: &JacobianPoint,
    ) -> (JacobianPoint, ExecutionReport) {
        assert!(
            curve.a_is_minus_three(),
            "the fast PD sequence requires a = -3 (curve {:?})",
            curve
        );
        let program = self.compiled(OpKind::EccPdFast, curve.fp().modulus().bit_len());
        self.execute_ecc_point_doubling(&program, curve, p)
    }

    /// Shared marshalling for both doubling programs (identical slot
    /// layout; the fast program simply never reads the `a` slot).
    fn execute_ecc_point_doubling(
        &self,
        program: &CompiledProgram,
        curve: &Curve,
        p: &JacobianPoint,
    ) -> (JacobianPoint, ExecutionReport) {
        let modulus = curve.fp().modulus().clone();
        let mut slots = vec![BigUint::zero(); program.slot_budget()];
        for (i, c) in [&p.x, &p.y, &p.z].iter().enumerate() {
            slots[i] = self.to_domain(&curve.fp().to_biguint(c), &modulus);
        }
        slots[6] = self.to_domain(&curve.fp().to_biguint(curve.a()), &modulus);
        let report = self.execute(program, &modulus, &mut slots);
        let out = self.read_jacobian(curve, &slots, &modulus, 3);
        (out, report)
    }

    // ----------------------------------------------------------------- //
    // Table 3: full public-key operations.                               //
    // ----------------------------------------------------------------- //

    /// Executes a full torus `T6` exponentiation (square-and-multiply over
    /// representation F1) on the platform.
    ///
    /// The `Fp6` multiplication program is compiled once and executed on
    /// every ladder step (squarings and multiplications alike).
    pub fn torus_exponentiation(
        &self,
        params: &CeilidhParams,
        base: &TorusElement,
        exponent: &BigUint,
    ) -> (TorusElement, ExecutionReport) {
        let fp6 = params.fp6();
        let program = self.compiled(OpKind::Fp6Mul, fp6.fp().modulus().bit_len());
        let mut acc = fp6.one();
        let mut report = ExecutionReport::default();
        for i in (0..exponent.bit_len()).rev() {
            let (sq, r) = self.execute_fp6_multiplication(&program, fp6, &acc, &acc);
            acc = sq;
            report = report.merge(&r);
            if exponent.bit(i) {
                let (prod, r) = self.execute_fp6_multiplication(&program, fp6, &acc, base.as_fp6());
                acc = prod;
                report = report.merge(&r);
            }
        }
        (TorusElement::from_fp6_unchecked(acc), report)
    }

    /// Executes a full ECC scalar multiplication (Jacobian double-and-add)
    /// on the platform.
    ///
    /// Both ladder programs are compiled once, before the loop. The addend
    /// of every point addition is the base point itself, which arrives
    /// affine and stays affine — so when the cost model selects the
    /// mixed-coordinate layer ([`CostModel::uses_mixed_pa`], on in
    /// [`CostModel::paper`]) the ladder drives the 13-multiplication
    /// `pa_mixed` sequence; with the knob off it runs the general 16-MM
    /// Jacobian addition (the pre-mixed baseline, kept selectable for the
    /// `pa_mixed_sweep` ablation). Likewise, on curves with `a = -3` the
    /// fast-PD layer ([`CostModel::uses_fast_pd`]) drives the shortened
    /// 8-MM doubling; otherwise the general 10-MM doubling runs (the
    /// `pd_fast_sweep` ablation baseline).
    ///
    /// # Panics
    ///
    /// Panics if `point` is the point at infinity (the paper's sequences
    /// assume a finite base point).
    pub fn ecc_scalar_multiplication(
        &self,
        curve: &Curve,
        point: &AffinePoint,
        k: &BigUint,
    ) -> (AffinePoint, ExecutionReport) {
        let (pd_program, pa_program, mixed) = self.ladder_programs(curve);
        self.scalar_multiplication_with_programs(curve, point, k, &pd_program, &pa_program, mixed)
    }

    /// Executes a batch of scalar multiplications over the same curve
    /// against **one** fetch of the ladder's PD and PA programs.
    ///
    /// This is the driver the throughput engine's batch dispatch uses for
    /// signing/ECDH traffic: both programs are fetched from the cache
    /// once, then every `(point, scalar)` request pays only the ladder.
    /// Results and per-request reports are identical to calling
    /// [`Platform::ecc_scalar_multiplication`] once per request.
    pub fn ecc_scalar_multiplication_batch(
        &self,
        curve: &Curve,
        requests: &[(AffinePoint, BigUint)],
    ) -> Vec<(AffinePoint, ExecutionReport)> {
        let (pd_program, pa_program, mixed) = self.ladder_programs(curve);
        requests
            .iter()
            .map(|(point, k)| {
                self.scalar_multiplication_with_programs(
                    curve,
                    point,
                    k,
                    &pd_program,
                    &pa_program,
                    mixed,
                )
            })
            .collect()
    }

    /// Fetches (compiling at most once) the doubling and addition
    /// programs the scalar ladder will run on `curve` under the current
    /// cost-model knobs, plus whether the addition is the mixed sequence.
    ///
    /// The variants are no longer hard-coded: [`FormulaDb::best_for`]
    /// derives the cheapest formula eligible under `(curve, cost model)`.
    /// The ladder asks for [`OpKind::EccPaMixed`] because its addend is
    /// always the affine base point (the capability the `madd` formula
    /// requires); the doubling request carries no extra capability and the
    /// database decides between `pd-general` and `dbl-2001-b` from the
    /// curve's `a = -3` structure.
    fn ladder_programs(&self, curve: &Curve) -> (Arc<CompiledProgram>, Arc<CompiledProgram>, bool) {
        let db = FormulaDb::builtin();
        let pd = db.best_for(OpKind::EccPd, curve, self.cost());
        let pa = db.best_for(OpKind::EccPaMixed, curve, self.cost());
        let bits = curve.fp().modulus().bit_len();
        let pd_program = self.compiled(pd.kind(), bits);
        let pa_program = self.compiled(pa.kind(), bits);
        let mixed = pa.kind() == OpKind::EccPaMixed;
        (pd_program, pa_program, mixed)
    }

    /// The double-and-add ladder body against already-fetched programs —
    /// shared by the single-call and batched scalar-multiplication
    /// drivers, bit-identical between them.
    fn scalar_multiplication_with_programs(
        &self,
        curve: &Curve,
        point: &AffinePoint,
        k: &BigUint,
        pd_program: &CompiledProgram,
        pa_program: &CompiledProgram,
        mixed: bool,
    ) -> (AffinePoint, ExecutionReport) {
        assert!(
            !point.is_infinity(),
            "the platform PA/PD sequences need a finite base point"
        );
        let mut report = ExecutionReport::default();
        let jp = curve.to_jacobian(point);
        let mut acc: Option<JacobianPoint> = None;
        for i in (0..k.bit_len()).rev() {
            if let Some(cur) = acc.take() {
                let (doubled, r) = self.execute_ecc_point_doubling(pd_program, curve, &cur);
                report = report.merge(&r);
                acc = Some(doubled);
            }
            if k.bit(i) {
                acc = Some(match acc.take() {
                    None => jp.clone(),
                    Some(cur) => {
                        let (sum, r) = if mixed {
                            self.execute_ecc_point_addition_mixed(pa_program, curve, &cur, point)
                        } else {
                            self.execute_ecc_point_addition(pa_program, curve, &cur, &jp)
                        };
                        report = report.merge(&r);
                        sum
                    }
                });
            }
        }
        let result = match acc {
            None => AffinePoint::Infinity,
            Some(j) => curve.to_affine(&j),
        };
        (result, report)
    }

    /// Executes a full RSA modular exponentiation (`base^exponent mod n`) on
    /// the platform. The exponentiation ladder is driven by the MicroBlaze,
    /// so every Montgomery multiplication pays the register-access +
    /// interrupt overhead, as in the paper's RSA implementation.
    pub fn rsa_exponentiation(
        &self,
        modulus: &BigUint,
        base: &BigUint,
        exponent: &BigUint,
    ) -> (BigUint, ExecutionReport) {
        let mut report = ExecutionReport::default();
        let r_mod = self.platform_r(modulus);
        let mut acc = r_mod.clone(); // 1 in the platform domain
        let base_dom = self.to_domain(&(base % modulus), modulus);
        let mm = |a: &BigUint, b: &BigUint, report: &mut ExecutionReport| {
            let r = self.coprocessor.mont_mul(a, b, modulus);
            report.cycles += r.cycles + self.cost().interrupt_cycles;
            report.modmuls += 1;
            report.interrupts += 1;
            report.register_accesses += 1;
            r.value
        };
        for i in (0..exponent.bit_len()).rev() {
            acc = mm(&acc.clone(), &acc, &mut report);
            if exponent.bit(i) {
                acc = mm(&acc.clone(), &base_dom, &mut report);
            }
        }
        (self.leave_domain(&acc, modulus), report)
    }
}

/// Deterministic odd modulus used for cycle-only probes.
fn probe_modulus(bits: usize) -> BigUint {
    let mut m = BigUint::one().shl_bits(bits - 1);
    m = &m + &BigUint::one().shl_bits(bits / 2);
    &m + &BigUint::from(13u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bignum::MontgomeryParams;
    use ecc::ScalarMulAlgorithm;
    use rand::SeedableRng;

    fn platform(hierarchy: Hierarchy) -> Platform {
        Platform::new(CostModel::paper(), 4, hierarchy)
    }

    #[test]
    fn fp6_multiplication_matches_field_crate() {
        let params = CeilidhParams::toy().unwrap();
        let fp6 = params.fp6();
        let mut rng = rand::rngs::StdRng::seed_from_u64(201);
        let plat = platform(Hierarchy::TypeB);
        for _ in 0..5 {
            let a = fp6.random(&mut rng);
            let b = fp6.random(&mut rng);
            let (got, report) = plat.run_fp6_multiplication(fp6, &a, &b);
            assert_eq!(got, fp6.mul(&a, &b));
            assert_eq!(report.modmuls, 18);
        }
        // Five runs of the same operation: one compile, four cache hits.
        assert_eq!(plat.program_cache().misses(), 1);
        assert_eq!(plat.program_cache().hits(), 4);
    }

    #[test]
    fn ecc_point_operations_match_ecc_crate() {
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(202);
        let plat = platform(Hierarchy::TypeB);
        for _ in 0..3 {
            let p = curve.random_point(&mut rng);
            let q = curve.random_point(&mut rng);
            let jp = curve.to_jacobian(&p);
            let jq = curve.to_jacobian(&q);
            let (sum, _) = plat.run_ecc_point_addition(&curve, &jp, &jq);
            assert_eq!(curve.to_affine(&sum), curve.add(&p, &q));
            let (mixed, _) = plat.run_ecc_point_addition_mixed(&curve, &jp, &q);
            assert_eq!(curve.to_affine(&mixed), curve.add(&p, &q));
            let (dbl, _) = plat.run_ecc_point_doubling(&curve, &jp);
            assert_eq!(curve.to_affine(&dbl), curve.double(&p));
            let (dbl_fast, _) = plat.run_ecc_point_doubling_fast(&curve, &jp);
            assert_eq!(curve.to_affine(&dbl_fast), curve.double(&p));
        }
    }

    #[test]
    fn fast_doubling_agrees_with_general_and_is_cheaper() {
        // The shortened a = -3 sequence must compute the exact same double
        // while costing fewer cycles under both hierarchies.
        let curve = Curve::p160_reproduction().unwrap();
        assert!(curve.a_is_minus_three());
        let mut rng = rand::rngs::StdRng::seed_from_u64(208);
        for hierarchy in [Hierarchy::TypeA, Hierarchy::TypeB] {
            let plat = platform(hierarchy);
            let p = curve.random_point(&mut rng);
            let jp = curve.jacobian_double(&curve.to_jacobian(&p)); // generic Z
            let (general, rg) = plat.run_ecc_point_doubling(&curve, &jp);
            let (fast, rf) = plat.run_ecc_point_doubling_fast(&curve, &jp);
            assert_eq!(curve.to_affine(&general), curve.to_affine(&fast));
            assert!(rf.cycles < rg.cycles);
            assert_eq!(rf.modmuls, 8);
            assert_eq!(rg.modmuls, 10);
        }
    }

    #[test]
    #[should_panic(expected = "requires a = -3")]
    fn fast_doubling_rejects_other_curves() {
        let curve = Curve::toy().unwrap(); // a = 1
        let plat = platform(Hierarchy::TypeB);
        let p = curve.to_jacobian(curve.base_point());
        let _ = plat.run_ecc_point_doubling_fast(&curve, &p);
    }

    #[test]
    fn mixed_pa_agrees_with_general_pa_and_is_cheaper() {
        // The mixed sequence must compute the exact same sum as the
        // general one whenever the addend is affine (`Z2 = 1`) — that is
        // the substitution the ladder makes — while costing fewer cycles
        // under both hierarchies.
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(206);
        for hierarchy in [Hierarchy::TypeA, Hierarchy::TypeB] {
            let plat = platform(hierarchy);
            let p = curve.random_point(&mut rng);
            let q = curve.random_point(&mut rng);
            let jp = curve.to_jacobian(&p);
            let (general, rg) = plat.run_ecc_point_addition(&curve, &jp, &curve.to_jacobian(&q));
            let (mixed, rm) = plat.run_ecc_point_addition_mixed(&curve, &jp, &q);
            assert_eq!(curve.to_affine(&general), curve.to_affine(&mixed));
            assert!(rm.cycles < rg.cycles);
            assert_eq!(rm.modmuls, 13);
            assert_eq!(rg.modmuls, 16);
        }
    }

    #[test]
    fn ladder_obeys_the_mixed_pa_knob() {
        // Same scalar, same point: the mixed and general ladders must
        // agree functionally, with the mixed one strictly cheaper and its
        // PA cost matching the mixed composite report.
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(207);
        let p = curve.random_point(&mut rng);
        let k = BigUint::from(0b1011_0110_1101u64);
        let mixed = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
        let general = Platform::new(CostModel::paper().with_mixed_pa(false), 4, Hierarchy::TypeB);
        let (pm, rm) = mixed.ecc_scalar_multiplication(&curve, &p, &k);
        let (pg, rg) = general.ecc_scalar_multiplication(&curve, &p, &k);
        assert_eq!(pm, pg);
        assert!(rm.cycles < rg.cycles);
        // 8 set bits → 7 additions (the first set bit loads the base
        // point); 3 MM saved per addition.
        assert_eq!(rg.modmuls - rm.modmuls, 7 * 3);
    }

    #[test]
    fn ladder_obeys_the_fast_pd_knob() {
        // Same scalar, same point: the fast-PD and general-PD ladders
        // agree functionally; the fast one is strictly cheaper and saves
        // exactly 2 MM per doubling. On a curve without a = -3 the knob
        // is inert (the ladder falls back to the general doubling).
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(209);
        let p = curve.random_point(&mut rng);
        let k = BigUint::from(0b1011_0110_1101u64); // 12 bits → 11 doublings
        let fast = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
        let general = Platform::new(CostModel::paper().with_fast_pd(false), 4, Hierarchy::TypeB);
        let (pf, rf) = fast.ecc_scalar_multiplication(&curve, &p, &k);
        let (pg, rg) = general.ecc_scalar_multiplication(&curve, &p, &k);
        assert_eq!(pf, pg);
        assert!(rf.cycles < rg.cycles);
        assert_eq!(rg.modmuls - rf.modmuls, 11 * 2);

        let toy = Curve::toy().unwrap(); // a = 1: no fast doubling
        let tp = toy.random_point(&mut rng);
        let (ft, rt) = fast.ecc_scalar_multiplication(&toy, &tp, &k);
        let (gt, rgt) = general.ecc_scalar_multiplication(&toy, &tp, &k);
        assert_eq!(ft, gt);
        assert_eq!(rt.modmuls, rgt.modmuls);
    }

    #[test]
    fn ladder_compiles_each_program_once() {
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(210);
        let p = curve.random_point(&mut rng);
        let plat = platform(Hierarchy::TypeB);
        let k = BigUint::from(0xdead_beefu64);
        plat.ecc_scalar_multiplication(&curve, &p, &k);
        // One PD program + one PA program, compiled once each.
        assert_eq!(plat.program_cache().misses(), 2);
        assert_eq!(plat.program_cache().len(), 2);
        // A second ladder over the same curve reuses both.
        plat.ecc_scalar_multiplication(&curve, &p, &BigUint::from(12345u64));
        assert_eq!(plat.program_cache().misses(), 2);
        assert!(plat.program_cache().hits() >= 2);
        // Clones share the cache.
        let clone = plat.clone();
        clone.ecc_scalar_multiplication(&curve, &p, &k);
        assert_eq!(plat.program_cache().misses(), 2);
    }

    #[test]
    fn fp6_batch_matches_serial_and_compiles_once() {
        let params = CeilidhParams::toy().unwrap();
        let fp6 = params.fp6();
        let mut rng = rand::rngs::StdRng::seed_from_u64(211);
        let pairs: Vec<_> = (0..4)
            .map(|_| (fp6.random(&mut rng), fp6.random(&mut rng)))
            .collect();

        let serial_plat = platform(Hierarchy::TypeB);
        let serial: Vec<_> = pairs
            .iter()
            .map(|(a, b)| serial_plat.run_fp6_multiplication(fp6, a, b))
            .collect();

        let batch_plat = platform(Hierarchy::TypeB);
        let batched = batch_plat.run_fp6_multiplication_batch(fp6, &pairs);

        assert_eq!(batched, serial);
        // The batch fetches the program exactly once.
        assert_eq!(batch_plat.program_cache().misses(), 1);
        assert_eq!(batch_plat.program_cache().hits(), 0);
    }

    #[test]
    fn scalar_mult_batch_matches_serial_and_fetches_programs_once() {
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(212);
        let requests: Vec<_> = (0..3)
            .map(|i| {
                (
                    curve.random_point(&mut rng),
                    BigUint::from(0x1234_5678u64 + i),
                )
            })
            .collect();

        let serial_plat = platform(Hierarchy::TypeB);
        let serial: Vec<_> = requests
            .iter()
            .map(|(p, k)| serial_plat.ecc_scalar_multiplication(&curve, p, k))
            .collect();

        let batch_plat = platform(Hierarchy::TypeB);
        let batched = batch_plat.ecc_scalar_multiplication_batch(&curve, &requests);

        assert_eq!(batched, serial);
        // One PD + one PA fetch for the whole batch: two misses, no hits.
        assert_eq!(batch_plat.program_cache().misses(), 2);
        assert_eq!(batch_plat.program_cache().hits(), 0);
    }

    #[test]
    fn execute_batch_matches_serial_execute() {
        let plat = platform(Hierarchy::TypeB);
        let program = plat.compiled(OpKind::Fp6Mul, 170);
        let modulus = probe_modulus(170);
        let bank = |seed: u64| -> Vec<BigUint> {
            (0..program.slot_budget())
                .map(|i| BigUint::from((seed + i as u64) % 251 + 1))
                .collect()
        };
        let mut serial_banks = [bank(3), bank(17), bank(99)];
        let serial: Vec<_> = serial_banks
            .iter_mut()
            .map(|b| plat.execute(&program, &modulus, b))
            .collect();
        let mut batch_banks = [bank(3), bank(17), bank(99)];
        let batched = plat.execute_batch(&program, &modulus, &mut batch_banks);
        assert_eq!(batched, serial);
        assert_eq!(batch_banks, serial_banks);
    }

    #[test]
    fn type_b_is_several_times_faster_for_composites() {
        let a = platform(Hierarchy::TypeA);
        let b = platform(Hierarchy::TypeB);
        let t6_a = a.fp6_multiplication_report(170).cycles;
        let t6_b = b.fp6_multiplication_report(170).cycles;
        let ratio = t6_a as f64 / t6_b as f64;
        assert!(
            (1.8..6.0).contains(&ratio),
            "paper: Type-A/Type-B ≈ 3.78 for the T6 mult, got {ratio}"
        );
        let pa_a = a.ecc_point_addition_report(160).cycles;
        let pa_b = b.ecc_point_addition_report(160).cycles;
        assert!(pa_a > pa_b);
        let pd_b = b.ecc_point_doubling_report(160).cycles;
        assert!(pd_b < pa_b, "PD must be cheaper than PA");
        let pd_fast_b = b.ecc_point_doubling_fast_report(160).cycles;
        assert!(pd_fast_b < pd_b, "fast PD must beat the general PD");
    }

    #[test]
    fn torus_exponentiation_is_functionally_correct() {
        let params = CeilidhParams::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(203);
        let plat = platform(Hierarchy::TypeB);
        let (_, base) = params.random_subgroup_element(&mut rng);
        let exp = BigUint::from(29u64);
        let (got, report) = plat.torus_exponentiation(&params, &base, &exp);
        assert_eq!(got, params.pow(&base, &exp));
        assert!(report.modmuls >= 18);
        assert!(report.cycles > 0);
        // The whole exponentiation compiles the Fp6 program exactly once.
        assert_eq!(plat.program_cache().misses(), 1);
    }

    #[test]
    fn ecc_scalar_multiplication_is_functionally_correct() {
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(204);
        let plat = platform(Hierarchy::TypeB);
        let p = curve.random_point(&mut rng);
        let k = BigUint::from(1_234_567u64);
        let (got, report) = plat.ecc_scalar_multiplication(&curve, &p, &k);
        assert_eq!(
            got,
            curve.scalar_mul(&p, &k, ScalarMulAlgorithm::DoubleAndAdd)
        );
        assert!(report.modmuls > 0);
    }

    #[test]
    fn named_256_bit_curves_exercise_both_pd_knob_sides() {
        // P-256 has a = -3 (fast-PD eligible); secp256k1 does not, so the
        // `fast_pd` cost knob must only pay off on P-256 while both curves
        // stay functionally correct through the simulated ladder.
        let fast = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
        let general = Platform::new(CostModel::paper().with_fast_pd(false), 4, Hierarchy::TypeB);
        let k = BigUint::from(1_234_567u64);
        for name in ["p256", "secp256k1"] {
            let curve = Curve::by_name(name).unwrap();
            let p = curve.base_point().clone();
            let reference = curve.scalar_mul(&p, &k, ScalarMulAlgorithm::DoubleAndAdd);
            let (got_fast, report_fast) = fast.ecc_scalar_multiplication(&curve, &p, &k);
            let (got_general, report_general) = general.ecc_scalar_multiplication(&curve, &p, &k);
            assert_eq!(got_fast, reference, "{name}");
            assert_eq!(got_general, reference, "{name}");
            if curve.a_is_minus_three() {
                assert!(
                    report_fast.cycles < report_general.cycles,
                    "{name}: fast-PD knob must save cycles on a = -3"
                );
            } else {
                assert_eq!(
                    report_fast.modmuls, report_general.modmuls,
                    "{name}: without a = -3 the PD sequences are the same length"
                );
            }
        }
    }

    #[test]
    fn rsa_exponentiation_is_functionally_correct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(205);
        let plat = platform(Hierarchy::TypeB);
        let p = bignum::gen_prime(96, &mut rng);
        let base = BigUint::random_below(&mut rng, &p);
        let exp = BigUint::random_bits(&mut rng, 40);
        let (got, report) = plat.rsa_exponentiation(&p, &base, &exp);
        let reference = MontgomeryParams::new(&p).unwrap().mod_exp(&base, &exp);
        assert_eq!(got, reference);
        assert_eq!(report.interrupts, report.modmuls);
    }

    #[test]
    fn table3_shape_holds() {
        // Use short exponents so the test stays fast; the relative shape is
        // what matters (CEILIDH beats RSA, ECC beats CEILIDH).
        let plat = platform(Hierarchy::TypeB);
        let t6_mult = plat.fp6_multiplication_report(170).cycles;
        let pa = plat.ecc_point_addition_mixed_report(160).cycles;
        let pd = plat.ecc_point_doubling_report(160).cycles;
        let mm1024 = plat.montgomery_multiplication_report(1024).cycles + plat.interrupt_cycles();

        // Scale to full operations as in the paper: a 170-bit torus
        // exponentiation ≈ 170 squarings + 85 multiplications, a 160-bit
        // scalar multiplication ≈ 160 PD + 80 PA, a 1024-bit RSA
        // exponentiation ≈ 1536 MM.
        let torus = (170 + 85) * t6_mult;
        let ecc = 160 * pd + 80 * pa;
        let rsa = 1536 * mm1024;
        assert!(ecc < torus, "ECC ({ecc}) must beat the torus ({torus})");
        assert!(torus < rsa, "the torus ({torus}) must beat RSA ({rsa})");
        let rsa_over_torus = rsa as f64 / torus as f64;
        let torus_over_ecc = torus as f64 / ecc as f64;
        assert!(
            (2.0..10.0).contains(&rsa_over_torus),
            "paper: RSA/torus ≈ 4.8, got {rsa_over_torus}"
        );
        assert!(
            (1.2..4.0).contains(&torus_over_ecc),
            "paper: torus/ECC ≈ 2.1, got {torus_over_ecc}"
        );
    }
}

//! The multicore coprocessor: modular operations as microcoded sequences.
//!
//! The coprocessor executes three leaf operations on behalf of the
//! MicroBlaze — Montgomery modular multiplication (MM), modular addition
//! (MA) and modular subtraction (MS) — for arbitrary operand lengths
//! (Section 3.2: "modular multiplications and additions with arbitrary
//! operand length"). Additions and subtractions run on a single core
//! (Section 4 explains that carry propagation makes multicore addition
//! unattractive); multiplications use the carry-local multicore schedule of
//! Fig. 5.
//!
//! Every operation is executed functionally — the simulator computes the
//! actual numeric result, which the test-suite compares against the host
//! `bignum` implementation — while cycles are accounted per microinstruction
//! with single-port memory serialisation.

use bignum::{mod_inv, BigUint};

use crate::cost::CostModel;
use crate::isa::{Core, MicroOp, Program};
use crate::schedule::{self, MontPipeline};

/// Result of one modular operation on the coprocessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModOpResult {
    /// The numeric result (a reduced residue; for MM it is the Montgomery
    /// product `x·y·R^{-1} mod p`).
    pub value: BigUint,
    /// Total clock cycles consumed.
    pub cycles: u64,
    /// Microinstructions executed across all cores.
    pub instructions: u64,
    /// Accesses to the single-port data memory.
    pub memory_accesses: u64,
}

/// The multicore coprocessor model.
#[derive(Debug, Clone)]
pub struct Coprocessor {
    cost: CostModel,
    num_cores: usize,
}

impl Coprocessor {
    /// Creates a coprocessor with `num_cores` embedded cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(cost: CostModel, num_cores: usize) -> Self {
        assert!(num_cores >= 1, "the coprocessor needs at least one core");
        assert!(
            cost.word_bits >= 4 && cost.word_bits <= 16,
            "the simulator models datapath widths of 4..=16 bits"
        );
        Coprocessor { cost, num_cores }
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Number of embedded cores.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Splits a residue into `s` datapath words (little endian).
    fn to_words(&self, v: &BigUint, s: usize) -> Vec<u64> {
        let w = self.cost.word_bits;
        let mut words = Vec::with_capacity(s);
        let mut cur = v.clone();
        for _ in 0..s {
            let (q, r) = cur.div_rem_limb(1 << w);
            words.push(r as u64);
            cur = q;
        }
        debug_assert!(cur.is_zero(), "operand does not fit in {s} words");
        words
    }

    /// Reassembles a residue from datapath words.
    fn words_to_value(&self, words: &[u64]) -> BigUint {
        let w = self.cost.word_bits;
        let mut acc = BigUint::zero();
        for &word in words.iter().rev() {
            acc = &acc.shl_bits(w) + &BigUint::from(word);
        }
        acc
    }

    /// Montgomery modular multiplication `x·y·R^{-1} mod p` with
    /// `R = 2^{w·s}`, executed with the carry-local multicore schedule.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is even (Montgomery requires `gcd(p, r) = 1`,
    /// Algorithm 1) or if an operand is not reduced.
    pub fn mont_mul(&self, x: &BigUint, y: &BigUint, modulus: &BigUint) -> ModOpResult {
        assert!(
            modulus.is_odd(),
            "Montgomery multiplication needs an odd modulus"
        );
        assert!(x < modulus && y < modulus, "operands must be reduced");
        let w = self.cost.word_bits;
        let s = self.cost.limbs(modulus.bit_len());
        let radix = 1u64 << w;
        let mask = radix - 1;

        // p' = -p^{-1} mod 2^w  (the per-modulus constant of Algorithm 1).
        let p_low = &BigUint::from(modulus.limbs()[0] as u64) % &BigUint::from(radix);
        let p_inv = mod_inv(&p_low, &BigUint::from(radix)).expect("odd modulus");
        let n_prime = (radix - p_inv.to_u64().expect("fits in a word")) & mask;

        let xw = self.to_words(x, s);
        let yw = self.to_words(y, s);
        let pw = self.to_words(modulus, s);

        // Limb ownership: contiguous, as even as possible, core 0 first.
        // Every active core owns at least two limbs so that the carry-local
        // schedule never defers a carry into the limb that determines T.
        let cores = self.num_cores.min((s / 2).max(1));
        let ranges = limb_ranges(s, cores);

        // Per-core architectural state of the schedule.
        let mut z = vec![0u64; s];
        let mut pending_carry = vec![0u128; cores];

        // Sequential accounting sums every event; the pipelined schedule
        // tracks per-stage occupancy in parallel and wins wherever hazards
        // permit overlap. Instruction and memory-access counts are schedule
        // independent (the same work retires either way).
        let mut seq_cycles: u64 = 0;
        let mut instructions: u64 = 0;
        let mut memory_accesses: u64 = 0;
        let core_limb_counts: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let mut pipe = MontPipeline::new(cores);

        // Operand words (X, P and the running Z) live in the per-core
        // register files for the duration of the multiplication, as in the
        // paper; only Y is streamed from the data memory, one word per
        // iteration, and T is broadcast by the decoder on the instruction
        // bus.

        for &y_i in yw.iter().take(s) {
            // ---- Phase A (core 0, serial): compute T. -------------------
            // u = z0 + x0*yi ; T = u * p' mod r
            let u = (z[0] as u128 + xw[0] as u128 * y_i as u128) & mask as u128;
            let t = ((u * n_prime as u128) & mask as u128) as u64;
            // 1 load (yi), 2 MAC, 2 AccOut-style ALU ops; T leaves on the bus.
            let phase_a_instr = 5u64;
            let phase_a_mem = 1u64;
            seq_cycles += 2 * self.cost.mac_cycles
                + 2 * self.cost.alu_cycles
                + phase_a_mem * self.cost.mem_cycles;
            instructions += phase_a_instr;
            memory_accesses += phase_a_mem;

            // The pipelined schedule advances all three stages (yi fetch,
            // T computation, limb accumulation + transfers) at once.
            pipe.iteration(&self.cost, &core_limb_counts);

            // ---- Phase B (all cores in parallel): accumulate limbs. ------
            // Each core j computes W[m] = z[m] + x[m]*yi + p[m]*T (+ pending
            // carry at its top limb), shifting results down by one word.
            // yi and T reach the cores on the instruction bus (no extra
            // data-memory traffic).
            let mut boundary_words = vec![0u64; cores];
            let mut phase_b_core_cycles = vec![0u64; cores];
            let phase_b_mem = 0u64;
            for (j, range) in ranges.iter().enumerate() {
                let _ = j;
                let mut carry: u128 = 0;
                let mut ops = 0u64;
                for m in range.start..range.end {
                    let mut acc = z[m] as u128
                        + xw[m] as u128 * y_i as u128
                        + pw[m] as u128 * t as u128
                        + carry;
                    // The pending carry from the previous iteration re-enters
                    // at this core's top limb (the carry-local trick).
                    if m == range.end - 1 {
                        acc += pending_carry[j];
                        ops += 1; // one extra AccAdd
                    }
                    let low = (acc & mask as u128) as u64;
                    carry = acc >> w;
                    if m == range.start {
                        // Lowest limb of the core: either dropped (core 0,
                        // global limb 0 — divisible by r by construction) or
                        // transferred to the previous core.
                        boundary_words[j] = low;
                        if j == 0 {
                            debug_assert_eq!(low, 0, "low word must vanish");
                        }
                    } else {
                        z[m - 1] = low;
                    }
                    // 2 MAC + 1 AccAdd (z) + 1 AccOut per limb.
                    ops += 4;
                }
                pending_carry[j] = carry;
                instructions += ops;
                phase_b_core_cycles[j] = ops * self.cost.mac_cycles;
            }
            // Parallel phase: longest core determines the latency; memory
            // fetches serialise on the single port.
            seq_cycles += phase_b_core_cycles.iter().copied().max().unwrap_or(0)
                + phase_b_mem * self.cost.mem_cycles;
            memory_accesses += phase_b_mem;

            // ---- Phase C: word transfers between neighbouring cores. -----
            // Core j's lowest result word becomes core j-1's new top limb.
            for j in 1..cores {
                let dest_top = ranges[j - 1].end - 1;
                z[dest_top] = boundary_words[j];
            }
            if s > 0 {
                // The global top limb is refreshed from the last core's
                // pending carry stream at the end (handled after the loop);
                // within the loop the top limb simply receives the shifted
                // word, which for the last core comes from its own carry.
                let last = cores - 1;
                let top = ranges[last].end - 1;
                if ranges[last].end - ranges[last].start == 1 && cores > 1 {
                    // A single-limb last core already wrote its boundary word
                    // into the previous core; its own top limb comes from the
                    // pending carry in the next iteration.
                    z[top] = 0;
                } else if cores == 1 {
                    // Single-core: the top limb is produced by the carry.
                    z[top] = 0;
                } else {
                    z[top] = 0;
                }
            }
            let transfers = (cores - 1) as u64;
            seq_cycles += transfers * self.cost.transfer_cycles;
            instructions += 2 * transfers;
            memory_accesses += 2 * transfers;
        }

        // ---- Final fix-up: fold the remaining per-core carries. ----------
        // Core j's pending carry has the weight of the limb just above its
        // range in the final frame.
        let mut extra_top: u128 = 0;
        for (j, range) in ranges.iter().enumerate() {
            let mut carry = pending_carry[j];
            let mut m = range.end - 1;
            // The carry belongs one position above range.end - 1 after the
            // final shift, i.e. at index range.end - 1 + 1 - 1 = range.end - 1
            // of the *shifted* frame... which is exactly where the schedule
            // left a hole (the zeroed top limb). Add with propagation.
            loop {
                let sum = z[m] as u128 + carry;
                z[m] = (sum & ((1u128 << w) - 1)) as u64;
                carry = sum >> w;
                if carry == 0 {
                    break;
                }
                m += 1;
                if m >= s {
                    extra_top += carry;
                    break;
                }
            }
            instructions += 2;
            seq_cycles += 2 * self.cost.alu_cycles;
        }

        // ---- Conditional subtraction (Algorithm 1, lines 6-8). -----------
        let mut value = self.words_to_value(&z);
        if extra_top > 0 {
            value = &value + &BigUint::from(extra_top as u64).shl_bits(w * s);
        }
        // The decoder always schedules the subtraction sequence (constant
        // time): s SubB instructions plus s loads/stores on one core.
        let sub_instr = 3 * s as u64;
        let sub_mem = 2 * s as u64;
        let seq_sub = s as u64 * self.cost.alu_cycles + sub_mem * self.cost.mem_cycles;
        seq_cycles += seq_sub + self.cost.dispatch_cycles;
        instructions += sub_instr;
        memory_accesses += sub_mem;
        if value >= *modulus {
            value = &value - modulus;
        }

        let cycles = if self.cost.is_pipelined() {
            // Tail of the pipelined schedule: the per-core carry folds run
            // in parallel (distinct limb positions); the final subtraction's
            // P-loads prefetch under the MAC tail, the SubB borrow chain is
            // serial and the Z-stores stream one port-slot behind it.
            let fixup = 2 * self.cost.alu_cycles;
            let sub =
                (s as u64 * self.cost.alu_cycles + self.cost.alu_cycles + self.cost.mem_cycles)
                    .min(seq_sub);
            pipe.finish() + fixup + sub + self.cost.dispatch_cycles
        } else {
            seq_cycles
        };

        debug_assert!(value < *modulus);
        ModOpResult {
            value,
            cycles,
            instructions,
            memory_accesses,
        }
    }

    /// Pure data-dependency lower bound on the cycle count of one
    /// Montgomery multiplication at `bits` operand length: the `z0 → T`
    /// recurrence plus the serial borrow chain of the final subtraction.
    /// No schedule — pipelined or otherwise — can beat this.
    pub fn mont_mul_critical_path(&self, bits: usize) -> u64 {
        schedule::mont_critical_path_cycles(&self.cost, self.cost.limbs(bits))
    }

    /// Modular addition `(x + y) mod p` on a single core, executed at the
    /// register level through the core ISA.
    ///
    /// Under [`CostModel::is_dual_path`] the decoder dispatches the
    /// speculative constant-time adder: `x + y` (carry chain, primary
    /// compute pipe) and `x + y - p` (borrow chain, speculative pipe) run
    /// in parallel and a 1-cycle select per word commits the reduced
    /// result, so the cycle count is independent of whether the correction
    /// triggers. Otherwise the subtraction-of-p block is dispatched
    /// sequentially only when the carry flag reports an overflow past the
    /// modulus (the data-dependent pre-dual-path behaviour).
    ///
    /// # Panics
    ///
    /// Panics if the operands are not reduced modulo `p`.
    pub fn mod_add(&self, x: &BigUint, y: &BigUint, modulus: &BigUint) -> ModOpResult {
        assert!(x < modulus && y < modulus, "operands must be reduced");
        let s = self.cost.limbs(modulus.bit_len());
        let sum = x + y;
        let needs_correction = sum >= *modulus;
        let value = if needs_correction {
            &sum - modulus
        } else {
            sum
        };
        let (program, select_path) = if self.cost.is_dual_path() {
            let pw = self.to_words(modulus, s);
            (
                self.dual_path_program(s, &pw, DualPathKind::Add),
                needs_correction,
            )
        } else {
            (self.add_like_program(s, needs_correction), false)
        };
        let report = self.run_single_core(&program, x, y, modulus, select_path);
        debug_assert_eq!(report.value, value, "register-level MA diverged from host");
        ModOpResult { value, ..report }
    }

    /// Modular subtraction `(x - y) mod p` on a single core.
    ///
    /// Under [`CostModel::is_dual_path`] both candidates (`x - y` on the
    /// borrow chain and `x - y + p` on the carry chain) run speculatively
    /// in parallel; otherwise the add-p-back block is dispatched only when
    /// the final borrow is set.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not reduced modulo `p`.
    pub fn mod_sub(&self, x: &BigUint, y: &BigUint, modulus: &BigUint) -> ModOpResult {
        assert!(x < modulus && y < modulus, "operands must be reduced");
        let needs_addback = x < y;
        let value = if needs_addback {
            &(x + modulus) - y
        } else {
            x - y
        };
        let s = self.cost.limbs(modulus.bit_len());
        let (program, select_path) = if self.cost.is_dual_path() {
            let pw = self.to_words(modulus, s);
            (
                self.dual_path_program(s, &pw, DualPathKind::Sub),
                needs_addback,
            )
        } else {
            (self.sub_like_program(s, needs_addback), false)
        };
        let report = self.run_single_core(&program, x, y, modulus, select_path);
        debug_assert_eq!(report.value, value, "register-level MS diverged from host");
        ModOpResult { value, ..report }
    }

    /// Builds the speculative dual-path MA/MS microcode: per word, both
    /// candidate paths issue (the primary chain and the speculative
    /// correction chain, which the scoreboard places on separate compute
    /// pipes) and a 1-cycle select commits the reduced word. The modulus
    /// words arrive as immediates on the instruction bus — the sequence is
    /// generated per modulus, exactly like the paper's InsRom microcode —
    /// so the single data-memory port only carries the two operand streams
    /// and the result writeback (`3s` accesses). The program shape is
    /// independent of the operand values: constant time by construction.
    ///
    /// Two register banks alternate across words, and each word's writeback
    /// is deferred past the next word's operand fetch (software
    /// pipelining), so the in-order single memory port never idles waiting
    /// for a select to resolve: the steady state is three port slots per
    /// word (two operand loads + one result store).
    fn dual_path_program(&self, s: usize, pw: &[u64], kind: DualPathKind) -> Program {
        let mut p = Program::new();
        let out_reg = |m: usize| ((m % 2) * 8) as u8 + 5;
        // Memory layout: [0..s) = X, [s..2s) = Y, [2s..3s) = P, [3s..4s) = Z.
        for (m, &p_word) in pw.iter().enumerate().take(s) {
            let bank = ((m % 2) * 8) as u8;
            let [rx, ry, r_primary, r_spec, rp, r_out] =
                [bank, bank + 1, bank + 2, bank + 3, bank + 4, bank + 5];
            p.push(MicroOp::Load {
                dst: rx,
                addr: m as u16,
            });
            p.push(MicroOp::Load {
                dst: ry,
                addr: (s + m) as u16,
            });
            if m > 0 {
                // Writeback of the previous word, deferred so the port
                // stays busy while this word's paths compute.
                p.push(MicroOp::Store {
                    src: out_reg(m - 1),
                    addr: (3 * s + m - 1) as u16,
                });
            }
            p.push(MicroOp::LoadImm {
                dst: rp,
                imm: p_word,
            });
            match kind {
                DualPathKind::Add => {
                    // Path A: x + y (carry chain); path B: (x+y) - p
                    // (borrow chain, speculative pipe).
                    p.push(MicroOp::AddC {
                        dst: r_primary,
                        a: rx,
                        b: ry,
                    });
                    p.push(MicroOp::SubB {
                        dst: r_spec,
                        a: r_primary,
                        b: rp,
                    });
                }
                DualPathKind::Sub => {
                    // Path A: x - y (borrow chain); path B: (x-y) + p
                    // (carry chain).
                    p.push(MicroOp::SubB {
                        dst: r_primary,
                        a: rx,
                        b: ry,
                    });
                    p.push(MicroOp::AddC {
                        dst: r_spec,
                        a: r_primary,
                        b: rp,
                    });
                }
            }
            p.push(MicroOp::Select {
                dst: r_out,
                a: r_primary,
                b: r_spec,
            });
        }
        p.push(MicroOp::Store {
            src: out_reg(s - 1),
            addr: (4 * s - 1) as u16,
        });
        p
    }

    /// Builds the word-serial addition microcode, optionally followed by the
    /// subtraction-of-p correction block.
    fn add_like_program(&self, s: usize, with_correction: bool) -> Program {
        let mut p = Program::new();
        // Memory layout: [0..s) = X, [s..2s) = Y, [2s..3s) = P, [3s..4s) = Z.
        for m in 0..s {
            p.push(MicroOp::Load {
                dst: 0,
                addr: m as u16,
            });
            p.push(MicroOp::Load {
                dst: 1,
                addr: (s + m) as u16,
            });
            p.push(MicroOp::AccAdd { a: 0 });
            p.push(MicroOp::AccAdd { a: 1 });
            p.push(MicroOp::AccOut { dst: 2 });
            p.push(MicroOp::Store {
                src: 2,
                addr: (3 * s + m) as u16,
            });
        }
        if with_correction {
            for m in 0..s {
                p.push(MicroOp::Load {
                    dst: 0,
                    addr: (3 * s + m) as u16,
                });
                p.push(MicroOp::Load {
                    dst: 1,
                    addr: (2 * s + m) as u16,
                });
                p.push(MicroOp::SubB { dst: 2, a: 0, b: 1 });
                p.push(MicroOp::Store {
                    src: 2,
                    addr: (3 * s + m) as u16,
                });
            }
        }
        p
    }

    /// Builds the word-serial subtraction microcode, optionally followed by
    /// the add-p-back correction block.
    fn sub_like_program(&self, s: usize, with_addback: bool) -> Program {
        let mut p = Program::new();
        for m in 0..s {
            p.push(MicroOp::Load {
                dst: 0,
                addr: m as u16,
            });
            p.push(MicroOp::Load {
                dst: 1,
                addr: (s + m) as u16,
            });
            p.push(MicroOp::SubB { dst: 2, a: 0, b: 1 });
            p.push(MicroOp::Store {
                src: 2,
                addr: (3 * s + m) as u16,
            });
            // The per-word borrow is made visible to the decoder, which
            // decides whether the add-back block runs.
            p.push(MicroOp::AccOut { dst: 3 });
        }
        if with_addback {
            for m in 0..s {
                p.push(MicroOp::Load {
                    dst: 0,
                    addr: (3 * s + m) as u16,
                });
                p.push(MicroOp::Load {
                    dst: 1,
                    addr: (2 * s + m) as u16,
                });
                p.push(MicroOp::AccAdd { a: 0 });
                p.push(MicroOp::AccAdd { a: 1 });
                p.push(MicroOp::AccOut { dst: 2 });
                p.push(MicroOp::Store {
                    src: 2,
                    addr: (3 * s + m) as u16,
                });
            }
        }
        p
    }

    /// Executes a single-core program with the standard X/Y/P memory layout
    /// and returns the cycle accounting (the caller supplies the numeric
    /// result, which the register-level program also produces in memory for
    /// the word-width it models). `select_path` is the decoder-latched flag
    /// consumed by `Select` instructions (ignored by programs without any).
    fn run_single_core(
        &self,
        program: &Program,
        x: &BigUint,
        y: &BigUint,
        modulus: &BigUint,
        select_path: bool,
    ) -> ModOpResult {
        // Every MA/MS program builder targets the same fixed layout:
        // [0..s) = X, [s..2s) = Y, [2s..3s) = P, [3s..4s) = Z.
        let s = self.cost.limbs(modulus.bit_len());
        let mut memory = vec![0u64; 4 * s];
        memory[..s].copy_from_slice(&self.to_words(x, s));
        memory[s..2 * s].copy_from_slice(&self.to_words(y, s));
        memory[2 * s..3 * s].copy_from_slice(&self.to_words(modulus, s));
        let mut core = Core::new(self.cost.word_bits);
        core.clear_acc();
        core.set_select_path(select_path);
        let instructions = core.execute(program, &mut memory);
        let schedule_cycles = if self.cost.is_pipelined() {
            schedule::schedule_program(program, &self.cost).cycles
        } else {
            program.cycles(&self.cost)
        };
        let cycles = schedule_cycles + self.cost.dispatch_cycles;
        // The register-level execution leaves the result in the Z region of
        // the data memory; return it so callers can cross-check it against
        // the host arithmetic.
        let value = self.words_to_value(&memory[3 * s..4 * s]);
        ModOpResult {
            value,
            cycles,
            instructions,
            memory_accesses: program.memory_accesses(),
        }
    }

    /// Cycle count of one Montgomery multiplication at the given operand
    /// length (operand values do not influence the cycle count).
    pub fn mont_mul_cycles(&self, bits: usize) -> u64 {
        let p = sample_modulus(bits);
        let x = &p - &BigUint::from(2u64);
        let y = &p - &BigUint::from(3u64);
        self.mont_mul(&x, &y, &p).cycles
    }

    /// Cycle count of one modular addition at the given operand length
    /// (the common case where no correction block is needed, which is what
    /// Table 1 reports).
    pub fn mod_add_cycles(&self, bits: usize) -> u64 {
        let p = sample_modulus(bits);
        let x = BigUint::from(2u64);
        let y = BigUint::from(3u64);
        self.mod_add(&x, &y, &p).cycles
    }

    /// Cycle count of one modular subtraction at the given operand length
    /// (no add-back case).
    pub fn mod_sub_cycles(&self, bits: usize) -> u64 {
        let p = sample_modulus(bits);
        let x = BigUint::from(3u64);
        let y = BigUint::from(2u64);
        self.mod_sub(&x, &y, &p).cycles
    }

    /// Cycle count of one modular addition whose correction block runs
    /// (`x = y = p - 1` forces the sum past the modulus): the worst case
    /// of the conditional-correction model and — by constant-time
    /// construction — the only case of the dual-path model. The bench
    /// ablations and the property tests probe through this helper so they
    /// cannot drift onto different operand choices.
    pub fn mod_add_worst_cycles(&self, bits: usize) -> u64 {
        let p = sample_modulus(bits);
        let hi = &p - &BigUint::from(1u64);
        self.mod_add(&hi, &hi, &p).cycles
    }

    /// Cycle count of one modular subtraction whose add-back block runs
    /// (`x = 1, y = p - 1` forces the difference negative); see
    /// [`Coprocessor::mod_add_worst_cycles`].
    pub fn mod_sub_worst_cycles(&self, bits: usize) -> u64 {
        let p = sample_modulus(bits);
        let hi = &p - &BigUint::from(1u64);
        self.mod_sub(&BigUint::from(1u64), &hi, &p).cycles
    }
}

/// Which modular operation a dual-path program implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DualPathKind {
    /// `x + y` primary, `x + y - p` speculative.
    Add,
    /// `x - y` primary, `x - y + p` speculative.
    Sub,
}

/// Contiguous limb ranges assigned to each core (Fig. 5's distribution).
fn limb_ranges(s: usize, cores: usize) -> Vec<std::ops::Range<usize>> {
    let base = s / cores;
    let extra = s % cores;
    let mut ranges = Vec::with_capacity(cores);
    let mut start = 0;
    for j in 0..cores {
        let len = base + usize::from(j < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// A deterministic odd modulus with exactly `bits` bits
/// (`2^(bits-1) + 2^(bits/2) + 1`), used for cycle-count probes: the
/// `*_cycles` helpers on [`Coprocessor`] measure against it, and the bench
/// ablations and property tests reuse it so every layer probes the same
/// worst cases (`p - 1` operands force the MA correction, `1 - (p - 1)`
/// the MS add-back).
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn sample_modulus(bits: usize) -> BigUint {
    assert!(bits > 0, "a modulus needs at least one bit");
    // 2^(bits-1) + 2^(bits/2) + 1: odd, full bit length.
    let mut m = BigUint::one().shl_bits(bits - 1);
    m = &m + &BigUint::one().shl_bits(bits / 2);
    &m + &BigUint::one()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bignum::MontgomeryParams;
    use rand::SeedableRng;

    fn coproc(cores: usize) -> Coprocessor {
        Coprocessor::new(CostModel::paper(), cores)
    }

    #[test]
    fn limb_ranges_cover_everything() {
        for s in [1usize, 4, 7, 11, 64] {
            for cores in [1usize, 2, 3, 4, 8] {
                let cores = cores.min(s);
                let ranges = limb_ranges(s, cores);
                assert_eq!(ranges.len(), cores);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, s);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }

    #[test]
    fn montgomery_product_matches_host_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        for bits in [32usize, 96, 160, 170, 256] {
            let p = bignum::gen_prime(bits, &mut rng);
            let mont_ref = MontgomeryParams::new(&p).unwrap();
            for cores in [1usize, 2, 4] {
                let cp = coproc(cores);
                for _ in 0..3 {
                    let x = BigUint::random_below(&mut rng, &p);
                    let y = BigUint::random_below(&mut rng, &p);
                    let got = cp.mont_mul(&x, &y, &p);
                    // The simulator uses R = 2^(16·s); compare against a host
                    // computation with the same R by scaling appropriately:
                    // host value = x*y*2^{-32·s32} — instead check the defining
                    // property: got.value * R ≡ x*y (mod p).
                    let w = cp.cost().word_bits;
                    let s = cp.cost().limbs(p.bit_len());
                    let r = BigUint::one().shl_bits(w * s) % &p;
                    let lhs = (&got.value * &r) % &p;
                    let rhs = (&x * &y) % &p;
                    assert_eq!(lhs, rhs, "bits={bits} cores={cores}");
                    assert!(got.value < p);
                    let _ = &mont_ref;
                }
            }
        }
    }

    #[test]
    fn modular_add_sub_match_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(102);
        let cp = coproc(4);
        for bits in [160usize, 170, 1024] {
            let p = bignum::gen_prime(bits, &mut rng);
            for _ in 0..3 {
                let x = BigUint::random_below(&mut rng, &p);
                let y = BigUint::random_below(&mut rng, &p);
                assert_eq!(cp.mod_add(&x, &y, &p).value, bignum::mod_add(&x, &y, &p));
                assert_eq!(cp.mod_sub(&x, &y, &p).value, bignum::mod_sub(&x, &y, &p));
            }
        }
    }

    #[test]
    fn cycle_counts_follow_table1_shape() {
        let cp = coproc(4);
        let mm170 = cp.mont_mul_cycles(170);
        let mm160 = cp.mont_mul_cycles(160);
        let mm1024 = cp.mont_mul_cycles(1024);
        let ma170 = cp.mod_add_cycles(170);
        let ms170 = cp.mod_sub_cycles(170);
        // 160-bit is a little faster than 170-bit (Table 1).
        assert!(mm160 < mm170, "mm160={mm160} mm170={mm170}");
        // 1024-bit MM is roughly 20-30x slower than 170-bit (paper: 23x).
        let ratio = mm1024 as f64 / mm170 as f64;
        assert!((15.0..40.0).contains(&ratio), "ratio = {ratio}");
        // Additions and subtractions are much cheaper than multiplications
        // but not free (Table 1: 47 and 61 cycles versus 193).
        assert!(ma170 < mm170 / 2, "ma170={ma170} mm170={mm170}");
        assert!(ms170 < mm170 / 2, "ms170={ms170} mm170={mm170}");
        assert!(ma170 > 10 && ms170 > 10);
        // MA and MS are of the same order (the paper reports 47 vs 61).
        let hi = ma170.max(ms170) as f64;
        let lo = ma170.min(ms170) as f64;
        assert!(hi / lo < 2.0, "ms={ms170} ma={ma170}");
    }

    #[test]
    fn more_cores_speed_up_multiplication() {
        let c1 = coproc(1).mont_mul_cycles(256);
        let c2 = coproc(2).mont_mul_cycles(256);
        let c4 = coproc(4).mont_mul_cycles(256);
        assert!(c2 < c1, "2 cores ({c2}) should beat 1 core ({c1})");
        assert!(c4 < c2, "4 cores ({c4}) should beat 2 cores ({c2})");
        // The paper reports 2.96x for 4 cores on 256-bit operands; accept a
        // broad band around that.
        let speedup = c1 as f64 / c4 as f64;
        assert!((1.8..4.0).contains(&speedup), "speedup = {speedup}");
    }

    #[test]
    fn single_core_handles_all_sizes() {
        let cp = coproc(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(103);
        let p = bignum::gen_prime(64, &mut rng);
        let x = BigUint::random_below(&mut rng, &p);
        let y = BigUint::random_below(&mut rng, &p);
        let got = cp.mont_mul(&x, &y, &p);
        let w = cp.cost().word_bits;
        let s = cp.cost().limbs(p.bit_len());
        let r = BigUint::one().shl_bits(w * s) % &p;
        assert_eq!((&got.value * &r) % &p, (&x * &y) % &p);
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_is_rejected() {
        let cp = coproc(2);
        let _ = cp.mont_mul(
            &BigUint::from(3u64),
            &BigUint::from(5u64),
            &BigUint::from(16u64),
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_is_rejected() {
        let _ = Coprocessor::new(CostModel::paper(), 0);
    }
}

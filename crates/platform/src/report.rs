//! Execution reports produced by the platform drivers.

use crate::cost::CostModel;

/// Cycle and operation accounting for one complete public-key operation
/// (torus exponentiation, ECC scalar multiplication, RSA exponentiation) or
/// one composite level-2 operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionReport {
    /// Total clock cycles.
    pub cycles: u64,
    /// Montgomery modular multiplications executed.
    pub modmuls: u64,
    /// Modular additions executed.
    pub modadds: u64,
    /// Modular subtractions executed.
    pub modsubs: u64,
    /// Interrupts raised towards the MicroBlaze.
    pub interrupts: u64,
    /// Cycles saved by the pipelined sequencer overlapping an operation's
    /// operand fetch with its independent predecessor's MAC tail (zero
    /// under the sequential schedule and under Type-A).
    pub overlapped_cycles: u64,
    /// Register-A (instruction register) accesses by the MicroBlaze.
    pub register_accesses: u64,
}

impl ExecutionReport {
    /// Latency in milliseconds at the cost model's clock frequency.
    pub fn time_ms(&self, cost: &CostModel) -> f64 {
        cost.cycles_to_ms(self.cycles)
    }

    /// Component-wise sum of two reports.
    pub fn merge(&self, other: &ExecutionReport) -> ExecutionReport {
        ExecutionReport {
            cycles: self.cycles + other.cycles,
            modmuls: self.modmuls + other.modmuls,
            modadds: self.modadds + other.modadds,
            modsubs: self.modsubs + other.modsubs,
            interrupts: self.interrupts + other.interrupts,
            overlapped_cycles: self.overlapped_cycles + other.overlapped_cycles,
            register_accesses: self.register_accesses + other.register_accesses,
        }
    }

    /// Scales every field by `n` (e.g. one composite operation repeated `n`
    /// times in an exponentiation ladder).
    pub fn repeat(&self, n: u64) -> ExecutionReport {
        ExecutionReport {
            cycles: self.cycles * n,
            modmuls: self.modmuls * n,
            modadds: self.modadds * n,
            modsubs: self.modsubs * n,
            interrupts: self.interrupts * n,
            overlapped_cycles: self.overlapped_cycles * n,
            register_accesses: self.register_accesses * n,
        }
    }
}

impl std::fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cycles ({} MM, {} MA, {} MS, {} interrupts)",
            self.cycles, self.modmuls, self.modadds, self.modsubs, self.interrupts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_repeat() {
        let a = ExecutionReport {
            cycles: 100,
            modmuls: 2,
            modadds: 3,
            modsubs: 1,
            interrupts: 1,
            overlapped_cycles: 5,
            register_accesses: 1,
        };
        let b = a.repeat(3);
        assert_eq!(b.cycles, 300);
        assert_eq!(b.modmuls, 6);
        let c = a.merge(&b);
        assert_eq!(c.cycles, 400);
        assert_eq!(c.modadds, 12);
        assert_eq!(b.overlapped_cycles, 15);
        assert_eq!(c.overlapped_cycles, 20);
        assert!(c.to_string().contains("400 cycles"));
    }

    #[test]
    fn time_conversion_uses_clock() {
        let r = ExecutionReport {
            cycles: 1_480_000,
            ..Default::default()
        };
        let t = r.time_ms(&CostModel::paper());
        assert!((t - 20.0).abs() < 1e-6);
    }
}

//! The coprocessor core ISA.
//!
//! Each embedded core is "a highly simplified load/store CPU" supporting
//! seven instructions and no branches (Section 3.1). The decoder fetches
//! composite instructions from register A and dispatches straight-line
//! microinstruction sequences to the cores; control flow (loops, the final
//! conditional subtraction of Algorithm 1) lives in the decoder, not in the
//! cores.
//!
//! The seven instructions:
//!
//! | instruction | effect |
//! |---|---|
//! | `Load`    | `r[d] ← mem[addr]` (through the single data port) |
//! | `Store`   | `mem[addr] ← r[s]` |
//! | `LoadImm` | `r[d] ← imm` |
//! | `MulAcc`  | `acc ← acc + r[a]·r[b]` (the FPGA multiplier) |
//! | `AccAdd`  | `acc ← acc + r[a]` |
//! | `AccOut`  | `r[d] ← acc mod 2^w; acc ← acc >> w` |
//! | `SubB`    | `r[d] ← r[a] - r[b] - borrow`, updating the borrow flag |
//!
//! Two datapath extensions support the speculative dual-path modular
//! adder (see [`crate::cost::CostModel::dual_path_addsub`]): word-serial
//! addition with an explicit carry chain, and the select mux that commits
//! one of the two speculative paths:
//!
//! | instruction | effect |
//! |---|---|
//! | `AddC`    | `r[d] ← r[a] + r[b] + carry`, updating the carry flag |
//! | `Select`  | `r[d] ← path ? r[b] : r[a]` (`path` latched by the decoder) |
//!
//! `AddC` gives the speculative path its own carry chain next to `SubB`'s
//! borrow chain, so the two chains can run in parallel on the two compute
//! pipes; `Select` is the 1-cycle commit of the reduced result.

use crate::cost::CostModel;

/// Number of general-purpose registers per core.
pub const NUM_REGS: usize = 16;

/// One microinstruction of the 7-instruction core ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// `r[dst] ← mem[addr]`.
    Load {
        /// Destination register.
        dst: u8,
        /// Data-memory word address.
        addr: u16,
    },
    /// `mem[addr] ← r[src]`.
    Store {
        /// Source register.
        src: u8,
        /// Data-memory word address.
        addr: u16,
    },
    /// `r[dst] ← imm`.
    LoadImm {
        /// Destination register.
        dst: u8,
        /// Immediate value (one datapath word).
        imm: u64,
    },
    /// `acc ← acc + r[a]·r[b]`.
    MulAcc {
        /// First factor register.
        a: u8,
        /// Second factor register.
        b: u8,
    },
    /// `acc ← acc + r[a]`.
    AccAdd {
        /// Addend register.
        a: u8,
    },
    /// `r[dst] ← acc mod 2^w; acc ← acc >> w`.
    AccOut {
        /// Destination register.
        dst: u8,
    },
    /// `r[dst] ← r[a] - r[b] - borrow`, updating the borrow flag.
    SubB {
        /// Destination register.
        dst: u8,
        /// Minuend register.
        a: u8,
        /// Subtrahend register.
        b: u8,
    },
    /// `r[dst] ← r[a] + r[b] + carry`, updating the carry flag (the
    /// word-serial carry chain of the dual-path adder).
    AddC {
        /// Destination register.
        dst: u8,
        /// First addend register.
        a: u8,
        /// Second addend register.
        b: u8,
    },
    /// `r[dst] ← r[b]` if the decoder-latched path flag is set, else
    /// `r[a]`: the 1-cycle select mux committing one speculative path.
    Select {
        /// Destination register.
        dst: u8,
        /// Primary-path register (path flag clear).
        a: u8,
        /// Speculative-path register (path flag set).
        b: u8,
    },
}

impl MicroOp {
    /// Returns `true` if this instruction uses the (single) data-memory port.
    pub fn uses_memory(&self) -> bool {
        matches!(self, MicroOp::Load { .. } | MicroOp::Store { .. })
    }

    /// Returns `true` if this instruction issues into the MAC pipeline.
    pub fn is_mac(&self) -> bool {
        matches!(self, MicroOp::MulAcc { .. })
    }

    /// General-purpose registers this instruction reads (hazard tracking:
    /// a reader must wait until the producing instruction has retired).
    pub fn src_regs(&self) -> [Option<u8>; 2] {
        match *self {
            MicroOp::Load { .. } | MicroOp::LoadImm { .. } | MicroOp::AccOut { .. } => [None, None],
            MicroOp::Store { src, .. } => [Some(src), None],
            MicroOp::MulAcc { a, b } => [Some(a), Some(b)],
            MicroOp::AccAdd { a } => [Some(a), None],
            MicroOp::SubB { a, b, .. }
            | MicroOp::AddC { a, b, .. }
            | MicroOp::Select { a, b, .. } => [Some(a), Some(b)],
        }
    }

    /// General-purpose register this instruction writes, if any (hazard
    /// tracking: a writer must not retire before earlier readers have read).
    pub fn dst_reg(&self) -> Option<u8> {
        match *self {
            MicroOp::Load { dst, .. }
            | MicroOp::LoadImm { dst, .. }
            | MicroOp::AccOut { dst }
            | MicroOp::SubB { dst, .. }
            | MicroOp::AddC { dst, .. }
            | MicroOp::Select { dst, .. } => Some(dst),
            MicroOp::Store { .. } | MicroOp::MulAcc { .. } | MicroOp::AccAdd { .. } => None,
        }
    }

    /// Returns `true` if this instruction reads the architectural
    /// accumulator value (and therefore must wait for the MAC pipeline to
    /// drain).
    pub fn reads_acc(&self) -> bool {
        matches!(self, MicroOp::AccOut { .. })
    }

    /// Returns `true` if this instruction updates the accumulator (MACs and
    /// accumulator adds retire into it; `AccOut` shifts it).
    pub fn writes_acc(&self) -> bool {
        matches!(
            self,
            MicroOp::MulAcc { .. } | MicroOp::AccAdd { .. } | MicroOp::AccOut { .. }
        )
    }

    /// Returns `true` if this instruction participates in the serial borrow
    /// chain (multi-word subtraction cannot be reordered).
    pub fn uses_borrow(&self) -> bool {
        matches!(self, MicroOp::SubB { .. })
    }

    /// Returns `true` if this instruction participates in the serial carry
    /// chain (word-serial addition via `AddC` cannot be reordered).
    pub fn uses_carry(&self) -> bool {
        matches!(self, MicroOp::AddC { .. })
    }

    /// Returns `true` if this instruction is the dual-path select mux.
    pub fn is_select(&self) -> bool {
        matches!(self, MicroOp::Select { .. })
    }

    /// Cycle cost under a [`CostModel`].
    pub fn cycles(&self, cost: &CostModel) -> u64 {
        match self {
            MicroOp::Load { .. } | MicroOp::Store { .. } => cost.mem_cycles,
            MicroOp::MulAcc { .. } => cost.mac_cycles,
            _ => cost.alu_cycles,
        }
    }

    /// Assembly-style rendering.
    pub fn mnemonic(&self) -> String {
        match self {
            MicroOp::Load { dst, addr } => format!("ld   r{dst}, [{addr}]"),
            MicroOp::Store { src, addr } => format!("st   r{src}, [{addr}]"),
            MicroOp::LoadImm { dst, imm } => format!("ldi  r{dst}, #{imm}"),
            MicroOp::MulAcc { a, b } => format!("mac  r{a}, r{b}"),
            MicroOp::AccAdd { a } => format!("aca  r{a}"),
            MicroOp::AccOut { dst } => format!("aco  r{dst}"),
            MicroOp::SubB { dst, a, b } => format!("sbb  r{dst}, r{a}, r{b}"),
            MicroOp::AddC { dst, a, b } => format!("adc  r{dst}, r{a}, r{b}"),
            MicroOp::Select { dst, a, b } => format!("sel  r{dst}, r{a}, r{b}"),
        }
    }
}

/// A straight-line microinstruction sequence (the contents of an InsRom
/// entry).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    ops: Vec<MicroOp>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program { ops: Vec::new() }
    }

    /// Appends an instruction.
    pub fn push(&mut self, op: MicroOp) {
        self.ops.push(op);
    }

    /// The instructions in order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total cycle cost under the flat sequential model (every event
    /// charged one after the other, no overlap). The pipelined schedule for
    /// a program is computed by [`crate::schedule::schedule_program`].
    pub fn cycles(&self, cost: &CostModel) -> u64 {
        self.ops.iter().map(|op| op.cycles(cost)).sum()
    }

    /// Number of instructions that use the data-memory port.
    pub fn memory_accesses(&self) -> u64 {
        self.ops.iter().filter(|op| op.uses_memory()).count() as u64
    }

    /// Assembly-style listing of the whole program.
    pub fn listing(&self) -> String {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| format!("{i:4}: {}", op.mnemonic()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The architectural state of one embedded core.
#[derive(Debug, Clone)]
pub struct Core {
    /// General-purpose registers (each holds one datapath word).
    regs: [u64; NUM_REGS],
    /// The wide multiply-accumulate register.
    acc: u128,
    /// Borrow flag for multi-word subtraction.
    borrow: bool,
    /// Carry flag for word-serial addition (`AddC` chain).
    carry: bool,
    /// Path flag consumed by `Select`: latched by the decoder before the
    /// sequence runs (in hardware, the resolved carry/borrow comparison of
    /// the dual-path adder).
    select_path: bool,
    /// Datapath word width in bits.
    word_bits: usize,
}

impl Core {
    /// Creates a core with cleared state.
    pub fn new(word_bits: usize) -> Self {
        assert!(
            word_bits > 0 && word_bits <= 32,
            "word width must be 1..=32"
        );
        Core {
            regs: [0; NUM_REGS],
            acc: 0,
            borrow: false,
            carry: false,
            select_path: false,
            word_bits,
        }
    }

    /// Word mask `2^w - 1`.
    fn mask(&self) -> u64 {
        (1u64 << self.word_bits) - 1
    }

    /// Reads a register.
    pub fn reg(&self, idx: u8) -> u64 {
        self.regs[idx as usize]
    }

    /// The current borrow flag.
    pub fn borrow_flag(&self) -> bool {
        self.borrow
    }

    /// The current carry flag.
    pub fn carry_flag(&self) -> bool {
        self.carry
    }

    /// Latches the dual-path select flag: `Select` picks the speculative
    /// (`b`) operand while the flag is set. In hardware the flag is the
    /// adder's resolved carry/borrow comparison; in the simulator the
    /// decoder latches it before dispatching the writeback phase.
    pub fn set_select_path(&mut self, take_speculative: bool) {
        self.select_path = take_speculative;
    }

    /// Resets the accumulator and the carry/borrow flags (done by the
    /// decoder before a new microinstruction sequence).
    pub fn clear_acc(&mut self) {
        self.acc = 0;
        self.borrow = false;
        self.carry = false;
    }

    /// Executes a whole program against a shared data memory, returning the
    /// number of executed instructions.
    pub fn execute(&mut self, program: &Program, memory: &mut [u64]) -> u64 {
        for op in program.ops() {
            self.step(*op, memory);
        }
        program.len() as u64
    }

    /// Executes a single instruction.
    ///
    /// # Panics
    ///
    /// Panics if a memory address is out of range for the provided memory —
    /// microcode generation bugs, not user errors.
    pub fn step(&mut self, op: MicroOp, memory: &mut [u64]) {
        let mask = self.mask();
        match op {
            MicroOp::Load { dst, addr } => {
                self.regs[dst as usize] = memory[addr as usize] & mask;
            }
            MicroOp::Store { src, addr } => {
                memory[addr as usize] = self.regs[src as usize] & mask;
            }
            MicroOp::LoadImm { dst, imm } => {
                self.regs[dst as usize] = imm & mask;
            }
            MicroOp::MulAcc { a, b } => {
                self.acc += (self.regs[a as usize] as u128) * (self.regs[b as usize] as u128);
            }
            MicroOp::AccAdd { a } => {
                self.acc += self.regs[a as usize] as u128;
            }
            MicroOp::AccOut { dst } => {
                self.regs[dst as usize] = (self.acc as u64) & mask;
                self.acc >>= self.word_bits;
            }
            MicroOp::SubB { dst, a, b } => {
                let lhs = self.regs[a as usize] as i128;
                let rhs = self.regs[b as usize] as i128 + self.borrow as i128;
                let diff = lhs - rhs;
                if diff < 0 {
                    self.regs[dst as usize] = (diff + (1i128 << self.word_bits)) as u64 & mask;
                    self.borrow = true;
                } else {
                    self.regs[dst as usize] = diff as u64 & mask;
                    self.borrow = false;
                }
            }
            MicroOp::AddC { dst, a, b } => {
                let sum = self.regs[a as usize] as u128
                    + self.regs[b as usize] as u128
                    + self.carry as u128;
                self.regs[dst as usize] = (sum as u64) & mask;
                self.carry = sum >> self.word_bits != 0;
            }
            MicroOp::Select { dst, a, b } => {
                let src = if self.select_path { b } else { a };
                self.regs[dst as usize] = self.regs[src as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_costs_and_memory_flags() {
        let cost = CostModel::paper();
        assert!(MicroOp::Load { dst: 0, addr: 0 }.uses_memory());
        assert!(MicroOp::Store { src: 0, addr: 0 }.uses_memory());
        assert!(!MicroOp::MulAcc { a: 0, b: 1 }.uses_memory());
        assert_eq!(
            MicroOp::MulAcc { a: 0, b: 1 }.cycles(&cost),
            cost.mac_cycles
        );
        assert_eq!(MicroOp::AccOut { dst: 0 }.cycles(&cost), cost.alu_cycles);
    }

    #[test]
    fn program_accounting() {
        let mut p = Program::new();
        assert!(p.is_empty());
        p.push(MicroOp::Load { dst: 0, addr: 0 });
        p.push(MicroOp::MulAcc { a: 0, b: 0 });
        p.push(MicroOp::AccOut { dst: 1 });
        p.push(MicroOp::Store { src: 1, addr: 1 });
        assert_eq!(p.len(), 4);
        assert_eq!(p.memory_accesses(), 2);
        let cost = CostModel::paper();
        assert_eq!(
            p.cycles(&cost),
            2 * cost.mem_cycles + cost.mac_cycles + cost.alu_cycles
        );
        assert!(p.listing().contains("mac"));
    }

    #[test]
    fn core_executes_a_square() {
        // Compute 7² = 49 through the MAC path and store it.
        let mut core = Core::new(16);
        let mut mem = vec![0u64; 4];
        let mut p = Program::new();
        p.push(MicroOp::LoadImm { dst: 0, imm: 7 });
        p.push(MicroOp::MulAcc { a: 0, b: 0 });
        p.push(MicroOp::AccOut { dst: 1 });
        p.push(MicroOp::Store { src: 1, addr: 2 });
        core.execute(&p, &mut mem);
        assert_eq!(mem[2], 49);
    }

    #[test]
    fn accumulator_shifts_words_out() {
        // 0xFFFF * 0xFFFF = 0xFFFE0001 -> low word 0x0001, next word 0xFFFE.
        let mut core = Core::new(16);
        let mut mem = vec![0u64; 1];
        core.step(
            MicroOp::LoadImm {
                dst: 0,
                imm: 0xFFFF,
            },
            &mut mem,
        );
        core.step(MicroOp::MulAcc { a: 0, b: 0 }, &mut mem);
        core.step(MicroOp::AccOut { dst: 1 }, &mut mem);
        core.step(MicroOp::AccOut { dst: 2 }, &mut mem);
        assert_eq!(core.reg(1), 0x0001);
        assert_eq!(core.reg(2), 0xFFFE);
    }

    #[test]
    fn subtraction_with_borrow_chains() {
        // Compute the two-word subtraction 0x0001_0000 - 0x0000_0001.
        let mut core = Core::new(16);
        let mut mem = vec![0u64; 1];
        core.step(
            MicroOp::LoadImm {
                dst: 0,
                imm: 0x0000,
            },
            &mut mem,
        ); // low(a)
        core.step(
            MicroOp::LoadImm {
                dst: 1,
                imm: 0x0001,
            },
            &mut mem,
        ); // high(a)
        core.step(
            MicroOp::LoadImm {
                dst: 2,
                imm: 0x0001,
            },
            &mut mem,
        ); // low(b)
        core.step(
            MicroOp::LoadImm {
                dst: 3,
                imm: 0x0000,
            },
            &mut mem,
        ); // high(b)
        core.step(MicroOp::SubB { dst: 4, a: 0, b: 2 }, &mut mem);
        core.step(MicroOp::SubB { dst: 5, a: 1, b: 3 }, &mut mem);
        assert_eq!(core.reg(4), 0xFFFF);
        assert_eq!(core.reg(5), 0x0000);
        assert!(!core.borrow_flag());
    }

    #[test]
    fn addc_chains_carries_across_words() {
        // Two-word addition 0xFFFF + 0x0001 per word: the low word wraps to
        // 0 with carry out, the high word absorbs the carry.
        let mut core = Core::new(16);
        let mut mem = vec![0u64; 1];
        core.step(
            MicroOp::LoadImm {
                dst: 0,
                imm: 0xFFFF,
            },
            &mut mem,
        );
        core.step(MicroOp::LoadImm { dst: 1, imm: 1 }, &mut mem);
        core.step(MicroOp::AddC { dst: 2, a: 0, b: 1 }, &mut mem);
        assert_eq!(core.reg(2), 0);
        assert!(core.carry_flag());
        core.step(MicroOp::LoadImm { dst: 0, imm: 5 }, &mut mem);
        core.step(MicroOp::LoadImm { dst: 1, imm: 6 }, &mut mem);
        core.step(MicroOp::AddC { dst: 3, a: 0, b: 1 }, &mut mem);
        assert_eq!(core.reg(3), 12, "carry must feed the next word");
        assert!(!core.carry_flag());
    }

    #[test]
    fn select_commits_the_latched_path() {
        let mut core = Core::new(16);
        let mut mem = vec![0u64; 1];
        core.step(MicroOp::LoadImm { dst: 0, imm: 7 }, &mut mem);
        core.step(MicroOp::LoadImm { dst: 1, imm: 9 }, &mut mem);
        core.step(MicroOp::Select { dst: 2, a: 0, b: 1 }, &mut mem);
        assert_eq!(core.reg(2), 7, "path flag clear selects the primary");
        core.set_select_path(true);
        core.step(MicroOp::Select { dst: 3, a: 0, b: 1 }, &mut mem);
        assert_eq!(core.reg(3), 9, "path flag set selects the speculative");
        // clear_acc resets the chains but not the latched path.
        core.clear_acc();
        assert!(!core.carry_flag() && !core.borrow_flag());
        core.step(MicroOp::Select { dst: 4, a: 0, b: 1 }, &mut mem);
        assert_eq!(core.reg(4), 9);
    }

    #[test]
    fn dual_path_ops_have_hazard_metadata() {
        let addc = MicroOp::AddC { dst: 2, a: 0, b: 1 };
        let sel = MicroOp::Select { dst: 3, a: 2, b: 1 };
        assert!(addc.uses_carry() && !addc.uses_borrow());
        assert!(!addc.is_select() && sel.is_select());
        assert_eq!(addc.dst_reg(), Some(2));
        assert_eq!(sel.src_regs(), [Some(2), Some(1)]);
        let cost = CostModel::paper();
        assert_eq!(addc.cycles(&cost), cost.alu_cycles);
        assert_eq!(sel.cycles(&cost), cost.alu_cycles);
        assert!(sel.mnemonic().contains("sel"));
        assert!(addc.mnemonic().contains("adc"));
    }

    #[test]
    fn word_width_is_validated() {
        let core = Core::new(32);
        assert_eq!(core.mask(), 0xFFFF_FFFF);
    }

    #[test]
    #[should_panic(expected = "word width")]
    fn oversized_word_width_panics() {
        let _ = Core::new(64);
    }
}

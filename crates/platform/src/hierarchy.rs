//! The Type-A / Type-B control hierarchies (Figs. 3 and 4).
//!
//! A composite operation (an `Fp6` multiplication, an ECC point addition —
//! general Jacobian or the ladder's mixed-coordinate variant — or a
//! doubling) is a *sequence* of modular multiplications, additions and
//! subtractions over operands held in the coprocessor data memory. The two
//! hierarchies differ only in who walks that sequence:
//!
//! * **Type-A** — the MicroBlaze issues every MM/MA/MS through register A
//!   and services one interrupt per modular operation (184 cycles each), so
//!   the communication overhead dominates;
//! * **Type-B** — the sequence is stored in the coprocessor's second
//!   instruction ROM (InsRom1); the MicroBlaze issues a single composite
//!   instruction and services a single interrupt.

use bignum::BigUint;

use crate::coprocessor::Coprocessor;
use crate::report::ExecutionReport;

/// Control-hierarchy variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hierarchy {
    /// MicroBlaze dispatches every modular operation (Fig. 3).
    TypeA,
    /// The coprocessor stores level-2 sequences in InsRom1 (Fig. 4).
    TypeB,
}

/// One step of a level-2 sequence, addressing operands by data-memory slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceOp {
    /// `slot[dst] ← slot[a] · slot[b] · R^{-1} mod p` (Montgomery product).
    MontMul {
        /// Destination slot.
        dst: usize,
        /// First operand slot.
        a: usize,
        /// Second operand slot.
        b: usize,
    },
    /// `slot[dst] ← (slot[a] + slot[b]) mod p`.
    ModAdd {
        /// Destination slot.
        dst: usize,
        /// First operand slot.
        a: usize,
        /// Second operand slot.
        b: usize,
    },
    /// `slot[dst] ← (slot[a] - slot[b]) mod p`.
    ModSub {
        /// Destination slot.
        dst: usize,
        /// Minuend slot.
        a: usize,
        /// Subtrahend slot.
        b: usize,
    },
    /// `slot[dst] ← slot[src]` (data-memory copy, handled by the decoder).
    Copy {
        /// Destination slot.
        dst: usize,
        /// Source slot.
        src: usize,
    },
}

impl SequenceOp {
    /// Destination slot this step writes.
    pub fn dest(&self) -> usize {
        match *self {
            SequenceOp::MontMul { dst, .. }
            | SequenceOp::ModAdd { dst, .. }
            | SequenceOp::ModSub { dst, .. }
            | SequenceOp::Copy { dst, .. } => dst,
        }
    }

    /// Operand slots this step reads.
    pub fn sources(&self) -> [usize; 2] {
        match *self {
            SequenceOp::MontMul { a, b, .. }
            | SequenceOp::ModAdd { a, b, .. }
            | SequenceOp::ModSub { a, b, .. } => [a, b],
            SequenceOp::Copy { src, .. } => [src, src],
        }
    }

    /// Read-after-write dependency: does this step consume `prev`'s result?
    /// Independent neighbours may overlap in the pipelined schedule (the
    /// sequencer prefetches the next step's operands under the current
    /// step's MAC tail); dependent ones may not.
    pub fn depends_on(&self, prev: &SequenceOp) -> bool {
        self.sources().contains(&prev.dest())
    }

    /// Returns `true` if this step is a decoder-driven copy (which has no
    /// execution tail to prefetch under and prefetches nothing itself).
    pub fn is_copy(&self) -> bool {
        matches!(self, SequenceOp::Copy { .. })
    }

    /// The sequence-level overlap rule, in one place: the Type-B sequencer
    /// may prefetch `next`'s operands under `prev`'s tail exactly when
    /// neither step is a decoder copy and `next` does not consume `prev`'s
    /// result. Both the executing sequence engine and the static
    /// [`crate::programs::independent_neighbour_pairs`] counter (which the
    /// calibration-floor tests pin) consult this predicate, so they cannot
    /// drift apart.
    pub fn may_overlap(prev: &SequenceOp, next: &SequenceOp) -> bool {
        !prev.is_copy() && !next.is_copy() && !next.depends_on(prev)
    }
}

/// Accounting for one executed sequence.
pub type SequenceReport = ExecutionReport;

/// Executes level-2 sequences on the coprocessor under a given hierarchy.
#[derive(Debug, Clone)]
pub struct SequenceEngine {
    hierarchy: Hierarchy,
}

impl SequenceEngine {
    /// Creates an engine for the given hierarchy.
    pub fn new(hierarchy: Hierarchy) -> Self {
        SequenceEngine { hierarchy }
    }

    /// The hierarchy this engine models.
    pub fn hierarchy(&self) -> Hierarchy {
        self.hierarchy
    }

    /// Executes `ops` against `slots` (values reduced modulo `modulus`),
    /// returning the cycle/operation accounting.
    ///
    /// Montgomery products operate on whatever representation the slots are
    /// in; callers that need plain-domain results are responsible for the
    /// domain conversions (see `Platform`).
    ///
    /// # Panics
    ///
    /// Panics if a slot index is out of range.
    pub fn run(
        &self,
        coprocessor: &Coprocessor,
        modulus: &BigUint,
        slots: &mut [BigUint],
        ops: &[SequenceOp],
    ) -> SequenceReport {
        let mut report = ExecutionReport::default();
        // Under the pipelined schedule the Type-B sequencer prefetches the
        // next step's operand words from the data memory while the current
        // step's MAC tail drains — one limb-stream worth of memory cycles
        // per independent neighbour pair. Eligibility is decided by
        // `SequenceOp::may_overlap` (RAW hazards and decoder copies forbid
        // it); Type-A cannot overlap anything because control returns to
        // the MicroBlaze between steps.
        let cost = coprocessor.cost();
        let overlap_budget = if self.hierarchy == Hierarchy::TypeB && cost.is_pipelined() {
            cost.limbs(modulus.bit_len()) as u64 * cost.mem_cycles
        } else {
            0
        };
        let mut prev: Option<(&SequenceOp, u64)> = None;
        for op in ops {
            if let Some((prev_op, prev_cycles)) = prev {
                if SequenceOp::may_overlap(prev_op, op) {
                    // A prefetch can hide at most under the predecessor's
                    // own duration.
                    let credit = overlap_budget.min(prev_cycles).min(report.cycles);
                    report.cycles -= credit;
                    report.overlapped_cycles += credit;
                }
            }
            let cycles_before = report.cycles;
            match *op {
                SequenceOp::MontMul { dst, a, b } => {
                    let r = coprocessor.mont_mul(&slots[a], &slots[b], modulus);
                    slots[dst] = r.value;
                    report.cycles += r.cycles;
                    report.modmuls += 1;
                }
                SequenceOp::ModAdd { dst, a, b } => {
                    let r = coprocessor.mod_add(&slots[a], &slots[b], modulus);
                    slots[dst] = r.value;
                    report.cycles += r.cycles;
                    report.modadds += 1;
                }
                SequenceOp::ModSub { dst, a, b } => {
                    let r = coprocessor.mod_sub(&slots[a], &slots[b], modulus);
                    slots[dst] = r.value;
                    report.cycles += r.cycles;
                    report.modsubs += 1;
                }
                SequenceOp::Copy { dst, src } => {
                    slots[dst] = slots[src].clone();
                    // Two memory accesses through the decoder.
                    report.cycles += 2 * coprocessor.cost().mem_cycles;
                }
            }
            prev = Some((op, report.cycles - cycles_before));
            // Type-A: every modular operation is issued through register A
            // and completes with an interrupt back to the MicroBlaze.
            if self.hierarchy == Hierarchy::TypeA && !matches!(op, SequenceOp::Copy { .. }) {
                report.cycles += coprocessor.cost().interrupt_cycles;
                report.interrupts += 1;
                report.register_accesses += 1;
            }
        }
        // Type-B: a single composite instruction and a single interrupt per
        // sequence.
        if self.hierarchy == Hierarchy::TypeB {
            report.cycles += coprocessor.cost().interrupt_cycles + coprocessor.cost().issue_cycles;
            report.interrupts += 1;
            report.register_accesses += 1;
        }
        report
    }
}

/// Static cycle pricing of level-2 sequences — the scorer of the
/// superoptimizing search pass.
///
/// [`SequencePricing::sequence_cycles`] replays exactly the accounting
/// walk the executing sequence engine charges (per-op prices, the prefetch
/// credit of [`SequenceOp::may_overlap`] neighbours capped by the
/// predecessor's own duration, the hierarchy's interrupt overheads)
/// without executing any arithmetic, so a candidate reordering can be
/// priced in microseconds instead of milliseconds. It lives next to the
/// engine so the two walks cannot drift apart; the
/// `pricing_matches_the_executing_engine` test pins them cycle-identical
/// on every sequence kind.
///
/// Prices are taken at the *calibrated* case (no MA correction, no MS
/// add-back — the constant-time dual-path case, and Table 1's reported
/// one). Under the conditional-correction ablation individual runs can
/// pay a data-dependent correction block on top, but that surcharge is
/// order-invariant, so the ranking the search derives from this pricing
/// is unaffected.
#[derive(Debug, Clone, Copy)]
pub struct SequencePricing {
    mont_mul: u64,
    mod_add: u64,
    mod_sub: u64,
    copy: u64,
    overlap_budget: u64,
    /// Type-A: one interrupt + register access after every non-copy op.
    per_op_overhead: u64,
    /// Type-B: one composite issue + interrupt for the whole sequence.
    tail: u64,
}

impl SequencePricing {
    /// Prices sequences of `bits`-bit operands under `cost` and
    /// `hierarchy`, probing a paper-shaped 4-core coprocessor (per-op
    /// latencies do not depend on the core count consulted here beyond
    /// what `cost` already fixes).
    pub fn new(cost: &crate::cost::CostModel, bits: usize, hierarchy: Hierarchy) -> Self {
        let probe = Coprocessor::new(*cost, 4);
        let overlap_budget = if hierarchy == Hierarchy::TypeB && cost.is_pipelined() {
            cost.limbs(bits) as u64 * cost.mem_cycles
        } else {
            0
        };
        SequencePricing {
            mont_mul: probe.mont_mul_cycles(bits),
            mod_add: probe.mod_add_cycles(bits),
            mod_sub: probe.mod_sub_cycles(bits),
            copy: 2 * cost.mem_cycles,
            overlap_budget,
            per_op_overhead: if hierarchy == Hierarchy::TypeA {
                cost.interrupt_cycles
            } else {
                0
            },
            tail: if hierarchy == Hierarchy::TypeB {
                cost.interrupt_cycles + cost.issue_cycles
            } else {
                0
            },
        }
    }

    /// The execution price of one step, before overlap credits and
    /// hierarchy overheads.
    pub fn op_cycles(&self, op: &SequenceOp) -> u64 {
        match op {
            SequenceOp::MontMul { .. } => self.mont_mul,
            SequenceOp::ModAdd { .. } => self.mod_add,
            SequenceOp::ModSub { .. } => self.mod_sub,
            SequenceOp::Copy { .. } => self.copy,
        }
    }

    /// The prefetch credit one independent neighbour pair can earn (the
    /// limb-stream memory cycles hidden under the predecessor's tail).
    pub fn overlap_budget(&self) -> u64 {
        self.overlap_budget
    }

    /// Total cycles the engine would charge for `ops` — the same walk
    /// the executing sequence engine performs, arithmetic elided.
    pub fn sequence_cycles(&self, ops: &[SequenceOp]) -> u64 {
        let mut cycles = 0u64;
        let mut prev: Option<(&SequenceOp, u64)> = None;
        for op in ops {
            if let Some((prev_op, prev_cycles)) = prev {
                if SequenceOp::may_overlap(prev_op, op) {
                    cycles -= self.overlap_budget.min(prev_cycles).min(cycles);
                }
            }
            let own = self.op_cycles(op);
            cycles += own;
            prev = Some((op, own));
            if !op.is_copy() {
                cycles += self.per_op_overhead;
            }
        }
        cycles + self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn setup() -> (Coprocessor, BigUint, Vec<BigUint>) {
        let cp = Coprocessor::new(CostModel::paper(), 4);
        let p = BigUint::from(1_000_000_007u64);
        let slots = vec![
            BigUint::from(5u64),
            BigUint::from(7u64),
            BigUint::zero(),
            BigUint::zero(),
        ];
        (cp, p, slots)
    }

    #[test]
    fn sequence_ops_compute_modular_arithmetic() {
        let (cp, p, mut slots) = setup();
        let engine = SequenceEngine::new(Hierarchy::TypeB);
        let ops = [
            SequenceOp::ModAdd { dst: 2, a: 0, b: 1 },
            SequenceOp::ModSub { dst: 3, a: 0, b: 1 },
            SequenceOp::Copy { dst: 0, src: 2 },
        ];
        let report = engine.run(&cp, &p, &mut slots, &ops);
        assert_eq!(slots[2].to_u64(), Some(12));
        assert_eq!(
            slots[3],
            bignum::mod_sub(&BigUint::from(5u64), &BigUint::from(7u64), &p)
        );
        assert_eq!(slots[0].to_u64(), Some(12));
        assert_eq!(report.modadds, 1);
        assert_eq!(report.modsubs, 1);
        assert_eq!(report.interrupts, 1, "Type-B raises a single interrupt");
    }

    #[test]
    fn type_a_pays_one_interrupt_per_op() {
        // Sequential baseline: without pipelining the two hierarchies run
        // the exact same events and differ only in synchronisation cost.
        let cp = Coprocessor::new(CostModel::paper_sequential(), 4);
        let p = BigUint::from(1_000_000_007u64);
        let mut slots = vec![
            BigUint::from(5u64),
            BigUint::from(7u64),
            BigUint::zero(),
            BigUint::zero(),
        ];
        let ops = [
            SequenceOp::ModAdd { dst: 2, a: 0, b: 1 },
            SequenceOp::ModAdd { dst: 3, a: 0, b: 1 },
            SequenceOp::ModAdd { dst: 3, a: 0, b: 1 },
        ];
        let a = SequenceEngine::new(Hierarchy::TypeA).run(&cp, &p, &mut slots.clone(), &ops);
        let b = SequenceEngine::new(Hierarchy::TypeB).run(&cp, &p, &mut slots, &ops);
        assert_eq!(a.interrupts, 3);
        assert_eq!(b.interrupts, 1);
        assert!(a.cycles > b.cycles);
        assert_eq!(a.overlapped_cycles, 0);
        assert_eq!(b.overlapped_cycles, 0);
        let overhead_a = 3 * cp.cost().interrupt_cycles;
        let overhead_b = cp.cost().interrupt_cycles + cp.cost().issue_cycles;
        assert_eq!(a.cycles - overhead_a, b.cycles - overhead_b);
    }

    #[test]
    fn pipelined_type_b_overlaps_independent_neighbours() {
        let (cp, p, mut slots) = setup();
        // Independent neighbours overlap; a dependent pair must not.
        let independent = [
            SequenceOp::ModAdd { dst: 2, a: 0, b: 1 },
            SequenceOp::ModAdd { dst: 3, a: 0, b: 1 },
        ];
        let dependent = [
            SequenceOp::ModAdd { dst: 2, a: 0, b: 1 },
            SequenceOp::ModAdd { dst: 3, a: 2, b: 1 },
        ];
        let engine = SequenceEngine::new(Hierarchy::TypeB);
        let ri = engine.run(&cp, &p, &mut slots.clone(), &independent);
        let rd = engine.run(&cp, &p, &mut slots, &dependent);
        assert!(ri.overlapped_cycles > 0, "independent pair must overlap");
        assert_eq!(rd.overlapped_cycles, 0, "RAW hazard forbids overlap");
        assert!(ri.cycles < rd.cycles);
        // Type-A never overlaps: control bounces back to the MicroBlaze.
        let (_, _, mut fresh_slots) = setup();
        let ra = SequenceEngine::new(Hierarchy::TypeA).run(&cp, &p, &mut fresh_slots, &independent);
        assert_eq!(ra.overlapped_cycles, 0);
    }

    #[test]
    fn pricing_matches_the_executing_engine() {
        // The scorer must charge exactly what the engine charges — on
        // every sequence kind, at both hierarchies, for paper-shaped
        // operand lengths. (Pinned under the dual-path calibration, whose
        // MA/MS microcode is constant-time by construction; conditional
        // correction adds a data-dependent, order-invariant surcharge the
        // scorer deliberately prices at the calibrated case.)
        use crate::program::{compile, OpKind};
        let cost = CostModel::paper();
        let cp = Coprocessor::new(cost, 4);
        for hierarchy in [Hierarchy::TypeA, Hierarchy::TypeB] {
            let engine = SequenceEngine::new(hierarchy);
            for (kind, bits) in [
                (OpKind::Fp6Mul, 170),
                (OpKind::EccPaGeneral, 160),
                (OpKind::EccPaMixed, 160),
                (OpKind::EccPd, 160),
                (OpKind::EccPdFast, 256),
            ] {
                let program = compile(kind, bits, &cost);
                let modulus = crate::coprocessor::sample_modulus(bits);
                let mut slots: Vec<BigUint> = (0..program.slot_budget())
                    .map(|i| BigUint::from((i % 251 + 1) as u64))
                    .collect();
                let report = engine.run(&cp, &modulus, &mut slots, program.ops());
                let pricing = SequencePricing::new(&cost, bits, hierarchy);
                assert_eq!(
                    pricing.sequence_cycles(program.ops()),
                    report.cycles,
                    "{kind:?} at {bits} bits under {hierarchy:?}"
                );
            }
        }
    }

    #[test]
    fn montgomery_step_keeps_values_reduced() {
        let (cp, p, mut slots) = setup();
        let engine = SequenceEngine::new(Hierarchy::TypeB);
        let ops = [SequenceOp::MontMul { dst: 2, a: 0, b: 1 }];
        let report = engine.run(&cp, &p, &mut slots, &ops);
        assert!(slots[2] < p);
        assert_eq!(report.modmuls, 1);
    }
}

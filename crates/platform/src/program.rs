//! The typed program IR and its compilation pipeline.
//!
//! Level-2 sequences used to be free-standing `Vec<SequenceOp>` builders
//! that every driver re-ran (and the schedule re-priced) on each call —
//! once per ladder step inside a scalar multiplication. This module turns
//! them into a compile-once/execute-many program layer:
//!
//! ```text
//! Program  (authored: named operands, typed slots)
//!    │  slot allocation / validation
//!    │  dead-temp elimination               (uncalibrated programs only)
//!    │  hazard-aware neighbour reordering   (uncalibrated programs only)
//!    ▼
//! CompiledProgram  (scheduled ops + ProgramStats + pass trace)
//!    │  ProgramCache, keyed by (OpKind, bits, CostModel fingerprint)
//!    ▼
//! Platform::execute → SequenceEngine → scheduled cycles
//! ```
//!
//! The four pre-existing sequences (`Fp6` multiplication, general and
//! mixed ECC point addition, ECC point doubling) are **calibrated**: their
//! stored step stream models the InsRom1 image whose cycle counts
//! reproduce Table 2, so both optimization passes leave them untouched
//! and the golden file pins them bit-identical. The fast `a = -3` doubling
//! ([`OpKind::EccPdFast`]) is authored in derivation order and the
//! compiler schedules it for maximum sequencer overlap.
//!
//! # Example
//!
//! Compile the ladder's fast doubling and inspect what the passes did:
//!
//! ```
//! use platform::program::{compile, OpKind};
//! use platform::CostModel;
//!
//! let pd = compile(OpKind::EccPdFast, 160, &CostModel::paper());
//! assert_eq!(pd.stats().modmuls, 8); // a = -3 shortened doubling
//! // The scheduler raised the hazard-free neighbour density the Type-B
//! // sequencer prefetches across.
//! let reorder = pd.passes().iter().find(|p| p.pass == "reorder").unwrap();
//! assert!(reorder.pairs_after > reorder.pairs_before);
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::cost::CostModel;
use crate::hierarchy::SequenceOp;
use crate::programs::{self, ECC_SLOTS, FP6_MUL_SLOTS};

/// The composite (level-2) operations the platform can compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `Fp6` (torus `T6`) multiplication: 18 MM Karatsuba, Section 2.2.2.
    Fp6Mul,
    /// General Jacobian ECC point addition (16 MM).
    EccPaGeneral,
    /// Mixed-coordinate ECC point addition (`Z2 = 1`, 13 MM) — the
    /// sequence the scalar ladder runs and Table 2's ECC PA rows price.
    EccPaMixed,
    /// Jacobian ECC point doubling (10 MM) — the InsRom1 doubling whose
    /// Type-B cycle count matches Table 2.
    EccPd,
    /// Shortened `a = -3` doubling (8 MM + 12 MA/MS) — the on-the-fly
    /// generated doubling whose Type-A cycle count matches Table 2 (see
    /// DESIGN.md). Only valid on curves with `a = -3`.
    EccPdFast,
}

impl OpKind {
    /// Every compilable kind, in a stable order.
    pub const ALL: [OpKind; 5] = [
        OpKind::Fp6Mul,
        OpKind::EccPaGeneral,
        OpKind::EccPaMixed,
        OpKind::EccPd,
        OpKind::EccPdFast,
    ];

    /// The kinds that existed before the IR (their hand-built `Vec`
    /// builders remain as shims); the compile pipeline must stay
    /// cycle-identical to them.
    pub const LEGACY: [OpKind; 4] = [
        OpKind::Fp6Mul,
        OpKind::EccPaGeneral,
        OpKind::EccPaMixed,
        OpKind::EccPd,
    ];

    /// Stable name, used in cache diagnostics and slot-overflow panics.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Fp6Mul => "fp6_mul",
            OpKind::EccPaGeneral => "ecc_pa_general",
            OpKind::EccPaMixed => "ecc_pa_mixed",
            OpKind::EccPd => "ecc_pd",
            OpKind::EccPdFast => "ecc_pd_fast",
        }
    }

    /// Data-memory slot budget of this kind's layout.
    pub fn slot_budget(self) -> usize {
        match self {
            OpKind::Fp6Mul => FP6_MUL_SLOTS,
            _ => ECC_SLOTS,
        }
    }

    /// Returns `true` when the authored step order is itself the
    /// calibration artifact (the InsRom1 image reproducing Table 2); the
    /// reordering pass must not disturb such programs.
    pub fn order_is_calibrated(self) -> bool {
        !matches!(self, OpKind::EccPdFast)
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed handle to one data-memory slot of a program's layout, handed
/// out by [`ProgramBuilder`]; using handles instead of raw `usize`
/// indices keeps authored sequences from mixing up operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot(pub(crate) usize);

impl Slot {
    /// The raw data-memory index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Authoring interface for level-2 programs: named operands on fixed
/// layout slots, temporaries from the owning
/// [`SlotArena`](crate::programs::SlotArena), and typed op emitters.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    kind: OpKind,
    arena: programs::SlotArena,
    ops: Vec<SequenceOp>,
    operands: Vec<(&'static str, usize)>,
    outputs: Vec<usize>,
}

impl ProgramBuilder {
    /// Starts a program of the given kind whose temporaries begin at slot
    /// `temps_from` (the end of the kind's fixed operand layout).
    pub fn new(kind: OpKind, temps_from: usize) -> Self {
        ProgramBuilder {
            kind,
            arena: programs::SlotArena::named(kind.name(), temps_from, kind.slot_budget()),
            ops: Vec::new(),
            operands: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Declares a named input operand at a fixed layout slot.
    pub fn input(&mut self, name: &'static str, slot: usize) -> Slot {
        self.operands.push((name, slot));
        Slot(slot)
    }

    /// Declares a named output operand at a fixed layout slot. Output
    /// slots anchor the dead-temp elimination pass's liveness analysis.
    pub fn output(&mut self, name: &'static str, slot: usize) -> Slot {
        self.operands.push((name, slot));
        self.outputs.push(slot);
        Slot(slot)
    }

    /// Allocates one anonymous temporary.
    pub fn temp(&mut self) -> Slot {
        Slot(self.arena.alloc())
    }

    /// Allocates `N` temporaries.
    pub fn temps<const N: usize>(&mut self) -> [Slot; N] {
        self.arena.alloc_n().map(Slot)
    }

    /// Emits `dst ← a · b · R⁻¹ mod p`.
    pub fn mul(&mut self, dst: Slot, a: Slot, b: Slot) {
        self.ops.push(SequenceOp::MontMul {
            dst: dst.0,
            a: a.0,
            b: b.0,
        });
    }

    /// Emits `dst ← (a + b) mod p`.
    pub fn add(&mut self, dst: Slot, a: Slot, b: Slot) {
        self.ops.push(SequenceOp::ModAdd {
            dst: dst.0,
            a: a.0,
            b: b.0,
        });
    }

    /// Emits `dst ← (a - b) mod p`.
    pub fn sub(&mut self, dst: Slot, a: Slot, b: Slot) {
        self.ops.push(SequenceOp::ModSub {
            dst: dst.0,
            a: a.0,
            b: b.0,
        });
    }

    /// Emits a decoder copy `dst ← src`.
    pub fn copy(&mut self, dst: Slot, src: Slot) {
        self.ops.push(SequenceOp::Copy {
            dst: dst.0,
            src: src.0,
        });
    }

    /// Finalizes the authored program.
    pub fn finish(self) -> Program {
        Program {
            kind: self.kind,
            slot_budget: self.kind.slot_budget(),
            ops: self.ops,
            operands: self.operands,
            outputs: self.outputs,
        }
    }
}

/// An authored (not yet compiled) level-2 program: the typed IR the
/// passes consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    kind: OpKind,
    ops: Vec<SequenceOp>,
    operands: Vec<(&'static str, usize)>,
    outputs: Vec<usize>,
    slot_budget: usize,
}

impl Program {
    /// Authors the program for `kind` (delegates to the sequence sources
    /// in [`crate::programs`]).
    pub fn author(kind: OpKind) -> Program {
        programs::author(kind)
    }

    /// The operation this program implements.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The authored steps.
    pub fn ops(&self) -> &[SequenceOp] {
        &self.ops
    }

    /// Consumes the program, returning its steps (the legacy
    /// `Vec<SequenceOp>` shape).
    pub fn into_ops(self) -> Vec<SequenceOp> {
        self.ops
    }

    /// Slot of the named operand, if declared.
    pub fn operand(&self, name: &str) -> Option<usize> {
        self.operands
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, s)| s)
    }

    /// The declared output slots.
    pub fn outputs(&self) -> &[usize] {
        &self.outputs
    }

    /// Op metadata of the authored steps.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats::of(&self.ops)
    }
}

/// Op metadata of a step sequence — the typed replacement for the old
/// free-standing `count_modmuls` / `count_modadds` /
/// `independent_neighbour_pairs` helpers (which remain as thin wrappers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Total steps.
    pub steps: usize,
    /// Montgomery multiplications.
    pub modmuls: usize,
    /// Modular additions.
    pub modadds: usize,
    /// Modular subtractions.
    pub modsubs: usize,
    /// Decoder copies.
    pub copies: usize,
    /// Adjacent step pairs the Type-B sequencer may overlap
    /// ([`SequenceOp::may_overlap`]).
    pub independent_neighbour_pairs: usize,
    /// Highest slot index referenced, plus one (the live footprint).
    pub slot_high_water: usize,
}

impl ProgramStats {
    /// Computes the metadata of an op sequence.
    pub fn of(ops: &[SequenceOp]) -> ProgramStats {
        let mut stats = ProgramStats {
            steps: ops.len(),
            ..ProgramStats::default()
        };
        for op in ops {
            match op {
                SequenceOp::MontMul { .. } => stats.modmuls += 1,
                SequenceOp::ModAdd { .. } => stats.modadds += 1,
                SequenceOp::ModSub { .. } => stats.modsubs += 1,
                SequenceOp::Copy { .. } => stats.copies += 1,
            }
            let top = op.dest().max(op.sources()[0]).max(op.sources()[1]);
            stats.slot_high_water = stats.slot_high_water.max(top + 1);
        }
        stats.independent_neighbour_pairs = ops
            .windows(2)
            .filter(|w| SequenceOp::may_overlap(&w[0], &w[1]))
            .count();
        stats
    }

    /// Modular additions plus subtractions (the paper's "MA/MS" column).
    pub fn modaddsubs(&self) -> usize {
        self.modadds + self.modsubs
    }
}

/// What one compiler pass did to a program, kept on the
/// [`CompiledProgram`] for traceability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassOutcome {
    /// Pass name (`"slot-check"`, `"dead-temp-elim"`, `"reorder"`).
    pub pass: &'static str,
    /// Steps entering the pass.
    pub steps_before: usize,
    /// Steps leaving the pass.
    pub steps_after: usize,
    /// Independent neighbour pairs entering the pass.
    pub pairs_before: usize,
    /// Independent neighbour pairs leaving the pass.
    pub pairs_after: usize,
}

impl PassOutcome {
    /// Returns `true` if the pass changed the program.
    pub fn changed(&self) -> bool {
        self.steps_before != self.steps_after || self.pairs_before != self.pairs_after
    }
}

/// A compiled level-2 program: validated, optimized and ready to execute
/// any number of times via [`crate::Platform::execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProgram {
    kind: OpKind,
    bits: usize,
    ops: Vec<SequenceOp>,
    operands: Vec<(&'static str, usize)>,
    outputs: Vec<usize>,
    slot_budget: usize,
    stats: ProgramStats,
    passes: Vec<PassOutcome>,
}

impl CompiledProgram {
    /// The operation this program implements.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Operand length the program was compiled for (part of the cache
    /// key; the step stream itself is length-independent).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The scheduled steps.
    pub fn ops(&self) -> &[SequenceOp] {
        &self.ops
    }

    /// Slot of the named operand, if declared.
    pub fn operand(&self, name: &str) -> Option<usize> {
        self.operands
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, s)| s)
    }

    /// The declared output slots.
    pub fn outputs(&self) -> &[usize] {
        &self.outputs
    }

    /// Data-memory slot budget the executing engine must provide.
    pub fn slot_budget(&self) -> usize {
        self.slot_budget
    }

    /// Op metadata of the scheduled steps.
    pub fn stats(&self) -> ProgramStats {
        self.stats
    }

    /// What each pass did.
    pub fn passes(&self) -> &[PassOutcome] {
        &self.passes
    }
}

/// Compiles the program for `kind` at the given operand length through
/// the full pass pipeline (slot validation, dead-temp elimination, and —
/// for uncalibrated programs under the pipelined schedule — hazard-aware
/// neighbour reordering).
pub fn compile(kind: OpKind, bits: usize, cost: &CostModel) -> CompiledProgram {
    compile_inner(kind, bits, cost, true)
}

/// Compiles the program for `kind` with the optimization passes disabled:
/// the authored steps are validated and wrapped as-is. This is the
/// "legacy hand-built sequence" baseline the cycle-identity tests and the
/// `program_cache` bench compare [`compile`] against.
pub fn compile_unoptimized(kind: OpKind, bits: usize, cost: &CostModel) -> CompiledProgram {
    compile_inner(kind, bits, cost, false)
}

fn compile_inner(kind: OpKind, bits: usize, cost: &CostModel, optimize: bool) -> CompiledProgram {
    let program = Program::author(kind);
    let mut passes = Vec::new();

    // Pass 1: slot allocation check — every referenced slot must sit
    // inside the layout budget. A violation is a microcode-generation bug
    // in the authoring code, not a user error.
    let authored = ProgramStats::of(program.ops());
    assert!(
        authored.slot_high_water <= program.slot_budget,
        "{}: program references slot {} beyond its budget of {}",
        kind.name(),
        authored.slot_high_water - 1,
        program.slot_budget
    );
    passes.push(PassOutcome {
        pass: "slot-check",
        steps_before: authored.steps,
        steps_after: authored.steps,
        pairs_before: authored.independent_neighbour_pairs,
        pairs_after: authored.independent_neighbour_pairs,
    });

    let Program {
        kind,
        mut ops,
        operands,
        outputs,
        slot_budget,
    } = program;

    if optimize {
        // Pass 2: dead-temp elimination — drop steps whose result no
        // later step (and no output) observes. Calibrated programs skip
        // it, like the reorder pass: their step stream *is* the InsRom
        // image the golden file pins, redundant steps included, so
        // bit-identity is structural rather than dependent on the
        // authored sequences happening to contain no dead code.
        let before = ProgramStats::of(&ops);
        if !kind.order_is_calibrated() {
            ops = eliminate_dead_temps(ops, &outputs);
        }
        let after = ProgramStats::of(&ops);
        passes.push(PassOutcome {
            pass: "dead-temp-elim",
            steps_before: before.steps,
            steps_after: after.steps,
            pairs_before: before.independent_neighbour_pairs,
            pairs_after: after.independent_neighbour_pairs,
        });

        // Pass 3: hazard-aware neighbour reordering — raise the density
        // of hazard-free adjacent pairs the Type-B sequencer prefetches
        // across. Calibrated programs keep their InsRom order; under the
        // sequential schedule there is no overlap to win, so the authored
        // order stands there too.
        let before = after;
        if !kind.order_is_calibrated() && cost.is_pipelined() {
            ops = reorder_for_overlap(&ops);
        }
        let after = ProgramStats::of(&ops);
        passes.push(PassOutcome {
            pass: "reorder",
            steps_before: before.steps,
            steps_after: after.steps,
            pairs_before: before.independent_neighbour_pairs,
            pairs_after: after.independent_neighbour_pairs,
        });
    }

    let stats = ProgramStats::of(&ops);
    CompiledProgram {
        kind,
        bits,
        ops,
        operands,
        outputs,
        slot_budget,
        stats,
        passes,
    }
}

/// Dead-temp elimination: backward liveness seeded by the output slots.
/// A step is dead when no later step reads its destination before the
/// destination is overwritten and the destination is not a live output.
fn eliminate_dead_temps(ops: Vec<SequenceOp>, outputs: &[usize]) -> Vec<SequenceOp> {
    let mut live: std::collections::HashSet<usize> = outputs.iter().copied().collect();
    let mut keep = vec![false; ops.len()];
    for (i, op) in ops.iter().enumerate().rev() {
        if live.contains(&op.dest()) {
            keep[i] = true;
            live.remove(&op.dest());
            for s in op.sources() {
                live.insert(s);
            }
        }
    }
    ops.into_iter()
        .zip(keep)
        .filter_map(|(op, k)| k.then_some(op))
        .collect()
}

/// Hazard-aware list scheduler: emits a topological order of the steps
/// (RAW, WAR and WAW edges preserved, so the slot-level semantics are
/// unchanged) that greedily prefers a ready step able to overlap with the
/// previously emitted one ([`SequenceOp::may_overlap`]), breaking ties by
/// authored position for determinism.
pub fn reorder_for_overlap(ops: &[SequenceOp]) -> Vec<SequenceOp> {
    let n = ops.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut npreds = vec![0usize; n];
    for j in 0..n {
        for i in 0..j {
            let raw = ops[j].sources().contains(&ops[i].dest());
            let war = ops[i].sources().contains(&ops[j].dest());
            let waw = ops[i].dest() == ops[j].dest();
            if raw || war || waw {
                succs[i].push(j);
                npreds[j] += 1;
            }
        }
    }
    let mut ready: std::collections::BTreeSet<usize> = (0..n).filter(|&i| npreds[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    let mut prev: Option<usize> = None;
    while let Some(&first) = ready.iter().next() {
        let pick = match prev {
            Some(p) => ready
                .iter()
                .copied()
                .find(|&i| SequenceOp::may_overlap(&ops[p], &ops[i]))
                .unwrap_or(first),
            None => first,
        };
        ready.remove(&pick);
        out.push(ops[pick]);
        for &s in &succs[pick] {
            npreds[s] -= 1;
            if npreds[s] == 0 {
                ready.insert(s);
            }
        }
        prev = Some(pick);
    }
    debug_assert_eq!(out.len(), n, "scheduler dropped steps");
    out
}

/// Cache key: which program, at which operand length, under which cost
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    kind: OpKind,
    bits: usize,
    cost_fingerprint: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    programs: HashMap<CacheKey, Arc<CompiledProgram>>,
    hits: u64,
    misses: u64,
}

/// Compile-once cache for level-2 programs, keyed by
/// `(OpKind, bits, CostModel fingerprint)`.
///
/// Cloning the cache (as [`crate::Platform`] cloning does) shares the
/// underlying store, so a fleet of platform clones compiles each program
/// once. The hit/miss counters feed the `program_cache_hit_rate_pct`
/// metric in `BENCH_report.json`.
#[derive(Debug, Clone, Default)]
pub struct ProgramCache {
    state: Arc<Mutex<CacheState>>,
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// Returns the compiled program for the key, compiling on first use.
    pub fn get_or_compile(
        &self,
        kind: OpKind,
        bits: usize,
        cost: &CostModel,
    ) -> Arc<CompiledProgram> {
        let key = CacheKey {
            kind,
            bits,
            cost_fingerprint: cost.fingerprint(),
        };
        let mut state = self.state.lock().expect("program cache poisoned");
        if let Some(hit) = state.programs.get(&key).cloned() {
            state.hits += 1;
            return hit;
        }
        state.misses += 1;
        let compiled = Arc::new(compile(kind, bits, cost));
        state.programs.insert(key, Arc::clone(&compiled));
        compiled
    }

    /// Lookups that found a compiled program.
    pub fn hits(&self) -> u64 {
        self.state.lock().expect("program cache poisoned").hits
    }

    /// Lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.state.lock().expect("program cache poisoned").misses
    }

    /// Distinct compiled programs currently cached.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("program cache poisoned")
            .programs
            .len()
    }

    /// Returns `true` if nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit rate over all lookups so far, in percent (0 when no lookups).
    pub fn hit_rate_pct(&self) -> f64 {
        let state = self.state.lock().expect("program cache poisoned");
        let total = state.hits + state.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * state.hits as f64 / total as f64
        }
    }

    /// Drops every cached program and resets the counters.
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("program cache poisoned");
        state.programs.clear();
        state.hits = 0;
        state.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coprocessor::Coprocessor;
    use crate::hierarchy::{Hierarchy, SequenceEngine};
    use bignum::BigUint;

    fn probe_slots(n: usize) -> Vec<BigUint> {
        (0..n)
            .map(|i| BigUint::from((i % 251 + 1) as u64))
            .collect()
    }

    fn run(ops: &[SequenceOp], slots: &mut [BigUint]) -> crate::report::ExecutionReport {
        let cp = Coprocessor::new(CostModel::paper(), 4);
        let engine = SequenceEngine::new(Hierarchy::TypeB);
        let p = BigUint::from(1_000_003u64);
        engine.run(&cp, &p, slots, ops)
    }

    #[test]
    fn authored_programs_expose_named_operands_and_outputs() {
        let pa = Program::author(OpKind::EccPaMixed);
        assert_eq!(pa.operand("X1"), Some(0));
        assert_eq!(pa.operand("R2"), Some(5));
        assert_eq!(pa.operand("X3"), Some(6));
        assert_eq!(pa.operand("nonexistent"), None);
        assert_eq!(pa.outputs(), &[6, 7, 8]);
        let pd = Program::author(OpKind::EccPdFast);
        assert_eq!(pd.outputs(), &[3, 4, 5]);
        assert_eq!(pd.stats().modmuls, 8);
    }

    #[test]
    fn compile_preserves_calibrated_programs_exactly() {
        // The four legacy kinds are the InsRom calibration: the full pass
        // pipeline must leave their step stream bit-identical (the golden
        // file pins the resulting cycles).
        for kind in OpKind::LEGACY {
            let authored = Program::author(kind);
            let compiled = compile(kind, 160, &CostModel::paper());
            assert_eq!(compiled.ops(), authored.ops(), "{kind}");
            assert!(compiled.passes().iter().all(|p| !p.changed()), "{kind}");
        }
    }

    #[test]
    fn scheduler_raises_fast_pd_overlap_and_preserves_semantics() {
        let authored = Program::author(OpKind::EccPdFast);
        let compiled = compile(OpKind::EccPdFast, 160, &CostModel::paper());
        let before = authored.stats();
        let after = compiled.stats();
        assert_eq!(before.steps, after.steps);
        assert_eq!(before.modmuls, after.modmuls);
        assert!(
            after.independent_neighbour_pairs > before.independent_neighbour_pairs,
            "scheduler must raise overlap: {} !> {}",
            after.independent_neighbour_pairs,
            before.independent_neighbour_pairs
        );
        // Same slot-level results on a probe execution.
        let mut a = probe_slots(ECC_SLOTS);
        let mut b = probe_slots(ECC_SLOTS);
        run(authored.ops(), &mut a);
        run(compiled.ops(), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn scheduler_respects_all_hazard_kinds() {
        // RAW: 1 reads 0's dest. WAR: 2 overwrites a slot 1 reads.
        // WAW: 3 overwrites 2's dest. Any legal order must keep the final
        // slot state; exercise via the scheduler on a chain designed so
        // every violation changes the result.
        let ops = vec![
            SequenceOp::ModAdd { dst: 4, a: 0, b: 1 },
            SequenceOp::ModAdd { dst: 5, a: 4, b: 1 },
            SequenceOp::ModAdd { dst: 4, a: 2, b: 2 },
            SequenceOp::ModAdd { dst: 4, a: 4, b: 3 },
            SequenceOp::ModSub { dst: 6, a: 4, b: 5 },
        ];
        let scheduled = reorder_for_overlap(&ops);
        assert_eq!(scheduled.len(), ops.len());
        let mut a = probe_slots(8);
        let mut b = probe_slots(8);
        run(&ops, &mut a);
        run(&scheduled, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn dead_temps_are_eliminated() {
        // Author a throwaway program with one dead chain: t1 is computed
        // and never observed by the output.
        let mut b = ProgramBuilder::new(OpKind::EccPdFast, 7);
        let x = b.input("X", 0);
        let y = b.input("Y", 1);
        let out = b.output("OUT", 3);
        let t0 = b.temp();
        let t1 = b.temp();
        b.add(t0, x, y);
        b.mul(t1, x, x); // dead: nothing reads t1
        b.sub(out, t0, y);
        let program = b.finish();
        let kept = eliminate_dead_temps(program.ops().to_vec(), program.outputs());
        assert_eq!(kept.len(), 2);
        assert!(kept
            .iter()
            .all(|op| !matches!(op, SequenceOp::MontMul { .. })));
        // And the surviving steps compute the same output slot.
        let mut full = probe_slots(10);
        let mut pruned = probe_slots(10);
        run(program.ops(), &mut full);
        run(&kept, &mut pruned);
        assert_eq!(full[3], pruned[3]);
    }

    #[test]
    fn cache_hits_share_one_compilation() {
        let cache = ProgramCache::new();
        let cost = CostModel::paper();
        let a = cache.get_or_compile(OpKind::EccPd, 160, &cost);
        let b = cache.get_or_compile(OpKind::EccPd, 160, &cost);
        assert!(Arc::ptr_eq(&a, &b), "same key must share the compilation");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Different bits, kind or cost knobs miss.
        cache.get_or_compile(OpKind::EccPd, 170, &cost);
        cache.get_or_compile(OpKind::EccPdFast, 160, &cost);
        cache.get_or_compile(OpKind::EccPd, 160, &cost.with_dual_path(false));
        assert_eq!((cache.hits(), cache.misses()), (1, 4));
        assert_eq!(cache.len(), 4);
        assert!((cache.hit_rate_pct() - 20.0).abs() < 1e-9);
        // Clones share the store; clear resets everything.
        let clone = cache.clone();
        let c = clone.get_or_compile(OpKind::EccPd, 160, &cost);
        assert!(Arc::ptr_eq(&a, &c));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hit_rate_pct(), 0.0);
    }

    #[test]
    fn unoptimized_compilation_is_the_authored_program() {
        for kind in OpKind::ALL {
            let unopt = compile_unoptimized(kind, 160, &CostModel::paper());
            assert_eq!(unopt.ops(), Program::author(kind).ops(), "{kind}");
            assert_eq!(unopt.passes().len(), 1, "{kind}: slot-check only");
        }
    }
}

//! The typed program IR and its compilation pipeline.
//!
//! Level-2 sequences used to be free-standing `Vec<SequenceOp>` builders
//! that every driver re-ran (and the schedule re-priced) on each call —
//! once per ladder step inside a scalar multiplication. This module turns
//! them into a compile-once/execute-many program layer:
//!
//! ```text
//! Program  (authored: named operands, typed slots)
//!    │  PassPipeline: validate
//!    │                dead-temp-elim     (uncalibrated programs only)
//!    │                list-schedule      (uncalibrated programs only)
//!    │                search             (CostModel::uses_search only)
//!    ▼
//! CompiledProgram  (scheduled ops + ProgramStats + PassTrace per pass)
//!    │  ProgramCache, keyed by (OpKind, bits, CostModel fingerprint)
//!    ▼
//! Platform::execute → SequenceEngine → scheduled cycles
//! ```
//!
//! The four pre-existing sequences (`Fp6` multiplication, general and
//! mixed ECC point addition, ECC point doubling) are **calibrated**: their
//! stored step stream models the InsRom1 image whose cycle counts
//! reproduce Table 2, so the deterministic optimization passes leave them
//! untouched and the golden file pins them bit-identical. The fast
//! `a = -3` doubling ([`OpKind::EccPdFast`]) is authored in derivation
//! order and the compiler schedules it for maximum sequencer overlap.
//!
//! Two pieces go beyond faithful reproduction, toward what the paper's
//! "on-the-fly sequence generation" gestured at:
//!
//! * the **superoptimizing search pass** ([`Pass::Search`], behind
//!   [`CostModel::sequence_search`]) — a beam search over instruction
//!   reorderings and slot reallocations, scored by
//!   [`crate::SequencePricing`] (the exact accounting walk the executing
//!   engine charges), accepted only when strictly cheaper than the
//!   incoming schedule — it applies to *every* kind, calibrated ones
//!   included, which is why the published calibration keeps it off;
//! * the **formula database** ([`FormulaDb`]) — named EFD variants with
//!   op-count and constraint metadata, from which the ladder *derives*
//!   the best PA/PD sequence per `(curve, cost model)` instead of being
//!   told through hard-coded dispatch.
//!
//! # Example
//!
//! Compile the ladder's fast doubling and inspect what the passes did:
//!
//! ```
//! use platform::program::{compile, OpKind};
//! use platform::CostModel;
//!
//! let pd = compile(OpKind::EccPdFast, 160, &CostModel::paper());
//! assert_eq!(pd.stats().modmuls, 8); // a = -3 shortened doubling
//! // The scheduler raised the hazard-free neighbour density the Type-B
//! // sequencer prefetches across.
//! let sched = pd.passes().iter().find(|p| p.pass == "list-schedule").unwrap();
//! assert!(sched.pairs_after > sched.pairs_before);
//! assert!(sched.cycles_after < sched.cycles_before);
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::cost::CostModel;
use crate::hierarchy::{Hierarchy, SequenceOp, SequencePricing};
use crate::programs::{self, ECC_SLOTS, FP6_MUL_SLOTS};

/// The composite (level-2) operations the platform can compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `Fp6` (torus `T6`) multiplication: 18 MM Karatsuba, Section 2.2.2.
    Fp6Mul,
    /// General Jacobian ECC point addition (16 MM).
    EccPaGeneral,
    /// Mixed-coordinate ECC point addition (`Z2 = 1`, 13 MM) — the
    /// sequence the scalar ladder runs and Table 2's ECC PA rows price.
    EccPaMixed,
    /// Jacobian ECC point doubling (10 MM) — the InsRom1 doubling whose
    /// Type-B cycle count matches Table 2.
    EccPd,
    /// Shortened `a = -3` doubling (8 MM + 12 MA/MS) — the on-the-fly
    /// generated doubling whose Type-A cycle count matches Table 2 (see
    /// DESIGN.md). Only valid on curves with `a = -3`.
    EccPdFast,
}

impl OpKind {
    /// Every compilable kind, in a stable order.
    pub const ALL: [OpKind; 5] = [
        OpKind::Fp6Mul,
        OpKind::EccPaGeneral,
        OpKind::EccPaMixed,
        OpKind::EccPd,
        OpKind::EccPdFast,
    ];

    /// The kinds that existed before the IR (their hand-built `Vec`
    /// builders remain as shims); the compile pipeline must stay
    /// cycle-identical to them.
    pub const LEGACY: [OpKind; 4] = [
        OpKind::Fp6Mul,
        OpKind::EccPaGeneral,
        OpKind::EccPaMixed,
        OpKind::EccPd,
    ];

    /// Stable name, used in cache diagnostics and slot-overflow panics.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Fp6Mul => "fp6_mul",
            OpKind::EccPaGeneral => "ecc_pa_general",
            OpKind::EccPaMixed => "ecc_pa_mixed",
            OpKind::EccPd => "ecc_pd",
            OpKind::EccPdFast => "ecc_pd_fast",
        }
    }

    /// Data-memory slot budget of this kind's layout.
    pub fn slot_budget(self) -> usize {
        match self {
            OpKind::Fp6Mul => FP6_MUL_SLOTS,
            _ => ECC_SLOTS,
        }
    }

    /// Returns `true` when the authored step order is itself the
    /// calibration artifact (the InsRom1 image reproducing Table 2); the
    /// reordering pass must not disturb such programs.
    pub fn order_is_calibrated(self) -> bool {
        !matches!(self, OpKind::EccPdFast)
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed handle to one data-memory slot of a program's layout, handed
/// out by [`ProgramBuilder`]; using handles instead of raw `usize`
/// indices keeps authored sequences from mixing up operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot(pub(crate) usize);

impl Slot {
    /// The raw data-memory index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Authoring interface for level-2 programs: named operands on fixed
/// layout slots, temporaries from the owning
/// [`SlotArena`](crate::programs::SlotArena), and typed op emitters.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    kind: OpKind,
    arena: programs::SlotArena,
    ops: Vec<SequenceOp>,
    operands: Vec<(&'static str, usize)>,
    outputs: Vec<usize>,
}

impl ProgramBuilder {
    /// Starts a program of the given kind whose temporaries begin at slot
    /// `temps_from` (the end of the kind's fixed operand layout).
    pub fn new(kind: OpKind, temps_from: usize) -> Self {
        ProgramBuilder {
            kind,
            arena: programs::SlotArena::named(kind.name(), temps_from, kind.slot_budget()),
            ops: Vec::new(),
            operands: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Declares a named input operand at a fixed layout slot.
    pub fn input(&mut self, name: &'static str, slot: usize) -> Slot {
        self.operands.push((name, slot));
        Slot(slot)
    }

    /// Declares a named output operand at a fixed layout slot. Output
    /// slots anchor the dead-temp elimination pass's liveness analysis.
    pub fn output(&mut self, name: &'static str, slot: usize) -> Slot {
        self.operands.push((name, slot));
        self.outputs.push(slot);
        Slot(slot)
    }

    /// Allocates one anonymous temporary.
    pub fn temp(&mut self) -> Slot {
        Slot(self.arena.alloc())
    }

    /// Allocates `N` temporaries.
    pub fn temps<const N: usize>(&mut self) -> [Slot; N] {
        self.arena.alloc_n().map(Slot)
    }

    /// Emits `dst ← a · b · R⁻¹ mod p`.
    pub fn mul(&mut self, dst: Slot, a: Slot, b: Slot) {
        self.ops.push(SequenceOp::MontMul {
            dst: dst.0,
            a: a.0,
            b: b.0,
        });
    }

    /// Emits `dst ← (a + b) mod p`.
    pub fn add(&mut self, dst: Slot, a: Slot, b: Slot) {
        self.ops.push(SequenceOp::ModAdd {
            dst: dst.0,
            a: a.0,
            b: b.0,
        });
    }

    /// Emits `dst ← (a - b) mod p`.
    pub fn sub(&mut self, dst: Slot, a: Slot, b: Slot) {
        self.ops.push(SequenceOp::ModSub {
            dst: dst.0,
            a: a.0,
            b: b.0,
        });
    }

    /// Emits a decoder copy `dst ← src`.
    pub fn copy(&mut self, dst: Slot, src: Slot) {
        self.ops.push(SequenceOp::Copy {
            dst: dst.0,
            src: src.0,
        });
    }

    /// Finalizes the authored program.
    pub fn finish(self) -> Program {
        Program {
            kind: self.kind,
            slot_budget: self.kind.slot_budget(),
            ops: self.ops,
            operands: self.operands,
            outputs: self.outputs,
        }
    }
}

/// An authored (not yet compiled) level-2 program: the typed IR the
/// passes consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    kind: OpKind,
    ops: Vec<SequenceOp>,
    operands: Vec<(&'static str, usize)>,
    outputs: Vec<usize>,
    slot_budget: usize,
}

impl Program {
    /// Authors the program for `kind` (delegates to the sequence sources
    /// in [`crate::programs`]).
    pub fn author(kind: OpKind) -> Program {
        programs::author(kind)
    }

    /// The operation this program implements.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The authored steps.
    pub fn ops(&self) -> &[SequenceOp] {
        &self.ops
    }

    /// Consumes the program, returning its steps (the legacy
    /// `Vec<SequenceOp>` shape).
    pub fn into_ops(self) -> Vec<SequenceOp> {
        self.ops
    }

    /// Slot of the named operand, if declared.
    pub fn operand(&self, name: &str) -> Option<usize> {
        self.operands
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, s)| s)
    }

    /// The declared output slots.
    pub fn outputs(&self) -> &[usize] {
        &self.outputs
    }

    /// Op metadata of the authored steps.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats::of(&self.ops)
    }
}

/// Op metadata of a step sequence — the typed replacement for the old
/// free-standing `count_modmuls` / `count_modadds` /
/// `independent_neighbour_pairs` helpers (which remain as thin wrappers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Total steps.
    pub steps: usize,
    /// Montgomery multiplications.
    pub modmuls: usize,
    /// Modular additions.
    pub modadds: usize,
    /// Modular subtractions.
    pub modsubs: usize,
    /// Decoder copies.
    pub copies: usize,
    /// Adjacent step pairs the Type-B sequencer may overlap
    /// ([`SequenceOp::may_overlap`]).
    pub independent_neighbour_pairs: usize,
    /// Highest slot index referenced, plus one (the live footprint).
    pub slot_high_water: usize,
}

impl ProgramStats {
    /// Computes the metadata of an op sequence.
    pub fn of(ops: &[SequenceOp]) -> ProgramStats {
        let mut stats = ProgramStats {
            steps: ops.len(),
            ..ProgramStats::default()
        };
        for op in ops {
            match op {
                SequenceOp::MontMul { .. } => stats.modmuls += 1,
                SequenceOp::ModAdd { .. } => stats.modadds += 1,
                SequenceOp::ModSub { .. } => stats.modsubs += 1,
                SequenceOp::Copy { .. } => stats.copies += 1,
            }
            let top = op.dest().max(op.sources()[0]).max(op.sources()[1]);
            stats.slot_high_water = stats.slot_high_water.max(top + 1);
        }
        stats.independent_neighbour_pairs = ops
            .windows(2)
            .filter(|w| SequenceOp::may_overlap(&w[0], &w[1]))
            .count();
        stats
    }

    /// Modular additions plus subtractions (the paper's "MA/MS" column).
    pub fn modaddsubs(&self) -> usize {
        self.modadds + self.modsubs
    }
}

/// What one compiler pass did to a program, kept on the
/// [`CompiledProgram`] for traceability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassTrace {
    /// Pass name ([`Pass::name`]: `"validate"`, `"dead-temp-elim"`,
    /// `"list-schedule"`, `"search"`).
    pub pass: &'static str,
    /// Steps entering the pass.
    pub steps_before: usize,
    /// Steps leaving the pass.
    pub steps_after: usize,
    /// Independent neighbour pairs entering the pass.
    pub pairs_before: usize,
    /// Independent neighbour pairs leaving the pass.
    pub pairs_after: usize,
    /// Scheduled Type-B cycles entering the pass, priced by
    /// [`crate::SequencePricing`] at the compile's operand length.
    pub cycles_before: u64,
    /// Scheduled Type-B cycles leaving the pass.
    pub cycles_after: u64,
}

impl PassTrace {
    /// Returns `true` if the pass changed the program.
    pub fn changed(&self) -> bool {
        self.steps_before != self.steps_after
            || self.pairs_before != self.pairs_after
            || self.cycles_before != self.cycles_after
    }
}

/// Former name of [`PassTrace`], kept so pre-pipeline call sites stay
/// source-compatible.
#[deprecated(note = "renamed to PassTrace when the pass pipeline became explicit")]
pub type PassOutcome = PassTrace;

/// A compiled level-2 program: validated, optimized and ready to execute
/// any number of times via [`crate::Platform::execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProgram {
    kind: OpKind,
    bits: usize,
    ops: Vec<SequenceOp>,
    operands: Vec<(&'static str, usize)>,
    outputs: Vec<usize>,
    slot_budget: usize,
    stats: ProgramStats,
    passes: Vec<PassTrace>,
}

impl CompiledProgram {
    /// The operation this program implements.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Operand length the program was compiled for (part of the cache
    /// key; the step stream itself is length-independent).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The scheduled steps.
    pub fn ops(&self) -> &[SequenceOp] {
        &self.ops
    }

    /// Slot of the named operand, if declared.
    pub fn operand(&self, name: &str) -> Option<usize> {
        self.operands
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, s)| s)
    }

    /// The declared output slots.
    pub fn outputs(&self) -> &[usize] {
        &self.outputs
    }

    /// Data-memory slot budget the executing engine must provide.
    pub fn slot_budget(&self) -> usize {
        self.slot_budget
    }

    /// Op metadata of the scheduled steps.
    pub fn stats(&self) -> ProgramStats {
        self.stats
    }

    /// What each pass did.
    pub fn passes(&self) -> &[PassTrace] {
        &self.passes
    }

    /// A stable 64-bit fingerprint of the compiled artifact (kind, operand
    /// length, and the exact scheduled step stream) — the determinism pin:
    /// compiling the same `(OpKind, bits, CostModel)` twice must produce
    /// the same fingerprint, search pass included. Same FNV-1a fold as
    /// [`CostModel::fingerprint`], so the value is stable across runs and
    /// toolchains.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100_0000_01b3)
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let kind_tag = OpKind::ALL
            .iter()
            .position(|k| *k == self.kind)
            .expect("every kind is in ALL") as u64;
        h = eat(h, kind_tag);
        h = eat(h, self.bits as u64);
        for op in &self.ops {
            let (tag, dst, a, b) = match *op {
                SequenceOp::MontMul { dst, a, b } => (0u64, dst, a, b),
                SequenceOp::ModAdd { dst, a, b } => (1, dst, a, b),
                SequenceOp::ModSub { dst, a, b } => (2, dst, a, b),
                SequenceOp::Copy { dst, src } => (3, dst, src, src),
            };
            h = eat(h, tag);
            h = eat(h, dst as u64);
            h = eat(h, a as u64);
            h = eat(h, b as u64);
        }
        h
    }
}

/// One named compiler pass of a [`PassPipeline`].
///
/// Every pass is deterministic and carries its own skip conditions (a
/// skipped pass still records a [`PassTrace`], reporting no change), so a
/// pipeline built once is valid for every kind:
///
/// * [`Pass::Validate`] — every referenced slot must sit inside the
///   kind's layout budget; always runs, never rewrites.
/// * [`Pass::DeadTempElim`] — drops steps whose result no later step
///   (and no output) observes; skipped for calibrated kinds, whose step
///   stream *is* the InsRom image the golden file pins.
/// * [`Pass::ListSchedule`] — hazard-aware greedy list scheduling
///   ([`reorder_for_overlap`]); skipped for calibrated kinds and under
///   the sequential schedule (no overlap to win).
/// * [`Pass::Search`] — the superoptimizing beam search over
///   reorderings *and* slot reallocations, scored by
///   [`crate::SequencePricing`]; runs only under
///   [`CostModel::uses_search`] and keeps its candidate only when
///   strictly cheaper than the incoming schedule, calibrated kinds
///   included (that is the point: stop hand-authoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Slot-budget validation (formerly `"slot-check"`).
    Validate,
    /// Backward-liveness dead-step elimination.
    DeadTempElim,
    /// Greedy hazard-aware neighbour scheduling (formerly `"reorder"`).
    ListSchedule,
    /// Beam search over orderings and slot assignments.
    Search,
}

impl Pass {
    /// Stable name, used in [`PassTrace::pass`] and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Validate => "validate",
            Pass::DeadTempElim => "dead-temp-elim",
            Pass::ListSchedule => "list-schedule",
            Pass::Search => "search",
        }
    }
}

/// An ordered list of named passes — the explicit compile API behind
/// [`compile`].
///
/// ```
/// use platform::program::{OpKind, PassPipeline, Program};
/// use platform::CostModel;
///
/// let cost = CostModel::paper().with_search(true);
/// let pipeline = PassPipeline::standard(&cost);
/// let names: Vec<_> = pipeline.passes().iter().map(|p| p.name()).collect();
/// assert_eq!(names, ["validate", "dead-temp-elim", "list-schedule", "search"]);
/// let pd = pipeline.run(Program::author(OpKind::EccPdFast), 160, &cost);
/// assert_eq!(pd.stats().modmuls, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassPipeline {
    passes: Vec<Pass>,
}

impl PassPipeline {
    /// The standard pipeline for the given cost model: validate,
    /// dead-temp elimination, list scheduling, plus the search pass when
    /// [`CostModel::uses_search`] selects it.
    pub fn standard(cost: &CostModel) -> Self {
        let mut passes = vec![Pass::Validate, Pass::DeadTempElim, Pass::ListSchedule];
        if cost.uses_search() {
            passes.push(Pass::Search);
        }
        PassPipeline { passes }
    }

    /// The validation-only pipeline: the authored steps are checked and
    /// wrapped as-is (the "legacy hand-built sequence" baseline behind
    /// [`compile_unoptimized`]).
    pub fn minimal() -> Self {
        PassPipeline {
            passes: vec![Pass::Validate],
        }
    }

    /// The ordered passes this pipeline runs.
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// Runs the pipeline over an authored program, producing the
    /// compiled artifact with one [`PassTrace`] per pass. Trace cycles
    /// are priced under the Type-B hierarchy (the one whose sequencer the
    /// ordering passes optimize for) at the given operand length.
    ///
    /// # Panics
    ///
    /// Panics if the program references a slot beyond its layout budget
    /// (a microcode-generation bug in the authoring code, not a user
    /// error).
    pub fn run(&self, program: Program, bits: usize, cost: &CostModel) -> CompiledProgram {
        let pricing = SequencePricing::new(cost, bits, Hierarchy::TypeB);
        let Program {
            kind,
            mut ops,
            operands,
            outputs,
            slot_budget,
        } = program;
        let mut passes = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let before = ProgramStats::of(&ops);
            let cycles_before = pricing.sequence_cycles(&ops);
            match pass {
                Pass::Validate => {
                    assert!(
                        before.slot_high_water <= slot_budget,
                        "{}: program references slot {} beyond its budget of {}",
                        kind.name(),
                        before.slot_high_water - 1,
                        slot_budget
                    );
                }
                Pass::DeadTempElim => {
                    if !kind.order_is_calibrated() {
                        ops = eliminate_dead_temps(ops, &outputs);
                    }
                }
                Pass::ListSchedule => {
                    if !kind.order_is_calibrated() && cost.is_pipelined() {
                        ops = reorder_for_overlap(&ops);
                    }
                }
                Pass::Search => {
                    if cost.uses_search() {
                        if let Some(found) = search_schedule(
                            &ops,
                            &operands,
                            &outputs,
                            slot_budget,
                            &pricing,
                            cost.search_beam_width.max(1),
                        ) {
                            ops = found;
                        }
                    }
                }
            }
            let after = ProgramStats::of(&ops);
            passes.push(PassTrace {
                pass: pass.name(),
                steps_before: before.steps,
                steps_after: after.steps,
                pairs_before: before.independent_neighbour_pairs,
                pairs_after: after.independent_neighbour_pairs,
                cycles_before,
                cycles_after: pricing.sequence_cycles(&ops),
            });
        }
        let stats = ProgramStats::of(&ops);
        CompiledProgram {
            kind,
            bits,
            ops,
            operands,
            outputs,
            slot_budget,
            stats,
            passes,
        }
    }
}

/// Compiles the program for `kind` at the given operand length through
/// the standard pass pipeline ([`PassPipeline::standard`]): validation,
/// dead-temp elimination, hazard-aware list scheduling and — when the
/// cost model selects it — the superoptimizing search pass. Kept as a
/// thin shim over the pipeline so existing call sites and the
/// [`ProgramCache`] key stay source-compatible.
pub fn compile(kind: OpKind, bits: usize, cost: &CostModel) -> CompiledProgram {
    PassPipeline::standard(cost).run(Program::author(kind), bits, cost)
}

/// Compiles the program for `kind` with the optimization passes disabled
/// ([`PassPipeline::minimal`]): the authored steps are validated and
/// wrapped as-is. This is the "legacy hand-built sequence" baseline the
/// cycle-identity tests and the `program_cache` bench compare
/// [`compile`] against.
pub fn compile_unoptimized(kind: OpKind, bits: usize, cost: &CostModel) -> CompiledProgram {
    PassPipeline::minimal().run(Program::author(kind), bits, cost)
}

/// Dead-temp elimination: backward liveness seeded by the output slots.
/// A step is dead when no later step reads its destination before the
/// destination is overwritten and the destination is not a live output.
fn eliminate_dead_temps(ops: Vec<SequenceOp>, outputs: &[usize]) -> Vec<SequenceOp> {
    let mut live: std::collections::HashSet<usize> = outputs.iter().copied().collect();
    let mut keep = vec![false; ops.len()];
    for (i, op) in ops.iter().enumerate().rev() {
        if live.contains(&op.dest()) {
            keep[i] = true;
            live.remove(&op.dest());
            for s in op.sources() {
                live.insert(s);
            }
        }
    }
    ops.into_iter()
        .zip(keep)
        .filter_map(|(op, k)| k.then_some(op))
        .collect()
}

/// Hazard-aware list scheduler: emits a topological order of the steps
/// (RAW, WAR and WAW edges preserved, so the slot-level semantics are
/// unchanged) that greedily prefers a ready step able to overlap with the
/// previously emitted one ([`SequenceOp::may_overlap`]), breaking ties by
/// authored position for determinism.
pub fn reorder_for_overlap(ops: &[SequenceOp]) -> Vec<SequenceOp> {
    let n = ops.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut npreds = vec![0usize; n];
    for j in 0..n {
        for i in 0..j {
            let raw = ops[j].sources().contains(&ops[i].dest());
            let war = ops[i].sources().contains(&ops[j].dest());
            let waw = ops[i].dest() == ops[j].dest();
            if raw || war || waw {
                succs[i].push(j);
                npreds[j] += 1;
            }
        }
    }
    let mut ready: std::collections::BTreeSet<usize> = (0..n).filter(|&i| npreds[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    let mut prev: Option<usize> = None;
    while let Some(&first) = ready.iter().next() {
        let pick = match prev {
            Some(p) => ready
                .iter()
                .copied()
                .find(|&i| SequenceOp::may_overlap(&ops[p], &ops[i]))
                .unwrap_or(first),
            None => first,
        };
        ready.remove(&pick);
        out.push(ops[pick]);
        for &s in &succs[pick] {
            npreds[s] -= 1;
            if npreds[s] == 0 {
                ready.insert(s);
            }
        }
        prev = Some(pick);
    }
    debug_assert_eq!(out.len(), n, "scheduler dropped steps");
    out
}

/// The value-level dataflow of a slot program: for each step, the steps
/// whose *values* it consumes (true RAW dependencies only — WAR/WAW slot
/// reuse is a false dependency the search removes by renaming), plus the
/// bookkeeping the renamer needs to rebuild a slot program afterwards.
struct ValueDag {
    /// `deps[j]` = indices of the steps whose value step `j` reads.
    deps: Vec<Vec<usize>>,
    /// `value_sources[j]` = per operand of step `j`: `Ok(i)` reads step
    /// `i`'s value, `Err(slot)` reads the external value `slot` held at
    /// program start.
    value_sources: Vec<[Result<usize, usize>; 2]>,
    /// `readers[i]` = number of operand references to step `i`'s value.
    readers: Vec<usize>,
    /// `final_output_def[i]` = the output slot whose final value step `i`
    /// produces, if any.
    final_output_def: Vec<Option<usize>>,
    /// Slots whose program-start value some step reads (must never be
    /// reallocated as temporaries).
    external_slots: std::collections::HashSet<usize>,
}

impl ValueDag {
    /// Builds the dataflow of `ops` with `outputs` as the observable
    /// slots. Ordering constraints beyond RAW: a step producing the final
    /// value of an output slot is made to depend on every step that reads
    /// that slot's *external* value, so renaming can write the output in
    /// place without clobbering a start-of-program operand.
    fn of(ops: &[SequenceOp], outputs: &[usize]) -> ValueDag {
        let n = ops.len();
        let mut last_def: HashMap<usize, usize> = HashMap::new();
        let mut external_readers: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut dag = ValueDag {
            deps: vec![Vec::new(); n],
            value_sources: vec![[Err(0), Err(0)]; n],
            readers: vec![0; n],
            final_output_def: vec![None; n],
            external_slots: std::collections::HashSet::new(),
        };
        for (j, op) in ops.iter().enumerate() {
            let sources = op.sources();
            for (k, &slot) in sources.iter().enumerate() {
                match last_def.get(&slot) {
                    Some(&i) => {
                        dag.value_sources[j][k] = Ok(i);
                        dag.readers[i] += 1;
                        if !dag.deps[j].contains(&i) {
                            dag.deps[j].push(i);
                        }
                    }
                    None => {
                        dag.value_sources[j][k] = Err(slot);
                        dag.external_slots.insert(slot);
                        external_readers.entry(slot).or_default().push(j);
                    }
                }
            }
            last_def.insert(op.dest(), j);
        }
        for &o in outputs {
            if let Some(&w) = last_def.get(&o) {
                dag.final_output_def[w] = Some(o);
                // The in-place output write must wait for every reader of
                // the slot's external value.
                if let Some(readers) = external_readers.get(&o) {
                    for &j in readers {
                        if j != w && !dag.deps[w].contains(&j) {
                            dag.deps[w].push(j);
                        }
                    }
                }
            }
        }
        dag
    }

    /// Value-level overlap eligibility, mirroring
    /// [`SequenceOp::may_overlap`]: after renaming, a slot-level RAW
    /// hazard exists between adjacent steps exactly when a value-level
    /// one does (a temp slot is only reallocated once no pending reads of
    /// its value remain), so scoring orders at the value level prices the
    /// renamed program exactly.
    fn may_overlap(&self, ops: &[SequenceOp], prev: usize, next: usize) -> bool {
        !ops[prev].is_copy() && !ops[next].is_copy() && !self.deps[next].contains(&prev)
    }
}

/// One surviving schedule prefix in the beam.
#[derive(Clone)]
struct BeamEntry {
    /// Bitmask of scheduled steps.
    mask: u128,
    /// Scheduled step indices, in order.
    order: Vec<u32>,
    /// Cycles of the prefix under the engine's credit walk.
    cycles: u64,
    /// Last scheduled step, for the overlap credit of the next one.
    prev: Option<u32>,
}

/// The superoptimizing search pass: beam search over topological orders
/// of the value DAG (slot-reuse false dependencies removed), then a
/// linear-scan slot reassignment rebuilding a legal program, accepted
/// only when [`crate::SequencePricing`] prices it *strictly* cheaper than
/// `ops` — ties keep the incoming schedule, so enabling the search can
/// never worsen a program and golden rows stay bit-stable.
///
/// Returns `None` when no strictly cheaper schedule is found (or when the
/// program exceeds the search's 128-step capacity or its slot budget
/// during reassignment; the incoming schedule then stands).
fn search_schedule(
    ops: &[SequenceOp],
    operands: &[(&'static str, usize)],
    outputs: &[usize],
    slot_budget: usize,
    pricing: &SequencePricing,
    beam_width: usize,
) -> Option<Vec<SequenceOp>> {
    let n = ops.len();
    if n == 0 || n > 128 {
        return None;
    }
    let dag = ValueDag::of(ops, outputs);
    let order = beam_search_order(ops, &dag, pricing, beam_width);
    let candidate = reassign_slots(ops, &order, &dag, operands, outputs, slot_budget)?;
    (pricing.sequence_cycles(&candidate) < pricing.sequence_cycles(ops)).then_some(candidate)
}

/// Beam search for a cheap topological order of the value DAG, scored
/// incrementally by the engine's credit walk (per-op price minus the
/// overlap credit [`SequenceOp::may_overlap`] neighbours earn, capped by
/// the predecessor's own duration and the running total). Deterministic:
/// candidates are expanded in index order, deduplicated on
/// `(mask, last step)` keeping the cheaper prefix, and ranked by
/// `(cycles, order)` so ties break identically on every run.
fn beam_search_order(
    ops: &[SequenceOp],
    dag: &ValueDag,
    pricing: &SequencePricing,
    beam_width: usize,
) -> Vec<u32> {
    let n = ops.len();
    let mut beam = vec![BeamEntry {
        mask: 0,
        order: Vec::with_capacity(n),
        cycles: 0,
        prev: None,
    }];
    for _ in 0..n {
        let mut candidates: Vec<BeamEntry> = Vec::new();
        for entry in &beam {
            for j in 0..n {
                let bit = 1u128 << j;
                if entry.mask & bit != 0 {
                    continue;
                }
                if dag.deps[j].iter().any(|&d| entry.mask & (1u128 << d) == 0) {
                    continue; // not ready: an input value is unscheduled
                }
                let mut cycles = entry.cycles;
                if let Some(p) = entry.prev {
                    if dag.may_overlap(ops, p as usize, j) {
                        let credit = pricing
                            .overlap_budget()
                            .min(pricing.op_cycles(&ops[p as usize]))
                            .min(cycles);
                        cycles -= credit;
                    }
                }
                cycles += pricing.op_cycles(&ops[j]);
                let mask = entry.mask | bit;
                match candidates
                    .iter_mut()
                    .find(|c| c.mask == mask && c.prev == Some(j as u32))
                {
                    Some(dup) if dup.cycles <= cycles => {}
                    Some(dup) => {
                        dup.cycles = cycles;
                        dup.order = entry.order.clone();
                        dup.order.push(j as u32);
                    }
                    None => {
                        let mut order = entry.order.clone();
                        order.push(j as u32);
                        candidates.push(BeamEntry {
                            mask,
                            order,
                            cycles,
                            prev: Some(j as u32),
                        });
                    }
                }
            }
        }
        candidates.sort_by(|a, b| a.cycles.cmp(&b.cycles).then_with(|| a.order.cmp(&b.order)));
        candidates.truncate(beam_width);
        beam = candidates;
    }
    beam.into_iter()
        .next()
        .expect("a DAG over n steps admits a topological order")
        .order
}

/// Rebuilds a slot program for the searched order: operand and output
/// slots are protected (outputs receive exactly their final value, in
/// place), every other value lives in a recycled temporary drawn from the
/// unprotected slots below the layout budget, freed when its last reader
/// has been scheduled. Returns `None` if the order needs more live
/// temporaries than the budget holds (the caller then keeps the incoming
/// schedule).
fn reassign_slots(
    ops: &[SequenceOp],
    order: &[u32],
    dag: &ValueDag,
    operands: &[(&'static str, usize)],
    outputs: &[usize],
    slot_budget: usize,
) -> Option<Vec<SequenceOp>> {
    let mut protected: std::collections::HashSet<usize> = dag.external_slots.clone();
    protected.extend(operands.iter().map(|&(_, s)| s));
    protected.extend(outputs.iter().copied());
    // Free pool, lowest slot first for a deterministic assignment.
    let mut pool: std::collections::BTreeSet<usize> = (0..slot_budget)
        .filter(|s| !protected.contains(s))
        .collect();
    let mut value_slot: Vec<Option<usize>> = vec![None; ops.len()];
    let mut pending_reads: Vec<usize> = dag.readers.clone();
    let mut out = Vec::with_capacity(order.len());
    for &j in order {
        let j = j as usize;
        let resolve = |k: usize, value_slot: &Vec<Option<usize>>| -> usize {
            match dag.value_sources[j][k] {
                Ok(i) => value_slot[i].expect("producer scheduled before consumer"),
                Err(slot) => slot,
            }
        };
        let a = resolve(0, &value_slot);
        let b = resolve(1, &value_slot);
        // Release producer slots whose last pending read this step was —
        // after resolving both operands, so a producer read twice here
        // stays allocated until both references are counted.
        for k in 0..2 {
            if let Ok(i) = dag.value_sources[j][k] {
                pending_reads[i] -= 1;
                if pending_reads[i] == 0 && dag.final_output_def[i].is_none() {
                    if let Some(freed) = value_slot[i] {
                        pool.insert(freed);
                    }
                }
            }
        }
        let dst = match dag.final_output_def[j] {
            Some(o) => o,
            None => {
                let slot = *pool.iter().next()?;
                pool.remove(&slot);
                slot
            }
        };
        value_slot[j] = Some(dst);
        // A value nothing reads (possible in calibrated streams the
        // dead-temp pass never touches) frees its slot immediately.
        if pending_reads[j] == 0 && dag.final_output_def[j].is_none() {
            pool.insert(dst);
        }
        out.push(match ops[j] {
            SequenceOp::MontMul { .. } => SequenceOp::MontMul { dst, a, b },
            SequenceOp::ModAdd { .. } => SequenceOp::ModAdd { dst, a, b },
            SequenceOp::ModSub { .. } => SequenceOp::ModSub { dst, a, b },
            SequenceOp::Copy { .. } => SequenceOp::Copy { dst, src: a },
        });
    }
    Some(out)
}

/// Cache key: which program, at which operand length, under which cost
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    kind: OpKind,
    bits: usize,
    cost_fingerprint: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    programs: HashMap<CacheKey, Arc<CompiledProgram>>,
    hits: u64,
    misses: u64,
}

/// Compile-once cache for level-2 programs, keyed by
/// `(OpKind, bits, CostModel fingerprint)`.
///
/// Cloning the cache (as [`crate::Platform`] cloning does) shares the
/// underlying store, so a fleet of platform clones compiles each program
/// once. The hit/miss counters feed the `program_cache_hit_rate_pct`
/// metric in `BENCH_report.json`.
#[derive(Debug, Clone, Default)]
pub struct ProgramCache {
    state: Arc<Mutex<CacheState>>,
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// Returns the compiled program for the key, compiling on first use.
    pub fn get_or_compile(
        &self,
        kind: OpKind,
        bits: usize,
        cost: &CostModel,
    ) -> Arc<CompiledProgram> {
        let key = CacheKey {
            kind,
            bits,
            cost_fingerprint: cost.fingerprint(),
        };
        let mut state = self.state.lock().expect("program cache poisoned");
        if let Some(hit) = state.programs.get(&key).cloned() {
            state.hits += 1;
            return hit;
        }
        state.misses += 1;
        let compiled = Arc::new(compile(kind, bits, cost));
        state.programs.insert(key, Arc::clone(&compiled));
        compiled
    }

    /// Lookups that found a compiled program.
    pub fn hits(&self) -> u64 {
        self.state.lock().expect("program cache poisoned").hits
    }

    /// Lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.state.lock().expect("program cache poisoned").misses
    }

    /// Distinct compiled programs currently cached.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("program cache poisoned")
            .programs
            .len()
    }

    /// Returns `true` if nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit rate over all lookups so far, in percent (0 when no lookups).
    pub fn hit_rate_pct(&self) -> f64 {
        let state = self.state.lock().expect("program cache poisoned");
        let total = state.hits + state.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * state.hits as f64 / total as f64
        }
    }

    /// Drops every cached program and resets the counters.
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("program cache poisoned");
        state.programs.clear();
        state.hits = 0;
        state.misses = 0;
    }
}

/// One named formula variant in the [`FormulaDb`]: which [`OpKind`]
/// program implements it, its operation counts (taken from the authored
/// program, so they cannot drift from the sequences themselves), and the
/// constraints under which it is usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Formula {
    name: &'static str,
    kind: OpKind,
    modmuls: usize,
    modaddsubs: usize,
    requires_affine_addend: bool,
    requires_a_minus_three: bool,
}

impl Formula {
    /// The registry name (EFD identifier where one exists, e.g.
    /// `"madd"`, `"dbl-2001-b"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The compiled program kind implementing this formula.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Montgomery multiplications in the authored sequence.
    pub fn modmuls(&self) -> usize {
        self.modmuls
    }

    /// Modular additions plus subtractions in the authored sequence.
    pub fn modaddsubs(&self) -> usize {
        self.modaddsubs
    }

    /// Returns `true` if the formula needs its addend affine (`Z2 = 1`,
    /// plain-domain coordinates written once by the MicroBlaze).
    pub fn requires_affine_addend(&self) -> bool {
        self.requires_affine_addend
    }

    /// Returns `true` if the formula is only valid on curves with
    /// `a = -3`.
    pub fn requires_a_minus_three(&self) -> bool {
        self.requires_a_minus_three
    }
}

/// The formula database: named EFD variants with op-count and constraint
/// metadata, from which [`FormulaDb::best_for`] *derives* the cheapest
/// applicable PA/PD sequence per `(curve, cost model)` — replacing the
/// hard-coded `fast_pd` / `mixed_coordinate_pa` dispatch that used to
/// tell the ladder which sequence to run. Mirrors the registry style of
/// `ecc::Curve::by_name`.
///
/// ```
/// use ecc::Curve;
/// use platform::program::{FormulaDb, OpKind};
/// use platform::CostModel;
///
/// let db = FormulaDb::builtin();
/// let p256 = Curve::by_name("p256").unwrap(); // a = -3
/// let pd = db.best_for(OpKind::EccPd, &p256, &CostModel::paper());
/// assert_eq!(pd.name(), "dbl-2001-b"); // derived, not hard-coded
/// let k256 = Curve::by_name("secp256k1").unwrap(); // a = 0
/// let pd = db.best_for(OpKind::EccPd, &k256, &CostModel::paper());
/// assert_eq!(pd.name(), "pd-general");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormulaDb {
    formulas: Vec<Formula>,
}

impl FormulaDb {
    /// The built-in registry covering every compilable kind, constructed
    /// once: op counts are read off the authored programs at first use.
    pub fn builtin() -> &'static FormulaDb {
        static DB: OnceLock<FormulaDb> = OnceLock::new();
        DB.get_or_init(|| {
            let entry = |name, kind: OpKind, affine, a_minus_three| {
                let stats = Program::author(kind).stats();
                Formula {
                    name,
                    kind,
                    modmuls: stats.modmuls,
                    modaddsubs: stats.modaddsubs(),
                    requires_affine_addend: affine,
                    requires_a_minus_three: a_minus_three,
                }
            };
            FormulaDb {
                formulas: vec![
                    entry("karatsuba-fp6", OpKind::Fp6Mul, false, false),
                    entry("pa-general", OpKind::EccPaGeneral, false, false),
                    entry("madd", OpKind::EccPaMixed, true, false),
                    entry("pd-general", OpKind::EccPd, false, false),
                    entry("dbl-2001-b", OpKind::EccPdFast, false, true),
                ],
            }
        })
    }

    /// Every registered formula, in registration order.
    pub fn formulas(&self) -> &[Formula] {
        &self.formulas
    }

    /// Looks a formula up by registry name.
    pub fn by_name(&self, name: &str) -> Option<&Formula> {
        self.formulas.iter().find(|f| f.name == name)
    }

    /// The cheapest formula applicable to the request: `op` states what
    /// the caller is computing *and* what it can provide (asking for
    /// [`OpKind::EccPaMixed`] asserts the addend is affine; asking for a
    /// doubling leaves the variant choice to the database), `curve`
    /// supplies the structural constraints (`a = -3`), and `cost`
    /// supplies the sequence-level knobs that gate the beyond-general
    /// variants for the ablation baselines. Eligible formulas are ranked
    /// by `(modmuls, modaddsubs)`; ties keep registration order, so the
    /// choice is deterministic.
    pub fn best_for(&self, op: OpKind, curve: &ecc::Curve, cost: &CostModel) -> &Formula {
        let family: &[OpKind] = match op {
            OpKind::Fp6Mul => &[OpKind::Fp6Mul],
            OpKind::EccPaGeneral | OpKind::EccPaMixed => {
                &[OpKind::EccPaGeneral, OpKind::EccPaMixed]
            }
            OpKind::EccPd | OpKind::EccPdFast => &[OpKind::EccPd, OpKind::EccPdFast],
        };
        self.formulas
            .iter()
            .filter(|f| family.contains(&f.kind))
            .filter(|f| {
                // An affine-addend formula is usable only when the caller
                // asserted it has one, and while the mixed-PA layer is on.
                !f.requires_affine_addend || (op == OpKind::EccPaMixed && cost.uses_mixed_pa())
            })
            .filter(|f| {
                !f.requires_a_minus_three || (curve.a_is_minus_three() && cost.uses_fast_pd())
            })
            .min_by_key(|f| (f.modmuls, f.modaddsubs))
            .expect("every family has an unconstrained general formula")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coprocessor::Coprocessor;
    use crate::hierarchy::{Hierarchy, SequenceEngine};
    use bignum::BigUint;

    fn probe_slots(n: usize) -> Vec<BigUint> {
        (0..n)
            .map(|i| BigUint::from((i % 251 + 1) as u64))
            .collect()
    }

    fn run(ops: &[SequenceOp], slots: &mut [BigUint]) -> crate::report::ExecutionReport {
        let cp = Coprocessor::new(CostModel::paper(), 4);
        let engine = SequenceEngine::new(Hierarchy::TypeB);
        let p = BigUint::from(1_000_003u64);
        engine.run(&cp, &p, slots, ops)
    }

    #[test]
    fn authored_programs_expose_named_operands_and_outputs() {
        let pa = Program::author(OpKind::EccPaMixed);
        assert_eq!(pa.operand("X1"), Some(0));
        assert_eq!(pa.operand("R2"), Some(5));
        assert_eq!(pa.operand("X3"), Some(6));
        assert_eq!(pa.operand("nonexistent"), None);
        assert_eq!(pa.outputs(), &[6, 7, 8]);
        let pd = Program::author(OpKind::EccPdFast);
        assert_eq!(pd.outputs(), &[3, 4, 5]);
        assert_eq!(pd.stats().modmuls, 8);
    }

    #[test]
    fn compile_preserves_calibrated_programs_exactly() {
        // The four legacy kinds are the InsRom calibration: the full pass
        // pipeline must leave their step stream bit-identical (the golden
        // file pins the resulting cycles).
        for kind in OpKind::LEGACY {
            let authored = Program::author(kind);
            let compiled = compile(kind, 160, &CostModel::paper());
            assert_eq!(compiled.ops(), authored.ops(), "{kind}");
            assert!(compiled.passes().iter().all(|p| !p.changed()), "{kind}");
        }
    }

    #[test]
    fn scheduler_raises_fast_pd_overlap_and_preserves_semantics() {
        let authored = Program::author(OpKind::EccPdFast);
        let compiled = compile(OpKind::EccPdFast, 160, &CostModel::paper());
        let before = authored.stats();
        let after = compiled.stats();
        assert_eq!(before.steps, after.steps);
        assert_eq!(before.modmuls, after.modmuls);
        assert!(
            after.independent_neighbour_pairs > before.independent_neighbour_pairs,
            "scheduler must raise overlap: {} !> {}",
            after.independent_neighbour_pairs,
            before.independent_neighbour_pairs
        );
        // Same slot-level results on a probe execution.
        let mut a = probe_slots(ECC_SLOTS);
        let mut b = probe_slots(ECC_SLOTS);
        run(authored.ops(), &mut a);
        run(compiled.ops(), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn scheduler_respects_all_hazard_kinds() {
        // RAW: 1 reads 0's dest. WAR: 2 overwrites a slot 1 reads.
        // WAW: 3 overwrites 2's dest. Any legal order must keep the final
        // slot state; exercise via the scheduler on a chain designed so
        // every violation changes the result.
        let ops = vec![
            SequenceOp::ModAdd { dst: 4, a: 0, b: 1 },
            SequenceOp::ModAdd { dst: 5, a: 4, b: 1 },
            SequenceOp::ModAdd { dst: 4, a: 2, b: 2 },
            SequenceOp::ModAdd { dst: 4, a: 4, b: 3 },
            SequenceOp::ModSub { dst: 6, a: 4, b: 5 },
        ];
        let scheduled = reorder_for_overlap(&ops);
        assert_eq!(scheduled.len(), ops.len());
        let mut a = probe_slots(8);
        let mut b = probe_slots(8);
        run(&ops, &mut a);
        run(&scheduled, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn dead_temps_are_eliminated() {
        // Author a throwaway program with one dead chain: t1 is computed
        // and never observed by the output.
        let mut b = ProgramBuilder::new(OpKind::EccPdFast, 7);
        let x = b.input("X", 0);
        let y = b.input("Y", 1);
        let out = b.output("OUT", 3);
        let t0 = b.temp();
        let t1 = b.temp();
        b.add(t0, x, y);
        b.mul(t1, x, x); // dead: nothing reads t1
        b.sub(out, t0, y);
        let program = b.finish();
        let kept = eliminate_dead_temps(program.ops().to_vec(), program.outputs());
        assert_eq!(kept.len(), 2);
        assert!(kept
            .iter()
            .all(|op| !matches!(op, SequenceOp::MontMul { .. })));
        // And the surviving steps compute the same output slot.
        let mut full = probe_slots(10);
        let mut pruned = probe_slots(10);
        run(program.ops(), &mut full);
        run(&kept, &mut pruned);
        assert_eq!(full[3], pruned[3]);
    }

    #[test]
    fn cache_hits_share_one_compilation() {
        let cache = ProgramCache::new();
        let cost = CostModel::paper();
        let a = cache.get_or_compile(OpKind::EccPd, 160, &cost);
        let b = cache.get_or_compile(OpKind::EccPd, 160, &cost);
        assert!(Arc::ptr_eq(&a, &b), "same key must share the compilation");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Different bits, kind or cost knobs miss.
        cache.get_or_compile(OpKind::EccPd, 170, &cost);
        cache.get_or_compile(OpKind::EccPdFast, 160, &cost);
        cache.get_or_compile(OpKind::EccPd, 160, &cost.with_dual_path(false));
        assert_eq!((cache.hits(), cache.misses()), (1, 4));
        assert_eq!(cache.len(), 4);
        assert!((cache.hit_rate_pct() - 20.0).abs() < 1e-9);
        // Clones share the store; clear resets everything.
        let clone = cache.clone();
        let c = clone.get_or_compile(OpKind::EccPd, 160, &cost);
        assert!(Arc::ptr_eq(&a, &c));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hit_rate_pct(), 0.0);
    }

    #[test]
    fn unoptimized_compilation_is_the_authored_program() {
        for kind in OpKind::ALL {
            let unopt = compile_unoptimized(kind, 160, &CostModel::paper());
            assert_eq!(unopt.ops(), Program::author(kind).ops(), "{kind}");
            assert_eq!(unopt.passes().len(), 1, "{kind}: slot-check only");
        }
    }

    #[test]
    fn standard_pipeline_names_its_passes_in_order() {
        let names = |cost: &CostModel| -> Vec<&'static str> {
            PassPipeline::standard(cost)
                .passes()
                .iter()
                .map(|p| p.name())
                .collect()
        };
        let base = CostModel::paper();
        assert_eq!(
            names(&base),
            ["validate", "dead-temp-elim", "list-schedule"]
        );
        assert_eq!(
            names(&base.with_search(true)),
            ["validate", "dead-temp-elim", "list-schedule", "search"]
        );
        // The search pass needs the pipelined scorer: sequential models
        // keep the three-pass pipeline even with the knob on.
        assert_eq!(
            names(&CostModel::paper_sequential().with_search(true)),
            ["validate", "dead-temp-elim", "list-schedule"]
        );
        assert_eq!(
            PassPipeline::minimal()
                .passes()
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>(),
            ["validate"]
        );
    }

    #[test]
    fn search_preserves_output_state_and_never_costs_more() {
        // For every kind, the searched program must leave the same values
        // in the output slots as the authored one, cost no more under the
        // exact scorer, and keep operation counts intact.
        let cost = CostModel::paper().with_search(true);
        let authored_cost = CostModel::paper();
        for kind in OpKind::ALL {
            let bits = 160;
            let searched = compile(kind, bits, &cost);
            let authored = compile(kind, bits, &authored_cost);
            assert_eq!(
                searched.stats().modmuls,
                authored.stats().modmuls,
                "{kind}: search must not change the formula"
            );
            let pricing = SequencePricing::new(&cost, bits, Hierarchy::TypeB);
            let searched_cycles = pricing.sequence_cycles(searched.ops());
            let authored_cycles = pricing.sequence_cycles(authored.ops());
            assert!(
                searched_cycles <= authored_cycles,
                "{kind}: searched {searched_cycles} > authored {authored_cycles}"
            );
            let slots = kind.slot_budget();
            let mut a = probe_slots(slots);
            let mut b = probe_slots(slots);
            run(authored.ops(), &mut a);
            run(searched.ops(), &mut b);
            for &o in Program::author(kind).outputs() {
                assert_eq!(a[o], b[o], "{kind}: output slot {o} diverged");
            }
        }
    }

    #[test]
    fn search_discovers_a_win_on_at_least_one_kind() {
        let cost = CostModel::paper().with_search(true);
        let pricing = SequencePricing::new(&cost, 160, Hierarchy::TypeB);
        let improved = OpKind::ALL.iter().any(|&kind| {
            let searched = compile(kind, 160, &cost);
            let authored = compile(kind, 160, &CostModel::paper());
            pricing.sequence_cycles(searched.ops()) < pricing.sequence_cycles(authored.ops())
        });
        assert!(improved, "beam search found no improvement on any kind");
    }

    #[test]
    fn search_is_deterministic_across_recompiles() {
        for width in [1, 4, 8] {
            let cost = CostModel::paper().with_search(true).with_beam_width(width);
            for kind in OpKind::ALL {
                let a = compile(kind, 160, &cost);
                let b = compile(kind, 160, &cost);
                assert_eq!(a.ops(), b.ops(), "{kind} w={width}");
                assert_eq!(a.fingerprint(), b.fingerprint(), "{kind} w={width}");
            }
        }
    }

    #[test]
    fn fingerprints_separate_kind_bits_and_step_stream() {
        let cost = CostModel::paper();
        let base = compile(OpKind::EccPdFast, 160, &cost);
        assert_ne!(
            base.fingerprint(),
            compile(OpKind::EccPd, 160, &cost).fingerprint(),
            "kind must be part of the fingerprint"
        );
        assert_ne!(
            base.fingerprint(),
            compile(OpKind::EccPdFast, 256, &cost).fingerprint(),
            "bits must be part of the fingerprint"
        );
        assert_ne!(
            base.fingerprint(),
            compile_unoptimized(OpKind::EccPdFast, 160, &cost).fingerprint(),
            "the scheduled and authored step streams must hash apart"
        );
    }

    #[test]
    fn pass_traces_record_the_scored_cycles() {
        let compiled = compile(OpKind::EccPdFast, 160, &CostModel::paper());
        let sched = compiled
            .passes()
            .iter()
            .find(|p| p.pass == "list-schedule")
            .expect("list-schedule trace");
        assert!(
            sched.cycles_after < sched.cycles_before,
            "scheduling the fast doubling must be a scored win: {} !< {}",
            sched.cycles_after,
            sched.cycles_before
        );
        // Passes that leave the program alone must also leave the score.
        let validate = &compiled.passes()[0];
        assert_eq!(validate.pass, "validate");
        assert_eq!(validate.cycles_before, validate.cycles_after);
        assert!(!validate.changed());
    }

    #[test]
    fn formula_db_registers_the_efd_variants_with_authored_counts() {
        let db = FormulaDb::builtin();
        let counts: Vec<(&str, usize, usize)> = db
            .formulas()
            .iter()
            .map(|f| (f.name(), f.modmuls(), f.modaddsubs()))
            .collect();
        assert_eq!(
            counts,
            [
                ("karatsuba-fp6", 18, 64),
                ("pa-general", 16, 13),
                ("madd", 13, 11),
                ("pd-general", 10, 15),
                ("dbl-2001-b", 8, 12),
            ]
        );
        assert_eq!(db.by_name("madd").unwrap().kind(), OpKind::EccPaMixed);
        assert!(db.by_name("madd").unwrap().requires_affine_addend());
        assert!(db.by_name("dbl-2001-b").unwrap().requires_a_minus_three());
        assert!(db.by_name("nonexistent").is_none());
    }

    #[test]
    fn formula_db_derives_the_variant_from_curve_and_cost() {
        let db = FormulaDb::builtin();
        let p256 = ecc::Curve::by_name("p256").unwrap(); // a = -3
        let k256 = ecc::Curve::by_name("secp256k1").unwrap(); // a = 0
        let paper = CostModel::paper();
        // Doubling: derived from curve structure, gated by the cost knob.
        assert_eq!(
            db.best_for(OpKind::EccPd, &p256, &paper).name(),
            "dbl-2001-b"
        );
        assert_eq!(
            db.best_for(OpKind::EccPd, &k256, &paper).name(),
            "pd-general"
        );
        assert_eq!(
            db.best_for(OpKind::EccPd, &p256, &paper.with_fast_pd(false))
                .name(),
            "pd-general"
        );
        // Addition: madd only when the caller asserts the affine addend.
        assert_eq!(
            db.best_for(OpKind::EccPaMixed, &p256, &paper).name(),
            "madd"
        );
        assert_eq!(
            db.best_for(OpKind::EccPaGeneral, &p256, &paper).name(),
            "pa-general"
        );
        assert_eq!(
            db.best_for(OpKind::EccPaMixed, &p256, &paper.with_mixed_pa(false))
                .name(),
            "pa-general"
        );
        // Fp6 is its own single-entry family.
        assert_eq!(
            db.best_for(OpKind::Fp6Mul, &p256, &paper).name(),
            "karatsuba-fp6"
        );
    }
}

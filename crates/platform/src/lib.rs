//! Simulator of the paper's MicroBlaze + multicore coprocessor platform.
//!
//! The DATE 2008 evaluation runs on a Xilinx Virtex-II Pro: a MicroBlaze
//! controller talks to a programmable multicore coprocessor through
//! memory-mapped registers and an interrupt line (Fig. 2), and the torus /
//! ECC / RSA operations are decomposed into modular multiplications (MM)
//! and modular additions/subtractions (MA/MS) executed by the cores. We
//! cannot synthesise the FPGA here, so this crate provides an
//! instruction-level, cycle-counting model of the same structure (see
//! DESIGN.md for the substitution argument):
//!
//! * [`isa`] — the load/store core ISA (7 paper instructions plus the
//!   dual-path adder's `AddC`/`Select` extension) with per-instruction
//!   hazard metadata;
//! * [`cost`] — the per-event cycle constants and the layered model
//!   selection: flat sequential baseline, pipelined stage schedule, and
//!   the speculative dual-path MA/MS adder
//!   ([`CostModel::dual_path_addsub`]);
//! * [`schedule`] — the event-driven pipelined datapath model: explicit
//!   stages (single-port operand fetch, depth-`k` MAC pipeline, dual
//!   compute pipes, writeback) with per-stage occupancy, selectable
//!   against the flat sequential baseline via [`ScheduleModel`];
//! * [`Coprocessor`] — the cores, the single-port data memory and the
//!   microcoded modular operations (multicore Montgomery multiplication
//!   with the carry-local schedule of Fig. 5, single-core modular
//!   addition/subtraction), all functionally verified against the host
//!   `bignum` implementation;
//! * [`programs`] — the level-2 composite sequences (`Fp6` multiplication,
//!   ECC point addition/doubling, the fast `a = -3` doubling) whose
//!   hazard-free neighbour density feeds the Type-B sequencer's operand
//!   prefetch;
//! * [`program`] — the typed program IR: authored [`program::Program`]s
//!   flow through an explicit [`program::PassPipeline`] (validate →
//!   dead-temp-elim → list-schedule → optional superoptimizing search,
//!   each pass leaving a [`program::PassTrace`]) into
//!   [`program::CompiledProgram`]s that a [`program::ProgramCache`] hands
//!   out once per `(OpKind, bits, cost-model)` key; the
//!   [`program::FormulaDb`] registry derives the cheapest applicable
//!   EFD formula per `(curve, cost model)`;
//! * [`Platform`] — the MicroBlaze-level view: Type-A and Type-B control
//!   hierarchies (Figs. 3 and 4), interrupt/accounting overheads, the
//!   single [`Platform::execute`] path every composite operation flows
//!   through, and the level-1 drivers for torus exponentiation, ECC
//!   point/scalar operations and RSA exponentiation that regenerate
//!   Tables 1–3.
//!
//! # Example
//!
//! ```
//! use platform::{CostModel, Hierarchy, Platform};
//!
//! let platform = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
//! let report = platform.montgomery_multiplication_report(170);
//! assert!(report.cycles > 0);
//! println!("170-bit MM: {} cycles", report.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coprocessor;
pub mod cost;
mod hierarchy;
pub mod isa;
mod platform;
pub mod program;
pub mod programs;
mod report;
pub mod schedule;

pub use coprocessor::{sample_modulus, Coprocessor, ModOpResult};
pub use cost::{CostModel, ScheduleModel};
pub use hierarchy::{Hierarchy, SequenceOp, SequencePricing, SequenceReport};
pub use platform::Platform;
#[allow(deprecated)]
pub use program::PassOutcome;
pub use program::{
    compile, compile_unoptimized, CompiledProgram, Formula, FormulaDb, OpKind, Pass, PassPipeline,
    PassTrace, Program, ProgramBuilder, ProgramCache, ProgramStats, Slot,
};
pub use programs::{
    count_modadds, count_modmuls, ecc_pa_sequence, ecc_pd_sequence, fp6_mul_sequence,
    independent_neighbour_pairs, SlotArena, SlotOverflow, ECC_SLOTS, FP6_MUL_SLOTS,
};
#[allow(deprecated)]
pub use programs::{ecc_pa_mixed_sequence, ecc_pd_fast_sequence};
pub use report::ExecutionReport;

//! The cycle-cost model of the platform.
//!
//! Table 1 of the paper fixes a handful of platform constants (interrupt
//! handling 184 cycles, 74 MHz clock); the per-instruction costs below are
//! the knobs of the simulator. [`CostModel::paper`] is calibrated so the
//! simulated modular-operation latencies land close to Table 1; the
//! benchmark harness also sweeps these knobs for the ablation studies.
//!
//! The model is layered — each layer is independently selectable so every
//! fidelity step can be ablated (see `cargo run -p bench --bin ablations`):
//!
//! 1. **Sequential** (via [`CostModel::paper_sequential`]) — every
//!    MAC/ALU/memory event is charged one after the other. This is the
//!    original flat model, kept bit-identical as the ablation baseline; it
//!    overestimates the 170-bit Montgomery multiplication at 311 cycles
//!    against Table 1's 193.
//! 2. **Pipelined** ([`ScheduleModel::Pipelined`]) — the datapath is
//!    modelled as explicit stages (operand fetch through the single-port
//!    memory, MAC issue into a depth-`k` pipeline, writeback) with
//!    per-stage occupancy, so independent events overlap exactly as the
//!    FPGA's RTL overlaps them. This puts the 170-bit MM at 198 cycles,
//!    within ~3% of Table 1.
//! 3. **Dual-path MA/MS** ([`CostModel::dual_path_addsub`]) — modular
//!    addition/subtraction run as a speculative constant-time adder: the
//!    plain result and the corrected result (`a+b` and `a+b-p`, or `a-b`
//!    and `a-b+p`) are computed in parallel on the two compute pipes and a
//!    1-cycle select commits the reduced one, instead of a data-dependent
//!    correction branch. This is what closes the Table 2 torus rows to
//!    within ±5% of the paper.
//! 4. **Mixed-coordinate ECC point addition**
//!    ([`CostModel::mixed_coordinate_pa`]) — the scalar-multiplication
//!    ladder's point addition uses the 13-multiplication mixed sequence
//!    (`Z2 = 1`, affine addend; the `madd` formula in
//!    [`crate::program::FormulaDb`]) instead of the general
//!    16-multiplication Jacobian addition. This is what closes Table 2's
//!    ECC PA rows. The general sequence stays available regardless of the
//!    knob (for non-normalized inputs and for the `pa_mixed_sweep`
//!    ablation); the knob selects which sequence the *ladder driver* runs.
//! 5. **Fast `a = -3` point doubling** ([`CostModel::fast_pd`], the last
//!    sequence-level layer) — the ladder's point doubling uses the
//!    shortened 8-multiplication `a = -3` sequence (the `dbl-2001-b`
//!    formula in [`crate::program::FormulaDb`]) instead of the general
//!    10-multiplication Jacobian doubling, on curves where `a = -3`
//!    holds. This is what closes Table 2's Type-A ECC PD row (the
//!    on-the-fly generated doubling); the general doubling stays
//!    available regardless of the knob (it is the InsRom1 image whose
//!    Type-B cycle count matches Table 2, and the fallback for curves
//!    with arbitrary `a`).
//! 6. **Superoptimizing sequence search**
//!    ([`CostModel::sequence_search`]) — the compile pipeline appends a
//!    beam-search pass over instruction reorderings and slot
//!    reallocations, scored by the same overlap accounting the engine
//!    charges, keeping the searched order only when strictly cheaper.
//!
//! [`CostModel::paper`] enables layers 2–5 together; layer 6 stays off in
//! the published calibration (the paper rows are gated bit-identical) and
//! is exercised by the `search_sweep` ablation.
//!
//! # Example
//!
//! The three calibrations are plain values — compare them directly:
//!
//! ```
//! use platform::{Coprocessor, CostModel};
//!
//! let dual = Coprocessor::new(CostModel::paper(), 4);
//! let corr = Coprocessor::new(CostModel::paper().with_dual_path(false), 4);
//! let flat = Coprocessor::new(CostModel::paper_sequential(), 4);
//!
//! // Speculative dual-path MA beats the conditional-correction model,
//! // which beats the flat sequential accounting.
//! assert!(dual.mod_add_cycles(170) <= corr.mod_add_cycles(170));
//! assert!(corr.mod_add_cycles(170) <= flat.mod_add_cycles(170));
//! ```

/// How per-event costs combine into operation latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScheduleModel {
    /// Every MAC/ALU/memory event is charged sequentially (the flat model
    /// used before the pipelined schedule existed; ablation baseline).
    Sequential,
    /// Event-driven schedule with per-stage occupancy: the MAC unit is a
    /// depth-`k` pipeline, the single-port memory serialises fetches, and
    /// independent events overlap (operand fetch of step `i+1` under the
    /// MAC tail of step `i`).
    #[default]
    Pipelined,
}

/// Per-instruction and per-event cycle costs of the simulated platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cycles for one multiply-accumulate (the FPGA's dedicated multiplier).
    pub mac_cycles: u64,
    /// Cycles for one ALU add/sub/move instruction.
    pub alu_cycles: u64,
    /// Cycles for one access to the single-port data memory.
    pub mem_cycles: u64,
    /// Cycles for transferring one word between cores (via the data memory).
    pub transfer_cycles: u64,
    /// Fixed per-modular-operation sequencing overhead inside the
    /// coprocessor (instruction fetch/dispatch by the decoder).
    pub dispatch_cycles: u64,
    /// Cycles for one MicroBlaze register-A access plus interrupt handling
    /// (paper: 184).
    pub interrupt_cycles: u64,
    /// Cycles for the MicroBlaze to issue one instruction to register A
    /// without waiting for an interrupt (Type-B composite dispatch).
    pub issue_cycles: u64,
    /// Clock frequency in MHz (paper: 74 MHz on the XC2VP30).
    pub clock_mhz: f64,
    /// Datapath word width in bits (the radix `2^w` of Algorithm 1).
    pub word_bits: usize,
    /// Depth of the MAC pipeline: a multiply-accumulate issued at cycle `t`
    /// retires at `t + mac_pipeline_depth`, and independent MACs issue
    /// back-to-back at one per cycle. Only consulted by the pipelined
    /// schedule; must be at least 1.
    pub mac_pipeline_depth: u64,
    /// Model modular addition/subtraction as a speculative dual-path
    /// constant-time adder: both candidate results (`a+b` / `a+b-p` for MA,
    /// `a-b` / `a-b+p` for MS) issue in parallel on the two compute pipes
    /// and a 1-cycle select commits the reduced one. With `false` the
    /// decoder dispatches the correction block sequentially after the
    /// primary pass (the pre-dual-path behaviour, kept for ablations).
    /// Only consulted by the pipelined schedule.
    pub dual_path_addsub: bool,
    /// Drive the scalar-multiplication ladder's point additions with the
    /// mixed-coordinate sequence (affine addend, 13 MM) instead of the
    /// general Jacobian addition (16 MM). The ladder always keeps its
    /// addend affine, so the substitution is exact; with `false` the
    /// ladder runs the general sequence (the pre-mixed behaviour, kept
    /// for ablations and as the fallback for non-normalized inputs).
    pub mixed_coordinate_pa: bool,
    /// Drive the scalar-multiplication ladder's point doublings with the
    /// shortened `a = -3` sequence (8 MM + 12 MA/MS) instead of the
    /// general Jacobian doubling (10 MM + 15 MA/MS) whenever the curve
    /// satisfies `a = -3`. With `false` — or on curves with arbitrary
    /// `a` — the ladder runs the general doubling (the InsRom1 image,
    /// kept for ablations and as the Table 2 Type-B PD calibration).
    pub fast_pd: bool,
    /// Run the superoptimizing search pass after list scheduling: a beam
    /// search over instruction reorderings and slot reallocations, scored
    /// by the same pipelined overlap accounting the engine charges, with
    /// the searched order kept only when it is strictly cheaper than the
    /// list-scheduled one. Off in [`CostModel::paper`] so the paper
    /// reproduction rows stay bit-identical; the `search_sweep` ablation
    /// turns it on to report discovered wins.
    pub sequence_search: bool,
    /// Beam width of the search pass: how many partial schedules survive
    /// each expansion step. Wider beams explore more reorderings at
    /// compile time; `SEARCH_BEAM_WIDTH` narrows it in CI smoke runs.
    pub search_beam_width: usize,
    /// Which schedule combines the per-event costs above.
    pub schedule: ScheduleModel,
}

impl CostModel {
    /// The calibration used to reproduce Tables 1–3 (pipelined schedule).
    pub fn paper() -> Self {
        CostModel {
            mac_cycles: 1,
            alu_cycles: 1,
            mem_cycles: 1,
            transfer_cycles: 2,
            dispatch_cycles: 6,
            interrupt_cycles: 184,
            issue_cycles: 10,
            clock_mhz: 74.0,
            word_bits: 16,
            mac_pipeline_depth: 2,
            dual_path_addsub: true,
            mixed_coordinate_pa: true,
            fast_pd: true,
            sequence_search: false,
            search_beam_width: 8,
            schedule: ScheduleModel::Pipelined,
        }
    }

    /// The flat sequential calibration (every event charged one after the
    /// other, no speculative adder). Kept as a selectable baseline for the
    /// ablation study; this was the only model before the pipelined
    /// schedule existed, and its cycle counts stay bit-identical.
    pub fn paper_sequential() -> Self {
        CostModel {
            schedule: ScheduleModel::Sequential,
            dual_path_addsub: false,
            mixed_coordinate_pa: false,
            fast_pd: false,
            ..CostModel::paper()
        }
    }

    /// Returns this model with the given schedule selected.
    pub fn with_schedule(self, schedule: ScheduleModel) -> Self {
        CostModel { schedule, ..self }
    }

    /// Returns this model with the speculative dual-path adder switched on
    /// or off (the conditional-correction model of the MA/MS blocks).
    pub fn with_dual_path(self, dual_path_addsub: bool) -> Self {
        CostModel {
            dual_path_addsub,
            ..self
        }
    }

    /// Returns `true` if modular addition/subtraction use the speculative
    /// dual-path adder (requires the pipelined schedule; the sequential
    /// baseline always charges the correction block).
    pub fn is_dual_path(&self) -> bool {
        self.dual_path_addsub && self.is_pipelined()
    }

    /// Returns this model with the ladder's point addition switched between
    /// the mixed-coordinate sequence (`true`) and the general Jacobian
    /// sequence (`false`, the ablation baseline).
    pub fn with_mixed_pa(self, mixed_coordinate_pa: bool) -> Self {
        CostModel {
            mixed_coordinate_pa,
            ..self
        }
    }

    /// Returns `true` if the scalar-multiplication ladder drives its point
    /// additions through the mixed-coordinate sequence. Unlike the
    /// dual-path knob this is a *sequence* choice, not a schedule choice,
    /// so it is honoured under both schedules.
    pub fn uses_mixed_pa(&self) -> bool {
        self.mixed_coordinate_pa
    }

    /// Returns this model with the ladder's point doubling switched
    /// between the shortened `a = -3` sequence (`true`) and the general
    /// Jacobian doubling (`false`, the ablation baseline).
    pub fn with_fast_pd(self, fast_pd: bool) -> Self {
        CostModel { fast_pd, ..self }
    }

    /// Returns `true` if the scalar-multiplication ladder drives its
    /// point doublings through the shortened `a = -3` sequence on
    /// eligible curves. Like the mixed-PA knob this is a *sequence*
    /// choice, honoured under both schedules.
    pub fn uses_fast_pd(&self) -> bool {
        self.fast_pd
    }

    /// Returns this model with the superoptimizing search pass switched
    /// on or off.
    pub fn with_search(self, sequence_search: bool) -> Self {
        CostModel {
            sequence_search,
            ..self
        }
    }

    /// Returns this model with the given search beam width.
    pub fn with_beam_width(self, search_beam_width: usize) -> Self {
        CostModel {
            search_beam_width,
            ..self
        }
    }

    /// Returns `true` if the compile pipeline runs the superoptimizing
    /// search pass. Like the dual-path adder this requires the pipelined
    /// schedule — the search is scored by the overlap credit, which the
    /// flat sequential model never grants, so under it there is nothing
    /// to search for.
    pub fn uses_search(&self) -> bool {
        self.sequence_search && self.is_pipelined()
    }

    /// Returns `true` if the pipelined schedule is selected.
    pub fn is_pipelined(&self) -> bool {
        self.schedule == ScheduleModel::Pipelined
    }

    /// A stable 64-bit fingerprint over every knob — the cost-model
    /// component of the program-cache key
    /// ([`crate::program::ProgramCache`]). Equal models always produce
    /// equal fingerprints; the hash is a hand-rolled FNV-1a fold over the
    /// raw knob values (no dependence on `std` hasher internals), so the
    /// value is stable across runs and toolchains.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100_0000_01b3)
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = eat(h, self.mac_cycles);
        h = eat(h, self.alu_cycles);
        h = eat(h, self.mem_cycles);
        h = eat(h, self.transfer_cycles);
        h = eat(h, self.dispatch_cycles);
        h = eat(h, self.interrupt_cycles);
        h = eat(h, self.issue_cycles);
        h = eat(h, self.clock_mhz.to_bits());
        h = eat(h, self.word_bits as u64);
        h = eat(h, self.mac_pipeline_depth);
        h = eat(h, self.dual_path_addsub as u64);
        h = eat(h, self.mixed_coordinate_pa as u64);
        h = eat(h, self.fast_pd as u64);
        h = eat(
            h,
            match self.schedule {
                ScheduleModel::Sequential => 0,
                ScheduleModel::Pipelined => 1,
            },
        );
        h = eat(h, self.sequence_search as u64);
        h = eat(h, self.search_beam_width as u64);
        h
    }

    /// Number of limbs `s = ceil(bits / w)` an operand of `bits` bits
    /// occupies on this datapath.
    pub fn limbs(&self, bits: usize) -> usize {
        bits.div_ceil(self.word_bits)
    }

    /// Converts a cycle count to milliseconds at the configured clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1e3)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = CostModel::paper();
        assert_eq!(c.interrupt_cycles, 184);
        assert_eq!(c.clock_mhz, 74.0);
        assert_eq!(c, CostModel::default());
        assert!(c.is_pipelined());
        assert!(c.mac_pipeline_depth >= 1);
    }

    #[test]
    fn sequential_baseline_differs_only_in_schedule_layers() {
        let seq = CostModel::paper_sequential();
        assert_eq!(seq.schedule, ScheduleModel::Sequential);
        assert!(!seq.is_pipelined());
        assert!(!seq.is_dual_path());
        assert!(!seq.uses_mixed_pa());
        assert!(!seq.uses_fast_pd());
        assert_eq!(
            seq.with_schedule(ScheduleModel::Pipelined)
                .with_dual_path(true)
                .with_mixed_pa(true)
                .with_fast_pd(true),
            CostModel::paper()
        );
    }

    #[test]
    fn fast_pd_is_a_sequence_choice_not_a_schedule_choice() {
        assert!(CostModel::paper().uses_fast_pd());
        assert!(!CostModel::paper().with_fast_pd(false).uses_fast_pd());
        // Like mixed PA, the knob survives a schedule switch: the fast
        // doubling is valid microcode under the sequential model too.
        assert!(CostModel::paper_sequential()
            .with_fast_pd(true)
            .uses_fast_pd());
    }

    #[test]
    fn fingerprints_separate_every_knob() {
        let base = CostModel::paper();
        assert_eq!(base.fingerprint(), CostModel::paper().fingerprint());
        let variants = [
            base.with_dual_path(false),
            base.with_mixed_pa(false),
            base.with_fast_pd(false),
            base.with_search(true),
            base.with_search(true).with_beam_width(4),
            base.with_schedule(ScheduleModel::Sequential),
            CostModel {
                mac_pipeline_depth: 4,
                ..base
            },
            CostModel {
                interrupt_cycles: 92,
                ..base
            },
            CostModel {
                clock_mhz: 100.0,
                ..base
            },
            CostModel::paper_sequential(),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(v.fingerprint(), base.fingerprint(), "variant {i}");
            // Stable across calls.
            assert_eq!(v.fingerprint(), v.fingerprint());
        }
        // All variants are pairwise distinct too.
        for i in 0..variants.len() {
            for j in i + 1..variants.len() {
                assert_ne!(
                    variants[i].fingerprint(),
                    variants[j].fingerprint(),
                    "{i} vs {j}"
                );
            }
        }
    }

    #[test]
    fn mixed_pa_is_a_sequence_choice_not_a_schedule_choice() {
        assert!(CostModel::paper().uses_mixed_pa());
        assert!(!CostModel::paper().with_mixed_pa(false).uses_mixed_pa());
        // Unlike dual-path, the knob survives a schedule switch: the mixed
        // sequence is valid microcode under the sequential model too.
        assert!(CostModel::paper_sequential()
            .with_mixed_pa(true)
            .uses_mixed_pa());
    }

    #[test]
    fn search_is_off_in_both_calibrations_and_requires_the_pipeline() {
        // The paper rows are gated bit-identical, so the published
        // calibration must never run the search pass.
        assert!(!CostModel::paper().uses_search());
        assert!(!CostModel::paper_sequential().uses_search());
        assert!(CostModel::paper().with_search(true).uses_search());
        // The search is scored by the pipelined overlap credit; under the
        // flat schedule the knob is inert, like dual-path.
        assert!(!CostModel::paper_sequential()
            .with_search(true)
            .uses_search());
        assert_eq!(CostModel::paper().search_beam_width, 8);
        assert_eq!(CostModel::paper().with_beam_width(3).search_beam_width, 3);
    }

    #[test]
    fn dual_path_requires_the_pipelined_schedule() {
        assert!(CostModel::paper().is_dual_path());
        assert!(!CostModel::paper().with_dual_path(false).is_dual_path());
        // The knob is inert under the sequential schedule: the flat model
        // has no pipes to speculate on.
        let seq_with_knob = CostModel::paper_sequential().with_dual_path(true);
        assert!(!seq_with_knob.is_dual_path());
    }

    #[test]
    fn limb_counts() {
        let c = CostModel::paper();
        assert_eq!(c.limbs(170), 11);
        assert_eq!(c.limbs(160), 10);
        assert_eq!(c.limbs(1024), 64);
        assert_eq!(c.limbs(1), 1);
    }

    #[test]
    fn time_conversion() {
        let c = CostModel::paper();
        // 74 000 cycles at 74 MHz = 1 ms.
        assert!((c.cycles_to_ms(74_000) - 1.0).abs() < 1e-9);
    }
}

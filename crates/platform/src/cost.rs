//! The cycle-cost model of the platform.
//!
//! Table 1 of the paper fixes a handful of platform constants (interrupt
//! handling 184 cycles, 74 MHz clock); the per-instruction costs below are
//! the knobs of the simulator. [`CostModel::paper`] is calibrated so the
//! simulated modular-operation latencies land close to Table 1; the
//! benchmark harness also sweeps these knobs for the ablation studies.
//!
//! Two schedule models are selectable (see [`ScheduleModel`]):
//!
//! * **Pipelined** (the default, used by [`CostModel::paper`]) — the
//!   datapath is modelled as explicit stages (operand fetch through the
//!   single-port memory, MAC issue into a depth-`k` pipeline, writeback)
//!   with per-stage occupancy, so independent events overlap exactly as the
//!   FPGA's RTL overlaps them. This calibration puts the 170-bit Montgomery
//!   multiplication at 198 cycles, within ~3% of Table 1's 193.
//! * **Sequential** (via [`CostModel::paper_sequential`]) — every
//!   MAC/ALU/memory event is charged one after the other. This is the
//!   original flat model, kept as the ablation baseline; it overestimates
//!   the 170-bit MM at 311 cycles.

/// How per-event costs combine into operation latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScheduleModel {
    /// Every MAC/ALU/memory event is charged sequentially (the flat model
    /// used before the pipelined schedule existed; ablation baseline).
    Sequential,
    /// Event-driven schedule with per-stage occupancy: the MAC unit is a
    /// depth-`k` pipeline, the single-port memory serialises fetches, and
    /// independent events overlap (operand fetch of step `i+1` under the
    /// MAC tail of step `i`).
    #[default]
    Pipelined,
}

/// Per-instruction and per-event cycle costs of the simulated platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cycles for one multiply-accumulate (the FPGA's dedicated multiplier).
    pub mac_cycles: u64,
    /// Cycles for one ALU add/sub/move instruction.
    pub alu_cycles: u64,
    /// Cycles for one access to the single-port data memory.
    pub mem_cycles: u64,
    /// Cycles for transferring one word between cores (via the data memory).
    pub transfer_cycles: u64,
    /// Fixed per-modular-operation sequencing overhead inside the
    /// coprocessor (instruction fetch/dispatch by the decoder).
    pub dispatch_cycles: u64,
    /// Cycles for one MicroBlaze register-A access plus interrupt handling
    /// (paper: 184).
    pub interrupt_cycles: u64,
    /// Cycles for the MicroBlaze to issue one instruction to register A
    /// without waiting for an interrupt (Type-B composite dispatch).
    pub issue_cycles: u64,
    /// Clock frequency in MHz (paper: 74 MHz on the XC2VP30).
    pub clock_mhz: f64,
    /// Datapath word width in bits (the radix `2^w` of Algorithm 1).
    pub word_bits: usize,
    /// Depth of the MAC pipeline: a multiply-accumulate issued at cycle `t`
    /// retires at `t + mac_pipeline_depth`, and independent MACs issue
    /// back-to-back at one per cycle. Only consulted by the pipelined
    /// schedule; must be at least 1.
    pub mac_pipeline_depth: u64,
    /// Which schedule combines the per-event costs above.
    pub schedule: ScheduleModel,
}

impl CostModel {
    /// The calibration used to reproduce Tables 1–3 (pipelined schedule).
    pub fn paper() -> Self {
        CostModel {
            mac_cycles: 1,
            alu_cycles: 1,
            mem_cycles: 1,
            transfer_cycles: 2,
            dispatch_cycles: 6,
            interrupt_cycles: 184,
            issue_cycles: 10,
            clock_mhz: 74.0,
            word_bits: 16,
            mac_pipeline_depth: 2,
            schedule: ScheduleModel::Pipelined,
        }
    }

    /// The flat sequential calibration (every event charged one after the
    /// other). Kept as a selectable baseline for the ablation study; this
    /// was the only model before the pipelined schedule existed.
    pub fn paper_sequential() -> Self {
        CostModel {
            schedule: ScheduleModel::Sequential,
            ..CostModel::paper()
        }
    }

    /// Returns this model with the given schedule selected.
    pub fn with_schedule(self, schedule: ScheduleModel) -> Self {
        CostModel { schedule, ..self }
    }

    /// Returns `true` if the pipelined schedule is selected.
    pub fn is_pipelined(&self) -> bool {
        self.schedule == ScheduleModel::Pipelined
    }

    /// Number of limbs `s = ceil(bits / w)` an operand of `bits` bits
    /// occupies on this datapath.
    pub fn limbs(&self, bits: usize) -> usize {
        bits.div_ceil(self.word_bits)
    }

    /// Converts a cycle count to milliseconds at the configured clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1e3)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = CostModel::paper();
        assert_eq!(c.interrupt_cycles, 184);
        assert_eq!(c.clock_mhz, 74.0);
        assert_eq!(c, CostModel::default());
        assert!(c.is_pipelined());
        assert!(c.mac_pipeline_depth >= 1);
    }

    #[test]
    fn sequential_baseline_differs_only_in_schedule() {
        let seq = CostModel::paper_sequential();
        assert_eq!(seq.schedule, ScheduleModel::Sequential);
        assert!(!seq.is_pipelined());
        assert_eq!(
            seq.with_schedule(ScheduleModel::Pipelined),
            CostModel::paper()
        );
    }

    #[test]
    fn limb_counts() {
        let c = CostModel::paper();
        assert_eq!(c.limbs(170), 11);
        assert_eq!(c.limbs(160), 10);
        assert_eq!(c.limbs(1024), 64);
        assert_eq!(c.limbs(1), 1);
    }

    #[test]
    fn time_conversion() {
        let c = CostModel::paper();
        // 74 000 cycles at 74 MHz = 1 ms.
        assert!((c.cycles_to_ms(74_000) - 1.0).abs() < 1e-9);
    }
}

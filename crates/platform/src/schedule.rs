//! Event-driven pipelined schedules for the coprocessor datapath.
//!
//! The real FPGA datapath is not a one-event-per-cycle machine: operand
//! fetches through the single-port data memory, MAC issues into a depth-`k`
//! multiplier pipeline and writebacks all occupy *different stages* and
//! overlap whenever no hazard forbids it. This module models exactly that,
//! in two forms:
//!
//! * [`schedule_program`] — an in-order scoreboard for straight-line
//!   [`Program`]s (used for the single-core modular addition/subtraction
//!   microcode). A memory pipe and up to two compute pipes each dispatch
//!   one instruction per cycle in program order; register RAW/WAR hazards,
//!   the accumulator drain and the serial carry/borrow chains couple them.
//!   When [`CostModel::dual_path_addsub`] is set, the speculative dual-path
//!   adder's second compute pipe opens up: `SubB`/`Select` issue there
//!   while `AddC` and everything else stay on the primary pipe, so the two
//!   candidate paths of a modular addition (`a+b` and `a+b-p`) run in
//!   parallel and only the single memory port bounds the operation.
//! * [`MontPipeline`] — a per-iteration stage-occupancy model for the
//!   multicore Montgomery multiplication of Algorithm 1/Fig. 5, tracking
//!   the single memory port, each core's issue slots and the
//!   `T`-computation dataflow (`z0 → T → z0`) across iterations.
//!
//! Both report the pure data-dependency critical path next to the
//! schedule, so tests can pin `critical path ≤ pipelined (≤ sequential)`.
//!
//! # Example
//!
//! Price a two-word speculative addition step by hand: the `AddC` chain
//! (primary path) and the `SubB` chain (speculative path) issue on
//! different pipes, so each word costs one issue slot per path and the
//! select commits one cycle later:
//!
//! ```
//! use platform::isa::{MicroOp, Program};
//! use platform::schedule::schedule_program;
//! use platform::CostModel;
//!
//! let mut p = Program::new();
//! for word in 0..2u8 {
//!     p.push(MicroOp::LoadImm { dst: 0, imm: 7 });   // x word
//!     p.push(MicroOp::LoadImm { dst: 1, imm: 9 });   // y word
//!     p.push(MicroOp::LoadImm { dst: 4, imm: 13 });  // modulus word
//!     p.push(MicroOp::AddC { dst: 2, a: 0, b: 1 });  // path A: x + y
//!     p.push(MicroOp::SubB { dst: 3, a: 2, b: 4 });  // path B: (x+y) - p
//!     p.push(MicroOp::Select { dst: 5, a: 2, b: 3 });
//!     p.push(MicroOp::Store { src: 5, addr: word as u16 });
//! }
//! let dual = schedule_program(&p, &CostModel::paper());
//! let single = schedule_program(&p, &CostModel::paper().with_dual_path(false));
//! assert!(dual.cycles <= single.cycles);
//! assert!(dual.cycles >= dual.critical_path);
//! ```

use crate::cost::CostModel;
use crate::isa::{MicroOp, Program, NUM_REGS};

/// Outcome of scheduling one straight-line program on one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramSchedule {
    /// Makespan of the pipelined schedule (no dispatch overhead included).
    pub cycles: u64,
    /// Longest pure data-dependency chain (no structural hazards): a lower
    /// bound no schedule of this program can beat.
    pub critical_path: u64,
    /// Cycles the single data-memory port is occupied (a second structural
    /// lower bound: the port serialises all loads and stores).
    pub mem_busy: u64,
    /// Instructions issued into the MAC pipeline.
    pub mac_issues: u64,
}

/// In-order multi-pipe scoreboard state for one core.
struct Scoreboard {
    /// Apply structural constraints (pipe issue rates, single memory port)?
    /// With `false` the scoreboard computes the pure dataflow critical path.
    structural: bool,
    /// Is the speculative dual-path adder's second compute pipe available?
    /// `SubB` and `Select` issue there; everything else (including the MAC
    /// and the accumulator) stays on the primary pipe, so MAC issue remains
    /// bounded at one per cycle either way.
    dual_pipes: bool,
    /// Next free cycle of the single data-memory port.
    mem_free: u64,
    /// Next issue slot of each compute pipe (one instruction per cycle).
    /// `issue_free[1]` is only used when `dual_pipes` is set.
    issue_free: [u64; 2],
    /// Cycle at which each register's value is available.
    reg_ready: [u64; NUM_REGS],
    /// Latest cycle at which each register was read (WAR guard).
    reg_last_read: [u64; NUM_REGS],
    /// Cycle at which every in-flight accumulator update has retired.
    acc_ready: u64,
    /// Barrier set by `AccOut`: later accumulator updates must see the
    /// shifted value.
    acc_barrier: u64,
    /// Completion of the latest borrow-chain instruction.
    borrow_ready: u64,
    /// Completion of the latest carry-chain instruction (`AddC`).
    carry_ready: u64,
    /// Makespan so far.
    finish: u64,
    /// Memory-port occupancy.
    mem_busy: u64,
    /// MAC pipeline issues.
    mac_issues: u64,
}

impl Scoreboard {
    fn new(structural: bool, dual_pipes: bool) -> Self {
        Scoreboard {
            structural,
            dual_pipes,
            mem_free: 0,
            issue_free: [0; 2],
            reg_ready: [0; NUM_REGS],
            reg_last_read: [0; NUM_REGS],
            acc_ready: 0,
            acc_barrier: 0,
            borrow_ready: 0,
            carry_ready: 0,
            finish: 0,
            mem_busy: 0,
            mac_issues: 0,
        }
    }

    /// Compute pipe this instruction issues on: the speculative path's
    /// chain (`SubB`) and the select mux live on the second pipe when the
    /// dual-path adder is modelled.
    fn pipe(&self, op: &MicroOp) -> usize {
        usize::from(self.dual_pipes && (op.uses_borrow() || op.is_select()))
    }

    /// Earliest cycle at which `op`'s operands are available.
    fn operands_ready(&self, op: &MicroOp) -> u64 {
        let mut t = 0;
        for src in op.src_regs().into_iter().flatten() {
            t = t.max(self.reg_ready[src as usize]);
        }
        if op.reads_acc() {
            t = t.max(self.acc_ready);
        }
        if op.writes_acc() && !op.reads_acc() {
            // MACs and accumulator adds pipeline onto in-flight updates but
            // must not overtake an accumulator shift.
            t = t.max(self.acc_barrier);
        }
        if op.uses_borrow() {
            t = t.max(self.borrow_ready);
        }
        if op.uses_carry() {
            t = t.max(self.carry_ready);
        }
        if let Some(dst) = op.dst_reg() {
            // WAR: do not clobber a value an earlier instruction still needs;
            // WAW: retire writes in order.
            t = t
                .max(self.reg_last_read[dst as usize])
                .max(self.reg_ready[dst as usize]);
        }
        t
    }

    fn issue(&mut self, op: &MicroOp, cost: &CostModel) {
        let ready = self.operands_ready(op);
        let pipe = self.pipe(op);
        let start = if self.structural {
            if op.uses_memory() {
                ready.max(self.mem_free)
            } else {
                ready.max(self.issue_free[pipe])
            }
        } else {
            ready
        };
        let latency = if op.is_mac() {
            cost.mac_cycles.max(cost.mac_pipeline_depth)
        } else {
            op.cycles(cost)
        };
        let done = start + latency;

        if op.uses_memory() {
            self.mem_free = start + cost.mem_cycles;
            self.mem_busy += cost.mem_cycles;
        } else {
            // One issue slot per cycle on the chosen compute pipe.
            self.issue_free[pipe] = start + 1;
        }
        for src in op.src_regs().into_iter().flatten() {
            let slot = &mut self.reg_last_read[src as usize];
            *slot = (*slot).max(start);
        }
        if let Some(dst) = op.dst_reg() {
            self.reg_ready[dst as usize] = done;
        }
        if op.writes_acc() {
            self.acc_ready = self.acc_ready.max(done);
        }
        if op.reads_acc() {
            // The shift retires with the instruction; later updates see it.
            self.acc_barrier = done;
            self.acc_ready = done;
        }
        if op.uses_borrow() {
            self.borrow_ready = done;
        }
        if op.uses_carry() {
            self.carry_ready = done;
        }
        if op.is_mac() {
            self.mac_issues += 1;
        }
        self.finish = self.finish.max(done);
    }
}

/// Schedules a straight-line program on one core under the pipelined stage
/// model, returning the makespan together with the data-dependency critical
/// path and the memory-port occupancy. The second compute pipe (the
/// speculative path of the dual-path adder) participates exactly when
/// [`CostModel::is_dual_path`] holds.
pub fn schedule_program(program: &Program, cost: &CostModel) -> ProgramSchedule {
    let mut pipelined = Scoreboard::new(true, cost.is_dual_path());
    let mut dataflow = Scoreboard::new(false, cost.is_dual_path());
    for op in program.ops() {
        pipelined.issue(op, cost);
        dataflow.issue(op, cost);
    }
    ProgramSchedule {
        cycles: pipelined.finish,
        critical_path: dataflow.finish,
        mem_busy: pipelined.mem_busy,
        mac_issues: pipelined.mac_issues,
    }
}

/// Issue slots one limb of the Montgomery inner loop occupies on its core:
/// two MACs (`x·yi`, `p·T`), the running-sum accumulate and the word
/// writeback (`AccOut`).
pub(crate) fn limb_issue_slots(cost: &CostModel) -> u64 {
    2 * cost.mac_cycles + 2 * cost.alu_cycles
}

/// Stage-occupancy schedule of the multicore Montgomery multiplication.
///
/// Each of the `s` outer iterations of Algorithm 1 flows through three
/// stages, and the model tracks when each resource frees up rather than
/// summing the stage costs:
///
/// 1. **operand fetch** — `yi` streams through the single-port data memory,
///    which the inter-core boundary-word transfers also occupy;
/// 2. **`T` computation** — two *dependent* multiplies on core 0
///    (`u = z0 + x0·yi`, `T = u·p' mod r`), each paying the full MAC
///    pipeline latency because of the dependency;
/// 3. **limb accumulation** — every core issues its limbs back-to-back
///    into the MAC pipeline (`limb_issue_slots` per limb); the pending
///    inter-iteration carry injects in the writeback shadow of the top
///    limb.
///
/// The dataflow recurrence chaining iterations is `z0[i] → T[i+1]`: core 0
/// produces the next frame's `z0` after its second limb, so iteration
/// `i+1`'s `T` overlaps the MAC tail of iteration `i` on all other cores —
/// exactly the overlap the flat sequential model cannot express.
#[derive(Debug, Clone)]
pub struct MontPipeline {
    /// Next free cycle of the single data-memory port.
    mem_free: u64,
    /// Next free issue slot per core.
    core_free: Vec<u64>,
    /// Cycle at which the next iteration's `z0` input is available.
    z0_ready: u64,
}

impl MontPipeline {
    /// Creates the schedule state for `cores` active cores.
    pub fn new(cores: usize) -> Self {
        MontPipeline {
            mem_free: 0,
            core_free: vec![0; cores],
            z0_ready: 0,
        }
    }

    /// Advances the schedule by one outer iteration; `core_limbs[j]` is the
    /// number of limbs core `j` owns (core 0 first, largest share first).
    pub fn iteration(&mut self, cost: &CostModel, core_limbs: &[usize]) {
        let slots = limb_issue_slots(cost);
        let t_latency = 2 * cost.mac_pipeline_depth.max(cost.mac_cycles);

        // Stage 1: yi streams through the memory port.
        let y_ready = self.mem_free + cost.mem_cycles;
        self.mem_free = y_ready;

        // Stage 2: T on core 0 (two dependent MACs through the pipeline).
        let t_start = self.z0_ready.max(y_ready).max(self.core_free[0]);
        let t_ready = t_start + t_latency;
        self.core_free[0] = t_start + 2 * cost.mac_cycles;

        // Stage 3: per-core limb accumulation, broadcast-started at t_ready.
        for (j, &limbs) in core_limbs.iter().enumerate() {
            let start = t_ready.max(self.core_free[j]);
            self.core_free[j] = start + slots * limbs as u64;
            if j == 0 {
                // z0 of the next frame emerges after core 0's second limb
                // (its first limb's low word is the dropped multiple of r).
                self.z0_ready = start + slots * limbs.min(2) as u64;
            } else {
                // The boundary word moves to core j-1 through the memory
                // port once core j's first limb retires.
                let boundary_ready = start + slots;
                self.mem_free = self.mem_free.max(boundary_ready) + cost.transfer_cycles;
            }
        }
    }

    /// Cycle at which the last in-flight event of the schedule retires.
    pub fn finish(&self) -> u64 {
        self.core_free
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.mem_free)
    }
}

/// Pure data-dependency lower bound for an `s`-limb Montgomery
/// multiplication: no schedule can beat the `z0 → T → z0` recurrence plus
/// the serial borrow chain of the final subtraction.
pub fn mont_critical_path_cycles(cost: &CostModel, s: usize) -> u64 {
    let slots = limb_issue_slots(cost);
    let t_latency = 2 * cost.mac_pipeline_depth.max(cost.mac_cycles);
    let per_iteration = t_latency + slots * s.min(2) as u64;
    s as u64 * per_iteration + s as u64 * cost.alu_cycles + cost.dispatch_cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::paper()
    }

    #[test]
    fn single_port_memory_serialises_independent_loads() {
        // Two loads with no data dependency still cannot share the port.
        let mut p = Program::new();
        p.push(MicroOp::Load { dst: 0, addr: 0 });
        p.push(MicroOp::Load { dst: 1, addr: 1 });
        let s = schedule_program(&p, &cost());
        assert_eq!(s.mem_busy, 2 * cost().mem_cycles);
        assert!(
            s.cycles >= 2 * cost().mem_cycles,
            "single-port hazard: {} < {}",
            s.cycles,
            2 * cost().mem_cycles
        );
        // Without the structural hazard they would finish together.
        assert_eq!(s.critical_path, cost().mem_cycles);
    }

    #[test]
    fn store_waits_for_its_producer() {
        let mut p = Program::new();
        p.push(MicroOp::Load { dst: 0, addr: 0 });
        p.push(MicroOp::AccAdd { a: 0 });
        p.push(MicroOp::AccOut { dst: 1 });
        p.push(MicroOp::Store { src: 1, addr: 1 });
        let s = schedule_program(&p, &cost());
        // load -> acc add -> acc out -> store is a serial chain.
        let chain = cost().mem_cycles + 2 * cost().alu_cycles + cost().mem_cycles;
        assert_eq!(s.critical_path, chain);
        assert!(s.cycles >= chain);
    }

    #[test]
    fn memory_traffic_overlaps_compute() {
        // A load for the *next* word can stream in under ALU work on the
        // current word: the makespan beats the sequential sum.
        let mut p = Program::new();
        p.push(MicroOp::Load { dst: 0, addr: 0 });
        p.push(MicroOp::AccAdd { a: 0 });
        p.push(MicroOp::Load { dst: 1, addr: 1 });
        p.push(MicroOp::AccAdd { a: 1 });
        p.push(MicroOp::AccOut { dst: 2 });
        p.push(MicroOp::Store { src: 2, addr: 2 });
        let c = cost();
        let s = schedule_program(&p, &c);
        assert!(
            s.cycles < p.cycles(&c),
            "pipelined {} should beat sequential {}",
            s.cycles,
            p.cycles(&c)
        );
        assert!(s.cycles >= s.critical_path);
    }

    #[test]
    fn war_hazard_keeps_reload_ordered() {
        // Reloading r0 must not clobber it before the AccAdd has read it.
        let mut p = Program::new();
        p.push(MicroOp::Load { dst: 0, addr: 0 });
        p.push(MicroOp::AccAdd { a: 0 });
        p.push(MicroOp::Load { dst: 0, addr: 1 });
        p.push(MicroOp::AccAdd { a: 0 });
        p.push(MicroOp::AccOut { dst: 1 });
        let c = cost();
        let s = schedule_program(&p, &c);
        // The second load may not complete before the first AccAdd issues:
        // the accumulate chain is 2 adds + the drain-out.
        assert!(s.cycles >= 3 * c.alu_cycles + c.mem_cycles);
    }

    #[test]
    fn borrow_chain_is_serial() {
        let mut p = Program::new();
        for i in 0..4u8 {
            p.push(MicroOp::SubB {
                dst: 8 + i,
                a: i,
                b: i,
            });
        }
        let c = cost();
        let s = schedule_program(&p, &c);
        assert_eq!(s.critical_path, 4 * c.alu_cycles);
        assert!(s.cycles >= 4 * c.alu_cycles);
    }

    #[test]
    fn mac_pipeline_issues_back_to_back_but_drains_before_accout() {
        let mut p = Program::new();
        p.push(MicroOp::LoadImm { dst: 0, imm: 3 });
        for _ in 0..4 {
            p.push(MicroOp::MulAcc { a: 0, b: 0 });
        }
        p.push(MicroOp::AccOut { dst: 1 });
        let c = cost();
        let s = schedule_program(&p, &c);
        assert_eq!(s.mac_issues, 4);
        // Four independent MACs issue in 4 consecutive slots; the AccOut
        // waits for the last one to retire through the depth-k pipeline.
        let issue_done = c.alu_cycles + 4;
        let drain = c.mac_pipeline_depth.max(c.mac_cycles) - 1;
        assert_eq!(s.cycles, issue_done + drain + c.alu_cycles);
    }

    #[test]
    fn mont_pipeline_matches_hand_schedule() {
        // 4 limbs on 2 cores, paper constants: steady-state iteration
        // advance is the core-0 occupancy (T issue + its limbs).
        let c = cost();
        let mut pipe = MontPipeline::new(2);
        for _ in 0..4 {
            pipe.iteration(&c, &[2, 2]);
        }
        let seq_per_iter = (2 * c.mac_cycles + 2 * c.alu_cycles + c.mem_cycles)
            + (limb_issue_slots(&c) * 2 + c.alu_cycles)
            + c.transfer_cycles;
        assert!(pipe.finish() < 4 * seq_per_iter);
        assert!(pipe.finish() >= 4 * (2 * c.mac_pipeline_depth + 2 * limb_issue_slots(&c)));
    }

    #[test]
    fn mont_critical_path_scales_linearly() {
        let c = cost();
        let cp8 = mont_critical_path_cycles(&c, 8);
        let cp16 = mont_critical_path_cycles(&c, 16);
        assert!(cp16 > cp8);
        assert!(cp16 - c.dispatch_cycles <= 2 * (cp8 - c.dispatch_cycles) + 1);
    }
}

//! The quadratic extension `Fp2 = Fp[w]/(w^2 + w + 1)`.
//!
//! For the CEILIDH primes (`p ≡ 2, 5 mod 9`, hence `p ≡ 2 mod 3`) the
//! polynomial `w^2 + w + 1` is irreducible and `w` is a primitive cube root
//! of unity. `Fp2` is the quadratic subfield of `Fp6`; the torus `T6` is
//! exactly the set of `Fp6` elements whose norms to both `Fp2` and `Fp3`
//! are 1. `Fp2` is also the field XTR (the system CEILIDH is compared to in
//! the literature) transmits its traces in.

use std::fmt;

use rand::Rng;

use crate::error::FieldError;
use crate::fp::{FpContext, FpElement};

/// Context for arithmetic in `Fp2 = Fp[w]/(w^2 + w + 1)`.
#[derive(Clone, Debug)]
pub struct Fp2Context {
    fp: FpContext,
}

/// An element `c0 + c1·w` of `Fp2`.
#[derive(Clone, PartialEq, Eq)]
pub struct Fp2Element {
    c0: FpElement,
    c1: FpElement,
}

impl fmt::Debug for Fp2Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp2({:?} + {:?}·w)", self.c0, self.c1)
    }
}

impl Fp2Element {
    /// The constant coefficient.
    pub fn c0(&self) -> &FpElement {
        &self.c0
    }

    /// The coefficient of `w`.
    pub fn c1(&self) -> &FpElement {
        &self.c1
    }

    /// Returns `true` if this is the zero element.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }
}

impl Fp2Context {
    /// Creates the quadratic extension over `fp`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::UnsupportedCongruence`] unless `p ≡ 2 (mod 3)`,
    /// which is what makes `w^2 + w + 1` irreducible.
    pub fn new(fp: FpContext) -> Result<Self, FieldError> {
        let r = fp.modulus_mod(3);
        if r != 2 {
            return Err(FieldError::UnsupportedCongruence {
                modulus: 3,
                expected: &[2],
                found: r,
            });
        }
        Ok(Fp2Context { fp })
    }

    /// The underlying prime-field context.
    pub fn fp(&self) -> &FpContext {
        &self.fp
    }

    /// The additive identity.
    pub fn zero(&self) -> Fp2Element {
        self.from_coeffs(self.fp.zero(), self.fp.zero())
    }

    /// The multiplicative identity.
    pub fn one(&self) -> Fp2Element {
        self.from_coeffs(self.fp.one(), self.fp.zero())
    }

    /// Builds an element from its coefficients `c0 + c1·w`.
    pub fn from_coeffs(&self, c0: FpElement, c1: FpElement) -> Fp2Element {
        Fp2Element { c0, c1 }
    }

    /// Builds an element from small integers.
    pub fn from_u64_coeffs(&self, c0: u64, c1: u64) -> Fp2Element {
        self.from_coeffs(self.fp.from_u64(c0), self.fp.from_u64(c1))
    }

    /// Uniformly random element.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Fp2Element {
        self.from_coeffs(self.fp.random(rng), self.fp.random(rng))
    }

    /// Addition.
    pub fn add(&self, a: &Fp2Element, b: &Fp2Element) -> Fp2Element {
        self.from_coeffs(self.fp.add(&a.c0, &b.c0), self.fp.add(&a.c1, &b.c1))
    }

    /// Subtraction.
    pub fn sub(&self, a: &Fp2Element, b: &Fp2Element) -> Fp2Element {
        self.from_coeffs(self.fp.sub(&a.c0, &b.c0), self.fp.sub(&a.c1, &b.c1))
    }

    /// Negation.
    pub fn neg(&self, a: &Fp2Element) -> Fp2Element {
        self.from_coeffs(self.fp.neg(&a.c0), self.fp.neg(&a.c1))
    }

    /// Multiplication using the Karatsuba 3M formula and the reduction
    /// `w^2 = -w - 1`.
    pub fn mul(&self, a: &Fp2Element, b: &Fp2Element) -> Fp2Element {
        let fp = &self.fp;
        let v0 = fp.mul(&a.c0, &b.c0);
        let v1 = fp.mul(&a.c1, &b.c1);
        // (a0 + a1)(b0 + b1) = v0 + v1 + (a0b1 + a1b0)
        let cross = fp.sub(
            &fp.sub(&fp.mul(&fp.add(&a.c0, &a.c1), &fp.add(&b.c0, &b.c1)), &v0),
            &v1,
        );
        // w^2 = -w - 1: result = (v0 - v1) + (cross - v1) w
        self.from_coeffs(fp.sub(&v0, &v1), fp.sub(&cross, &v1))
    }

    /// Squaring (delegates to [`mul`](Self::mul)).
    pub fn square(&self, a: &Fp2Element) -> Fp2Element {
        self.mul(a, a)
    }

    /// The Frobenius map `a ↦ a^p`, i.e. conjugation `w ↦ w^2 = -1 - w`.
    pub fn frobenius(&self, a: &Fp2Element) -> Fp2Element {
        let fp = &self.fp;
        self.from_coeffs(fp.sub(&a.c0, &a.c1), fp.neg(&a.c1))
    }

    /// The norm `N(a) = a · a^p ∈ Fp`, equal to `c0² - c0·c1 + c1²`.
    pub fn norm(&self, a: &Fp2Element) -> FpElement {
        let fp = &self.fp;
        let t = fp.mul(&a.c0, &a.c1);
        fp.add(&fp.sub(&fp.square(&a.c0), &t), &fp.square(&a.c1))
    }

    /// Inversion via the norm: `a^{-1} = a^p / N(a)`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::DivisionByZero`] for the zero element.
    pub fn inv(&self, a: &Fp2Element) -> Result<Fp2Element, FieldError> {
        if a.is_zero() {
            return Err(FieldError::DivisionByZero);
        }
        let n = self.norm(a);
        let n_inv = self.fp.inv(&n).ok_or(FieldError::DivisionByZero)?;
        let conj = self.frobenius(a);
        Ok(self.from_coeffs(self.fp.mul(&conj.c0, &n_inv), self.fp.mul(&conj.c1, &n_inv)))
    }

    /// Exponentiation by square-and-multiply.
    pub fn exp(&self, base: &Fp2Element, exp: &bignum::BigUint) -> Fp2Element {
        let mut acc = self.one();
        for i in (0..exp.bit_len()).rev() {
            acc = self.square(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bignum::BigUint;
    use rand::SeedableRng;

    fn ctx() -> Fp2Context {
        // 101 ≡ 2 (mod 3) and ≡ 2 (mod 9)
        Fp2Context::new(FpContext::new(&BigUint::from(101u64)).unwrap()).unwrap()
    }

    #[test]
    fn rejects_wrong_congruence() {
        // 97 ≡ 1 (mod 3)
        let fp = FpContext::new(&BigUint::from(97u64)).unwrap();
        assert!(matches!(
            Fp2Context::new(fp),
            Err(FieldError::UnsupportedCongruence { modulus: 3, .. })
        ));
    }

    #[test]
    fn ring_axioms_on_random_elements() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let a = f.random(&mut rng);
            let b = f.random(&mut rng);
            let c = f.random(&mut rng);
            assert_eq!(f.add(&a, &b), f.add(&b, &a));
            assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
            assert_eq!(
                f.mul(&a, &f.add(&b, &c)),
                f.add(&f.mul(&a, &b), &f.mul(&a, &c))
            );
            assert_eq!(f.mul(&a, &f.one()), a);
            assert_eq!(f.add(&a, &f.zero()), a);
            assert_eq!(f.add(&a, &f.neg(&a)), f.zero());
            assert_eq!(f.sub(&a, &b), f.add(&a, &f.neg(&b)));
        }
    }

    #[test]
    fn w_is_a_cube_root_of_unity() {
        let f = ctx();
        let w = f.from_u64_coeffs(0, 1);
        let w3 = f.mul(&f.mul(&w, &w), &w);
        assert_eq!(w3, f.one());
        assert_ne!(f.mul(&w, &w), f.one());
    }

    #[test]
    fn inversion_roundtrip() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let a = f.random(&mut rng);
            if a.is_zero() {
                continue;
            }
            let inv = f.inv(&a).unwrap();
            assert_eq!(f.mul(&a, &inv), f.one());
        }
        assert_eq!(f.inv(&f.zero()).unwrap_err(), FieldError::DivisionByZero);
    }

    #[test]
    fn frobenius_is_field_automorphism_of_order_two() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = f.random(&mut rng);
        let b = f.random(&mut rng);
        assert_eq!(
            f.frobenius(&f.mul(&a, &b)),
            f.mul(&f.frobenius(&a), &f.frobenius(&b))
        );
        assert_eq!(f.frobenius(&f.frobenius(&a)), a);
        // Frobenius agrees with exponentiation by p.
        assert_eq!(f.frobenius(&a), f.exp(&a, &BigUint::from(101u64)));
    }

    #[test]
    fn norm_is_multiplicative_and_in_fp() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let a = f.random(&mut rng);
        let b = f.random(&mut rng);
        let na = f.norm(&a);
        let nb = f.norm(&b);
        let nab = f.norm(&f.mul(&a, &b));
        assert_eq!(nab, f.fp().mul(&na, &nb));
    }

    #[test]
    fn group_order_is_p_squared_minus_one() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let order = BigUint::from(101u64 * 101 - 1);
        for _ in 0..5 {
            let a = f.random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(f.exp(&a, &order), f.one());
        }
    }
}

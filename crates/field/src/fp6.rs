//! The sextic extension in representation F1: `Fp6 = Fp[z]/(z^6 + z^3 + 1)`.
//!
//! This is the representation the paper performs every torus computation in
//! (Section 2.2): `z` is a primitive 9th root of unity, `p ≡ 2 or 5 (mod 9)`
//! makes the 9th cyclotomic polynomial `z^6 + z^3 + 1` irreducible, and one
//! multiplication costs 18 base-field multiplications plus roughly 60
//! additions/subtractions — the figure that drives the Type-A/Type-B cycle
//! analysis of the evaluation.

use std::fmt;

use bignum::BigUint;
use rand::Rng;

use crate::error::FieldError;
use crate::fp::{FpContext, FpElement};
use crate::fp3::karatsuba3;

/// Context for arithmetic in `Fp6 = Fp[z]/(z^6 + z^3 + 1)` (representation F1).
#[derive(Clone)]
pub struct Fp6Context {
    fp: FpContext,
    p_mod_9: u32,
}

impl fmt::Debug for Fp6Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Fp6Context over {:?} (p ≡ {} mod 9)",
            self.fp, self.p_mod_9
        )
    }
}

/// An element `Σ c_i z^i` of `Fp6` in the basis `{1, z, z², z³, z⁴, z⁵}`.
#[derive(Clone, PartialEq, Eq)]
pub struct Fp6Element {
    c: [FpElement; 6],
}

impl fmt::Debug for Fp6Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp6{:?}", self.c)
    }
}

impl Fp6Element {
    /// The six coefficients in the basis `{1, z, …, z⁵}`.
    pub fn coeffs(&self) -> &[FpElement; 6] {
        &self.c
    }

    /// Returns `true` if this is the zero element.
    pub fn is_zero(&self) -> bool {
        self.c.iter().all(FpElement::is_zero)
    }
}

impl Fp6Context {
    /// Creates the sextic extension over `fp`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::UnsupportedCongruence`] unless
    /// `p ≡ 2 or 5 (mod 9)`, which is required for `z^6 + z^3 + 1` to be
    /// irreducible over `Fp`.
    pub fn new(fp: FpContext) -> Result<Self, FieldError> {
        let r = fp.modulus_mod(9);
        if r != 2 && r != 5 {
            return Err(FieldError::UnsupportedCongruence {
                modulus: 9,
                expected: &[2, 5],
                found: r,
            });
        }
        Ok(Fp6Context { fp, p_mod_9: r })
    }

    /// The underlying prime-field context.
    pub fn fp(&self) -> &FpContext {
        &self.fp
    }

    /// The residue of the characteristic modulo 9 (2 or 5).
    pub fn p_mod_9(&self) -> u32 {
        self.p_mod_9
    }

    /// The additive identity.
    pub fn zero(&self) -> Fp6Element {
        self.from_coeffs(std::array::from_fn(|_| self.fp.zero()))
    }

    /// The multiplicative identity.
    pub fn one(&self) -> Fp6Element {
        let mut c: [FpElement; 6] = std::array::from_fn(|_| self.fp.zero());
        c[0] = self.fp.one();
        self.from_coeffs(c)
    }

    /// The generator `z` (a primitive 9th root of unity).
    pub fn gen_z(&self) -> Fp6Element {
        let mut c: [FpElement; 6] = std::array::from_fn(|_| self.fp.zero());
        c[1] = self.fp.one();
        self.from_coeffs(c)
    }

    /// The element `x = z + z^{-1} = z - z² - z⁵`, generating the `Fp3`
    /// subfield (a root of `x³ - 3x + 1`).
    pub fn zeta_plus_inverse(&self) -> Fp6Element {
        let fp = &self.fp;
        self.from_coeffs([
            fp.zero(),
            fp.one(),
            fp.from_i64(-1),
            fp.zero(),
            fp.zero(),
            fp.from_i64(-1),
        ])
    }

    /// The element `γ = z - z^{-1} = z + z² + z⁵`, which is "purely
    /// imaginary" for the quadratic extension `Fp6 / Fp3`
    /// (`γ^{p³} = -γ`); used by the torus compression map.
    pub fn zeta_minus_inverse(&self) -> Fp6Element {
        let fp = &self.fp;
        self.from_coeffs([
            fp.zero(),
            fp.one(),
            fp.one(),
            fp.zero(),
            fp.zero(),
            fp.one(),
        ])
    }

    /// Builds an element from its six coefficients.
    pub fn from_coeffs(&self, c: [FpElement; 6]) -> Fp6Element {
        Fp6Element { c }
    }

    /// Builds an element from small integer coefficients.
    pub fn from_u64_coeffs(&self, c: [u64; 6]) -> Fp6Element {
        self.from_coeffs(std::array::from_fn(|i| self.fp.from_u64(c[i])))
    }

    /// Embeds a base-field element as a constant polynomial.
    pub fn from_fp(&self, v: FpElement) -> Fp6Element {
        let mut c: [FpElement; 6] = std::array::from_fn(|_| self.fp.zero());
        c[0] = v;
        self.from_coeffs(c)
    }

    /// Uniformly random element.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Fp6Element {
        self.from_coeffs(std::array::from_fn(|_| self.fp.random(rng)))
    }

    /// Addition (6 base-field additions, as in Section 2.2.1).
    pub fn add(&self, a: &Fp6Element, b: &Fp6Element) -> Fp6Element {
        self.from_coeffs(std::array::from_fn(|i| self.fp.add(&a.c[i], &b.c[i])))
    }

    /// Subtraction.
    pub fn sub(&self, a: &Fp6Element, b: &Fp6Element) -> Fp6Element {
        self.from_coeffs(std::array::from_fn(|i| self.fp.sub(&a.c[i], &b.c[i])))
    }

    /// Negation.
    pub fn neg(&self, a: &Fp6Element) -> Fp6Element {
        self.from_coeffs(std::array::from_fn(|i| self.fp.neg(&a.c[i])))
    }

    /// Multiplication by a base-field scalar (6 multiplications).
    pub fn scalar_mul(&self, a: &Fp6Element, s: &FpElement) -> Fp6Element {
        self.from_coeffs(std::array::from_fn(|i| self.fp.mul(&a.c[i], s)))
    }

    /// Multiplication with the paper's 18M Karatsuba schedule
    /// (Section 2.2.2) followed by reduction modulo `z^6 + z^3 + 1`.
    ///
    /// Writing `A = A0 + A1·z³` and `B = B0 + B1·z³` with degree-2 halves,
    /// the three half-products `C0 = A0·B0`, `C1 = A1·B1` and
    /// `C2 = (A0-A1)(B0-B1)` each cost 6M, for 18M total.
    pub fn mul(&self, a: &Fp6Element, b: &Fp6Element) -> Fp6Element {
        let fp = &self.fp;
        let a0: [FpElement; 3] = [a.c[0].clone(), a.c[1].clone(), a.c[2].clone()];
        let a1: [FpElement; 3] = [a.c[3].clone(), a.c[4].clone(), a.c[5].clone()];
        let b0: [FpElement; 3] = [b.c[0].clone(), b.c[1].clone(), b.c[2].clone()];
        let b1: [FpElement; 3] = [b.c[3].clone(), b.c[4].clone(), b.c[5].clone()];

        let c0 = karatsuba3(fp, &a0, &b0);
        let c1 = karatsuba3(fp, &a1, &b1);
        let a_diff: [FpElement; 3] = std::array::from_fn(|i| fp.sub(&a0[i], &a1[i]));
        let b_diff: [FpElement; 3] = std::array::from_fn(|i| fp.sub(&b0[i], &b1[i]));
        let c2 = karatsuba3(fp, &a_diff, &b_diff);

        // A·B = C0 + (C0 + C1 - C2)·z³ + C1·z⁶, degree ≤ 10 before reduction.
        // The mid half-product overlaps C0 at z³/z⁴ and C1 at z⁶/z⁷ only, so
        // the remaining coefficients are plain copies (no additions), keeping
        // the addition count in line with the paper's ~60A figure.
        let mid: [FpElement; 5] = std::array::from_fn(|k| fp.sub(&fp.add(&c0[k], &c1[k]), &c2[k]));
        let d: [FpElement; 11] = [
            c0[0].clone(),
            c0[1].clone(),
            c0[2].clone(),
            fp.add(&c0[3], &mid[0]),
            fp.add(&c0[4], &mid[1]),
            mid[2].clone(),
            fp.add(&mid[3], &c1[0]),
            fp.add(&mid[4], &c1[1]),
            c1[2].clone(),
            c1[3].clone(),
            c1[4].clone(),
        ];
        self.reduce_deg10(&d)
    }

    /// Squaring (delegates to [`mul`](Self::mul), counted as 18M like the paper).
    pub fn square(&self, a: &Fp6Element) -> Fp6Element {
        self.mul(a, a)
    }

    /// Exponentiation by left-to-right square-and-multiply.
    pub fn exp(&self, base: &Fp6Element, exp: &BigUint) -> Fp6Element {
        let mut acc = self.one();
        for i in (0..exp.bit_len()).rev() {
            acc = self.square(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Sliding-window exponentiation with `window` bits (1 ≤ window ≤ 8).
    ///
    /// Used by the exponentiation ablation bench; produces identical results
    /// to [`exp`](Self::exp).
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0 or larger than 8.
    pub fn exp_window(&self, base: &Fp6Element, exp: &BigUint, window: usize) -> Fp6Element {
        assert!((1..=8).contains(&window), "window must be in 1..=8");
        if window == 1 {
            return self.exp(base, exp);
        }
        // Precompute odd powers base^1, base^3, ..., base^(2^window - 1).
        let base_sq = self.square(base);
        let mut odd_powers = vec![base.clone()];
        for _ in 1..(1 << (window - 1)) {
            let prev = odd_powers.last().expect("non-empty").clone();
            odd_powers.push(self.mul(&prev, &base_sq));
        }
        let mut acc = self.one();
        let mut i = exp.bit_len() as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                acc = self.square(&acc);
                i -= 1;
                continue;
            }
            // Find the longest window ending in a set bit.
            let lo = (i - window as isize + 1).max(0);
            let mut j = lo;
            while !exp.bit(j as usize) {
                j += 1;
            }
            let width = (i - j + 1) as usize;
            let mut value = 0usize;
            for k in (j..=i).rev() {
                value = (value << 1) | exp.bit(k as usize) as usize;
            }
            for _ in 0..width {
                acc = self.square(&acc);
            }
            acc = self.mul(&acc, &odd_powers[(value - 1) / 2]);
            i = j - 1;
        }
        acc
    }

    /// The Frobenius map iterated `k` times: `a ↦ a^{p^k}`.
    ///
    /// Because `z` is a 9th root of unity this is just a signed permutation
    /// of coefficients (no multiplications): `z^i ↦ z^{(i·p^k) mod 9}` with
    /// `z^6 = -z³ - 1`, `z^7 = -z⁴ - z`, `z^8 = -z⁵ - z²`.
    pub fn frobenius(&self, a: &Fp6Element, k: usize) -> Fp6Element {
        let fp = &self.fp;
        // p^k mod 9
        let mut e = 1u32;
        for _ in 0..(k % 6) {
            e = (e * self.p_mod_9) % 9;
        }
        let mut r: [FpElement; 6] = std::array::from_fn(|_| fp.zero());
        for i in 0..6 {
            if a.c[i].is_zero() {
                continue;
            }
            let m = ((i as u32) * e % 9) as usize;
            match m {
                0..=5 => r[m] = fp.add(&r[m], &a.c[i]),
                6 => {
                    r[3] = fp.sub(&r[3], &a.c[i]);
                    r[0] = fp.sub(&r[0], &a.c[i]);
                }
                7 => {
                    r[4] = fp.sub(&r[4], &a.c[i]);
                    r[1] = fp.sub(&r[1], &a.c[i]);
                }
                8 => {
                    r[5] = fp.sub(&r[5], &a.c[i]);
                    r[2] = fp.sub(&r[2], &a.c[i]);
                }
                _ => unreachable!("exponent reduced mod 9"),
            }
        }
        self.from_coeffs(r)
    }

    /// The conjugate over `Fp3`: `a ↦ a^{p³}` (i.e. `z ↦ z^{-1}`).
    pub fn conjugate(&self, a: &Fp6Element) -> Fp6Element {
        self.frobenius(a, 3)
    }

    /// The relative norm to `Fp3`: `N_{Fp6/Fp3}(a) = a · a^{p³}` (an element
    /// of the `Fp3` subfield, returned as an `Fp6` element).
    pub fn norm_to_fp3(&self, a: &Fp6Element) -> Fp6Element {
        self.mul(a, &self.conjugate(a))
    }

    /// The relative norm to `Fp2`: `N_{Fp6/Fp2}(a) = a · a^{p²} · a^{p⁴}`.
    pub fn norm_to_fp2(&self, a: &Fp6Element) -> Fp6Element {
        let f2 = self.frobenius(a, 2);
        let f4 = self.frobenius(a, 4);
        self.mul(a, &self.mul(&f2, &f4))
    }

    /// The absolute norm `N_{Fp6/Fp}(a) ∈ Fp`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the computed norm does not lie in `Fp`.
    pub fn norm(&self, a: &Fp6Element) -> FpElement {
        let mut prod = a.clone();
        for k in 1..6 {
            prod = self.mul(&prod, &self.frobenius(a, k));
        }
        debug_assert!(
            prod.c[1..].iter().all(FpElement::is_zero),
            "absolute norm must lie in Fp"
        );
        prod.c[0].clone()
    }

    /// Inversion via the norm method: `a^{-1} = (Π_{k=1..5} a^{p^k}) / N(a)`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::DivisionByZero`] for the zero element.
    pub fn inv(&self, a: &Fp6Element) -> Result<Fp6Element, FieldError> {
        if a.is_zero() {
            return Err(FieldError::DivisionByZero);
        }
        let mut adj = self.frobenius(a, 1);
        for k in 2..6 {
            adj = self.mul(&adj, &self.frobenius(a, k));
        }
        let n = self.mul(a, &adj);
        debug_assert!(
            n.c[1..].iter().all(FpElement::is_zero),
            "absolute norm must lie in Fp"
        );
        let n_inv = self.fp.inv(&n.c[0]).ok_or(FieldError::DivisionByZero)?;
        Ok(self.scalar_mul(&adj, &n_inv))
    }

    /// Reduces a polynomial of degree ≤ 10 modulo `z^6 + z^3 + 1`.
    fn reduce_deg10(&self, d: &[FpElement]) -> Fp6Element {
        let fp = &self.fp;
        debug_assert!(d.len() == 11);
        let mut r: [FpElement; 6] = std::array::from_fn(|i| d[i].clone());
        // z^6 = -z^3 - 1
        r[3] = fp.sub(&r[3], &d[6]);
        r[0] = fp.sub(&r[0], &d[6]);
        // z^7 = -z^4 - z
        r[4] = fp.sub(&r[4], &d[7]);
        r[1] = fp.sub(&r[1], &d[7]);
        // z^8 = -z^5 - z^2
        r[5] = fp.sub(&r[5], &d[8]);
        r[2] = fp.sub(&r[2], &d[8]);
        // z^9 = 1
        r[0] = fp.add(&r[0], &d[9]);
        // z^10 = z
        r[1] = fp.add(&r[1], &d[10]);
        self.from_coeffs(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> Fp6Context {
        Fp6Context::new(FpContext::new(&BigUint::from(101u64)).unwrap()).unwrap()
    }

    /// Schoolbook 36M reference multiplication.
    fn schoolbook_mul(f: &Fp6Context, a: &Fp6Element, b: &Fp6Element) -> Fp6Element {
        let fp = f.fp();
        let mut d: Vec<FpElement> = vec![fp.zero(); 11];
        for i in 0..6 {
            for j in 0..6 {
                d[i + j] = fp.add(&d[i + j], &fp.mul(&a.coeffs()[i], &b.coeffs()[j]));
            }
        }
        f.reduce_deg10(&d)
    }

    #[test]
    fn rejects_wrong_congruence() {
        let fp = FpContext::new(&BigUint::from(19u64)).unwrap(); // 19 ≡ 1 mod 9
        assert!(matches!(
            Fp6Context::new(fp),
            Err(FieldError::UnsupportedCongruence { modulus: 9, .. })
        ));
    }

    #[test]
    fn z_is_a_primitive_ninth_root_of_unity() {
        let f = ctx();
        let z = f.gen_z();
        let mut acc = f.one();
        for i in 1..9 {
            acc = f.mul(&acc, &z);
            if i < 9 {
                assert_ne!(acc, f.one(), "z^{i} must not be 1");
            }
        }
        acc = f.mul(&acc, &z);
        assert_eq!(acc, f.one(), "z^9 must be 1");
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..25 {
            let a = f.random(&mut rng);
            let b = f.random(&mut rng);
            assert_eq!(f.mul(&a, &b), schoolbook_mul(&f, &a, &b));
        }
    }

    #[test]
    fn multiplication_costs_18m() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let a = f.random(&mut rng);
        let b = f.random(&mut rng);
        f.fp().reset_op_count();
        let _ = f.mul(&a, &b);
        let count = f.fp().op_count();
        assert_eq!(count.mul, 18, "paper: one Fp6 mult = 18M");
        let adds = count.additions_total();
        assert!(
            (50..=70).contains(&adds),
            "paper: one Fp6 mult ≈ 60A, measured {adds}"
        );
    }

    #[test]
    fn ring_axioms() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let a = f.random(&mut rng);
            let b = f.random(&mut rng);
            let c = f.random(&mut rng);
            assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
            assert_eq!(f.mul(&f.mul(&a, &b), &c), f.mul(&a, &f.mul(&b, &c)));
            assert_eq!(
                f.mul(&a, &f.add(&b, &c)),
                f.add(&f.mul(&a, &b), &f.mul(&a, &c))
            );
            assert_eq!(f.mul(&a, &f.one()), a);
            assert_eq!(f.add(&a, &f.neg(&a)), f.zero());
        }
    }

    #[test]
    fn frobenius_is_automorphism_and_matches_exponentiation() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        let a = f.random(&mut rng);
        let b = f.random(&mut rng);
        for k in 0..6 {
            assert_eq!(
                f.frobenius(&f.mul(&a, &b), k),
                f.mul(&f.frobenius(&a, k), &f.frobenius(&b, k))
            );
        }
        // frobenius(a, 1) == a^p
        assert_eq!(f.frobenius(&a, 1), f.exp(&a, &BigUint::from(101u64)));
        // frobenius composition: frob^6 = identity
        assert_eq!(f.frobenius(&a, 6), a);
        // conjugate twice = identity
        assert_eq!(f.conjugate(&f.conjugate(&a)), a);
    }

    #[test]
    fn gamma_is_purely_imaginary() {
        let f = ctx();
        let gamma = f.zeta_minus_inverse();
        assert_eq!(f.conjugate(&gamma), f.neg(&gamma));
        let x = f.zeta_plus_inverse();
        assert_eq!(f.conjugate(&x), x);
        // x satisfies x^3 - 3x + 1 = 0.
        let x3 = f.mul(&f.mul(&x, &x), &x);
        let three_x = f.scalar_mul(&x, &f.fp().from_u64(3));
        assert!(f.add(&f.sub(&x3, &three_x), &f.one()).is_zero());
    }

    #[test]
    fn norms_land_in_subfields() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(25);
        let a = f.random(&mut rng);
        // Norm to Fp3 is fixed by conjugation.
        let n3 = f.norm_to_fp3(&a);
        assert_eq!(f.conjugate(&n3), n3);
        // Norm to Fp2 is fixed by frobenius^2.
        let n2 = f.norm_to_fp2(&a);
        assert_eq!(f.frobenius(&n2, 2), n2);
        // Absolute norm is multiplicative.
        let b = f.random(&mut rng);
        assert_eq!(f.norm(&f.mul(&a, &b)), f.fp().mul(&f.norm(&a), &f.norm(&b)));
    }

    #[test]
    fn inversion_roundtrip() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(26);
        for _ in 0..10 {
            let a = f.random(&mut rng);
            if a.is_zero() {
                continue;
            }
            let inv = f.inv(&a).unwrap();
            assert_eq!(f.mul(&a, &inv), f.one());
        }
        assert_eq!(f.inv(&f.zero()).unwrap_err(), FieldError::DivisionByZero);
    }

    #[test]
    fn exponentiation_group_order() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(27);
        let order = BigUint::from(101u64).pow(6) - BigUint::one();
        let a = f.random(&mut rng);
        if !a.is_zero() {
            assert_eq!(f.exp(&a, &order), f.one());
        }
        assert_eq!(f.exp(&a, &BigUint::zero()), f.one());
    }

    #[test]
    fn windowed_exponentiation_matches_plain() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(28);
        for _ in 0..5 {
            let a = f.random(&mut rng);
            let e = BigUint::random_bits(&mut rng, 80);
            let plain = f.exp(&a, &e);
            for w in [2usize, 3, 4, 5] {
                assert_eq!(f.exp_window(&a, &e, w), plain, "window {w}");
            }
        }
        // Edge cases: zero and tiny exponents.
        let a = f.random(&mut rng);
        assert_eq!(f.exp_window(&a, &BigUint::zero(), 4), f.one());
        assert_eq!(f.exp_window(&a, &BigUint::one(), 4), a);
    }
}

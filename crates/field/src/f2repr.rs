//! Representation F2 of Fig. 1: `Fp6` viewed as `Fp3[y]/(y² - x·y + 1)`.
//!
//! In the paper's notation, F2 is the quadratic extension of `Fp3` and the
//! maps τ / τ⁻¹ convert between F1 (the `z`-power basis of
//! `Fp[z]/(z^6+z^3+1)`) and F2 (pairs of `Fp3` elements). Concretely,
//! `z` itself satisfies `z² - x·z + 1 = 0` over `Fp3` where
//! `x = z + z^{-1}`, so an F2 element `(u, v)` represents `u + v·z`.
//!
//! The DATE paper performs all arithmetic in F1 and notes that "for a
//! complete cryptosystem also the mappings between different representations
//! have to be implemented"; this module supplies those mappings as exact
//! `Fp`-linear basis changes.

use std::fmt;

use rand::Rng;

use crate::error::FieldError;
use crate::fp::{FpContext, FpElement};
use crate::fp3::{Fp3Context, Fp3Element};
use crate::fp6::{Fp6Context, Fp6Element};
use crate::linalg::FpMatrix;

/// An element of representation F2: the pair `(u, v)` standing for `u + v·z`
/// with `u, v ∈ Fp3`.
#[derive(Clone, PartialEq, Eq)]
pub struct F2Element {
    u: Fp3Element,
    v: Fp3Element,
}

impl fmt::Debug for F2Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F2({:?} + {:?}·z)", self.u, self.v)
    }
}

impl F2Element {
    /// The `Fp3` component not multiplied by `z`.
    pub fn u(&self) -> &Fp3Element {
        &self.u
    }

    /// The `Fp3` component multiplied by `z`.
    pub fn v(&self) -> &Fp3Element {
        &self.v
    }

    /// Returns `true` if this is the zero element.
    pub fn is_zero(&self) -> bool {
        self.u.is_zero() && self.v.is_zero()
    }
}

/// The representation F2 together with the conversion maps τ / τ⁻¹ to and
/// from representation F1.
#[derive(Clone)]
pub struct F2Repr {
    fp: FpContext,
    fp3: Fp3Context,
    fp6: Fp6Context,
    /// τ⁻¹ as a 6×6 matrix: F2 coordinates `(u0,u1,u2,v0,v1,v2)` → F1
    /// coordinates in the `z`-power basis.
    to_f1: FpMatrix,
    /// τ as a 6×6 matrix: the inverse basis change.
    to_f2: FpMatrix,
}

impl fmt::Debug for F2Repr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F2Repr over {:?}", self.fp)
    }
}

impl F2Repr {
    /// Builds the F2 representation and its conversion matrices.
    ///
    /// # Errors
    ///
    /// Propagates the congruence requirements of [`Fp3Context`] and
    /// [`Fp6Context`] (`p ≡ 2, 5 mod 9`).
    pub fn new(fp: FpContext) -> Result<Self, FieldError> {
        let fp3 = Fp3Context::new(fp.clone())?;
        let fp6 = Fp6Context::new(fp.clone())?;

        // Images of the F2 basis {1, x, x², z, x·z, x²·z} in the z-power basis.
        let x = fp6.zeta_plus_inverse();
        let z = fp6.gen_z();
        let x2 = fp6.mul(&x, &x);
        let basis = [
            fp6.one(),
            x.clone(),
            x2.clone(),
            z.clone(),
            fp6.mul(&x, &z),
            fp6.mul(&x2, &z),
        ];
        let mut to_f1 = FpMatrix::zero(&fp, 6, 6);
        for (col, e) in basis.iter().enumerate() {
            for (row, coeff) in e.coeffs().iter().enumerate() {
                to_f1.set(row, col, coeff.clone());
            }
        }
        let to_f2 = to_f1.inverse()?;
        Ok(F2Repr {
            fp,
            fp3,
            fp6,
            to_f1,
            to_f2,
        })
    }

    /// The underlying prime-field context.
    pub fn fp(&self) -> &FpContext {
        &self.fp
    }

    /// The `Fp3` context the components live in.
    pub fn fp3(&self) -> &Fp3Context {
        &self.fp3
    }

    /// The F1 (`Fp6`) context used by the conversion maps.
    pub fn fp6(&self) -> &Fp6Context {
        &self.fp6
    }

    /// The additive identity.
    pub fn zero(&self) -> F2Element {
        F2Element {
            u: self.fp3.zero(),
            v: self.fp3.zero(),
        }
    }

    /// The multiplicative identity.
    pub fn one(&self) -> F2Element {
        F2Element {
            u: self.fp3.one(),
            v: self.fp3.zero(),
        }
    }

    /// Builds an element from its two `Fp3` components.
    pub fn from_components(&self, u: Fp3Element, v: Fp3Element) -> F2Element {
        F2Element { u, v }
    }

    /// Uniformly random element.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> F2Element {
        F2Element {
            u: self.fp3.random(rng),
            v: self.fp3.random(rng),
        }
    }

    /// The map τ of Fig. 1: representation F1 → representation F2.
    pub fn from_f1(&self, a: &Fp6Element) -> F2Element {
        let coords: Vec<FpElement> = a.coeffs().to_vec();
        let out = self.to_f2.mul_vec(&coords);
        F2Element {
            u: self
                .fp3
                .from_coeffs([out[0].clone(), out[1].clone(), out[2].clone()]),
            v: self
                .fp3
                .from_coeffs([out[3].clone(), out[4].clone(), out[5].clone()]),
        }
    }

    /// The map τ⁻¹ of Fig. 1: representation F2 → representation F1.
    pub fn to_f1(&self, a: &F2Element) -> Fp6Element {
        let coords: Vec<FpElement> =
            a.u.coeffs()
                .iter()
                .chain(a.v.coeffs().iter())
                .cloned()
                .collect();
        let out = self.to_f1.mul_vec(&coords);
        self.fp6
            .from_coeffs(std::array::from_fn(|i| out[i].clone()))
    }

    /// Addition.
    pub fn add(&self, a: &F2Element, b: &F2Element) -> F2Element {
        F2Element {
            u: self.fp3.add(&a.u, &b.u),
            v: self.fp3.add(&a.v, &b.v),
        }
    }

    /// Subtraction.
    pub fn sub(&self, a: &F2Element, b: &F2Element) -> F2Element {
        F2Element {
            u: self.fp3.sub(&a.u, &b.u),
            v: self.fp3.sub(&a.v, &b.v),
        }
    }

    /// Negation.
    pub fn neg(&self, a: &F2Element) -> F2Element {
        F2Element {
            u: self.fp3.neg(&a.u),
            v: self.fp3.neg(&a.v),
        }
    }

    /// Multiplication using `z² = x·z - 1`.
    pub fn mul(&self, a: &F2Element, b: &F2Element) -> F2Element {
        let f3 = &self.fp3;
        let x = f3.gen_x();
        let uu = f3.mul(&a.u, &b.u);
        let vv = f3.mul(&a.v, &b.v);
        let cross = f3.add(&f3.mul(&a.u, &b.v), &f3.mul(&a.v, &b.u));
        F2Element {
            u: f3.sub(&uu, &vv),
            v: f3.add(&cross, &f3.mul(&vv, &x)),
        }
    }

    /// Squaring.
    pub fn square(&self, a: &F2Element) -> F2Element {
        self.mul(a, a)
    }

    /// Conjugation over `Fp3` (`z ↦ z^{-1} = x - z`).
    pub fn conjugate(&self, a: &F2Element) -> F2Element {
        let f3 = &self.fp3;
        let x = f3.gen_x();
        F2Element {
            u: f3.add(&a.u, &f3.mul(&a.v, &x)),
            v: f3.neg(&a.v),
        }
    }

    /// The relative norm `N_{F2/Fp3}(a) = a · ā ∈ Fp3`.
    pub fn norm(&self, a: &F2Element) -> Fp3Element {
        let n = self.mul(a, &self.conjugate(a));
        debug_assert!(n.v.is_zero(), "relative norm must lie in Fp3");
        n.u
    }

    /// Inversion via the relative norm.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::DivisionByZero`] for the zero element.
    pub fn inv(&self, a: &F2Element) -> Result<F2Element, FieldError> {
        if a.is_zero() {
            return Err(FieldError::DivisionByZero);
        }
        let conj = self.conjugate(a);
        let n = self.norm(a);
        let n_inv = self.fp3.inv(&n)?;
        Ok(F2Element {
            u: self.fp3.mul(&conj.u, &n_inv),
            v: self.fp3.mul(&conj.v, &n_inv),
        })
    }

    /// Exponentiation by square-and-multiply.
    pub fn exp(&self, base: &F2Element, exp: &bignum::BigUint) -> F2Element {
        let mut acc = self.one();
        for i in (0..exp.bit_len()).rev() {
            acc = self.square(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bignum::BigUint;
    use rand::SeedableRng;

    fn repr() -> F2Repr {
        F2Repr::new(FpContext::new(&BigUint::from(101u64)).unwrap()).unwrap()
    }

    #[test]
    fn conversion_roundtrip_f1_to_f2() {
        let r = repr();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let a = r.fp6().random(&mut rng);
            assert_eq!(r.to_f1(&r.from_f1(&a)), a);
        }
    }

    #[test]
    fn conversion_roundtrip_f2_to_f1() {
        let r = repr();
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        for _ in 0..20 {
            let a = r.random(&mut rng);
            assert_eq!(r.from_f1(&r.to_f1(&a)), a);
        }
    }

    #[test]
    fn conversion_is_a_ring_isomorphism() {
        let r = repr();
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        for _ in 0..10 {
            let a = r.fp6().random(&mut rng);
            let b = r.fp6().random(&mut rng);
            // τ(a·b) = τ(a)·τ(b)
            assert_eq!(
                r.from_f1(&r.fp6().mul(&a, &b)),
                r.mul(&r.from_f1(&a), &r.from_f1(&b))
            );
            // τ(a+b) = τ(a)+τ(b)
            assert_eq!(
                r.from_f1(&r.fp6().add(&a, &b)),
                r.add(&r.from_f1(&a), &r.from_f1(&b))
            );
        }
        assert_eq!(r.from_f1(&r.fp6().one()), r.one());
    }

    #[test]
    fn field_axioms_in_f2() {
        let r = repr();
        let mut rng = rand::rngs::StdRng::seed_from_u64(34);
        for _ in 0..10 {
            let a = r.random(&mut rng);
            let b = r.random(&mut rng);
            assert_eq!(r.mul(&a, &b), r.mul(&b, &a));
            assert_eq!(r.add(&a, &r.neg(&a)), r.zero());
            assert_eq!(r.sub(&a, &b), r.add(&a, &r.neg(&b)));
            if !a.is_zero() {
                let inv = r.inv(&a).unwrap();
                assert_eq!(r.mul(&a, &inv), r.one());
            }
        }
        assert_eq!(r.inv(&r.zero()).unwrap_err(), FieldError::DivisionByZero);
    }

    #[test]
    fn norm_is_multiplicative() {
        let r = repr();
        let mut rng = rand::rngs::StdRng::seed_from_u64(35);
        let a = r.random(&mut rng);
        let b = r.random(&mut rng);
        assert_eq!(
            r.norm(&r.mul(&a, &b)),
            r.fp3().mul(&r.norm(&a), &r.norm(&b))
        );
    }

    #[test]
    fn exponentiation_agrees_with_f1() {
        let r = repr();
        let mut rng = rand::rngs::StdRng::seed_from_u64(36);
        let a = r.fp6().random(&mut rng);
        let e = BigUint::from(12345u64);
        assert_eq!(r.from_f1(&r.fp6().exp(&a, &e)), r.exp(&r.from_f1(&a), &e));
    }
}

//! Small dense linear algebra over `Fp`.
//!
//! The conversions between the representations F1 and F2 of Fig. 1 (and the
//! embedding of `Fp3` into `Fp6` used by torus compression) are `Fp`-linear
//! basis changes. This module provides the dense-matrix plumbing for
//! precomputing those maps: matrix/vector products and Gauss–Jordan
//! elimination for solving and inverting.

use crate::error::FieldError;
use crate::fp::{FpContext, FpElement};

/// A dense matrix over `Fp` in row-major order.
#[derive(Clone)]
pub struct FpMatrix {
    fp: FpContext,
    rows: usize,
    cols: usize,
    data: Vec<FpElement>,
}

impl std::fmt::Debug for FpMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FpMatrix({}x{})", self.rows, self.cols)
    }
}

impl PartialEq for FpMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl Eq for FpMatrix {}

impl FpMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zero(fp: &FpContext, rows: usize, cols: usize) -> Self {
        FpMatrix {
            fp: fp.clone(),
            rows,
            cols,
            data: vec![fp.zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(fp: &FpContext, n: usize) -> Self {
        let mut m = FpMatrix::zero(fp, n, n);
        for i in 0..n {
            m.set(i, i, fp.one());
        }
        m
    }

    /// Builds a matrix from rows of elements.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or have differing lengths.
    pub fn from_rows(fp: &FpContext, rows: &[Vec<FpElement>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        FpMatrix {
            fp: fp.clone(),
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().cloned().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, r: usize, c: usize) -> &FpElement {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }

    /// Sets the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: FpElement) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[FpElement]) -> Vec<FpElement> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                let mut acc = self.fp.zero();
                for (c, v_c) in v.iter().enumerate() {
                    acc = self.fp.add(&acc, &self.fp.mul(self.get(r, c), v_c));
                }
                acc
            })
            .collect()
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn mul_mat(&self, other: &FpMatrix) -> FpMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = FpMatrix::zero(&self.fp, self.rows, other.cols);
        for r in 0..self.rows {
            for c in 0..other.cols {
                let mut acc = self.fp.zero();
                for k in 0..self.cols {
                    acc = self
                        .fp
                        .add(&acc, &self.fp.mul(self.get(r, k), other.get(k, c)));
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    /// Solves `self · x = b` for a square, invertible matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::DivisionByZero`] if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve(&self, b: &[FpElement]) -> Result<Vec<FpElement>, FieldError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        let inv = self.inverse()?;
        Ok(inv.mul_vec(b))
    }

    /// Computes the inverse of a square matrix by Gauss–Jordan elimination.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::DivisionByZero`] if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Result<FpMatrix, FieldError> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let fp = &self.fp;
        let mut a = self.clone();
        let mut inv = FpMatrix::identity(fp, n);

        for col in 0..n {
            // Find a pivot.
            let pivot_row = (col..n)
                .find(|&r| !a.get(r, col).is_zero())
                .ok_or(FieldError::DivisionByZero)?;
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                inv.swap_rows(pivot_row, col);
            }
            // Normalise the pivot row.
            let pivot_inv = fp.inv(a.get(col, col)).ok_or(FieldError::DivisionByZero)?;
            for c in 0..n {
                a.set(col, c, fp.mul(a.get(col, c), &pivot_inv));
                inv.set(col, c, fp.mul(inv.get(col, c), &pivot_inv));
            }
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col || a.get(r, col).is_zero() {
                    continue;
                }
                let factor = a.get(r, col).clone();
                for c in 0..n {
                    let va = fp.sub(a.get(r, c), &fp.mul(&factor, a.get(col, c)));
                    a.set(r, c, va);
                    let vi = fp.sub(inv.get(r, c), &fp.mul(&factor, inv.get(col, c)));
                    inv.set(r, c, vi);
                }
            }
        }
        Ok(inv)
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(r1 * self.cols + c, r2 * self.cols + c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bignum::BigUint;

    fn ctx() -> FpContext {
        FpContext::new(&BigUint::from(97u64)).unwrap()
    }

    fn mat_from_u64(fp: &FpContext, rows: &[&[u64]]) -> FpMatrix {
        FpMatrix::from_rows(
            fp,
            &rows
                .iter()
                .map(|r| r.iter().map(|&v| fp.from_u64(v)).collect())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn identity_acts_trivially() {
        let fp = ctx();
        let id = FpMatrix::identity(&fp, 3);
        let v = vec![fp.from_u64(1), fp.from_u64(2), fp.from_u64(3)];
        assert_eq!(id.mul_vec(&v), v);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let fp = ctx();
        let m = mat_from_u64(&fp, &[&[2, 1, 0], &[1, 3, 1], &[0, 1, 4]]);
        let inv = m.inverse().unwrap();
        assert_eq!(m.mul_mat(&inv), FpMatrix::identity(&fp, 3));
        assert_eq!(inv.mul_mat(&m), FpMatrix::identity(&fp, 3));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let fp = ctx();
        let m = mat_from_u64(&fp, &[&[1, 2], &[2, 4]]);
        assert_eq!(m.inverse().unwrap_err(), FieldError::DivisionByZero);
    }

    #[test]
    fn solve_linear_system() {
        let fp = ctx();
        let m = mat_from_u64(&fp, &[&[1, 1], &[1, 96]]); // [[1,1],[1,-1]] mod 97
        let b = vec![fp.from_u64(10), fp.from_u64(4)];
        let x = m.solve(&b).unwrap();
        assert_eq!(m.mul_vec(&x), b);
        assert_eq!(x[0], fp.from_u64(7));
        assert_eq!(x[1], fp.from_u64(3));
    }

    #[test]
    fn pivoting_handles_zero_leading_entries() {
        let fp = ctx();
        let m = mat_from_u64(&fp, &[&[0, 1], &[1, 0]]);
        let inv = m.inverse().unwrap();
        assert_eq!(m.mul_mat(&inv), FpMatrix::identity(&fp, 2));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dimensions_panic() {
        let fp = ctx();
        let m = mat_from_u64(&fp, &[&[1, 2], &[3, 4]]);
        let _ = m.mul_vec(&[fp.from_u64(1)]);
    }
}

//! The cubic extension `Fp3 = Fp[x]/(x^3 - 3x + 1)`.
//!
//! The generator `x` corresponds to `ζ9 + ζ9^{-1}` (twice the cosine of
//! 2π/9), whose minimal polynomial is `x^3 - 3x + 1`. For the CEILIDH
//! primes (`p ≡ 2, 5 mod 9`) this polynomial is irreducible over `Fp`, so
//! `Fp3` is the cubic subfield of `Fp6` and the field underlying the
//! representation F2 of Fig. 1.

use std::fmt;

use bignum::BigUint;
use rand::Rng;

use crate::error::FieldError;
use crate::fp::{FpContext, FpElement};

/// Context for arithmetic in `Fp3 = Fp[x]/(x^3 - 3x + 1)`.
#[derive(Clone)]
pub struct Fp3Context {
    fp: FpContext,
    /// `x^p`, cached so the Frobenius map is two multiplications.
    frob_x: [FpElement; 3],
    /// `(x^p)^2`.
    frob_x2: [FpElement; 3],
}

impl fmt::Debug for Fp3Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp3Context over {:?}", self.fp)
    }
}

/// An element `c0 + c1·x + c2·x²` of `Fp3`.
#[derive(Clone, PartialEq, Eq)]
pub struct Fp3Element {
    c: [FpElement; 3],
}

impl fmt::Debug for Fp3Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp3({:?}, {:?}, {:?})", self.c[0], self.c[1], self.c[2])
    }
}

impl Fp3Element {
    /// The coefficients `(c0, c1, c2)` in the basis `{1, x, x²}`.
    pub fn coeffs(&self) -> &[FpElement; 3] {
        &self.c
    }

    /// Returns `true` if this is the zero element.
    pub fn is_zero(&self) -> bool {
        self.c.iter().all(FpElement::is_zero)
    }
}

impl Fp3Context {
    /// Creates the cubic extension over `fp`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::UnsupportedCongruence`] unless
    /// `p ≡ 2 or 5 (mod 9)`, the CEILIDH congruence that keeps
    /// `x^3 - 3x + 1` irreducible.
    pub fn new(fp: FpContext) -> Result<Self, FieldError> {
        let r = fp.modulus_mod(9);
        if r != 2 && r != 5 {
            return Err(FieldError::UnsupportedCongruence {
                modulus: 9,
                expected: &[2, 5],
                found: r,
            });
        }
        // Bootstrap a context without Frobenius caches to compute x^p.
        let mut ctx = Fp3Context {
            fp: fp.clone(),
            frob_x: [fp.zero(), fp.zero(), fp.zero()],
            frob_x2: [fp.zero(), fp.zero(), fp.zero()],
        };
        let x = ctx.gen_x();
        let xp = ctx.exp(&x, fp.modulus());
        let xp2 = ctx.mul(&xp, &xp);
        ctx.frob_x = xp.c;
        ctx.frob_x2 = xp2.c;
        Ok(ctx)
    }

    /// The underlying prime-field context.
    pub fn fp(&self) -> &FpContext {
        &self.fp
    }

    /// The additive identity.
    pub fn zero(&self) -> Fp3Element {
        self.from_coeffs([self.fp.zero(), self.fp.zero(), self.fp.zero()])
    }

    /// The multiplicative identity.
    pub fn one(&self) -> Fp3Element {
        self.from_coeffs([self.fp.one(), self.fp.zero(), self.fp.zero()])
    }

    /// The generator `x` (a root of `x^3 - 3x + 1`).
    pub fn gen_x(&self) -> Fp3Element {
        self.from_coeffs([self.fp.zero(), self.fp.one(), self.fp.zero()])
    }

    /// Builds an element from coefficients in the basis `{1, x, x²}`.
    pub fn from_coeffs(&self, c: [FpElement; 3]) -> Fp3Element {
        Fp3Element { c }
    }

    /// Builds an element from small integers.
    pub fn from_u64_coeffs(&self, c: [u64; 3]) -> Fp3Element {
        self.from_coeffs([
            self.fp.from_u64(c[0]),
            self.fp.from_u64(c[1]),
            self.fp.from_u64(c[2]),
        ])
    }

    /// Embeds a base-field element.
    pub fn from_fp(&self, v: FpElement) -> Fp3Element {
        self.from_coeffs([v, self.fp.zero(), self.fp.zero()])
    }

    /// Uniformly random element.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Fp3Element {
        self.from_coeffs([
            self.fp.random(rng),
            self.fp.random(rng),
            self.fp.random(rng),
        ])
    }

    /// Addition.
    pub fn add(&self, a: &Fp3Element, b: &Fp3Element) -> Fp3Element {
        self.from_coeffs([
            self.fp.add(&a.c[0], &b.c[0]),
            self.fp.add(&a.c[1], &b.c[1]),
            self.fp.add(&a.c[2], &b.c[2]),
        ])
    }

    /// Subtraction.
    pub fn sub(&self, a: &Fp3Element, b: &Fp3Element) -> Fp3Element {
        self.from_coeffs([
            self.fp.sub(&a.c[0], &b.c[0]),
            self.fp.sub(&a.c[1], &b.c[1]),
            self.fp.sub(&a.c[2], &b.c[2]),
        ])
    }

    /// Negation.
    pub fn neg(&self, a: &Fp3Element) -> Fp3Element {
        self.from_coeffs([
            self.fp.neg(&a.c[0]),
            self.fp.neg(&a.c[1]),
            self.fp.neg(&a.c[2]),
        ])
    }

    /// Multiplication by a base-field scalar (3 multiplications).
    pub fn scalar_mul(&self, a: &Fp3Element, s: &FpElement) -> Fp3Element {
        self.from_coeffs([
            self.fp.mul(&a.c[0], s),
            self.fp.mul(&a.c[1], s),
            self.fp.mul(&a.c[2], s),
        ])
    }

    /// Multiplication using the 6M Karatsuba formula of Section 2.2.2 and
    /// the reduction `x^3 = 3x - 1`, `x^4 = 3x² - x`.
    pub fn mul(&self, a: &Fp3Element, b: &Fp3Element) -> Fp3Element {
        let d = karatsuba3(&self.fp, &a.c, &b.c);
        self.reduce_deg4(&d)
    }

    /// Squaring (delegates to [`mul`](Self::mul); the paper counts squarings
    /// as multiplications).
    pub fn square(&self, a: &Fp3Element) -> Fp3Element {
        self.mul(a, a)
    }

    /// Exponentiation by square-and-multiply.
    pub fn exp(&self, base: &Fp3Element, exp: &BigUint) -> Fp3Element {
        let mut acc = self.one();
        for i in (0..exp.bit_len()).rev() {
            acc = self.square(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// The Frobenius map `a ↦ a^p` (an `Fp`-linear map; uses the cached
    /// image of `x`).
    pub fn frobenius(&self, a: &Fp3Element) -> Fp3Element {
        let xp = Fp3Element {
            c: self.frob_x.clone(),
        };
        let xp2 = Fp3Element {
            c: self.frob_x2.clone(),
        };
        let t1 = self.scalar_mul(&xp, &a.c[1]);
        let t2 = self.scalar_mul(&xp2, &a.c[2]);
        self.add(&self.from_fp(a.c[0].clone()), &self.add(&t1, &t2))
    }

    /// The norm `N(a) = a · a^p · a^{p²} ∈ Fp`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the computed norm does not lie in `Fp`,
    /// which would indicate an internal inconsistency.
    pub fn norm(&self, a: &Fp3Element) -> FpElement {
        let f1 = self.frobenius(a);
        let f2 = self.frobenius(&f1);
        let n = self.mul(a, &self.mul(&f1, &f2));
        debug_assert!(n.c[1].is_zero() && n.c[2].is_zero(), "norm not in Fp");
        n.c[0].clone()
    }

    /// Inversion via the norm: `a^{-1} = a^p · a^{p²} / N(a)`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::DivisionByZero`] for the zero element.
    pub fn inv(&self, a: &Fp3Element) -> Result<Fp3Element, FieldError> {
        if a.is_zero() {
            return Err(FieldError::DivisionByZero);
        }
        let f1 = self.frobenius(a);
        let f2 = self.frobenius(&f1);
        let adj = self.mul(&f1, &f2);
        let n = self.mul(a, &adj);
        debug_assert!(n.c[1].is_zero() && n.c[2].is_zero(), "norm not in Fp");
        let n_inv = self.fp.inv(&n.c[0]).ok_or(FieldError::DivisionByZero)?;
        Ok(self.scalar_mul(&adj, &n_inv))
    }

    /// Reduces a degree-4 polynomial in `x` modulo `x^3 - 3x + 1`.
    fn reduce_deg4(&self, d: &[FpElement; 5]) -> Fp3Element {
        let fp = &self.fp;
        // x^3 = 3x - 1, x^4 = 3x^2 - x
        let three_d3 = fp.mul_small(&d[3], 3);
        let three_d4 = fp.mul_small(&d[4], 3);
        let r0 = fp.sub(&d[0], &d[3]);
        let r1 = fp.sub(&fp.add(&d[1], &three_d3), &d[4]);
        let r2 = fp.add(&d[2], &three_d4);
        self.from_coeffs([r0, r1, r2])
    }
}

/// Multiplies two degree-2 polynomials with the 6M formula of Section 2.2.2,
/// returning the five coefficients of the degree-4 product.
pub(crate) fn karatsuba3(fp: &FpContext, a: &[FpElement; 3], b: &[FpElement; 3]) -> [FpElement; 5] {
    let c0 = fp.mul(&a[0], &b[0]);
    let c1 = fp.mul(&a[1], &b[1]);
    let c2 = fp.mul(&a[2], &b[2]);
    let c3 = fp.mul(&fp.sub(&a[0], &a[1]), &fp.sub(&b[0], &b[1]));
    let c4 = fp.mul(&fp.sub(&a[0], &a[2]), &fp.sub(&b[0], &b[2]));
    let c5 = fp.mul(&fp.sub(&a[1], &a[2]), &fp.sub(&b[1], &b[2]));
    // C = c0 + (c0+c1-c3) x + (c0+c1+c2-c4) x^2 + (c1+c2-c5) x^3 + c2 x^4
    // The sum c0+c1 is shared between the x and x^2 coefficients, matching
    // the paper's 6M + 11A accounting.
    let s01 = fp.add(&c0, &c1);
    let d0 = c0;
    let d1 = fp.sub(&s01, &c3);
    let d2 = fp.sub(&fp.add(&s01, &c2), &c4);
    let d3 = fp.sub(&fp.add(&c1, &c2), &c5);
    let d4 = c2;
    [d0, d1, d2, d3, d4]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> Fp3Context {
        Fp3Context::new(FpContext::new(&BigUint::from(101u64)).unwrap()).unwrap()
    }

    /// Schoolbook multiplication used as a reference for the Karatsuba path.
    fn schoolbook_mul(f: &Fp3Context, a: &Fp3Element, b: &Fp3Element) -> Fp3Element {
        let fp = f.fp();
        let mut d = [fp.zero(), fp.zero(), fp.zero(), fp.zero(), fp.zero()];
        for i in 0..3 {
            for j in 0..3 {
                d[i + j] = fp.add(&d[i + j], &fp.mul(&a.coeffs()[i], &b.coeffs()[j]));
            }
        }
        f.reduce_deg4(&d)
    }

    #[test]
    fn rejects_wrong_congruence() {
        // 37 ≡ 1 (mod 9)
        let fp = FpContext::new(&BigUint::from(37u64)).unwrap();
        assert!(matches!(
            Fp3Context::new(fp),
            Err(FieldError::UnsupportedCongruence { modulus: 9, .. })
        ));
        // 23 ≡ 5 (mod 9) is accepted.
        let fp = FpContext::new(&BigUint::from(23u64)).unwrap();
        assert!(Fp3Context::new(fp).is_ok());
    }

    #[test]
    fn x_satisfies_its_minimal_polynomial() {
        let f = ctx();
        let x = f.gen_x();
        // x^3 - 3x + 1 = 0
        let x3 = f.mul(&f.mul(&x, &x), &x);
        let three_x = f.scalar_mul(&x, &f.fp().from_u64(3));
        let val = f.add(&f.sub(&x3, &three_x), &f.one());
        assert!(val.is_zero());
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let a = f.random(&mut rng);
            let b = f.random(&mut rng);
            assert_eq!(f.mul(&a, &b), schoolbook_mul(&f, &a, &b));
        }
    }

    #[test]
    fn ring_axioms() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..15 {
            let a = f.random(&mut rng);
            let b = f.random(&mut rng);
            let c = f.random(&mut rng);
            assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
            assert_eq!(f.mul(&f.mul(&a, &b), &c), f.mul(&a, &f.mul(&b, &c)));
            assert_eq!(
                f.mul(&a, &f.add(&b, &c)),
                f.add(&f.mul(&a, &b), &f.mul(&a, &c))
            );
            assert_eq!(f.mul(&a, &f.one()), a);
        }
    }

    #[test]
    fn frobenius_properties() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let a = f.random(&mut rng);
        let b = f.random(&mut rng);
        // Multiplicative.
        assert_eq!(
            f.frobenius(&f.mul(&a, &b)),
            f.mul(&f.frobenius(&a), &f.frobenius(&b))
        );
        // Order 3.
        let f3 = f.frobenius(&f.frobenius(&f.frobenius(&a)));
        assert_eq!(f3, a);
        // Matches exponentiation by p.
        assert_eq!(f.frobenius(&a), f.exp(&a, &BigUint::from(101u64)));
        // Fixes Fp.
        let c = f.from_fp(f.fp().from_u64(42));
        assert_eq!(f.frobenius(&c), c);
    }

    #[test]
    fn inversion_and_norm() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        for _ in 0..15 {
            let a = f.random(&mut rng);
            if a.is_zero() {
                continue;
            }
            let inv = f.inv(&a).unwrap();
            assert_eq!(f.mul(&a, &inv), f.one());
        }
        assert_eq!(f.inv(&f.zero()).unwrap_err(), FieldError::DivisionByZero);
        // Norm is multiplicative.
        let a = f.random(&mut rng);
        let b = f.random(&mut rng);
        assert_eq!(f.norm(&f.mul(&a, &b)), f.fp().mul(&f.norm(&a), &f.norm(&b)));
    }

    #[test]
    fn group_order_is_p_cubed_minus_one() {
        let f = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let order = BigUint::from(101u64 * 101 * 101 - 1);
        for _ in 0..5 {
            let a = f.random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(f.exp(&a, &order), f.one());
        }
    }
}

//! Finite-field arithmetic for the torus-FPGA reproduction.
//!
//! The DATE 2008 paper performs all CEILIDH arithmetic in the
//! representation `F1 = Fp6 = Fp[z]/(z^6 + z^3 + 1)` (Section 2.2), built
//! from prime-field operations that the coprocessor executes as Montgomery
//! modular multiplications and modular additions. This crate provides the
//! whole tower:
//!
//! * [`FpContext`]/[`FpElement`] — the base prime field with Montgomery
//!   arithmetic and M/A/I operation counting (the counts drive the cycle
//!   model in the `platform` crate).
//! * [`Fp2Context`] — `Fp[w]/(w^2 + w + 1)`, the quadratic subfield of
//!   `Fp6` (requires `p ≡ 2 mod 3`).
//! * [`Fp3Context`] — `Fp[x]/(x^3 - 3x + 1)`, the cubic subfield generated
//!   by `ζ9 + ζ9^{-1}` (requires `p ≡ 2, 5 mod 9`).
//! * [`Fp6Context`] — the paper's representation F1 with the 18M + ~60A
//!   Karatsuba multiplication, Frobenius maps, norms and inversion.
//! * [`F2Repr`] — the representation F2 = `Fp3[y]/(y^2 - x·y + 1)` of
//!   Fig. 1 with the maps τ / τ⁻¹ between F1 and F2.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), field::FieldError> {
//! use bignum::BigUint;
//! use field::{FpContext, Fp6Context};
//!
//! // A small prime p ≡ 2 (mod 9) for illustration.
//! let fp = FpContext::new(&BigUint::from(101u64))?;
//! let fp6 = Fp6Context::new(fp.clone())?;
//! let a = fp6.from_u64_coeffs([1, 2, 3, 4, 5, 6]);
//! let inv = fp6.inv(&a).expect("non-zero");
//! assert_eq!(fp6.mul(&a, &inv), fp6.one());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod f2repr;
mod fp;
mod fp2;
mod fp3;
mod fp6;
mod linalg;
mod opcount;

pub use error::FieldError;
pub use f2repr::{F2Element, F2Repr};
pub use fp::{FpContext, FpElement};
pub use fp2::{Fp2Context, Fp2Element};
pub use fp3::{Fp3Context, Fp3Element};
pub use fp6::{Fp6Context, Fp6Element};
pub use linalg::FpMatrix;
pub use opcount::{OpCount, OpCounter};

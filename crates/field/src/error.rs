//! Error type for field construction and arithmetic.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing field contexts or performing operations
/// whose preconditions are not met.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldError {
    /// The modulus is not usable as a field characteristic (even, zero or one).
    InvalidModulus,
    /// The prime does not satisfy the congruence required by the extension
    /// (e.g. `p ≡ 2 mod 3` for `Fp2`, `p ≡ 2, 5 mod 9` for `Fp3`/`Fp6`).
    UnsupportedCongruence {
        /// Modulus of the congruence condition.
        modulus: u32,
        /// Residues that would have been accepted.
        expected: &'static [u32],
        /// Residue that was actually found.
        found: u32,
    },
    /// Attempted to invert the zero element.
    DivisionByZero,
    /// An element was not a member of the expected subgroup or subfield.
    NotInSubgroup,
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldError::InvalidModulus => write!(f, "modulus is not an odd prime greater than 3"),
            FieldError::UnsupportedCongruence {
                modulus,
                expected,
                found,
            } => write!(
                f,
                "prime residue {found} mod {modulus} unsupported (expected one of {expected:?})"
            ),
            FieldError::DivisionByZero => write!(f, "attempted to invert zero"),
            FieldError::NotInSubgroup => write!(f, "element is not in the expected subgroup"),
        }
    }
}

impl Error for FieldError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(FieldError::InvalidModulus.to_string().contains("modulus"));
        let e = FieldError::UnsupportedCongruence {
            modulus: 9,
            expected: &[2, 5],
            found: 1,
        };
        assert!(e.to_string().contains("mod 9"));
        assert!(FieldError::DivisionByZero.to_string().contains("zero"));
        assert!(FieldError::NotInSubgroup.to_string().contains("subgroup"));
    }
}

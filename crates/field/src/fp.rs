//! The base prime field `Fp`.

use std::fmt;
use std::sync::Arc;

use bignum::fixed::{MontgomeryContext, Uint};
use bignum::{BigUint, MontgomeryParams};
use rand::Rng;

use crate::error::FieldError;
use crate::opcount::{OpCount, OpCounter};

/// Context for arithmetic in the prime field `Fp`.
///
/// All elements are kept in Montgomery form internally (mirroring the
/// coprocessor, which works on Montgomery residues throughout an
/// exponentiation), and every multiplication / addition / subtraction /
/// inversion is recorded in the context's [`OpCounter`].
///
/// Cloning the context is cheap and clones share the same counter.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), field::FieldError> {
/// use bignum::BigUint;
/// use field::FpContext;
///
/// let fp = FpContext::new(&BigUint::from(1000000007u64))?;
/// let a = fp.from_u64(3);
/// let b = fp.inv(&a).expect("3 is invertible");
/// assert_eq!(fp.mul(&a, &b), fp.one());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct FpContext {
    inner: Arc<FpInner>,
}

struct FpInner {
    modulus: BigUint,
    mont: MontgomeryParams,
    /// Fixed-width fast backend for 256-bit primes. Populated exactly when
    /// the heap parameters use 8 u32 limbs, so both backends share the
    /// Montgomery radix `R = 2^256` and representations are
    /// interchangeable (see [`bignum::fixed::MontgomeryContext`]).
    fixed256: Option<MontgomeryContext<4>>,
    counter: Arc<OpCounter>,
}

/// An element of `Fp`, stored in Montgomery form.
///
/// Elements do not carry a back-reference to their context; mixing elements
/// from different [`FpContext`]s is a logic error (debug builds may panic on
/// limb-length mismatches).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct FpElement {
    mont: BigUint,
}

impl FpElement {
    /// Returns `true` if this element is zero.
    pub fn is_zero(&self) -> bool {
        self.mont.is_zero()
    }

    /// Raw Montgomery-form representation (used by the platform simulator to
    /// load operands into the coprocessor data memory).
    pub fn mont_repr(&self) -> &BigUint {
        &self.mont
    }

    /// Constructs an element directly from a Montgomery-form residue.
    ///
    /// This is the inverse of [`FpElement::mont_repr`] and is intended for
    /// the platform simulator; normal users should go through
    /// [`FpContext::from_biguint`].
    pub fn from_mont_repr(mont: BigUint) -> Self {
        FpElement { mont }
    }
}

impl fmt::Debug for FpElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FpElement(mont=0x{})", self.mont.to_hex())
    }
}

impl FpContext {
    /// Creates a context for the field of integers modulo `p`.
    ///
    /// `p` must be odd and greater than 3; primality is the caller's
    /// responsibility (parameter generation in the `ceilidh` crate uses
    /// [`bignum::is_prime`]).
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::InvalidModulus`] if `p` is even or `<= 3`.
    pub fn new(p: &BigUint) -> Result<Self, FieldError> {
        if p.is_even() || *p <= BigUint::from(3u64) {
            return Err(FieldError::InvalidModulus);
        }
        let mont = MontgomeryParams::new(p).ok_or(FieldError::InvalidModulus)?;
        let fixed256 = (mont.num_limbs() == 8)
            .then(|| MontgomeryContext::new(p))
            .flatten();
        Ok(FpContext {
            inner: Arc::new(FpInner {
                modulus: p.clone(),
                mont,
                fixed256,
                counter: OpCounter::new(),
            }),
        })
    }

    /// The field characteristic `p`.
    pub fn modulus(&self) -> &BigUint {
        &self.inner.modulus
    }

    /// Bit length of the modulus (e.g. 170 for the paper's torus field).
    pub fn bit_len(&self) -> usize {
        self.inner.modulus.bit_len()
    }

    /// The residue of `p` modulo `m` as a small integer.
    pub fn modulus_mod(&self, m: u32) -> u32 {
        (&self.inner.modulus % &BigUint::from(m))
            .to_u64()
            .unwrap_or(0) as u32
    }

    /// The Montgomery parameters backing this field (exposed for the
    /// platform simulator, which replays the same constants in microcode).
    pub fn montgomery(&self) -> &MontgomeryParams {
        &self.inner.mont
    }

    /// The fixed-width (4×u64 limb) Montgomery context backing this field,
    /// when the modulus is a 256-bit prime — `None` otherwise.
    ///
    /// The fixed backend shares the Montgomery radix `R = 2^256` with
    /// [`FpContext::montgomery`], so an [`FpElement`]'s `mont_repr` is also
    /// its fixed-backend Montgomery form (only the limb packing differs).
    /// [`FpContext::mul`]/[`FpContext::square`] single products and the
    /// [`FpContext::exp`] / [`FpContext::inv`] square-and-multiply loops
    /// all route through it automatically; `ecc` uses this accessor to run
    /// whole scalar-mult ladders on the stack. A context built by
    /// [`FpContext::heap_only`] opts out, which is how the benchmark
    /// baselines stay on the `BigUint` path.
    pub fn fixed256(&self) -> Option<&MontgomeryContext<4>> {
        self.inner.fixed256.as_ref()
    }

    /// A twin of this context with the fixed-width backend disabled: same
    /// modulus, same Montgomery constants, and the **same shared operation
    /// counter**, but every product runs on the heap `BigUint` path.
    ///
    /// This exists for honest baselines: `fixed_vs_heap` benches and
    /// `scalar_mul_reference` must measure the heap implementation, not the
    /// fixed backend against itself.
    pub fn heap_only(&self) -> FpContext {
        FpContext {
            inner: Arc::new(FpInner {
                modulus: self.inner.modulus.clone(),
                mont: self.inner.mont.clone(),
                fixed256: None,
                counter: Arc::clone(&self.inner.counter),
            }),
        }
    }

    /// The shared operation counter.
    pub fn counter(&self) -> &Arc<OpCounter> {
        &self.inner.counter
    }

    /// Snapshot of the operation counts recorded so far.
    pub fn op_count(&self) -> OpCount {
        self.inner.counter.snapshot()
    }

    /// Resets the operation counters to zero.
    pub fn reset_op_count(&self) {
        self.inner.counter.reset();
    }

    /// The additive identity.
    pub fn zero(&self) -> FpElement {
        FpElement {
            mont: BigUint::zero(),
        }
    }

    /// The multiplicative identity.
    pub fn one(&self) -> FpElement {
        FpElement {
            mont: self.inner.mont.one_mont(),
        }
    }

    /// Embeds an arbitrary integer (reduced modulo `p`).
    pub fn from_biguint(&self, v: &BigUint) -> FpElement {
        FpElement {
            mont: self.inner.mont.to_mont(v),
        }
    }

    /// Embeds a small integer.
    pub fn from_u64(&self, v: u64) -> FpElement {
        self.from_biguint(&BigUint::from(v))
    }

    /// Embeds a signed small integer (negative values wrap modulo `p`).
    pub fn from_i64(&self, v: i64) -> FpElement {
        if v >= 0 {
            self.from_u64(v as u64)
        } else {
            self.neg(&self.from_u64(v.unsigned_abs()))
        }
    }

    /// Returns the canonical (non-Montgomery) residue of an element.
    pub fn to_biguint(&self, a: &FpElement) -> BigUint {
        self.inner.mont.from_mont(&a.mont)
    }

    /// Uniformly random field element.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> FpElement {
        self.from_biguint(&BigUint::random_below(rng, &self.inner.modulus))
    }

    /// Modular addition.
    pub fn add(&self, a: &FpElement, b: &FpElement) -> FpElement {
        self.inner.counter.record_add();
        let s = &a.mont + &b.mont;
        FpElement {
            mont: if s >= self.inner.modulus {
                &s - &self.inner.modulus
            } else {
                s
            },
        }
    }

    /// Modular subtraction.
    pub fn sub(&self, a: &FpElement, b: &FpElement) -> FpElement {
        self.inner.counter.record_sub();
        FpElement {
            mont: if a.mont >= b.mont {
                &a.mont - &b.mont
            } else {
                &(&a.mont + &self.inner.modulus) - &b.mont
            },
        }
    }

    /// Modular negation.
    pub fn neg(&self, a: &FpElement) -> FpElement {
        if a.is_zero() {
            return self.zero();
        }
        self.inner.counter.record_sub();
        FpElement {
            mont: &self.inner.modulus - &a.mont,
        }
    }

    /// Doubling (`a + a`), counted as one addition.
    pub fn double(&self, a: &FpElement) -> FpElement {
        self.add(a, a)
    }

    /// Modular multiplication (one Montgomery multiplication).
    ///
    /// For 256-bit primes the product runs on the fixed-width backend;
    /// residues are bit-identical to the heap path because both backends
    /// share the Montgomery radix.
    pub fn mul(&self, a: &FpElement, b: &FpElement) -> FpElement {
        self.inner.counter.record_mul();
        if let Some(ctx) = self.inner.fixed256.as_ref() {
            if let (Some(a_f), Some(b_f)) = (
                Uint::<4>::from_biguint(&a.mont),
                Uint::<4>::from_biguint(&b.mont),
            ) {
                return FpElement {
                    mont: ctx.mont_mul(&a_f, &b_f).to_biguint(),
                };
            }
        }
        FpElement {
            mont: self.inner.mont.mont_mul(&a.mont, &b.mont),
        }
    }

    /// Modular squaring (counted as a multiplication, as in the paper).
    pub fn square(&self, a: &FpElement) -> FpElement {
        self.mul(a, a)
    }

    /// Multiplication by a small constant via repeated addition (the
    /// coprocessor has no dedicated small-constant multiplier).
    pub fn mul_small(&self, a: &FpElement, k: u32) -> FpElement {
        let mut acc = self.zero();
        for _ in 0..k {
            acc = self.add(&acc, a);
        }
        acc
    }

    /// Modular exponentiation by square-and-multiply.
    ///
    /// For 256-bit primes the whole loop runs on the fixed-width backend
    /// (no heap allocation per step); the recorded operation counts and the
    /// result are identical to the heap path.
    pub fn exp(&self, base: &FpElement, exp: &BigUint) -> FpElement {
        if let Some(ctx) = self.inner.fixed256.as_ref() {
            if let Some(base_f) = Uint::<4>::from_biguint(&base.mont) {
                let mut acc = ctx.one_mont();
                for i in (0..exp.bit_len()).rev() {
                    self.inner.counter.record_mul();
                    acc = ctx.mont_mul(&acc, &acc);
                    if exp.bit(i) {
                        self.inner.counter.record_mul();
                        acc = ctx.mont_mul(&acc, &base_f);
                    }
                }
                return FpElement {
                    mont: acc.to_biguint(),
                };
            }
        }
        let mut acc = self.one();
        for i in (0..exp.bit_len()).rev() {
            acc = self.square(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Batched modular exponentiation: `out[i] = pairs[i].0 ^ pairs[i].1`.
    ///
    /// On 256-bit primes the squaring ladders run **lane-parallel** on the
    /// fixed backend ([`bignum::fixed::MontgomeryContext::mont_pow_batch`],
    /// four lanes per pass) so batch traffic amortizes host wall-clock; a
    /// trailing partial chunk — and every element on non-256-bit fields or
    /// with an exponent wider than 256 bits — falls back to the serial
    /// [`FpContext::exp`] loop.
    ///
    /// Results are bit-identical to calling `exp` element by element, and
    /// so are the recorded operation counts (one multiplication per
    /// squaring plus one per set exponent bit, **per element** — the batch
    /// kernel's lane-lockstep padding squarings are not modeled work).
    pub fn exp_batch(&self, pairs: &[(FpElement, BigUint)]) -> Vec<FpElement> {
        const LANES: usize = 4;
        let mut out: Vec<Option<FpElement>> = vec![None; pairs.len()];
        let mut lanes: Vec<(usize, Uint<4>, Uint<4>)> = Vec::new();
        if let Some(ctx) = self.inner.fixed256.as_ref() {
            for (i, (base, exp)) in pairs.iter().enumerate() {
                if let (Some(b), Some(e)) = (
                    Uint::<4>::from_biguint(&base.mont),
                    Uint::<4>::from_biguint(exp),
                ) {
                    lanes.push((i, b, e));
                }
            }
            for group in lanes.chunks(LANES) {
                if let [l0, l1, l2, l3] = group {
                    let pow =
                        ctx.mont_pow_batch(&[l0.1, l1.1, l2.1, l3.1], &[l0.2, l1.2, l2.2, l3.2]);
                    for (lane, (i, _, _)) in group.iter().enumerate() {
                        self.record_serial_exp_ops(&pairs[*i].1);
                        out[*i] = Some(FpElement {
                            mont: pow[lane].to_biguint(),
                        });
                    }
                }
            }
        }
        for (i, (base, exp)) in pairs.iter().enumerate() {
            if out[i].is_none() {
                out[i] = Some(self.exp(base, exp));
            }
        }
        out.into_iter()
            .map(|e| e.expect("every slot filled"))
            .collect()
    }

    /// Records what the serial square-and-multiply loop would record for
    /// exponent `exp` — the batch entry points keep the modeled operation
    /// counts identical to their serial counterparts.
    fn record_serial_exp_ops(&self, exp: &BigUint) {
        for i in 0..exp.bit_len() {
            self.inner.counter.record_mul();
            if exp.bit(i) {
                self.inner.counter.record_mul();
            }
        }
    }

    /// Batched modular inversion by **Montgomery's trick**: one Fermat
    /// inversion plus `3(n-1)` multiplications for the whole batch of `n`
    /// non-zero elements, instead of one Fermat inversion each. Zero
    /// elements yield `None` without disturbing their neighbours.
    ///
    /// Results are bit-identical to calling [`FpContext::inv`] element by
    /// element, and so are the recorded operation counts: one inversion
    /// per non-zero element and no multiplications — inversion stays its
    /// own primitive (the trick's internal products are host bookkeeping,
    /// not modeled field work). On 256-bit primes the chain runs on the
    /// fixed backend; other fields use the heap Montgomery parameters.
    pub fn inv_batch(&self, elems: &[FpElement]) -> Vec<Option<FpElement>> {
        let live: Vec<usize> = (0..elems.len()).filter(|&i| !elems[i].is_zero()).collect();
        for _ in &live {
            self.inner.counter.record_inv();
        }
        let mut out: Vec<Option<FpElement>> = vec![None; elems.len()];
        if live.is_empty() {
            return out;
        }
        if let Some(ctx) = self.inner.fixed256.as_ref() {
            let mut values: Vec<Uint<4>> = live
                .iter()
                .map(|&i| {
                    Uint::<4>::from_biguint(&elems[i].mont)
                        .expect("256-bit field residue fits in 4 limbs")
                })
                .collect();
            let mut scratch = vec![Uint::<4>::ZERO; values.len()];
            let ok = ctx.mont_inv_batch(&mut values, &mut scratch);
            debug_assert!(ok, "non-zero elements invert");
            for (slot, inv) in live.iter().zip(values) {
                out[*slot] = Some(FpElement {
                    mont: inv.to_biguint(),
                });
            }
            return out;
        }
        // Heap path: the same prefix-product chain on the raw Montgomery
        // parameters (deliberately uncounted — see the doc note above).
        let mont = &self.inner.mont;
        let mut prefix: Vec<BigUint> = Vec::with_capacity(live.len());
        for &i in &live {
            prefix.push(match prefix.last() {
                None => elems[i].mont.clone(),
                Some(acc) => mont.mont_mul(acc, &elems[i].mont),
            });
        }
        let exp = &self.inner.modulus - &BigUint::from(2u64);
        let mut inv = mont.mont_pow(prefix.last().expect("live is non-empty"), &exp);
        for idx in (1..live.len()).rev() {
            out[live[idx]] = Some(FpElement {
                mont: mont.mont_mul(&inv, &prefix[idx - 1]),
            });
            inv = mont.mont_mul(&inv, &elems[live[idx]].mont);
        }
        out[live[0]] = Some(FpElement { mont: inv });
        out
    }

    /// Modular inversion via Fermat's little theorem. Returns `None` for zero.
    pub fn inv(&self, a: &FpElement) -> Option<FpElement> {
        if a.is_zero() {
            return None;
        }
        self.inner.counter.record_inv();
        // The exponentiation's internal multiplications are deliberately not
        // double-counted: the paper treats inversion as its own primitive.
        if let Some(ctx) = self.inner.fixed256.as_ref() {
            if let Some(a_f) = Uint::<4>::from_biguint(&a.mont) {
                let inv = ctx
                    .mont_inv_prime(&a_f)
                    .expect("non-zero element stays non-zero in fixed form");
                return Some(FpElement {
                    mont: inv.to_biguint(),
                });
            }
        }
        let exp = &self.inner.modulus - &BigUint::from(2u64);
        let mut acc = self.one();
        for i in (0..exp.bit_len()).rev() {
            acc = FpElement {
                mont: self.inner.mont.mont_mul(&acc.mont, &acc.mont),
            };
            if exp.bit(i) {
                acc = FpElement {
                    mont: self.inner.mont.mont_mul(&acc.mont, &a.mont),
                };
            }
        }
        Some(acc)
    }

    /// Returns `true` if two contexts describe the same field.
    pub fn same_field(&self, other: &FpContext) -> bool {
        self.inner.modulus == other.inner.modulus
    }

    /// Euler's criterion: returns `true` if `a` is a non-zero quadratic
    /// residue modulo `p`.
    pub fn is_square(&self, a: &FpElement) -> bool {
        if a.is_zero() {
            return false;
        }
        let exp = (&self.inner.modulus - &BigUint::one()).shr_bits(1);
        self.exp(a, &exp) == self.one()
    }

    /// Modular square root by Tonelli–Shanks. Returns `None` if `a` is a
    /// non-residue; `Some(0)` for zero. When a root `r` exists, `p - r` is
    /// the other root.
    pub fn sqrt(&self, a: &FpElement) -> Option<FpElement> {
        if a.is_zero() {
            return Some(self.zero());
        }
        if !self.is_square(a) {
            return None;
        }
        let p = &self.inner.modulus;
        let one = BigUint::one();
        // Fast path: p ≡ 3 (mod 4) → a^((p+1)/4).
        if (p % &BigUint::from(4u64)).to_u64() == Some(3) {
            let exp = (p + &one).shr_bits(2);
            return Some(self.exp(a, &exp));
        }
        // Tonelli–Shanks. Write p - 1 = q · 2^s with q odd.
        let p_minus_one = p - &one;
        let s = p_minus_one.trailing_zeros();
        let q = p_minus_one.shr_bits(s);
        // Find a quadratic non-residue z (deterministic scan; half of all
        // elements qualify so this terminates quickly).
        let mut z = self.from_u64(2);
        while self.is_square(&z) {
            z = self.add(&z, &self.one());
        }
        let mut m = s;
        let mut c = self.exp(&z, &q);
        let mut t = self.exp(a, &q);
        let mut r = self.exp(a, &(&q + &one).shr_bits(1));
        while t != self.one() {
            // Find the least i with t^(2^i) = 1.
            let mut i = 0usize;
            let mut probe = t.clone();
            while probe != self.one() {
                probe = self.square(&probe);
                i += 1;
                if i == m {
                    return None; // unreachable for residues; defensive
                }
            }
            let mut b = c.clone();
            for _ in 0..(m - i - 1) {
                b = self.square(&b);
            }
            m = i;
            c = self.square(&b);
            t = self.mul(&t, &c);
            r = self.mul(&r, &b);
        }
        Some(r)
    }
}

impl fmt::Debug for FpContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FpContext(p=0x{}, {} bits)",
            self.inner.modulus.to_hex(),
            self.bit_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> FpContext {
        FpContext::new(&BigUint::from(1_000_000_007u64)).unwrap()
    }

    #[test]
    fn rejects_bad_modulus() {
        assert_eq!(
            FpContext::new(&BigUint::from(10u64)).unwrap_err(),
            FieldError::InvalidModulus
        );
        assert_eq!(
            FpContext::new(&BigUint::from(3u64)).unwrap_err(),
            FieldError::InvalidModulus
        );
    }

    #[test]
    fn add_sub_roundtrip() {
        let fp = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let a = fp.random(&mut rng);
            let b = fp.random(&mut rng);
            assert_eq!(fp.sub(&fp.add(&a, &b), &b), a);
            assert_eq!(fp.add(&fp.sub(&a, &b), &b), a);
        }
    }

    #[test]
    fn neg_and_double() {
        let fp = ctx();
        let a = fp.from_u64(17);
        assert_eq!(fp.add(&a, &fp.neg(&a)), fp.zero());
        assert_eq!(fp.neg(&fp.zero()), fp.zero());
        assert_eq!(fp.double(&a), fp.from_u64(34));
        assert_eq!(fp.mul_small(&a, 5), fp.from_u64(85));
        assert_eq!(fp.mul_small(&a, 0), fp.zero());
    }

    #[test]
    fn mul_matches_plain_arithmetic() {
        let fp = ctx();
        let a = fp.from_u64(123_456_789);
        let b = fp.from_u64(987_654_321);
        let expected = (123_456_789u128 * 987_654_321u128 % 1_000_000_007u128) as u64;
        assert_eq!(fp.to_biguint(&fp.mul(&a, &b)).to_u64(), Some(expected));
    }

    #[test]
    fn from_i64_wraps() {
        let fp = ctx();
        assert_eq!(fp.from_i64(-1), fp.from_u64(1_000_000_006));
        assert_eq!(fp.from_i64(5), fp.from_u64(5));
    }

    #[test]
    fn inversion_and_exponentiation() {
        let fp = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let a = fp.random(&mut rng);
            if a.is_zero() {
                continue;
            }
            let inv = fp.inv(&a).unwrap();
            assert_eq!(fp.mul(&a, &inv), fp.one());
        }
        assert!(fp.inv(&fp.zero()).is_none());
        // Fermat: a^(p-1) = 1.
        let a = fp.from_u64(2);
        let pm1 = fp.modulus() - &BigUint::one();
        assert_eq!(fp.exp(&a, &pm1), fp.one());
        assert_eq!(fp.exp(&a, &BigUint::zero()), fp.one());
    }

    #[test]
    fn op_counter_tracks_operations() {
        let fp = ctx();
        fp.reset_op_count();
        let a = fp.from_u64(3);
        let b = fp.from_u64(5);
        let _ = fp.mul(&a, &b);
        let _ = fp.add(&a, &b);
        let _ = fp.sub(&a, &b);
        let _ = fp.inv(&a);
        let c = fp.op_count();
        assert_eq!(c.mul, 1);
        assert_eq!(c.add, 1);
        assert_eq!(c.sub, 1);
        assert_eq!(c.inv, 1);
    }

    #[test]
    fn montgomery_repr_roundtrip() {
        let fp = ctx();
        let a = fp.from_u64(424_242);
        let repr = a.mont_repr().clone();
        assert_eq!(FpElement::from_mont_repr(repr), a);
    }

    #[test]
    fn modulus_mod_small() {
        let fp = ctx();
        assert_eq!(fp.modulus_mod(9), (1_000_000_007u64 % 9) as u32);
    }

    #[test]
    fn sqrt_roundtrip_both_congruence_classes() {
        // 1000000007 ≡ 3 (mod 4): fast path. 1000000009 ≡ 1 (mod 4): Tonelli–Shanks.
        for p in [1_000_000_007u64, 1_000_000_009] {
            let fp = FpContext::new(&BigUint::from(p)).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(p);
            let mut found_nonresidue = false;
            for _ in 0..20 {
                let a = fp.random(&mut rng);
                if a.is_zero() {
                    continue;
                }
                let sq = fp.square(&a);
                assert!(fp.is_square(&sq));
                let r = fp.sqrt(&sq).expect("square has a root");
                assert!(r == a || r == fp.neg(&a), "root must be ±a (p = {p})");
                if !fp.is_square(&a) {
                    found_nonresidue = true;
                    assert!(fp.sqrt(&a).is_none());
                }
            }
            assert!(found_nonresidue, "expected to see a non-residue");
            assert_eq!(fp.sqrt(&fp.zero()), Some(fp.zero()));
            assert!(!fp.is_square(&fp.zero()));
        }
    }

    #[test]
    fn fixed256_fast_path_matches_heap_loops() {
        // secp256k1's p: 8 u32 limbs, so the fixed backend engages.
        let p =
            BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
                .unwrap();
        let fp = FpContext::new(&p).unwrap();
        assert!(fp.fixed256().is_some());
        assert!(ctx().fixed256().is_none(), "small primes stay on the heap");

        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let a = fp.random(&mut rng);
            let e = BigUint::random_below(&mut rng, &p);
            // Reference: the heap Montgomery exponentiation on the plain residue.
            let expected = fp.montgomery().mod_exp(&fp.to_biguint(&a), &e);
            assert_eq!(fp.to_biguint(&fp.exp(&a, &e)), expected);
            if !a.is_zero() {
                let expected_inv = fp.montgomery().mod_inv_prime(&fp.to_biguint(&a)).unwrap();
                assert_eq!(fp.to_biguint(&fp.inv(&a).unwrap()), expected_inv);
            }
        }

        // The fast path records the same operation counts as the heap loop:
        // one mul per squaring plus one per set exponent bit.
        fp.reset_op_count();
        let e = BigUint::from(0b1011u64);
        let _ = fp.exp(&fp.from_u64(7), &e);
        assert_eq!(fp.op_count().mul, 4 + 3);
        fp.reset_op_count();
        let _ = fp.inv(&fp.from_u64(7));
        let c = fp.op_count();
        assert_eq!((c.inv, c.mul), (1, 0), "inversion stays its own primitive");
    }

    #[test]
    fn single_products_route_fixed_and_heap_twin_matches() {
        let p =
            BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
                .unwrap();
        let fp = FpContext::new(&p).unwrap();
        let heap = fp.heap_only();
        assert!(fp.fixed256().is_some());
        assert!(heap.fixed256().is_none(), "twin must stay on the heap");
        assert!(fp.same_field(&heap));

        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let a = fp.random(&mut rng);
            let b = fp.random(&mut rng);
            // Fixed-backend product bit-identical to the heap product (the
            // backends share the Montgomery radix), and both are the plain
            // modular product.
            assert_eq!(fp.mul(&a, &b), heap.mul(&a, &b));
            assert_eq!(fp.square(&a), heap.square(&a));
            let expected = (&fp.to_biguint(&a) * &fp.to_biguint(&b)) % &p;
            assert_eq!(fp.to_biguint(&fp.mul(&a, &b)), expected);
        }

        // The twin shares the counter, so op-count accounting is unchanged
        // whichever context executes.
        fp.reset_op_count();
        let a = fp.from_u64(3);
        let _ = fp.mul(&a, &a);
        let _ = heap.mul(&a, &a);
        assert_eq!(fp.op_count().mul, 2);
    }

    #[test]
    fn exp_batch_matches_serial_on_both_backends() {
        let p =
            BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
                .unwrap();
        for fp in [FpContext::new(&p).unwrap(), ctx()] {
            let heap = fp.heap_only();
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            // 7 pairs: exercises a full lane group plus a partial trailing
            // chunk, with edge exponents {0, 1, p-1} mixed in.
            let mut pairs: Vec<(FpElement, BigUint)> = vec![
                (fp.random(&mut rng), BigUint::zero()),
                (fp.random(&mut rng), BigUint::one()),
                (fp.random(&mut rng), fp.modulus() - &BigUint::one()),
            ];
            for _ in 0..4 {
                let e = BigUint::random_below(&mut rng, fp.modulus());
                pairs.push((fp.random(&mut rng), e));
            }
            let serial: Vec<FpElement> = pairs.iter().map(|(b, e)| heap.exp(b, e)).collect();
            fp.reset_op_count();
            let expected: Vec<FpElement> = pairs.iter().map(|(b, e)| fp.exp(b, e)).collect();
            let serial_count = fp.op_count();
            assert_eq!(expected, serial, "fixed serial path matches heap");
            fp.reset_op_count();
            let batch = fp.exp_batch(&pairs);
            assert_eq!(batch, serial, "batch bit-identical to serial");
            assert_eq!(
                fp.op_count().mul,
                serial_count.mul,
                "batch records serial-equivalent mul counts"
            );
            assert!(fp.exp_batch(&[]).is_empty());
            let single = fp.exp_batch(&pairs[..1]);
            assert_eq!(single, serial[..1]);
        }
    }

    #[test]
    fn inv_batch_matches_serial_and_skips_zeros() {
        let p =
            BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
                .unwrap();
        for fp in [FpContext::new(&p).unwrap(), ctx()] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(6);
            let mut elems: Vec<FpElement> = (0..6).map(|_| fp.random(&mut rng)).collect();
            elems.insert(2, fp.zero());
            elems.push(fp.from_u64(1));
            fp.reset_op_count();
            let batch = fp.inv_batch(&elems);
            let count = fp.op_count();
            for (e, inv) in elems.iter().zip(&batch) {
                assert_eq!(inv.as_ref(), fp.inv(e).as_ref(), "batch matches serial inv");
                if let Some(inv) = inv {
                    assert_eq!(fp.mul(e, inv), fp.one());
                }
            }
            assert!(batch[2].is_none(), "zero element yields None");
            // One recorded inversion per non-zero element, no recorded muls:
            // inversion stays its own primitive.
            assert_eq!((count.inv, count.mul), (7, 0));
            assert!(fp.inv_batch(&[]).is_empty());
            assert_eq!(fp.inv_batch(&[fp.zero()]), vec![None]);
            let one_batch = fp.inv_batch(&elems[..1]);
            assert_eq!(one_batch[0], fp.inv(&elems[0]));
        }
    }

    #[test]
    fn contexts_share_counters_across_clones() {
        let fp = ctx();
        let fp2 = fp.clone();
        fp.reset_op_count();
        let _ = fp2.mul(&fp2.from_u64(2), &fp2.from_u64(3));
        assert_eq!(fp.op_count().mul, 1);
        assert!(fp.same_field(&fp2));
    }
}

//! Operation counting.
//!
//! Section 2.2 of the paper counts field operations in `Fp` (multiplications
//! `M` and additions/subtractions `A`) to derive the cost of one `Fp6`
//! multiplication (18M + 60A), which in turn drives the Type-A/Type-B cycle
//! analysis. The [`OpCounter`] mirrors that accounting so the library can
//! report the same breakdown and feed the `platform` cycle model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A snapshot of operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount {
    /// Modular multiplications (squarings included).
    pub mul: u64,
    /// Modular additions.
    pub add: u64,
    /// Modular subtractions.
    pub sub: u64,
    /// Modular inversions.
    pub inv: u64,
}

impl OpCount {
    /// Additions plus subtractions — the paper's `A` figure.
    pub fn additions_total(&self) -> u64 {
        self.add + self.sub
    }

    /// Difference of two snapshots (`self - earlier`), useful for measuring
    /// the cost of a single composite operation.
    pub fn since(&self, earlier: &OpCount) -> OpCount {
        OpCount {
            mul: self.mul - earlier.mul,
            add: self.add - earlier.add,
            sub: self.sub - earlier.sub,
            inv: self.inv - earlier.inv,
        }
    }
}

impl std::fmt::Display for OpCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}M + {}A + {}S + {}I",
            self.mul, self.add, self.sub, self.inv
        )
    }
}

/// Thread-safe counter of prime-field operations, shared by all elements of
/// an [`FpContext`](crate::FpContext) clone family.
#[derive(Debug, Default)]
pub struct OpCounter {
    mul: AtomicU64,
    add: AtomicU64,
    sub: AtomicU64,
    inv: AtomicU64,
}

impl OpCounter {
    /// Creates a fresh, shareable counter starting at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(OpCounter::default())
    }

    /// Records one modular multiplication.
    pub fn record_mul(&self) {
        self.mul.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one modular addition.
    pub fn record_add(&self) {
        self.add.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one modular subtraction.
    pub fn record_sub(&self) {
        self.sub.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one modular inversion.
    pub fn record_inv(&self) {
        self.inv.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the current counts.
    pub fn snapshot(&self) -> OpCount {
        OpCount {
            mul: self.mul.load(Ordering::Relaxed),
            add: self.add.load(Ordering::Relaxed),
            sub: self.sub.load(Ordering::Relaxed),
            inv: self.inv.load(Ordering::Relaxed),
        }
    }

    /// Resets all counts to zero.
    pub fn reset(&self) {
        self.mul.store(0, Ordering::Relaxed);
        self.add.store(0, Ordering::Relaxed);
        self.sub.store(0, Ordering::Relaxed);
        self.inv.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let c = OpCounter::new();
        c.record_mul();
        c.record_mul();
        c.record_add();
        c.record_sub();
        c.record_inv();
        let s = c.snapshot();
        assert_eq!(
            s,
            OpCount {
                mul: 2,
                add: 1,
                sub: 1,
                inv: 1
            }
        );
        assert_eq!(s.additions_total(), 2);
        c.reset();
        assert_eq!(c.snapshot(), OpCount::default());
    }

    #[test]
    fn since_computes_deltas() {
        let before = OpCount {
            mul: 3,
            add: 5,
            sub: 1,
            inv: 0,
        };
        let after = OpCount {
            mul: 21,
            add: 65,
            sub: 2,
            inv: 1,
        };
        let delta = after.since(&before);
        assert_eq!(
            delta,
            OpCount {
                mul: 18,
                add: 60,
                sub: 1,
                inv: 1
            }
        );
        assert_eq!(delta.to_string(), "18M + 60A + 1S + 1I");
    }

    #[test]
    fn counter_is_shareable_across_threads() {
        let c = OpCounter::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.record_mul();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().mul, 400);
    }
}

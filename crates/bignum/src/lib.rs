//! Multi-precision integer arithmetic for the torus-FPGA reproduction.
//!
//! This crate provides the arbitrary-precision unsigned integer type
//! [`BigUint`], the radix-2^w primitives the DATE 2008 paper builds on
//! (Montgomery modular multiplication in its FIOS, CIOS and SOS variants),
//! generic modular arithmetic, extended GCD / modular inversion and
//! Miller–Rabin based prime generation.
//!
//! Every higher layer of the reproduction (the `field` tower, the `ceilidh`
//! torus cryptosystem, the `ecc` and `rsa` comparators and the `platform`
//! coprocessor simulator) is built on, and verified against, this crate.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), bignum::ParseBigUintError> {
//! use bignum::{BigUint, MontgomeryParams};
//!
//! let p = BigUint::from_hex("fffffffffffffffffffffffffffffffeffffac73")?;
//! let a = BigUint::from(123456789u64);
//! let b = BigUint::from(987654321u64);
//!
//! let mont = MontgomeryParams::new(&p).expect("odd modulus");
//! let am = mont.to_mont(&a);
//! let bm = mont.to_mont(&b);
//! let prod = mont.from_mont(&mont.mont_mul(&am, &bm));
//! assert_eq!(prod, (&a * &b) % &p);
//! # Ok(())
//! # }
//! ```

// Denied, not forbidden: the AVX-512 IFMA batch kernels (`fixed::ifma`)
// and their dispatch site are the only opt-outs, each carrying its own
// `#[allow(unsafe_code)]` and SAFETY comments. Everything else stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fixed;
mod gcd;
mod limb;
mod modular;
mod montgomery;
mod prime;
mod uint;

pub use error::{DivideByZeroError, ParseBigUintError};
pub use gcd::{extended_gcd, gcd, ExtendedGcd};
pub use limb::{DoubleLimb, Limb, LIMB_BITS};
pub use modular::{mod_add, mod_exp, mod_inv, mod_mul, mod_neg, mod_sub};
pub use montgomery::{MontgomeryParams, ReductionKind};
pub use prime::{gen_prime, gen_prime_congruent, gen_safe_prime, is_prime, miller_rabin};
pub use uint::BigUint;

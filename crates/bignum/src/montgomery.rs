//! Montgomery modular multiplication (Algorithm 1 of the paper).
//!
//! The paper performs all modular multiplications with a radix-2^w
//! Montgomery algorithm; the coprocessor microcode implements the FIOS
//! (Finely Integrated Operand Scanning) schedule of Koç, Acar and Kaliski.
//! This module provides host-side reference implementations of FIOS, CIOS
//! and SOS so that the simulated coprocessor (crate `platform`) can be
//! verified operand-for-operand, and so the benchmark harness can ablate
//! over the scanning variants.

use crate::limb::{adc, inv_mod_limb, mac, Limb, LIMB_BITS};
use crate::uint::BigUint;

/// Operand-scanning variant of Montgomery multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionKind {
    /// Finely Integrated Operand Scanning (the paper's Algorithm 1).
    Fios,
    /// Coarsely Integrated Operand Scanning.
    Cios,
    /// Separated Operand Scanning (multiply fully, then reduce).
    Sos,
}

/// Precomputed per-modulus constants for Montgomery arithmetic.
///
/// # Example
///
/// ```
/// use bignum::{BigUint, MontgomeryParams};
///
/// let p = BigUint::from(1000000007u64);
/// let mont = MontgomeryParams::new(&p).expect("odd modulus");
/// let x = BigUint::from(123u64);
/// let y = BigUint::from(456u64);
/// let xm = mont.to_mont(&x);
/// let ym = mont.to_mont(&y);
/// assert_eq!(mont.from_mont(&mont.mont_mul(&xm, &ym)).to_u64(), Some(123 * 456));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontgomeryParams {
    modulus: BigUint,
    modulus_limbs: Vec<Limb>,
    s: usize,
    n0_inv: Limb,
    r_mod: BigUint,
    r2: BigUint,
}

impl MontgomeryParams {
    /// Creates Montgomery parameters for an odd modulus `> 1`.
    ///
    /// Returns `None` if the modulus is even or `<= 1`.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_zero() || modulus.is_one() {
            return None;
        }
        let s = modulus.limbs().len();
        let n0_inv = inv_mod_limb(modulus.limbs()[0]);
        let r = BigUint::one().shl_bits(s * LIMB_BITS);
        let r_mod = &r % modulus;
        let r2 = &(&r_mod * &r_mod) % modulus;
        Some(MontgomeryParams {
            modulus: modulus.clone(),
            modulus_limbs: modulus.to_limbs_padded(s),
            s,
            n0_inv,
            r_mod,
            r2,
        })
    }

    /// The modulus these parameters were derived for.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Number of radix-2^32 limbs `s = ceil(n / w)` of the modulus.
    pub fn num_limbs(&self) -> usize {
        self.s
    }

    /// The constant `p' = -p^{-1} mod 2^w` of Algorithm 1.
    pub fn n0_inv(&self) -> Limb {
        self.n0_inv
    }

    /// `R mod p`, the Montgomery representation of 1.
    pub fn one_mont(&self) -> BigUint {
        self.r_mod.clone()
    }

    /// Converts a reduced residue into Montgomery form (`a * R mod p`).
    pub fn to_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(&(a % &self.modulus), &self.r2)
    }

    /// Converts a Montgomery-form value back to a plain residue.
    pub fn from_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &BigUint::one())
    }

    /// Montgomery product `a * b * R^{-1} mod p` using the FIOS schedule.
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.mont_mul_with(a, b, ReductionKind::Fios)
    }

    /// Montgomery product using an explicit operand-scanning variant.
    pub fn mont_mul_with(&self, a: &BigUint, b: &BigUint, kind: ReductionKind) -> BigUint {
        let x = a.to_limbs_padded(self.s);
        let y = b.to_limbs_padded(self.s);
        let t = match kind {
            ReductionKind::Fios => self.fios(&x, &y),
            ReductionKind::Cios => self.cios(&x, &y),
            ReductionKind::Sos => self.sos(&x, &y),
        };
        self.final_subtract(t)
    }

    /// Modular exponentiation `base^exp mod p` via Montgomery
    /// square-and-multiply (left-to-right).
    pub fn mod_exp(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let base_m = self.to_mont(base);
        let result_m = self.mont_pow(&base_m, exp);
        self.from_mont(&result_m)
    }

    /// Exponentiation of a Montgomery-form base, returning a Montgomery-form
    /// result.
    pub fn mont_pow(&self, base_mont: &BigUint, exp: &BigUint) -> BigUint {
        let mut acc = self.one_mont();
        for i in (0..exp.bit_len()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, base_mont);
            }
        }
        acc
    }

    /// Modular inverse via Fermat's little theorem (`a^{p-2} mod p`);
    /// only valid when the modulus is prime. Returns `None` for zero input.
    pub fn mod_inv_prime(&self, a: &BigUint) -> Option<BigUint> {
        let a = a % &self.modulus;
        if a.is_zero() {
            return None;
        }
        let exp = &self.modulus - &BigUint::from(2u64);
        Some(self.mod_exp(&a, &exp))
    }

    fn final_subtract(&self, t: Vec<Limb>) -> BigUint {
        let z = BigUint::from_limbs(&t);
        if z >= self.modulus {
            &z - &self.modulus
        } else {
            z
        }
    }

    /// FIOS: one pass per word of `y`, multiplication and reduction finely
    /// interleaved (paper Algorithm 1).
    fn fios(&self, x: &[Limb], y: &[Limb]) -> Vec<Limb> {
        let s = self.s;
        let n = &self.modulus_limbs;
        let mut t = vec![0 as Limb; s + 2];
        for &y_i in y.iter().take(s) {
            // (C,S) = t[0] + x[0]*y[i]
            let (sum, mut carry_x) = mac(t[0], x[0], y_i, 0);
            // Propagate the multiplication carry into t[1..].
            add_carry_at(&mut t, 1, carry_x);
            let m = sum.wrapping_mul(self.n0_inv);
            // (C,S) = sum + m*n[0]; S is zero by construction.
            let (_, mut carry_m) = mac(sum, m, n[0], 0);
            carry_x = 0;
            for j in 1..s {
                let (sum, c1) = mac(t[j], x[j], y_i, carry_x);
                carry_x = c1;
                let (res, c2) = mac(sum, m, n[j], carry_m);
                carry_m = c2;
                t[j - 1] = res;
            }
            // Fold the final carries into the top words.
            let (sum, c) = adc(t[s], carry_x, carry_m);
            t[s - 1] = sum;
            let (sum, c2) = adc(t[s + 1], c, 0);
            t[s] = sum;
            debug_assert_eq!(c2, 0);
            t[s + 1] = 0;
        }
        t.truncate(s + 1);
        t
    }

    /// CIOS: alternate a full multiplication pass and a full reduction pass
    /// per word of `y`.
    fn cios(&self, x: &[Limb], y: &[Limb]) -> Vec<Limb> {
        let s = self.s;
        let n = &self.modulus_limbs;
        let mut t = vec![0 as Limb; s + 2];
        for &y_i in y.iter().take(s) {
            let mut carry = 0;
            for j in 0..s {
                let (lo, hi) = mac(t[j], x[j], y_i, carry);
                t[j] = lo;
                carry = hi;
            }
            let (lo, hi) = adc(t[s], carry, 0);
            t[s] = lo;
            t[s + 1] = hi;

            let m = t[0].wrapping_mul(self.n0_inv);
            let (_, mut carry) = mac(t[0], m, n[0], 0);
            for j in 1..s {
                let (lo, hi) = mac(t[j], m, n[j], carry);
                t[j - 1] = lo;
                carry = hi;
            }
            let (lo, hi) = adc(t[s], carry, 0);
            t[s - 1] = lo;
            t[s] = t[s + 1].wrapping_add(hi);
            t[s + 1] = 0;
        }
        t.truncate(s + 1);
        t
    }

    /// SOS: compute the full double-length product, then reduce it in a
    /// second phase.
    fn sos(&self, x: &[Limb], y: &[Limb]) -> Vec<Limb> {
        let s = self.s;
        let n = &self.modulus_limbs;
        let mut t = vec![0 as Limb; 2 * s + 1];
        for i in 0..s {
            let mut carry = 0;
            for j in 0..s {
                let (lo, hi) = mac(t[i + j], x[j], y[i], carry);
                t[i + j] = lo;
                carry = hi;
            }
            t[i + s] = carry;
        }
        for i in 0..s {
            let m = t[i].wrapping_mul(self.n0_inv);
            let mut carry = 0;
            for j in 0..s {
                let (lo, hi) = mac(t[i + j], m, n[j], carry);
                t[i + j] = lo;
                carry = hi;
            }
            add_carry_at(&mut t, i + s, carry);
        }
        t[s..].to_vec()
    }
}

/// Adds `carry` into `t[idx]`, rippling any further carries upward.
fn add_carry_at(t: &mut [Limb], mut idx: usize, mut carry: Limb) {
    while carry != 0 && idx < t.len() {
        let (sum, c) = adc(t[idx], carry, 0);
        t[idx] = sum;
        carry = c;
        idx += 1;
    }
    debug_assert_eq!(carry, 0, "carry overflowed the temporary buffer");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::mod_mul;
    use rand::SeedableRng;

    fn primes() -> Vec<BigUint> {
        vec![
            BigUint::from(97u64),
            BigUint::from(1_000_000_007u64),
            BigUint::from_hex("ffffffffffffffffffffffffffffffff000000000000000000000001").unwrap(),
            // A 170-bit prime-ish odd modulus (correct Montgomery arithmetic
            // does not require primality).
            BigUint::from_hex("3fffffffffffffffffffffffffffffffffffffffffb").unwrap(),
        ]
    }

    #[test]
    fn rejects_even_or_trivial_modulus() {
        assert!(MontgomeryParams::new(&BigUint::from(16u64)).is_none());
        assert!(MontgomeryParams::new(&BigUint::zero()).is_none());
        assert!(MontgomeryParams::new(&BigUint::one()).is_none());
        assert!(MontgomeryParams::new(&BigUint::from(15u64)).is_some());
    }

    #[test]
    fn to_from_mont_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for p in primes() {
            let mont = MontgomeryParams::new(&p).unwrap();
            for _ in 0..10 {
                let a = BigUint::random_below(&mut rng, &p);
                assert_eq!(mont.from_mont(&mont.to_mont(&a)), a);
            }
        }
    }

    #[test]
    fn all_variants_agree_with_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for p in primes() {
            let mont = MontgomeryParams::new(&p).unwrap();
            for _ in 0..10 {
                let a = BigUint::random_below(&mut rng, &p);
                let b = BigUint::random_below(&mut rng, &p);
                let expected = mod_mul(&a, &b, &p);
                let am = mont.to_mont(&a);
                let bm = mont.to_mont(&b);
                for kind in [ReductionKind::Fios, ReductionKind::Cios, ReductionKind::Sos] {
                    let got = mont.from_mont(&mont.mont_mul_with(&am, &bm, kind));
                    assert_eq!(got, expected, "variant {kind:?} modulus {p:?}");
                }
            }
        }
    }

    #[test]
    fn one_mont_is_identity() {
        for p in primes() {
            let mont = MontgomeryParams::new(&p).unwrap();
            let a = BigUint::from(123_456u64);
            let am = mont.to_mont(&a);
            assert_eq!(mont.mont_mul(&am, &mont.one_mont()), am);
        }
    }

    #[test]
    fn mod_exp_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for p in primes() {
            let mont = MontgomeryParams::new(&p).unwrap();
            for _ in 0..5 {
                let base = BigUint::random_below(&mut rng, &p);
                let exp = BigUint::random_bits(&mut rng, 64);
                assert_eq!(
                    mont.mod_exp(&base, &exp),
                    crate::modular::mod_exp(&base, &exp, &p)
                );
            }
        }
    }

    #[test]
    fn mod_inv_prime_works() {
        let p = BigUint::from(1_000_000_007u64);
        let mont = MontgomeryParams::new(&p).unwrap();
        let a = BigUint::from(123_456_789u64);
        let inv = mont.mod_inv_prime(&a).unwrap();
        assert!(mod_mul(&a, &inv, &p).is_one());
        assert!(mont.mod_inv_prime(&BigUint::zero()).is_none());
    }

    #[test]
    fn exponent_edge_cases() {
        let p = BigUint::from(97u64);
        let mont = MontgomeryParams::new(&p).unwrap();
        assert!(mont
            .mod_exp(&BigUint::from(5u64), &BigUint::zero())
            .is_one());
        assert_eq!(
            mont.mod_exp(&BigUint::from(5u64), &BigUint::one()).to_u64(),
            Some(5)
        );
    }
}

//! Fixed-width Montgomery arithmetic (CIOS, no allocation in the loop).

use super::modular::reduce_wide;
use super::uint::Uint;
use crate::limb::{carrying_add64, inv_mod_limb64, mac64};
use crate::BigUint;

/// Montgomery arithmetic over a fixed-width odd modulus, mirroring
/// [`MontgomeryParams`](crate::MontgomeryParams) at radix 2^64.
///
/// The Montgomery radix is `R = 2^(64·LIMBS)`. When the heap
/// [`MontgomeryParams`](crate::MontgomeryParams) for the same modulus has
/// `num_limbs() == 2·LIMBS` (true for any modulus whose bit length exceeds
/// `64·LIMBS - 32`, e.g. every 256-bit prime at `LIMBS = 4`), both backends
/// use the *same* `R`, so Montgomery representations are interchangeable
/// limb reinterpretations of each other and products are bit-identical.
///
/// Construction may allocate (it reduces with `BigUint`); every operation
/// afterwards — [`mont_mul`](Self::mont_mul) (a word-level CIOS schedule),
/// [`mont_pow`](Self::mont_pow), [`mod_exp`](Self::mod_exp),
/// [`mont_inv_prime`](Self::mont_inv_prime) — runs entirely on stack
/// arrays.
///
/// # Example
///
/// ```
/// use bignum::fixed::{MontgomeryContext, Uint};
/// use bignum::BigUint;
///
/// let p = BigUint::from(1_000_000_007u64);
/// let ctx = MontgomeryContext::<4>::new(&p).expect("odd modulus");
/// let a = Uint::from_u64(123_456_789);
/// let b = Uint::from_u64(987_654_321);
/// let prod = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
/// assert_eq!(
///     prod.to_biguint(),
///     (&a.to_biguint() * &b.to_biguint()) % &p
/// );
/// ```
#[derive(Clone, Debug)]
pub struct MontgomeryContext<const LIMBS: usize> {
    modulus: Uint<LIMBS>,
    /// `p' = -p^{-1} mod 2^64`, the CIOS per-modulus constant.
    n0_inv: u64,
    /// `R mod p` — the Montgomery representation of 1.
    r_mod: Uint<LIMBS>,
    /// `R^2 mod p` — the to-Montgomery conversion factor.
    r2: Uint<LIMBS>,
}

impl<const LIMBS: usize> MontgomeryContext<LIMBS> {
    /// Creates a context for an odd modulus `> 1` that fits in `LIMBS`
    /// 64-bit limbs.
    ///
    /// Returns `None` if the modulus is even, `<= 1`, or too wide. Setup
    /// uses heap arithmetic for the `R mod p` / `R² mod p` constants; the
    /// per-operation paths never allocate.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_zero() || modulus.is_one() {
            return None;
        }
        let m = Uint::<LIMBS>::from_biguint(modulus)?;
        let n0_inv = inv_mod_limb64(m.limbs()[0]);
        let r = BigUint::one().shl_bits(Uint::<LIMBS>::BITS);
        let r_mod = Uint::from_biguint(&(&r % modulus)).expect("R mod p < p fits");
        let r2 = Uint::from_biguint(&(&(&r * &r) % modulus)).expect("R^2 mod p < p fits");
        Some(MontgomeryContext {
            modulus: m,
            n0_inv,
            r_mod,
            r2,
        })
    }

    /// The modulus this context was derived for.
    pub fn modulus(&self) -> &Uint<LIMBS> {
        &self.modulus
    }

    /// The constant `p' = -p^{-1} mod 2^64`.
    pub fn n0_inv(&self) -> u64 {
        self.n0_inv
    }

    /// `R mod p`, the Montgomery representation of 1.
    pub fn one_mont(&self) -> Uint<LIMBS> {
        self.r_mod
    }

    /// `R² mod p`, the to-Montgomery conversion factor.
    pub fn r2(&self) -> Uint<LIMBS> {
        self.r2
    }

    /// Converts a residue into Montgomery form (`a * R mod p`), reducing
    /// the operand first when necessary.
    pub fn to_mont(&self, a: &Uint<LIMBS>) -> Uint<LIMBS> {
        let a = if a < &self.modulus {
            *a
        } else {
            reduce_wide(a, &Uint::ZERO, &self.modulus)
        };
        self.mont_mul(&a, &self.r2)
    }

    /// Converts a Montgomery-form value back to a plain residue.
    pub fn from_mont(&self, a: &Uint<LIMBS>) -> Uint<LIMBS> {
        self.mont_mul(a, &Uint::from_u64(1))
    }

    /// Montgomery product `a * b * R^{-1} mod p` by coarsely integrated
    /// operand scanning (CIOS), entirely on stack arrays.
    ///
    /// Operands must be reduced (`< p`); the result is reduced.
    ///
    /// The accumulator is the standard `LIMBS + 2` words: the stack array
    /// `t` plus the two scalar words `t_hi`/`t_hi2` (stable Rust cannot
    /// spell `[u64; LIMBS + 2]`).
    pub fn mont_mul(&self, a: &Uint<LIMBS>, b: &Uint<LIMBS>) -> Uint<LIMBS> {
        debug_assert!(
            a < &self.modulus && b < &self.modulus,
            "operands must be reduced"
        );
        let mut t = Uint::<LIMBS>::ZERO;
        let mut t_hi = 0u64; // t[LIMBS]
        for i in 0..LIMBS {
            // t += a[i] * b
            let ai = a.limbs()[i];
            let mut carry = 0u64;
            for j in 0..LIMBS {
                let (lo, c) = mac64(t.limbs[j], ai, b.limbs()[j], carry);
                t.limbs[j] = lo;
                carry = c;
            }
            let (s, c) = carrying_add64(t_hi, carry, 0);
            t_hi = s;
            let t_hi2 = c; // t[LIMBS + 1], always 0 or 1
                           // m = t[0] * p' mod 2^64, then t += m * p — which zeroes t[0] —
                           // and shift the accumulator right one word.
            let m = t.limbs[0].wrapping_mul(self.n0_inv);
            let (_, mut carry) = mac64(t.limbs[0], m, self.modulus.limbs[0], 0);
            for j in 1..LIMBS {
                let (lo, c) = mac64(t.limbs[j], m, self.modulus.limbs[j], carry);
                t.limbs[j - 1] = lo;
                carry = c;
            }
            let (lo, c) = carrying_add64(t_hi, carry, 0);
            t.limbs[LIMBS - 1] = lo;
            // t_hi2 + c <= 2 never overflows; the invariant t < 2p keeps
            // the new t[LIMBS] in {0, 1} for the next round.
            t_hi = t_hi2 + c;
        }
        // t < 2p: one conditional subtraction reduces. When t_hi is set the
        // true value is 2^BITS + t >= p and the wrapping difference is
        // exact.
        let (diff, borrow) = t.borrowing_sub(&self.modulus, 0);
        if t_hi != 0 || borrow == 0 {
            diff
        } else {
            t
        }
    }

    /// Exponentiation of a Montgomery-form base, returning a
    /// Montgomery-form result (left-to-right square-and-multiply).
    pub fn mont_pow(&self, base_mont: &Uint<LIMBS>, exp: &Uint<LIMBS>) -> Uint<LIMBS> {
        let mut acc = self.r_mod;
        for i in (0..exp.bit_len()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, base_mont);
            }
        }
        acc
    }

    /// Modular exponentiation `base^exp mod p` via Montgomery
    /// square-and-multiply.
    pub fn mod_exp(&self, base: &Uint<LIMBS>, exp: &Uint<LIMBS>) -> Uint<LIMBS> {
        let base_m = self.to_mont(base);
        self.from_mont(&self.mont_pow(&base_m, exp))
    }

    /// Inverse of a Montgomery-form value, staying in Montgomery form, via
    /// Fermat's little theorem (`â^{p-2}` under Montgomery products maps
    /// `a·R` to `a^{-1}·R`); only valid when the modulus is prime. Returns
    /// `None` for zero input.
    pub fn mont_inv_prime(&self, a_mont: &Uint<LIMBS>) -> Option<Uint<LIMBS>> {
        if a_mont.is_zero() {
            return None;
        }
        let exp = self
            .modulus
            .checked_sub(&Uint::from_u64(2))
            .expect("modulus is odd and > 1, so >= 3");
        Some(self.mont_pow(a_mont, &exp))
    }

    /// Lane-interleaved Montgomery products: `LANES` independent CIOS
    /// multiplications advanced **limb by limb in one pass**.
    ///
    /// Each lane computes exactly [`mont_mul`](Self::mont_mul) — the same
    /// schedule, the same conditional subtraction, bit-identical results —
    /// but the inner multiply-accumulate loops iterate lanes innermost, so
    /// adjacent instructions belong to *independent* u128 carry chains.
    /// A serial CIOS pass is latency-bound on its single carry chain; the
    /// interleaved pass gives the out-of-order core `LANES` chains to
    /// overlap, which is where the batch throughput win comes from (no
    /// unstable `std::simd` involved). Performs no heap allocation.
    ///
    /// On x86-64 hosts with AVX-512 IFMA, 256-bit (`LIMBS = 4`) batches
    /// additionally route blocks of 8 lanes through a vectorized
    /// radix-2^52 kernel and a trailing block of 4 through a pair-split
    /// variant (see `fixed::ifma`); results stay bit-identical because
    /// both kernels produce the unique canonical residue.
    pub fn mont_mul_batch<const LANES: usize>(
        &self,
        a: &[Uint<LIMBS>; LANES],
        b: &[Uint<LIMBS>; LANES],
    ) -> [Uint<LIMBS>; LANES] {
        debug_assert!(
            a.iter().all(|x| x < &self.modulus) && b.iter().all(|x| x < &self.modulus),
            "operands must be reduced"
        );
        #[cfg(target_arch = "x86_64")]
        #[allow(unsafe_code)]
        if LIMBS == 4 && LANES >= 4 && super::ifma::available() {
            // SAFETY: LIMBS == 4 was just checked, so Uint<LIMBS> and
            // Uint<4> are the same type and the casts below only erase
            // the const generic; lengths are preserved.
            let mut out = [Uint::<LIMBS>::ZERO; LANES];
            let done = unsafe {
                super::ifma::mont_mul_batch_slice(
                    core::slice::from_raw_parts(a.as_ptr() as *const Uint<4>, LANES),
                    core::slice::from_raw_parts(b.as_ptr() as *const Uint<4>, LANES),
                    core::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut Uint<4>, LANES),
                    &*(self.modulus.limbs().as_ptr() as *const [u64; 4]),
                    self.n0_inv,
                )
            };
            for l in done..LANES {
                out[l] = self.mont_mul(&a[l], &b[l]);
            }
            return out;
        }
        let mut t = [Uint::<LIMBS>::ZERO; LANES];
        let mut t_hi = [0u64; LANES]; // t[LIMBS] per lane
        let mut carry;
        let mut t_hi2 = [0u64; LANES];
        let mut m = [0u64; LANES];
        for i in 0..LIMBS {
            // t += a[i] * b, lanes innermost: LANES independent MAC chains
            // per word position.
            carry = [0u64; LANES];
            for j in 0..LIMBS {
                for l in 0..LANES {
                    let (lo, c) = mac64(t[l].limbs[j], a[l].limbs()[i], b[l].limbs()[j], carry[l]);
                    t[l].limbs[j] = lo;
                    carry[l] = c;
                }
            }
            for l in 0..LANES {
                let (s, c) = carrying_add64(t_hi[l], carry[l], 0);
                t_hi[l] = s;
                t_hi2[l] = c; // t[LIMBS + 1], always 0 or 1
                              // m = t[0] * p' mod 2^64; the first column of the
                              // reduction zeroes t[0] by construction.
                m[l] = t[l].limbs[0].wrapping_mul(self.n0_inv);
                let (_, c0) = mac64(t[l].limbs[0], m[l], self.modulus.limbs[0], 0);
                carry[l] = c0;
            }
            // t += m * p, shifting the accumulator right one word.
            for j in 1..LIMBS {
                for l in 0..LANES {
                    let (lo, c) = mac64(t[l].limbs[j], m[l], self.modulus.limbs[j], carry[l]);
                    t[l].limbs[j - 1] = lo;
                    carry[l] = c;
                }
            }
            for l in 0..LANES {
                let (lo, c) = carrying_add64(t_hi[l], carry[l], 0);
                t[l].limbs[LIMBS - 1] = lo;
                t_hi[l] = t_hi2[l] + c;
            }
        }
        let mut out = [Uint::<LIMBS>::ZERO; LANES];
        for l in 0..LANES {
            let (diff, borrow) = t[l].borrowing_sub(&self.modulus, 0);
            out[l] = if t_hi[l] != 0 || borrow == 0 {
                diff
            } else {
                t[l]
            };
        }
        out
    }

    /// Lane-parallel exponentiation of Montgomery-form bases: the shared
    /// squaring ladder runs through [`mont_mul_batch`](Self::mont_mul_batch)
    /// (every lane squares every step, so the batch kernel always has
    /// `LANES` live chains), while the data-dependent multiply steps stay
    /// serial per lane. Each lane's result is bit-identical to
    /// [`mont_pow`](Self::mont_pow) on its own `(base, exp)` pair.
    pub fn mont_pow_batch<const LANES: usize>(
        &self,
        bases_mont: &[Uint<LIMBS>; LANES],
        exps: &[Uint<LIMBS>; LANES],
    ) -> [Uint<LIMBS>; LANES] {
        let max_bits = exps.iter().map(|e| e.bit_len()).max().unwrap_or(0);
        let mut acc = [self.r_mod; LANES];
        for i in (0..max_bits).rev() {
            // Leading squarings of lanes with shorter exponents square the
            // residue R, which is a fixed point of mont_mul — so every
            // lane's value stays exactly what the serial ladder produces.
            acc = self.mont_mul_batch(&acc, &acc);
            for l in 0..LANES {
                if exps[l].bit(i) {
                    acc[l] = self.mont_mul(&acc[l], &bases_mont[l]);
                }
            }
        }
        acc
    }

    /// Lane-parallel modular exponentiation on plain residues, over
    /// [`mont_pow_batch`](Self::mont_pow_batch).
    pub fn mod_exp_batch<const LANES: usize>(
        &self,
        bases: &[Uint<LIMBS>; LANES],
        exps: &[Uint<LIMBS>; LANES],
    ) -> [Uint<LIMBS>; LANES] {
        let mut bases_m = [Uint::<LIMBS>::ZERO; LANES];
        for l in 0..LANES {
            bases_m[l] = self.to_mont(&bases[l]);
        }
        let pow = self.mont_pow_batch(&bases_m, exps);
        let mut out = [Uint::<LIMBS>::ZERO; LANES];
        for l in 0..LANES {
            out[l] = self.from_mont(&pow[l]);
        }
        out
    }

    /// Montgomery's batch-inversion trick: inverts every element of
    /// `values` **in place** with one [`mont_inv_prime`](Self::mont_inv_prime)
    /// plus `3(n-1)` multiplications, instead of `n` Fermat inversions.
    ///
    /// `scratch` holds the prefix-product chain and must be at least as
    /// long as `values`; with caller-provided scratch the helper performs
    /// no heap allocation. Elements stay in Montgomery form throughout.
    /// Returns `false` (leaving `values` untouched) if any element is zero
    /// or `scratch` is too short; only valid for prime moduli.
    pub fn mont_inv_batch(&self, values: &mut [Uint<LIMBS>], scratch: &mut [Uint<LIMBS>]) -> bool {
        let n = values.len();
        if scratch.len() < n || values.iter().any(|v| v.is_zero()) {
            return false;
        }
        if n == 0 {
            return true;
        }
        scratch[0] = values[0];
        for i in 1..n {
            scratch[i] = self.mont_mul(&scratch[i - 1], &values[i]);
        }
        let mut inv = self
            .mont_inv_prime(&scratch[n - 1])
            .expect("product of non-zero elements is non-zero mod a prime");
        for i in (1..n).rev() {
            let v = values[i];
            values[i] = self.mont_mul(&inv, &scratch[i - 1]);
            inv = self.mont_mul(&inv, &v);
        }
        values[0] = inv;
        true
    }

    /// Modular inverse via Fermat's little theorem (`a^{p-2} mod p`); only
    /// valid when the modulus is prime. Returns `None` for zero input
    /// (including unreduced multiples of `p`).
    pub fn mod_inv_prime(&self, a: &Uint<LIMBS>) -> Option<Uint<LIMBS>> {
        let a = if a < &self.modulus {
            *a
        } else {
            reduce_wide(a, &Uint::ZERO, &self.modulus)
        };
        if a.is_zero() {
            return None;
        }
        Some(self.from_mont(&self.mont_inv_prime(&self.to_mont(&a))?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mod_mul, MontgomeryParams};

    fn secp256k1_p() -> BigUint {
        BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap()
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(MontgomeryContext::<4>::new(&BigUint::from(8u64)).is_none());
        assert!(MontgomeryContext::<4>::new(&BigUint::zero()).is_none());
        assert!(MontgomeryContext::<4>::new(&BigUint::one()).is_none());
        // 2^256 + 1 does not fit in 4 limbs.
        let wide = &BigUint::one().shl_bits(256) + &BigUint::one();
        assert!(MontgomeryContext::<4>::new(&wide).is_none());
    }

    #[test]
    fn mont_mul_matches_plain_modular_product() {
        let p = secp256k1_p();
        let ctx = MontgomeryContext::<4>::new(&p).unwrap();
        let a = BigUint::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        let b = BigUint::from_hex("f0e1d2c3b4a5968778695a4b3c2d1e0f").unwrap();
        let af = Uint::from_biguint(&a).unwrap();
        let bf = Uint::from_biguint(&b).unwrap();
        let prod = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&af), &ctx.to_mont(&bf)));
        assert_eq!(prod.to_biguint(), mod_mul(&a, &b, &p));
    }

    #[test]
    fn representations_match_heap_backend_at_shared_radix() {
        // s = 8 u32 limbs and LIMBS = 4 u64 limbs share R = 2^256, so
        // Montgomery forms agree limb for limb.
        let p = secp256k1_p();
        let heap = MontgomeryParams::new(&p).unwrap();
        let fixed = MontgomeryContext::<4>::new(&p).unwrap();
        assert_eq!(heap.num_limbs(), 8);
        assert_eq!(fixed.one_mont().to_biguint(), heap.one_mont());
        assert_eq!(fixed.n0_inv() as u32, heap.n0_inv());
        let a = BigUint::from_hex("deadbeef0123456789abcdef").unwrap();
        let am = fixed.to_mont(&Uint::from_biguint(&a).unwrap());
        assert_eq!(am.to_biguint(), heap.to_mont(&a));
    }

    #[test]
    fn exponentiation_and_inverse() {
        let p = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryContext::<4>::new(&p).unwrap();
        let a = Uint::from_u64(123_456_789);
        // a^(p-1) = 1 by Fermat.
        let pm1 = Uint::from_u64(1_000_000_006);
        assert_eq!(ctx.mod_exp(&a, &pm1), Uint::from_u64(1));
        assert_eq!(ctx.mod_exp(&a, &Uint::ZERO), Uint::from_u64(1));
        let inv = ctx.mod_inv_prime(&a).unwrap();
        assert_eq!(
            mod_mul(&a.to_biguint(), &inv.to_biguint(), &p),
            BigUint::one()
        );
        assert!(ctx.mod_inv_prime(&Uint::ZERO).is_none());
        // mont_inv_prime inverts without leaving Montgomery form.
        let am = ctx.to_mont(&a);
        let inv_m = ctx.mont_inv_prime(&am).unwrap();
        assert_eq!(ctx.mont_mul(&am, &inv_m), ctx.one_mont());
    }

    /// Deterministic reduced operands for the batch tests.
    fn sample_residues<const N: usize>(ctx: &MontgomeryContext<4>, seed: u64) -> [Uint<4>; N] {
        let mut out = [Uint::ZERO; N];
        let mut state = seed;
        for slot in out.iter_mut() {
            let mut limbs = [0u64; 4];
            for limb in limbs.iter_mut() {
                // SplitMix64: cheap, deterministic, well-mixed test data.
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *limb = z ^ (z >> 31);
            }
            *slot = ctx.to_mont(&Uint::from_limbs(limbs));
        }
        out
    }

    #[test]
    fn mont_mul_batch_matches_serial_lane_for_lane() {
        let ctx = MontgomeryContext::<4>::new(&secp256k1_p()).unwrap();
        let a = sample_residues::<8>(&ctx, 1);
        let b = sample_residues::<8>(&ctx, 2);
        let batched = ctx.mont_mul_batch(&a, &b);
        for l in 0..8 {
            assert_eq!(batched[l], ctx.mont_mul(&a[l], &b[l]), "lane {l}");
        }
        // Degenerate lane counts still work.
        let a1 = [a[0]];
        let b1 = [b[0]];
        assert_eq!(ctx.mont_mul_batch(&a1, &b1)[0], ctx.mont_mul(&a[0], &b[0]));
        // Extreme residues: zero and p - 1 in every mix.
        let pm1 = ctx.to_mont(
            &ctx.modulus()
                .checked_sub(&Uint::from_u64(1))
                .expect("p >= 3"),
        );
        let edge = [Uint::ZERO, pm1, ctx.one_mont(), pm1];
        let batched = ctx.mont_mul_batch(&edge, &edge);
        for l in 0..4 {
            assert_eq!(
                batched[l],
                ctx.mont_mul(&edge[l], &edge[l]),
                "edge lane {l}"
            );
        }
    }

    /// Lane counts that split across the vector kernels' block sizes
    /// (8+4, 8+tail, 4+tail, tail-only) all match the serial product,
    /// on secp256k1 and on an unstructured odd modulus.
    #[test]
    fn mont_mul_batch_block_splits_match_serial() {
        let dense =
            BigUint::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
                .unwrap();
        for p in [secp256k1_p(), dense] {
            let ctx = MontgomeryContext::<4>::new(&p).unwrap();
            macro_rules! check {
                ($lanes:literal) => {{
                    let a = sample_residues::<$lanes>(&ctx, 11);
                    let b = sample_residues::<$lanes>(&ctx, 13);
                    let batched = ctx.mont_mul_batch(&a, &b);
                    for l in 0..$lanes {
                        assert_eq!(batched[l], ctx.mont_mul(&a[l], &b[l]), "lane {l}");
                    }
                }};
            }
            check!(2);
            check!(3);
            check!(4);
            check!(7);
            check!(9);
            check!(12);
            check!(16);
        }
    }

    #[test]
    fn mont_pow_and_mod_exp_batch_match_serial() {
        let ctx = MontgomeryContext::<4>::new(&secp256k1_p()).unwrap();
        let bases = sample_residues::<4>(&ctx, 3);
        // Mixed exponent widths exercise the lane-lockstep leading bits.
        let exps = [
            Uint::ZERO,
            Uint::from_u64(1),
            Uint::from_u64(0xdead_beef),
            ctx.modulus()
                .checked_sub(&Uint::from_u64(1))
                .expect("p >= 3"),
        ];
        let batched = ctx.mont_pow_batch(&bases, &exps);
        for l in 0..4 {
            assert_eq!(batched[l], ctx.mont_pow(&bases[l], &exps[l]), "lane {l}");
        }
        let plain = [
            Uint::from_u64(2),
            Uint::from_u64(3),
            Uint::from_u64(65_537),
            Uint::from_u64(0x1234_5678),
        ];
        let batched = ctx.mod_exp_batch(&plain, &exps);
        for l in 0..4 {
            assert_eq!(batched[l], ctx.mod_exp(&plain[l], &exps[l]), "lane {l}");
        }
    }

    #[test]
    fn mont_inv_batch_matches_fermat_per_element() {
        let ctx = MontgomeryContext::<4>::new(&secp256k1_p()).unwrap();
        for n in [0usize, 1, 2, 5, 16] {
            let mut values: Vec<Uint<4>> = sample_residues::<16>(&ctx, 7 + n as u64)[..n].to_vec();
            let expected: Vec<Uint<4>> = values
                .iter()
                .map(|v| ctx.mont_inv_prime(v).unwrap())
                .collect();
            let mut scratch = vec![Uint::ZERO; n];
            assert!(ctx.mont_inv_batch(&mut values, &mut scratch), "n = {n}");
            assert_eq!(values, expected, "n = {n}");
        }
        // Zeros and short scratch are rejected with values untouched.
        let mut with_zero = [ctx.one_mont(), Uint::ZERO];
        let snapshot = with_zero;
        let mut scratch = [Uint::ZERO; 2];
        assert!(!ctx.mont_inv_batch(&mut with_zero, &mut scratch));
        assert_eq!(with_zero, snapshot);
        let mut ok = [ctx.one_mont(), ctx.one_mont()];
        assert!(!ctx.mont_inv_batch(&mut ok, &mut scratch[..1]));
    }
}

//! Fixed-width Montgomery arithmetic (CIOS, no allocation in the loop).

use super::modular::reduce_wide;
use super::uint::Uint;
use crate::limb::{carrying_add64, inv_mod_limb64, mac64};
use crate::BigUint;

/// Montgomery arithmetic over a fixed-width odd modulus, mirroring
/// [`MontgomeryParams`](crate::MontgomeryParams) at radix 2^64.
///
/// The Montgomery radix is `R = 2^(64·LIMBS)`. When the heap
/// [`MontgomeryParams`](crate::MontgomeryParams) for the same modulus has
/// `num_limbs() == 2·LIMBS` (true for any modulus whose bit length exceeds
/// `64·LIMBS - 32`, e.g. every 256-bit prime at `LIMBS = 4`), both backends
/// use the *same* `R`, so Montgomery representations are interchangeable
/// limb reinterpretations of each other and products are bit-identical.
///
/// Construction may allocate (it reduces with `BigUint`); every operation
/// afterwards — [`mont_mul`](Self::mont_mul) (a word-level CIOS schedule),
/// [`mont_pow`](Self::mont_pow), [`mod_exp`](Self::mod_exp),
/// [`mont_inv_prime`](Self::mont_inv_prime) — runs entirely on stack
/// arrays.
///
/// # Example
///
/// ```
/// use bignum::fixed::{MontgomeryContext, Uint};
/// use bignum::BigUint;
///
/// let p = BigUint::from(1_000_000_007u64);
/// let ctx = MontgomeryContext::<4>::new(&p).expect("odd modulus");
/// let a = Uint::from_u64(123_456_789);
/// let b = Uint::from_u64(987_654_321);
/// let prod = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
/// assert_eq!(
///     prod.to_biguint(),
///     (&a.to_biguint() * &b.to_biguint()) % &p
/// );
/// ```
#[derive(Clone, Debug)]
pub struct MontgomeryContext<const LIMBS: usize> {
    modulus: Uint<LIMBS>,
    /// `p' = -p^{-1} mod 2^64`, the CIOS per-modulus constant.
    n0_inv: u64,
    /// `R mod p` — the Montgomery representation of 1.
    r_mod: Uint<LIMBS>,
    /// `R^2 mod p` — the to-Montgomery conversion factor.
    r2: Uint<LIMBS>,
}

impl<const LIMBS: usize> MontgomeryContext<LIMBS> {
    /// Creates a context for an odd modulus `> 1` that fits in `LIMBS`
    /// 64-bit limbs.
    ///
    /// Returns `None` if the modulus is even, `<= 1`, or too wide. Setup
    /// uses heap arithmetic for the `R mod p` / `R² mod p` constants; the
    /// per-operation paths never allocate.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_zero() || modulus.is_one() {
            return None;
        }
        let m = Uint::<LIMBS>::from_biguint(modulus)?;
        let n0_inv = inv_mod_limb64(m.limbs()[0]);
        let r = BigUint::one().shl_bits(Uint::<LIMBS>::BITS);
        let r_mod = Uint::from_biguint(&(&r % modulus)).expect("R mod p < p fits");
        let r2 = Uint::from_biguint(&(&(&r * &r) % modulus)).expect("R^2 mod p < p fits");
        Some(MontgomeryContext {
            modulus: m,
            n0_inv,
            r_mod,
            r2,
        })
    }

    /// The modulus this context was derived for.
    pub fn modulus(&self) -> &Uint<LIMBS> {
        &self.modulus
    }

    /// The constant `p' = -p^{-1} mod 2^64`.
    pub fn n0_inv(&self) -> u64 {
        self.n0_inv
    }

    /// `R mod p`, the Montgomery representation of 1.
    pub fn one_mont(&self) -> Uint<LIMBS> {
        self.r_mod
    }

    /// `R² mod p`, the to-Montgomery conversion factor.
    pub fn r2(&self) -> Uint<LIMBS> {
        self.r2
    }

    /// Converts a residue into Montgomery form (`a * R mod p`), reducing
    /// the operand first when necessary.
    pub fn to_mont(&self, a: &Uint<LIMBS>) -> Uint<LIMBS> {
        let a = if a < &self.modulus {
            *a
        } else {
            reduce_wide(a, &Uint::ZERO, &self.modulus)
        };
        self.mont_mul(&a, &self.r2)
    }

    /// Converts a Montgomery-form value back to a plain residue.
    pub fn from_mont(&self, a: &Uint<LIMBS>) -> Uint<LIMBS> {
        self.mont_mul(a, &Uint::from_u64(1))
    }

    /// Montgomery product `a * b * R^{-1} mod p` by coarsely integrated
    /// operand scanning (CIOS), entirely on stack arrays.
    ///
    /// Operands must be reduced (`< p`); the result is reduced.
    ///
    /// The accumulator is the standard `LIMBS + 2` words: the stack array
    /// `t` plus the two scalar words `t_hi`/`t_hi2` (stable Rust cannot
    /// spell `[u64; LIMBS + 2]`).
    pub fn mont_mul(&self, a: &Uint<LIMBS>, b: &Uint<LIMBS>) -> Uint<LIMBS> {
        debug_assert!(
            a < &self.modulus && b < &self.modulus,
            "operands must be reduced"
        );
        let mut t = Uint::<LIMBS>::ZERO;
        let mut t_hi = 0u64; // t[LIMBS]
        for i in 0..LIMBS {
            // t += a[i] * b
            let ai = a.limbs()[i];
            let mut carry = 0u64;
            for j in 0..LIMBS {
                let (lo, c) = mac64(t.limbs[j], ai, b.limbs()[j], carry);
                t.limbs[j] = lo;
                carry = c;
            }
            let (s, c) = carrying_add64(t_hi, carry, 0);
            t_hi = s;
            let t_hi2 = c; // t[LIMBS + 1], always 0 or 1
                           // m = t[0] * p' mod 2^64, then t += m * p — which zeroes t[0] —
                           // and shift the accumulator right one word.
            let m = t.limbs[0].wrapping_mul(self.n0_inv);
            let (_, mut carry) = mac64(t.limbs[0], m, self.modulus.limbs[0], 0);
            for j in 1..LIMBS {
                let (lo, c) = mac64(t.limbs[j], m, self.modulus.limbs[j], carry);
                t.limbs[j - 1] = lo;
                carry = c;
            }
            let (lo, c) = carrying_add64(t_hi, carry, 0);
            t.limbs[LIMBS - 1] = lo;
            // t_hi2 + c <= 2 never overflows; the invariant t < 2p keeps
            // the new t[LIMBS] in {0, 1} for the next round.
            t_hi = t_hi2 + c;
        }
        // t < 2p: one conditional subtraction reduces. When t_hi is set the
        // true value is 2^BITS + t >= p and the wrapping difference is
        // exact.
        let (diff, borrow) = t.borrowing_sub(&self.modulus, 0);
        if t_hi != 0 || borrow == 0 {
            diff
        } else {
            t
        }
    }

    /// Exponentiation of a Montgomery-form base, returning a
    /// Montgomery-form result (left-to-right square-and-multiply).
    pub fn mont_pow(&self, base_mont: &Uint<LIMBS>, exp: &Uint<LIMBS>) -> Uint<LIMBS> {
        let mut acc = self.r_mod;
        for i in (0..exp.bit_len()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, base_mont);
            }
        }
        acc
    }

    /// Modular exponentiation `base^exp mod p` via Montgomery
    /// square-and-multiply.
    pub fn mod_exp(&self, base: &Uint<LIMBS>, exp: &Uint<LIMBS>) -> Uint<LIMBS> {
        let base_m = self.to_mont(base);
        self.from_mont(&self.mont_pow(&base_m, exp))
    }

    /// Inverse of a Montgomery-form value, staying in Montgomery form, via
    /// Fermat's little theorem (`â^{p-2}` under Montgomery products maps
    /// `a·R` to `a^{-1}·R`); only valid when the modulus is prime. Returns
    /// `None` for zero input.
    pub fn mont_inv_prime(&self, a_mont: &Uint<LIMBS>) -> Option<Uint<LIMBS>> {
        if a_mont.is_zero() {
            return None;
        }
        let exp = self
            .modulus
            .checked_sub(&Uint::from_u64(2))
            .expect("modulus is odd and > 1, so >= 3");
        Some(self.mont_pow(a_mont, &exp))
    }

    /// Modular inverse via Fermat's little theorem (`a^{p-2} mod p`); only
    /// valid when the modulus is prime. Returns `None` for zero input
    /// (including unreduced multiples of `p`).
    pub fn mod_inv_prime(&self, a: &Uint<LIMBS>) -> Option<Uint<LIMBS>> {
        let a = if a < &self.modulus {
            *a
        } else {
            reduce_wide(a, &Uint::ZERO, &self.modulus)
        };
        if a.is_zero() {
            return None;
        }
        Some(self.from_mont(&self.mont_inv_prime(&self.to_mont(&a))?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mod_mul, MontgomeryParams};

    fn secp256k1_p() -> BigUint {
        BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap()
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(MontgomeryContext::<4>::new(&BigUint::from(8u64)).is_none());
        assert!(MontgomeryContext::<4>::new(&BigUint::zero()).is_none());
        assert!(MontgomeryContext::<4>::new(&BigUint::one()).is_none());
        // 2^256 + 1 does not fit in 4 limbs.
        let wide = &BigUint::one().shl_bits(256) + &BigUint::one();
        assert!(MontgomeryContext::<4>::new(&wide).is_none());
    }

    #[test]
    fn mont_mul_matches_plain_modular_product() {
        let p = secp256k1_p();
        let ctx = MontgomeryContext::<4>::new(&p).unwrap();
        let a = BigUint::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        let b = BigUint::from_hex("f0e1d2c3b4a5968778695a4b3c2d1e0f").unwrap();
        let af = Uint::from_biguint(&a).unwrap();
        let bf = Uint::from_biguint(&b).unwrap();
        let prod = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&af), &ctx.to_mont(&bf)));
        assert_eq!(prod.to_biguint(), mod_mul(&a, &b, &p));
    }

    #[test]
    fn representations_match_heap_backend_at_shared_radix() {
        // s = 8 u32 limbs and LIMBS = 4 u64 limbs share R = 2^256, so
        // Montgomery forms agree limb for limb.
        let p = secp256k1_p();
        let heap = MontgomeryParams::new(&p).unwrap();
        let fixed = MontgomeryContext::<4>::new(&p).unwrap();
        assert_eq!(heap.num_limbs(), 8);
        assert_eq!(fixed.one_mont().to_biguint(), heap.one_mont());
        assert_eq!(fixed.n0_inv() as u32, heap.n0_inv());
        let a = BigUint::from_hex("deadbeef0123456789abcdef").unwrap();
        let am = fixed.to_mont(&Uint::from_biguint(&a).unwrap());
        assert_eq!(am.to_biguint(), heap.to_mont(&a));
    }

    #[test]
    fn exponentiation_and_inverse() {
        let p = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryContext::<4>::new(&p).unwrap();
        let a = Uint::from_u64(123_456_789);
        // a^(p-1) = 1 by Fermat.
        let pm1 = Uint::from_u64(1_000_000_006);
        assert_eq!(ctx.mod_exp(&a, &pm1), Uint::from_u64(1));
        assert_eq!(ctx.mod_exp(&a, &Uint::ZERO), Uint::from_u64(1));
        let inv = ctx.mod_inv_prime(&a).unwrap();
        assert_eq!(
            mod_mul(&a.to_biguint(), &inv.to_biguint(), &p),
            BigUint::one()
        );
        assert!(ctx.mod_inv_prime(&Uint::ZERO).is_none());
        // mont_inv_prime inverts without leaving Montgomery form.
        let am = ctx.to_mont(&a);
        let inv_m = ctx.mont_inv_prime(&am).unwrap();
        assert_eq!(ctx.mont_mul(&am, &inv_m), ctx.one_mont());
    }
}

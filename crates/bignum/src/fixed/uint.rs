//! The stack-allocated const-generic unsigned integer.

use core::cmp::Ordering;
use core::fmt;

use crate::limb::{borrowing_sub64, carrying_add64, mac64};
use crate::{BigUint, LIMB_BITS};

/// Number of bits in one fixed-backend limb (radix 2^64).
pub const FIXED_LIMB_BITS: usize = 64;

/// A fixed-width unsigned integer of `LIMBS` 64-bit limbs, stored
/// least-significant limb first in a stack array.
///
/// This is the const-generic counterpart of the heap-allocated
/// [`BigUint`]: the width is part of the type, the representation is
/// `Copy`, and none of the arithmetic allocates. Unlike `BigUint` the
/// representation is *not* normalized — high limbs may be zero — so
/// equality on the array is still value equality (every value has exactly
/// one representation at a given width).
///
/// Arithmetic comes in explicit flavours (`carrying_add`,
/// `borrowing_sub`, `wrapping_*`, [`Uint::mul_wide`]) mirroring the
/// limb-level primitives; modular and Montgomery arithmetic live in
/// [`crate::fixed`]'s free functions and
/// [`MontgomeryContext`](crate::fixed::MontgomeryContext).
///
/// # Example
///
/// ```
/// use bignum::fixed::Uint;
///
/// let a = Uint::<4>::from_u64(7);
/// let b = Uint::<4>::from_u64(9);
/// let (sum, carry) = a.carrying_add(&b, 0);
/// assert_eq!(sum, Uint::from_u64(16));
/// assert_eq!(carry, 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const LIMBS: usize> {
    /// Least-significant limb first.
    pub(crate) limbs: [u64; LIMBS],
}

impl<const LIMBS: usize> Uint<LIMBS> {
    /// The value 0.
    pub const ZERO: Self = Self { limbs: [0; LIMBS] };

    /// The largest representable value, `2^(64·LIMBS) - 1`.
    pub const MAX: Self = Self {
        limbs: [u64::MAX; LIMBS],
    };

    /// Total number of bits in the representation.
    pub const BITS: usize = LIMBS * FIXED_LIMB_BITS;

    /// Builds a value from its limbs, least-significant first.
    pub const fn from_limbs(limbs: [u64; LIMBS]) -> Self {
        Self { limbs }
    }

    /// Builds the value of a single `u64`.
    ///
    /// # Panics
    ///
    /// Panics when `LIMBS` is 0 and `v` is non-zero.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; LIMBS];
        if LIMBS == 0 {
            assert!(v == 0, "u64 value does not fit in 0 limbs");
        } else {
            limbs[0] = v;
        }
        Self { limbs }
    }

    /// The limbs, least-significant first.
    pub const fn limbs(&self) -> &[u64; LIMBS] {
        &self.limbs
    }

    /// Whether the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Whether the value is odd (false for the 0-limb width).
    pub fn is_odd(&self) -> bool {
        LIMBS > 0 && self.limbs[0] & 1 == 1
    }

    /// Bit `i` (little-endian, bit 0 is the least significant); out-of-range
    /// bits read as 0.
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / FIXED_LIMB_BITS;
        let off = i % FIXED_LIMB_BITS;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return i * FIXED_LIMB_BITS + (FIXED_LIMB_BITS - l.leading_zeros() as usize);
            }
        }
        0
    }

    /// Full add with carry: `(self + rhs + carry_in) mod 2^BITS` and the
    /// carry out. `carry_in` must be 0 or 1.
    pub fn carrying_add(&self, rhs: &Self, carry: u64) -> (Self, u64) {
        let mut out = Self::ZERO;
        let mut carry = carry;
        for i in 0..LIMBS {
            let (s, c) = carrying_add64(self.limbs[i], rhs.limbs[i], carry);
            out.limbs[i] = s;
            carry = c;
        }
        (out, carry)
    }

    /// `(self + rhs) mod 2^BITS`, discarding the carry.
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.carrying_add(rhs, 0).0
    }

    /// Full subtract with borrow: `(self - rhs - borrow_in) mod 2^BITS` and
    /// the borrow out. `borrow_in` must be 0 or 1.
    pub fn borrowing_sub(&self, rhs: &Self, borrow: u64) -> (Self, u64) {
        let mut out = Self::ZERO;
        let mut borrow = borrow;
        for i in 0..LIMBS {
            let (d, b) = borrowing_sub64(self.limbs[i], rhs.limbs[i], borrow);
            out.limbs[i] = d;
            borrow = b;
        }
        (out, borrow)
    }

    /// `(self - rhs) mod 2^BITS`, discarding the borrow.
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.borrowing_sub(rhs, 0).0
    }

    /// `self - rhs` when it does not underflow.
    pub fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        let (d, borrow) = self.borrowing_sub(rhs, 0);
        (borrow == 0).then_some(d)
    }

    /// Schoolbook widening multiplication: the full `2·BITS`-bit product as
    /// `(low, high)` halves. No heap allocation.
    pub fn mul_wide(&self, rhs: &Self) -> (Self, Self) {
        let mut lo = Self::ZERO;
        let mut hi = Self::ZERO;
        for i in 0..LIMBS {
            let mut carry = 0u64;
            for j in 0..LIMBS {
                let k = i + j;
                let acc = if k < LIMBS {
                    &mut lo.limbs[k]
                } else {
                    &mut hi.limbs[k - LIMBS]
                };
                let (l, c) = mac64(*acc, self.limbs[i], rhs.limbs[j], carry);
                *acc = l;
                carry = c;
            }
            // Row i touches columns i..i+LIMBS-1; its final carry lands in
            // the untouched column i+LIMBS.
            if LIMBS > 0 {
                hi.limbs[i] = carry;
            }
        }
        (lo, hi)
    }

    /// `(self << 1) mod 2^BITS` and the bit shifted out.
    pub(crate) fn shl1(&self) -> (Self, u64) {
        let mut out = Self::ZERO;
        let mut carry = 0u64;
        for i in 0..LIMBS {
            out.limbs[i] = (self.limbs[i] << 1) | carry;
            carry = self.limbs[i] >> 63;
        }
        (out, carry)
    }

    /// Converts from a [`BigUint`], returning `None` when the value does not
    /// fit in `LIMBS` 64-bit limbs.
    pub fn from_biguint(v: &BigUint) -> Option<Self> {
        let src = v.limbs(); // u32 limbs, least-significant first, normalized
        if src.len() > 2 * LIMBS {
            return None;
        }
        let mut out = Self::ZERO;
        for (i, &l) in src.iter().enumerate() {
            out.limbs[i / 2] |= (l as u64) << (LIMB_BITS * (i % 2));
        }
        Some(out)
    }

    /// Converts to the heap representation.
    pub fn to_biguint(&self) -> BigUint {
        let mut limbs = Vec::with_capacity(2 * LIMBS);
        for &l in &self.limbs {
            limbs.push(l as u32);
            limbs.push((l >> LIMB_BITS) as u32);
        }
        BigUint::from_limbs(&limbs)
    }
}

impl<const LIMBS: usize> Default for Uint<LIMBS> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const LIMBS: usize> Ord for Uint<LIMBS> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..LIMBS).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl<const LIMBS: usize> PartialOrd for Uint<LIMBS> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const LIMBS: usize> fmt::Debug for Uint<LIMBS> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint<{LIMBS}>(0x")?;
        for l in self.limbs.iter().rev() {
            write!(f, "{l:016x}")?;
        }
        write!(f, ")")
    }
}

impl<const LIMBS: usize> fmt::Display for Uint<LIMBS> {
    /// Lowercase big-endian hex with leading zeros trimmed, matching
    /// [`BigUint`]'s `to_hex` format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::with_capacity(16 * LIMBS);
        for l in self.limbs.iter().rev() {
            use fmt::Write;
            write!(s, "{l:016x}")?;
        }
        let trimmed = s.trim_start_matches('0');
        f.write_str(if trimmed.is_empty() { "0" } else { trimmed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_predicates() {
        assert!(Uint::<4>::ZERO.is_zero());
        assert!(!Uint::<4>::ZERO.is_odd());
        assert!(Uint::<4>::MAX.is_odd());
        assert_eq!(Uint::<4>::BITS, 256);
        assert_eq!(Uint::<4>::ZERO.bit_len(), 0);
        assert_eq!(Uint::<4>::MAX.bit_len(), 256);
        assert_eq!(Uint::<4>::from_u64(1).bit_len(), 1);
    }

    #[test]
    fn add_sub_roundtrip_with_carries() {
        let (sum, carry) = Uint::<4>::MAX.carrying_add(&Uint::from_u64(1), 0);
        assert!(sum.is_zero());
        assert_eq!(carry, 1);
        let (diff, borrow) = Uint::<4>::ZERO.borrowing_sub(&Uint::from_u64(1), 0);
        assert_eq!(diff, Uint::MAX);
        assert_eq!(borrow, 1);
        assert_eq!(Uint::<4>::ZERO.checked_sub(&Uint::from_u64(1)), None);
    }

    #[test]
    fn mul_wide_max_is_exact() {
        // MAX * MAX = 2^512 - 2^257 + 1 at 4 limbs.
        let (lo, hi) = Uint::<4>::MAX.mul_wide(&Uint::MAX);
        let expected = {
            let max = Uint::<4>::MAX.to_biguint();
            &max * &max
        };
        let got = &lo.to_biguint() + &hi.to_biguint().shl_bits(256);
        assert_eq!(got, expected);
    }

    #[test]
    fn biguint_roundtrip_and_overflow() {
        let v =
            BigUint::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffff").unwrap();
        let u = Uint::<4>::from_biguint(&v).unwrap();
        assert_eq!(u.to_biguint(), v);
        // 2^256 does not fit in 4 limbs.
        let big = BigUint::from(1u64).shl_bits(256);
        assert!(Uint::<4>::from_biguint(&big).is_none());
        // An odd number of u32 limbs round-trips too.
        let odd = BigUint::from_hex("123456789a").unwrap();
        assert_eq!(Uint::<4>::from_biguint(&odd).unwrap().to_biguint(), odd);
    }

    #[test]
    fn ordering_is_value_order() {
        let one = Uint::<4>::from_u64(1);
        let two = Uint::<4>::from_u64(2);
        let top = Uint::<4>::from_limbs([0, 0, 0, 1]);
        assert!(one < two);
        assert!(two < top);
        assert_eq!(top.cmp(&top), Ordering::Equal);
    }

    #[test]
    fn display_matches_biguint_hex() {
        let v = BigUint::from_hex("deadbeef00112233445566778899aabb").unwrap();
        let u = Uint::<4>::from_biguint(&v).unwrap();
        assert_eq!(u.to_string(), v.to_hex());
        assert_eq!(Uint::<4>::ZERO.to_string(), "0");
    }
}

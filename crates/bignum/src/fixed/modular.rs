//! Allocation-free modular arithmetic on [`Uint`] operands.
//!
//! The fixed-width counterpart of [`crate::modular`]: free functions over a
//! caller-supplied modulus. `add_mod`/`sub_mod`/`neg_mod` require reduced
//! operands (`< m`) and exploit that a single conditional correction then
//! suffices; `reduce_wide` and `mul_mod` accept arbitrary operands.

use super::uint::Uint;

/// `(a + b) mod m` for reduced operands `a, b < m`.
///
/// # Panics
///
/// Debug-asserts that the operands are reduced.
pub fn add_mod<const LIMBS: usize>(
    a: &Uint<LIMBS>,
    b: &Uint<LIMBS>,
    m: &Uint<LIMBS>,
) -> Uint<LIMBS> {
    debug_assert!(a < m && b < m, "operands must be reduced");
    let (sum, carry) = a.carrying_add(b, 0);
    // a + b < 2m, so one subtraction reduces; with carry set the true value
    // is 2^BITS + sum and the wrapping subtraction is exact mod 2^BITS.
    if carry != 0 || sum >= *m {
        sum.wrapping_sub(m)
    } else {
        sum
    }
}

/// `(a - b) mod m` for reduced operands `a, b < m`.
///
/// # Panics
///
/// Debug-asserts that the operands are reduced.
pub fn sub_mod<const LIMBS: usize>(
    a: &Uint<LIMBS>,
    b: &Uint<LIMBS>,
    m: &Uint<LIMBS>,
) -> Uint<LIMBS> {
    debug_assert!(a < m && b < m, "operands must be reduced");
    let (diff, borrow) = a.borrowing_sub(b, 0);
    if borrow != 0 {
        diff.wrapping_add(m)
    } else {
        diff
    }
}

/// `(-a) mod m` for a reduced operand `a < m`.
///
/// # Panics
///
/// Debug-asserts that the operand is reduced.
pub fn neg_mod<const LIMBS: usize>(a: &Uint<LIMBS>, m: &Uint<LIMBS>) -> Uint<LIMBS> {
    debug_assert!(a < m, "operand must be reduced");
    if a.is_zero() {
        Uint::ZERO
    } else {
        m.wrapping_sub(a)
    }
}

/// Reduces the `2·BITS`-bit value `hi·2^BITS + lo` modulo `m` by binary
/// shift-and-subtract. No heap allocation; `O(BITS)` conditional
/// subtractions, intended for conversions and test harnesses rather than
/// hot loops (hot loops use Montgomery form).
///
/// # Panics
///
/// Panics when `m` is zero.
pub fn reduce_wide<const LIMBS: usize>(
    lo: &Uint<LIMBS>,
    hi: &Uint<LIMBS>,
    m: &Uint<LIMBS>,
) -> Uint<LIMBS> {
    assert!(!m.is_zero(), "reduction modulus must be non-zero");
    let mut r = Uint::ZERO;
    for word in [hi, lo] {
        for i in (0..Uint::<LIMBS>::BITS).rev() {
            // r < m before the shift, so 2r + bit < 2m: one conditional
            // subtraction restores r < m. When the shift carries out, the
            // true value is 2^BITS + shifted >= m and the wrapping
            // subtraction is exact.
            let (mut shifted, carry) = r.shl1();
            if word.bit(i) {
                shifted.limbs[0] |= 1;
            }
            r = if carry != 0 || shifted >= *m {
                shifted.wrapping_sub(m)
            } else {
                shifted
            };
        }
    }
    r
}

/// `(a * b) mod m` via [`Uint::mul_wide`] and [`reduce_wide`]. Accepts
/// unreduced operands.
///
/// # Panics
///
/// Panics when `m` is zero.
pub fn mul_mod<const LIMBS: usize>(
    a: &Uint<LIMBS>,
    b: &Uint<LIMBS>,
    m: &Uint<LIMBS>,
) -> Uint<LIMBS> {
    let (lo, hi) = a.mul_wide(b);
    reduce_wide(&lo, &hi, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_neg_mod_small() {
        let m = Uint::<4>::from_u64(97);
        let a = Uint::from_u64(90);
        let b = Uint::from_u64(15);
        assert_eq!(add_mod(&a, &b, &m), Uint::from_u64(8));
        assert_eq!(sub_mod(&b, &a, &m), Uint::from_u64(22));
        assert_eq!(neg_mod(&a, &m), Uint::from_u64(7));
        assert_eq!(neg_mod(&Uint::ZERO, &m), Uint::ZERO);
    }

    #[test]
    fn add_mod_handles_carry_out() {
        // m close to 2^256: a + b overflows the width but stays < 2m.
        let m = Uint::<4>::MAX;
        let a = m.wrapping_sub(&Uint::from_u64(1)); // m - 1
        let sum = add_mod(&a, &a, &m);
        // (m-1) + (m-1) = 2m - 2 ≡ m - 2 (mod m)
        assert_eq!(sum, m.wrapping_sub(&Uint::from_u64(2)));
    }

    #[test]
    fn reduce_wide_handles_equal_and_large_operands() {
        let m = Uint::<4>::from_u64(1_000_003);
        // Value equal to the modulus reduces to zero.
        assert_eq!(reduce_wide(&m, &Uint::ZERO, &m), Uint::ZERO);
        // A full double-width value matches the heap computation.
        let a = Uint::<4>::MAX;
        let (lo, hi) = a.mul_wide(&a);
        let expected = {
            let big = a.to_biguint();
            (&big * &big) % &m.to_biguint()
        };
        assert_eq!(reduce_wide(&lo, &hi, &m).to_biguint(), expected);
    }

    #[test]
    fn mul_mod_matches_heap() {
        let m = Uint::<4>::from_limbs([0xfffffffefffffc2f, u64::MAX, u64::MAX, u64::MAX]);
        let a = Uint::<4>::from_limbs([1, 2, 3, 4]);
        let b = Uint::<4>::from_limbs([5, 6, 7, 8]);
        let expected = (&a.to_biguint() * &b.to_biguint()) % &m.to_biguint();
        assert_eq!(mul_mod(&a, &b, &m).to_biguint(), expected);
    }
}

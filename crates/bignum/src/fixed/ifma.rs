//! AVX-512 IFMA radix-2^52 batched Montgomery kernels for 256-bit moduli.
//!
//! Both kernels compute, per lane, exactly the value the serial CIOS
//! [`mont_mul`](super::MontgomeryContext::mont_mul) produces: `a·b·2^-256
//! mod p`, canonical (`< p`). The canonical residue is unique, so "same
//! mathematical value, fully reduced" *is* bit-identity with the scalar
//! path — the differential tests in `montgomery.rs` and the batch
//! proptests pin this.
//!
//! The radix-52 trick: `vpmadd52{lo,hi}` multiply the **low 52 bits** of
//! each 64-bit lane and accumulate the 104-bit product's halves, so a
//! 256-bit value becomes five 52-bit digits and one REDC round needs only
//! 20 madds + a handful of cheap ops — no carry propagation inside the
//! round at all, because 52-bit digits leave 12 headroom bits in every
//! 64-bit accumulator word.
//!
//! Domain correction happens *inside* the multiplication: five radix-2^52
//! REDC rounds divide by `2^260`, not the `2^256` the rest of the backend
//! uses, so `b` is pre-scaled by `2^4` during digit extraction
//! (`b·16 < 2^260` still fits five digits) and a single REDC pass lands
//! directly in the shared `2^256` Montgomery domain.
//!
//! Two shapes, picked by block size in [`mont_mul_batch_slice`]:
//!
//! - **8 lanes, one value per zmm lane** ([`mont_mul_batch8`]): the plain
//!   vectorization, 100 madds per call. Inputs move between lane-major
//!   `Uint<4>` arrays and limb-major vectors with in-register
//!   `vpermt2q` transposes — scalar stores followed by 512-bit loads
//!   would stall on store-forwarding.
//! - **4 lanes, one value per lane *pair*** ([`mont_mul_batch4`]): even
//!   lanes run the `a·b` stream, odd lanes the `m·p` stream, cutting the
//!   madd count to 60 for half-size blocks; one in-lane pair swap + add
//!   per round rebuilds the true `t[0]` to derive `m` and the carry.
//!
//! On the measured host (Xeon with a single 512-bit FMA port) the 8-lane
//! kernel is throughput-bound on that port at ~1 madd/cycle; the 4-lane
//! kernel is front-end/port-pressure bound somewhat above its madd count.

use super::Uint;
use core::arch::x86_64::*;

/// Low-52-bit mask: digits of the radix-2^52 representation.
const M52: u64 = (1u64 << 52) - 1;

/// True when the running CPU supports the IFMA kernels.
#[inline]
pub(crate) fn available() -> bool {
    std::arch::is_x86_feature_detected!("avx512ifma")
        && std::arch::is_x86_feature_detected!("avx512vl")
}

/// Packs four 64-bit limbs into five 52-bit digits (little-endian).
pub(crate) fn pack52(l: &[u64; 4]) -> [u64; 5] {
    [
        l[0] & M52,
        ((l[0] >> 52) | (l[1] << 12)) & M52,
        ((l[1] >> 40) | (l[2] << 24)) & M52,
        ((l[2] >> 28) | (l[3] << 36)) & M52,
        l[3] >> 16,
    ]
}

/// Montgomery-multiplies `a[..n]` by `b[..n]` lane-wise into `out[..n]`
/// for a 256-bit modulus, running full blocks of 8 through the 8-lane
/// kernel and a trailing block of exactly 4 through the pair-split
/// kernel. Returns how many leading lanes were processed; the caller
/// finishes the `< 4`-lane tail serially.
///
/// Caller must have checked [`available`]; operands must be reduced.
pub(crate) fn mont_mul_batch_slice(
    a: &[Uint<4>],
    b: &[Uint<4>],
    out: &mut [Uint<4>],
    p_limbs: &[u64; 4],
    n0_inv: u64,
) -> usize {
    debug_assert!(available());
    let n = a.len().min(b.len()).min(out.len());
    let p52 = pack52(p_limbs);
    // p·p' ≡ -1 (mod 2^64) implies the same congruence mod 2^52, so the
    // radix-52 inverse is just the low 52 bits of the radix-64 one.
    let p_inv52 = n0_inv & M52;
    let mut done = 0;
    // SAFETY: `available()` was checked by the caller (debug-asserted
    // above); every block is in bounds of all three slices.
    unsafe {
        while done + 8 <= n {
            let a8 = &*(a.as_ptr().add(done) as *const [Uint<4>; 8]);
            let b8 = &*(b.as_ptr().add(done) as *const [Uint<4>; 8]);
            *(out.as_mut_ptr().add(done) as *mut [Uint<4>; 8]) =
                mont_mul_batch8(a8, b8, &p52, p_inv52);
            done += 8;
        }
        if done + 4 <= n {
            let a4 = &*(a.as_ptr().add(done) as *const [Uint<4>; 4]);
            let b4 = &*(b.as_ptr().add(done) as *const [Uint<4>; 4]);
            *(out.as_mut_ptr().add(done) as *mut [Uint<4>; 4]) =
                mont_mul_batch4(a4, b4, &p52, p_inv52);
            done += 4;
        }
    }
    done
}

/// One vectorized radix-2^52 REDC over 8 lanes: returns `a·b·2^-260 mod p`
/// per lane as normalized 52-bit digits, canonical (`< p`).
///
/// # Safety
/// Requires avx512ifma + avx512vl at runtime.
#[target_feature(enable = "avx512ifma,avx512vl")]
unsafe fn redc52x8(
    a: &[__m512i; 5],
    b: &[__m512i; 5],
    p: &[__m512i; 5],
    p_inv: __m512i,
) -> [__m512i; 5] {
    let zero = _mm512_setzero_si512();
    let mask52 = _mm512_set1_epi64(M52 as i64);
    let mut t = [zero; 6];
    for &ai in a {
        for j in 0..5 {
            t[j] = _mm512_madd52lo_epu64(t[j], ai, b[j]);
            t[j + 1] = _mm512_madd52hi_epu64(t[j + 1], ai, b[j]);
        }
        // m = low52(t[0]) * p_inv mod 2^52 (madd52lo reads only the low
        // 52 bits of each operand, so no masking is needed).
        let m = _mm512_madd52lo_epu64(zero, t[0], p_inv);
        for j in 0..5 {
            t[j] = _mm512_madd52lo_epu64(t[j], m, p[j]);
            t[j + 1] = _mm512_madd52hi_epu64(t[j + 1], m, p[j]);
        }
        let carry = _mm512_srli_epi64(t[0], 52);
        t[1] = _mm512_add_epi64(t[1], carry);
        for j in 0..5 {
            t[j] = t[j + 1];
        }
        t[5] = zero;
    }
    // Normalize to strict 52-bit digits.
    let mut out = [zero; 5];
    let mut carry = zero;
    for j in 0..5 {
        let v = _mm512_add_epi64(t[j], carry);
        out[j] = _mm512_and_epi64(v, mask52);
        carry = _mm512_srli_epi64(v, 52);
    }
    // Result < 2p: conditional subtract via sign-bit borrow propagation.
    let mut sub = [zero; 5];
    let mut borrow = zero;
    for j in 0..5 {
        let v = _mm512_sub_epi64(_mm512_sub_epi64(out[j], p[j]), borrow);
        borrow = _mm512_srli_epi64(v, 63);
        sub[j] = _mm512_and_epi64(v, mask52);
    }
    // borrow lane == 0 -> out >= p -> take the subtracted value.
    let ge = _mm512_cmpeq_epu64_mask(borrow, zero);
    for j in 0..5 {
        out[j] = _mm512_mask_blend_epi64(ge, out[j], sub[j]);
    }
    out
}

/// 8-lane batched Montgomery multiplication: in-register 8×4 transpose,
/// 52-bit digit extraction with `b` pre-scaled by `2^4`, one REDC, inverse
/// transpose. Bit-identical per lane to serial `mont_mul`.
///
/// # Safety
/// Requires avx512ifma + avx512vl at runtime. `Uint<4>` is `repr(C)`-like
/// 32 contiguous little-endian limb bytes (guaranteed by its definition).
#[target_feature(enable = "avx512ifma,avx512vl")]
unsafe fn mont_mul_batch8(
    a: &[Uint<4>; 8],
    b: &[Uint<4>; 8],
    p52: &[u64; 5],
    p_inv52: u64,
) -> [Uint<4>; 8] {
    let idx = |v: [i64; 8]| _mm512_loadu_si512(v.as_ptr() as *const _);
    let i_lo0 = idx([0, 4, 8, 12, 1, 5, 9, 13]);
    let i_hi0 = idx([2, 6, 10, 14, 3, 7, 11, 15]);
    let i_a = idx([0, 1, 2, 3, 8, 9, 10, 11]);
    let i_b = idx([4, 5, 6, 7, 12, 13, 14, 15]);

    // Transpose lane-major limbs into limb-major slices L0..L3.
    let transpose = |vals: &[Uint<4>; 8]| -> [__m512i; 4] {
        let ptr = vals.as_ptr() as *const __m512i;
        let z0 = _mm512_loadu_si512(ptr);
        let z1 = _mm512_loadu_si512(ptr.add(1));
        let z2 = _mm512_loadu_si512(ptr.add(2));
        let z3 = _mm512_loadu_si512(ptr.add(3));
        let u01_lo = _mm512_permutex2var_epi64(z0, i_lo0, z1);
        let u23_lo = _mm512_permutex2var_epi64(z2, i_lo0, z3);
        let u01_hi = _mm512_permutex2var_epi64(z0, i_hi0, z1);
        let u23_hi = _mm512_permutex2var_epi64(z2, i_hi0, z3);
        [
            _mm512_permutex2var_epi64(u01_lo, i_a, u23_lo),
            _mm512_permutex2var_epi64(u01_lo, i_b, u23_lo),
            _mm512_permutex2var_epi64(u01_hi, i_a, u23_hi),
            _mm512_permutex2var_epi64(u01_hi, i_b, u23_hi),
        ]
    };

    let mask52 = _mm512_set1_epi64(M52 as i64);
    macro_rules! shl {
        ($x:expr, $n:literal) => {
            _mm512_slli_epi64($x, $n)
        };
    }
    macro_rules! shr {
        ($x:expr, $n:literal) => {
            _mm512_srli_epi64($x, $n)
        };
    }
    let or = |x, y| _mm512_or_epi64(x, y);
    let and = |x| _mm512_and_epi64(x, mask52);

    let la = transpose(a);
    let av = [
        and(la[0]),
        and(or(shr!(la[0], 52), shl!(la[1], 12))),
        and(or(shr!(la[1], 40), shl!(la[2], 24))),
        and(or(shr!(la[2], 28), shl!(la[3], 36))),
        shr!(la[3], 16),
    ];
    // b is packed pre-scaled by 2^4: digit j of 16·b covers bits
    // [52j-4, 52j+48) of b.
    let lb = transpose(b);
    let bv = [
        and(shl!(lb[0], 4)),
        and(or(shr!(lb[0], 48), shl!(lb[1], 16))),
        and(or(shr!(lb[1], 36), shl!(lb[2], 28))),
        and(or(shr!(lb[2], 24), shl!(lb[3], 40))),
        shr!(lb[3], 12),
    ];

    let p: [__m512i; 5] = core::array::from_fn(|j| _mm512_set1_epi64(p52[j] as i64));
    let p_inv = _mm512_set1_epi64(p_inv52 as i64);
    let r = redc52x8(&av, &bv, &p, p_inv);

    // Digits back to limb slices, transpose back to lane-major, store.
    let l0 = or(r[0], shl!(r[1], 52));
    let l1 = or(shr!(r[1], 12), shl!(r[2], 40));
    let l2 = or(shr!(r[2], 24), shl!(r[3], 28));
    let l3 = or(shr!(r[3], 36), shl!(r[4], 16));
    let i_pair_lo = idx([0, 8, 1, 9, 2, 10, 3, 11]);
    let i_pair_hi = idx([4, 12, 5, 13, 6, 14, 7, 15]);
    let i_quad_lo = idx([0, 1, 8, 9, 2, 3, 10, 11]);
    let i_quad_hi = idx([4, 5, 12, 13, 6, 7, 14, 15]);
    let v01 = _mm512_permutex2var_epi64(l0, i_pair_lo, l1);
    let v23 = _mm512_permutex2var_epi64(l2, i_pair_lo, l3);
    let v45 = _mm512_permutex2var_epi64(l0, i_pair_hi, l1);
    let v67 = _mm512_permutex2var_epi64(l2, i_pair_hi, l3);
    let mut out = [Uint::<4>::ZERO; 8];
    let optr = out.as_mut_ptr() as *mut __m512i;
    _mm512_storeu_si512(optr, _mm512_permutex2var_epi64(v01, i_quad_lo, v23));
    _mm512_storeu_si512(optr.add(1), _mm512_permutex2var_epi64(v01, i_quad_hi, v23));
    _mm512_storeu_si512(optr.add(2), _mm512_permutex2var_epi64(v45, i_quad_lo, v67));
    _mm512_storeu_si512(optr.add(3), _mm512_permutex2var_epi64(v45, i_quad_hi, v67));
    out
}

/// Pair-split kernel for 4 lanes: each value occupies a lane PAIR of the
/// zmm — even lanes accumulate the `a·b` stream, odd lanes the `m·p`
/// stream — so 4 multiplications still use all 8 lanes and the madd52
/// count drops from 100 (padded 8-lane kernel) to 60. One pair swap+add
/// per round rebuilds the true `t[0]` to derive `m` and the carry.
///
/// # Safety
/// Requires avx512ifma + avx512vl at runtime.
#[target_feature(enable = "avx512ifma,avx512vl")]
unsafe fn mont_mul_batch4(
    a: &[Uint<4>; 4],
    b: &[Uint<4>; 4],
    p52: &[u64; 5],
    p_inv52: u64,
) -> [Uint<4>; 4] {
    let idx = |v: [i64; 8]| _mm512_loadu_si512(v.as_ptr() as *const _);
    let mask52 = _mm512_set1_epi64(M52 as i64);
    let zero = _mm512_setzero_si512();
    macro_rules! shl {
        ($x:expr, $n:literal) => {
            _mm512_slli_epi64($x, $n)
        };
    }
    macro_rules! shr {
        ($x:expr, $n:literal) => {
            _mm512_srli_epi64($x, $n)
        };
    }
    let or = |x, y| _mm512_or_epi64(x, y);
    let and = |x| _mm512_and_epi64(x, mask52);

    // Limb slices with each value duplicated into its lane pair:
    // L[j] = [A_j, A_j, B_j, B_j, C_j, C_j, D_j, D_j].
    let dup_transpose = |vals: &[Uint<4>; 4]| -> [__m512i; 4] {
        let ptr = vals.as_ptr() as *const __m512i;
        let z0 = _mm512_loadu_si512(ptr);
        let z1 = _mm512_loadu_si512(ptr.add(1));
        [
            _mm512_permutex2var_epi64(z0, idx([0, 0, 4, 4, 8, 8, 12, 12]), z1),
            _mm512_permutex2var_epi64(z0, idx([1, 1, 5, 5, 9, 9, 13, 13]), z1),
            _mm512_permutex2var_epi64(z0, idx([2, 2, 6, 6, 10, 10, 14, 14]), z1),
            _mm512_permutex2var_epi64(z0, idx([3, 3, 7, 7, 11, 11, 15, 15]), z1),
        ]
    };

    // No mask-to-52-bits here: vpmadd52 reads only the low 52 bits of
    // both operands, so garbage above bit 51 in a multiplier or
    // multiplicand digit is ignored.
    let la = dup_transpose(a);
    let av = [
        la[0],
        or(shr!(la[0], 52), shl!(la[1], 12)),
        or(shr!(la[1], 40), shl!(la[2], 24)),
        or(shr!(la[2], 28), shl!(la[3], 36)),
        shr!(la[3], 16),
    ];
    let lb = dup_transpose(b);
    // b pre-scaled by 2^4 (single-REDC domain correction).
    let bdup = [
        shl!(lb[0], 4),
        or(shr!(lb[0], 48), shl!(lb[1], 16)),
        or(shr!(lb[1], 36), shl!(lb[2], 28)),
        or(shr!(lb[2], 24), shl!(lb[3], 40)),
        shr!(lb[3], 12),
    ];

    let odd: __mmask8 = 0b1010_1010;
    let even: __mmask8 = 0b0101_0101;
    let pb: [__m512i; 5] = core::array::from_fn(|j| _mm512_set1_epi64(p52[j] as i64));
    // bp[j]: b digit in even lanes, p digit in odd lanes.
    let bp: [__m512i; 5] = core::array::from_fn(|j| _mm512_mask_blend_epi64(odd, bdup[j], pb[j]));
    // b0 restricted to even lanes (odd lanes must stay untouched by the
    // leading a_i·b_0 accumulation).
    let b0_even = _mm512_maskz_mov_epi64(even, bdup[0]);
    let p_inv = _mm512_set1_epi64(p_inv52 as i64);

    let mut t = [zero; 6];
    for &ai in &av {
        // Even lanes gain lo52(a_i·b_0); odd lanes multiply by zero.
        let x = _mm512_madd52lo_epu64(t[0], ai, b0_even);
        // True t[0] (+ a_i·b_0) = even part + odd part of each pair
        // (1-cycle in-lane qword swap).
        let swapped = _mm512_shuffle_epi32::<{ _MM_PERM_BADC }>(x);
        let sum = _mm512_add_epi64(x, swapped);
        let m = _mm512_madd52lo_epu64(zero, sum, p_inv);
        // Multiplier vector: a_i drives the b stream (even), m drives the
        // p stream (odd).
        let u = _mm512_mask_blend_epi64(odd, ai, m);
        // Full t[0] after this round's lo products; identical in both
        // pair lanes, so the carry is too.
        let c_t = _mm512_madd52lo_epu64(sum, m, pb[0]);
        let carry = shr!(c_t, 52);
        // hi52 parts of a_i·b_0 / m·p_0, then the carry into ONE lane of
        // each pair (it is already the combined carry).
        t[1] = _mm512_madd52hi_epu64(t[1], u, bp[0]);
        t[1] = _mm512_mask_add_epi64(t[1], even, t[1], carry);
        for j in 1..5 {
            t[j] = _mm512_madd52lo_epu64(t[j], u, bp[j]);
            t[j + 1] = _mm512_madd52hi_epu64(t[j + 1], u, bp[j]);
        }
        for j in 0..5 {
            t[j] = t[j + 1];
        }
        t[5] = zero;
    }
    // Recombine the two streams, then normalize + conditionally subtract
    // exactly like the 8-lane kernel.
    let mut out = [zero; 5];
    let mut carry = zero;
    for j in 0..5 {
        let combined = _mm512_add_epi64(t[j], _mm512_shuffle_epi32::<{ _MM_PERM_BADC }>(t[j]));
        let v = _mm512_add_epi64(combined, carry);
        out[j] = and(v);
        carry = shr!(v, 52);
    }
    let mut sub = [zero; 5];
    let mut borrow = zero;
    for j in 0..5 {
        let v = _mm512_sub_epi64(_mm512_sub_epi64(out[j], pb[j]), borrow);
        borrow = shr!(v, 63);
        sub[j] = and(v);
    }
    let ge = _mm512_cmpeq_epu64_mask(borrow, zero);
    for j in 0..5 {
        out[j] = _mm512_mask_blend_epi64(ge, out[j], sub[j]);
    }
    // Digits → limb slices (duplicated pairs) → lane-major output.
    let l0 = or(out[0], shl!(out[1], 52));
    let l1 = or(shr!(out[1], 12), shl!(out[2], 40));
    let l2 = or(shr!(out[2], 24), shl!(out[3], 28));
    let l3 = or(shr!(out[3], 36), shl!(out[4], 16));
    let w01 = _mm512_permutex2var_epi64(l0, idx([0, 8, 2, 10, 4, 12, 6, 14]), l1);
    let w23 = _mm512_permutex2var_epi64(l2, idx([0, 8, 2, 10, 4, 12, 6, 14]), l3);
    let mut res = [Uint::<4>::ZERO; 4];
    let optr = res.as_mut_ptr() as *mut __m512i;
    _mm512_storeu_si512(
        optr,
        _mm512_permutex2var_epi64(w01, idx([0, 1, 8, 9, 2, 3, 10, 11]), w23),
    );
    _mm512_storeu_si512(
        optr.add(1),
        _mm512_permutex2var_epi64(w01, idx([4, 5, 12, 13, 6, 7, 14, 15]), w23),
    );
    res
}

//! Stack-allocated fixed-width integers: the const-generic fast backend.
//!
//! [`BigUint`](crate::BigUint) keeps its limbs in a `Vec<u32>`, which makes
//! every ladder step on the host allocate. When the operand width is known
//! statically — the 256-bit named curves, fixed RSA moduli — the arithmetic
//! can instead run on a `[u64; LIMBS]` stack array with `u128`
//! carry/widening primitives and no heap traffic at all:
//!
//! - [`Uint`]: the `Copy` const-generic integer with explicit
//!   carry/borrow/widening arithmetic and `BigUint` conversions.
//! - [`MontgomeryContext`]: CIOS Montgomery multiplication, exponentiation
//!   and Fermat inversion with zero allocation past setup, mirroring
//!   [`MontgomeryParams`](crate::MontgomeryParams). At matching radix
//!   (`num_limbs() == 2·LIMBS`, e.g. 256-bit moduli at `LIMBS = 4`) the two
//!   backends share `R`, making Montgomery forms interchangeable and
//!   results bit-identical. Batch traffic gets the lane-interleaved
//!   kernels ([`MontgomeryContext::mont_mul_batch`] and the
//!   `mont_pow_batch`/`mod_exp_batch` ladders over it) plus Montgomery's
//!   batch-inversion trick ([`MontgomeryContext::mont_inv_batch`]: one
//!   Fermat inversion + `3(n-1)` multiplications), every lane bit-identical
//!   to its serial counterpart.
//! - Free modular helpers ([`add_mod`], [`sub_mod`], [`neg_mod`],
//!   [`mul_mod`], [`reduce_wide`]) for reduced fixed-width residues.
//!
//! Higher layers do not construct these directly: `field::Fp` selects the
//! fixed path for 256-bit primes behind its existing API, and `ecc` runs
//! the named 256-bit curve ladders on it. The differential proptest suite
//! (`tests/fixed_uint_properties.rs`) pins every operation here to the heap
//! backend bit for bit.

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod ifma;
mod modular;
mod montgomery;
mod uint;

pub use modular::{add_mod, mul_mod, neg_mod, reduce_wide, sub_mod};
pub use montgomery::MontgomeryContext;
pub use uint::{Uint, FIXED_LIMB_BITS};

// The u64 carry/borrow/widening primitives, re-exported for differential
// test harnesses; higher layers use the typed `Uint` operations instead.
pub use crate::limb::{borrowing_sub64, carrying_add64, mac64, widening_mul64};

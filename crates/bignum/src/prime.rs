//! Primality testing and prime generation.
//!
//! CEILIDH parameter generation needs primes `p ≡ 2 or 5 (mod 9)` of about
//! 170 bits together with a large prime factor of `Φ6(p) = p² - p + 1`;
//! RSA key generation needs two ~512-bit primes. Both are served by the
//! Miller–Rabin based routines in this module.

use rand::Rng;

use crate::modular::mod_mul;
use crate::montgomery::MontgomeryParams;
use crate::uint::BigUint;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u32; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Runs `rounds` iterations of the Miller–Rabin probabilistic primality test.
///
/// Returns `false` if `n` is certainly composite and `true` if it is
/// probably prime (error probability at most 4^-rounds for random bases).
pub fn miller_rabin<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if *n < BigUint::from(2u64) {
        return false;
    }
    if n.is_even() {
        return *n == BigUint::from(2u64);
    }
    let one = BigUint::one();
    let two = BigUint::from(2u64);
    let n_minus_one = n - &one;
    let s = n_minus_one.trailing_zeros();
    let d = n_minus_one.shr_bits(s);
    // Montgomery exponentiation keeps the witness loop division-free; the
    // modulus is odd at this point so the parameters always exist.
    let mont = MontgomeryParams::new(n).expect("odd modulus > 1");

    'witness: for _ in 0..rounds {
        // Pick a random base in [2, n-2]. For tiny n fall back to base 2.
        let a = if *n <= BigUint::from(5u64) {
            two.clone()
        } else {
            let span = n - &BigUint::from(3u64);
            &BigUint::random_below(rng, &span) + &two
        };
        let mut x = mont.mod_exp(&a, &d);
        if x.is_one() || x == n_minus_one {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = mod_mul(&x, &x, n);
            if x == n_minus_one {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Combined trial-division + Miller–Rabin primality test (25 rounds).
///
/// ```
/// use bignum::{is_prime, BigUint};
/// let mut rng = rand::thread_rng();
/// assert!(is_prime(&BigUint::from(1000000007u64), &mut rng));
/// assert!(!is_prime(&BigUint::from(1000000008u64), &mut rng));
/// ```
pub fn is_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    for &sp in &SMALL_PRIMES {
        let spb = BigUint::from(sp);
        if *n == spb {
            return true;
        }
        if (n % &spb).is_zero() {
            return false;
        }
    }
    miller_rabin(n, 25, rng)
}

/// Generates a random prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = &candidate + &BigUint::one();
            if candidate.bit_len() != bits {
                continue;
            }
        }
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generates a random prime with exactly `bits` bits congruent to
/// `residue` modulo `modulus`.
///
/// This is used to find the CEILIDH field prime `p ≡ 2 or 5 (mod 9)`.
///
/// # Panics
///
/// Panics if `bits < 2`, if `modulus` is zero, or if `residue >= modulus`.
pub fn gen_prime_congruent<R: Rng + ?Sized>(
    bits: usize,
    residue: u32,
    modulus: u32,
    rng: &mut R,
) -> BigUint {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    assert!(modulus > 0, "modulus must be positive");
    assert!(residue < modulus, "residue must be reduced");
    let m = BigUint::from(modulus);
    let r = BigUint::from(residue);
    loop {
        let candidate = BigUint::random_bits(rng, bits);
        // Adjust to the requested residue class.
        let cur = &candidate % &m;
        let adjusted = if cur <= r {
            &candidate + &(&r - &cur)
        } else {
            &(&candidate - &cur) + &r
        };
        if adjusted.bit_len() != bits {
            continue;
        }
        if is_prime(&adjusted, rng) {
            return adjusted;
        }
    }
}

/// Generates a safe prime `p` (one where `(p-1)/2` is also prime) with
/// exactly `bits` bits. Used by tests exercising subgroup constructions.
///
/// # Panics
///
/// Panics if `bits < 3`.
pub fn gen_safe_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 3, "a safe prime needs at least 3 bits");
    loop {
        let q = gen_prime(bits - 1, rng);
        let p = &q.shl_bits(1) + &BigUint::one();
        if p.bit_len() == bits && is_prime(&p, rng) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn small_numbers_classified_correctly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 251, 257, 65537, 1_000_000_007];
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 255, 65535, 1_000_000_005];
        for p in primes {
            assert!(is_prime(&BigUint::from(p), &mut rng), "{p} should be prime");
        }
        for c in composites {
            assert!(
                !is_prime(&BigUint::from(c), &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 62745, 162401] {
            assert!(
                !is_prime(&BigUint::from(c), &mut rng),
                "{c} is a Carmichael number"
            );
        }
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(is_prime(&p, &mut rng));
        }
    }

    #[test]
    fn congruent_prime_has_requested_residue() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        for residue in [2u32, 5] {
            let p = gen_prime_congruent(48, residue, 9, &mut rng);
            assert_eq!((&p % &BigUint::from(9u64)).to_u64(), Some(residue as u64));
            assert_eq!(p.bit_len(), 48);
            assert!(is_prime(&p, &mut rng));
        }
    }

    #[test]
    fn safe_prime_structure() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let p = gen_safe_prime(32, &mut rng);
        assert!(is_prime(&p, &mut rng));
        let q = (&p - &BigUint::one()).shr_bits(1);
        assert!(is_prime(&q, &mut rng));
    }

    #[test]
    fn miller_rabin_handles_even_and_tiny() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        assert!(!miller_rabin(&BigUint::zero(), 5, &mut rng));
        assert!(!miller_rabin(&BigUint::one(), 5, &mut rng));
        assert!(miller_rabin(&BigUint::from(2u64), 5, &mut rng));
        assert!(miller_rabin(&BigUint::from(3u64), 5, &mut rng));
        assert!(!miller_rabin(&BigUint::from(4u64), 5, &mut rng));
        assert!(miller_rabin(&BigUint::from(5u64), 5, &mut rng));
    }
}

//! Generic modular arithmetic helpers.
//!
//! These operate on reduced residues (`0 <= value < modulus`) and are used
//! by the field tower, parameter generation and the reference
//! implementations the coprocessor simulator is verified against. Hot-path
//! multiplications use [`MontgomeryParams`](crate::MontgomeryParams) instead.

use crate::gcd::extended_gcd;
use crate::uint::BigUint;

/// Computes `(a + b) mod m`.
///
/// # Panics
///
/// Panics in debug builds if `a` or `b` is not reduced modulo `m`.
pub fn mod_add(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    debug_assert!(a < m && b < m, "operands must be reduced");
    let s = a + b;
    if s >= *m {
        &s - m
    } else {
        s
    }
}

/// Computes `(a - b) mod m`.
///
/// # Panics
///
/// Panics in debug builds if `a` or `b` is not reduced modulo `m`.
pub fn mod_sub(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    debug_assert!(a < m && b < m, "operands must be reduced");
    if a >= b {
        a - b
    } else {
        &(a + m) - b
    }
}

/// Computes `(-a) mod m`.
pub fn mod_neg(a: &BigUint, m: &BigUint) -> BigUint {
    debug_assert!(a < m, "operand must be reduced");
    if a.is_zero() {
        BigUint::zero()
    } else {
        m - a
    }
}

/// Computes `(a * b) mod m` by full multiplication followed by reduction.
pub fn mod_mul(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    &(a * b) % m
}

/// Computes `base^exp mod m` by square-and-multiply.
///
/// ```
/// use bignum::{mod_exp, BigUint};
/// let m = BigUint::from(1000000007u64);
/// assert_eq!(
///     mod_exp(&BigUint::from(2u64), &BigUint::from(10u64), &m).to_u64(),
///     Some(1024)
/// );
/// ```
pub fn mod_exp(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    if m.is_one() {
        return BigUint::zero();
    }
    let mut result = BigUint::one();
    let mut b = base % m;
    for i in 0..exp.bit_len() {
        if exp.bit(i) {
            result = mod_mul(&result, &b, m);
        }
        b = mod_mul(&b, &b, m);
    }
    result
}

/// Computes the modular inverse `a^{-1} mod m`, or `None` if
/// `gcd(a, m) != 1`.
///
/// ```
/// use bignum::{mod_inv, BigUint};
/// let m = BigUint::from(97u64);
/// let inv = mod_inv(&BigUint::from(3u64), &m).unwrap();
/// assert_eq!((&inv * &BigUint::from(3u64)) % &m, BigUint::one());
/// ```
pub fn mod_inv(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    let e = extended_gcd(&(a % m), m);
    if !e.gcd.is_one() {
        return None;
    }
    Some(e.x.rem_euclid(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> BigUint {
        BigUint::from(1_000_000_007u64)
    }

    #[test]
    fn add_sub_neg() {
        let a = BigUint::from(999_999_999u64);
        let b = BigUint::from(100u64);
        assert_eq!(mod_add(&a, &b, &m()).to_u64(), Some(92));
        assert_eq!(
            mod_sub(&b, &a, &m()).to_u64(),
            Some(1_000_000_007 - 999_999_899)
        );
        assert_eq!(mod_neg(&b, &m()).to_u64(), Some(1_000_000_007 - 100));
        assert_eq!(mod_neg(&BigUint::zero(), &m()), BigUint::zero());
    }

    #[test]
    fn mul_matches_u128() {
        let a = 987_654_321u64;
        let b = 123_456_789u64;
        let expected = (a as u128 * b as u128 % 1_000_000_007u128) as u64;
        assert_eq!(
            mod_mul(&BigUint::from(a), &BigUint::from(b), &m()).to_u64(),
            Some(expected)
        );
    }

    #[test]
    fn exp_fermat_little_theorem() {
        // a^(p-1) == 1 mod p for prime p and gcd(a, p) = 1.
        let p = m();
        let exp = &p - &BigUint::one();
        for a in [2u64, 3, 65537, 999_999_937] {
            assert!(mod_exp(&BigUint::from(a), &exp, &p).is_one(), "a = {a}");
        }
    }

    #[test]
    fn exp_edge_cases() {
        assert_eq!(
            mod_exp(&BigUint::from(5u64), &BigUint::zero(), &m()),
            BigUint::one()
        );
        assert_eq!(
            mod_exp(&BigUint::from(5u64), &BigUint::from(7u64), &BigUint::one()),
            BigUint::zero()
        );
        assert_eq!(
            mod_exp(&BigUint::zero(), &BigUint::from(7u64), &m()),
            BigUint::zero()
        );
    }

    #[test]
    fn inverse_roundtrip() {
        let p = m();
        for a in [1u64, 2, 3, 65537, 999_999_999] {
            let a = BigUint::from(a);
            let inv = mod_inv(&a, &p).expect("p is prime");
            assert!(mod_mul(&a, &inv, &p).is_one());
        }
    }

    #[test]
    fn inverse_of_non_coprime_is_none() {
        let m = BigUint::from(12u64);
        assert!(mod_inv(&BigUint::from(4u64), &m).is_none());
        assert!(mod_inv(&BigUint::from(5u64), &m).is_some());
        assert!(mod_inv(&BigUint::from(3u64), &BigUint::one()).is_none());
    }
}

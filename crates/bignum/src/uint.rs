//! Arbitrary-precision unsigned integers in radix 2^32.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Rem, Shl, Shr, Sub};
use std::str::FromStr;

use rand::Rng;

use crate::error::{DivideByZeroError, ParseBigUintError};
use crate::limb::{adc, mac, sbb, Limb, LIMB_BITS};

/// Threshold (in limbs) above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 24;

/// An arbitrary-precision unsigned integer.
///
/// Limbs are stored little-endian (least significant limb first) and the
/// representation is always normalised: the most significant limb is
/// non-zero, and zero is represented by an empty limb vector.
///
/// # Example
///
/// ```
/// use bignum::BigUint;
///
/// let a = BigUint::from(10u64);
/// let b = BigUint::from(32u64);
/// assert_eq!((&a * &b).to_string(), "320");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<Limb>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs a value from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(limbs: &[Limb]) -> Self {
        let mut v = BigUint {
            limbs: limbs.to_vec(),
        };
        v.normalize();
        v
    }

    /// Returns the little-endian limbs of this value (no trailing zeros).
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// Returns the little-endian limbs padded with zeros to `len` limbs.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` limbs.
    pub fn to_limbs_padded(&self, len: usize) -> Vec<Limb> {
        assert!(
            self.limbs.len() <= len,
            "value with {} limbs does not fit in {len} limbs",
            self.limbs.len()
        );
        let mut v = self.limbs.clone();
        v.resize(len, 0);
        v
    }

    /// Parses a hexadecimal string (upper or lower case, no prefix).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if the string is empty or contains a
    /// non-hexadecimal character.
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError::Empty);
        }
        let mut out = BigUint::zero();
        for ch in s.chars() {
            let d = ch.to_digit(16).ok_or(ParseBigUintError::InvalidDigit(ch))?;
            out = out.shl_bits(4);
            out = &out + &BigUint::from(d as u64);
        }
        Ok(out)
    }

    /// Formats the value as a lowercase hexadecimal string without prefix.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:08x}"));
            }
        }
        s
    }

    /// Parses a big-endian byte string.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut out = BigUint::zero();
        for &b in bytes {
            out = out.shl_bits(8);
            out = &out + &BigUint::from(b as u64);
        }
        out
    }

    /// Returns the minimal big-endian byte representation (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.limbs.len() * 4);
        for limb in &self.limbs {
            bytes.extend_from_slice(&limb.to_le_bytes());
        }
        while bytes.last() == Some(&0) {
            bytes.pop();
        }
        bytes.reverse();
        bytes
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Returns bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / LIMB_BITS;
        let off = i % LIMB_BITS;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Returns the number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros() as usize)
            }
        }
    }

    /// Returns the number of trailing zero bits (0 for zero).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * LIMB_BITS + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Generates a uniformly random value with exactly `bits` bits
    /// (most significant bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits > 0, "cannot generate a 0-bit integer");
        let limbs = bits.div_ceil(LIMB_BITS);
        let mut v: Vec<Limb> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs - 1) * LIMB_BITS;
        let mask = if top_bits == LIMB_BITS {
            Limb::MAX
        } else {
            (1 << top_bits) - 1
        };
        v[limbs - 1] &= mask;
        v[limbs - 1] |= 1 << (top_bits - 1);
        BigUint::from_limbs(&v)
    }

    /// Generates a uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> Self {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bit_len();
        loop {
            let limbs = bits.div_ceil(LIMB_BITS);
            let mut v: Vec<Limb> = (0..limbs).map(|_| rng.gen()).collect();
            let top_bits = bits - (limbs - 1) * LIMB_BITS;
            let mask = if top_bits == LIMB_BITS {
                Limb::MAX
            } else {
                (1 << top_bits) - 1
            };
            v[limbs - 1] &= mask;
            let candidate = BigUint::from_limbs(&v);
            if candidate < *bound {
                return candidate;
            }
        }
    }

    /// Computes `self^exp` for a small exponent (schoolbook, no modulus).
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Checked subtraction; returns `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            None
        } else {
            Some(self.sub_unchecked(other))
        }
    }

    /// Divides by `divisor`, returning `(quotient, remainder)`.
    ///
    /// # Errors
    ///
    /// Returns [`DivideByZeroError`] when `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> Result<(BigUint, BigUint), DivideByZeroError> {
        if divisor.is_zero() {
            return Err(DivideByZeroError);
        }
        if self < divisor {
            return Ok((BigUint::zero(), self.clone()));
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return Ok((q, BigUint::from(r as u64)));
        }
        // Binary long division: O(bits(self) * limbs(divisor)), which is
        // plenty for the operand sizes in this reproduction (<= 2048 bits).
        let mut quotient = vec![0 as Limb; self.limbs.len()];
        let mut remainder = BigUint::zero();
        for i in (0..self.bit_len()).rev() {
            remainder = remainder.shl_bits(1);
            if self.bit(i) {
                remainder.set_bit(0);
            }
            if remainder >= *divisor {
                remainder = remainder.sub_unchecked(divisor);
                quotient[i / LIMB_BITS] |= 1 << (i % LIMB_BITS);
            }
        }
        Ok((BigUint::from_limbs(&quotient), remainder))
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_limb(&self, divisor: Limb) -> (BigUint, Limb) {
        assert!(divisor != 0, "division by zero");
        let d = divisor as u64;
        let mut rem: u64 = 0;
        let mut q = vec![0 as Limb; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << LIMB_BITS) | self.limbs[i] as u64;
            q[i] = (cur / d) as Limb;
            rem = cur % d;
        }
        (BigUint::from_limbs(&q), rem as Limb)
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        let mut out = vec![0 as Limb; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            if bit_shift == 0 {
                out[i + limb_shift] |= l;
            } else {
                out[i + limb_shift] |= l << bit_shift;
                out[i + limb_shift + 1] |= l >> (LIMB_BITS - bit_shift);
            }
        }
        BigUint::from_limbs(&out)
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = vec![0 as Limb; self.limbs.len() - limb_shift];
        for (i, slot) in out.iter_mut().enumerate() {
            let lo = self.limbs[i + limb_shift];
            let hi = if i + limb_shift + 1 < self.limbs.len() {
                self.limbs[i + limb_shift + 1]
            } else {
                0
            };
            *slot = if bit_shift == 0 {
                lo
            } else {
                (lo >> bit_shift) | (hi << (LIMB_BITS - bit_shift))
            };
        }
        BigUint::from_limbs(&out)
    }

    fn set_bit(&mut self, i: usize) {
        let limb = i / LIMB_BITS;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % LIMB_BITS);
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    fn add_impl(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s, c) = adc(a, b, carry);
            out.push(s);
            carry = c;
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(&out)
    }

    fn sub_unchecked(&self, other: &BigUint) -> BigUint {
        debug_assert!(self >= other);
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d, br) = sbb(a, b, borrow);
            out.push(d);
            borrow = br;
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(&out)
    }

    fn mul_impl(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        if self.limbs.len() >= KARATSUBA_THRESHOLD && other.limbs.len() >= KARATSUBA_THRESHOLD {
            return self.karatsuba(other);
        }
        self.schoolbook_mul(other)
    }

    fn schoolbook_mul(&self, other: &BigUint) -> BigUint {
        let mut out = vec![0 as Limb; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let (lo, hi) = mac(out[i + j], a, b, carry);
                out[i + j] = lo;
                carry = hi;
            }
            out[i + other.limbs.len()] = carry;
        }
        BigUint::from_limbs(&out)
    }

    fn karatsuba(&self, other: &BigUint) -> BigUint {
        let half = self.limbs.len().max(other.limbs.len()) / 2;
        let (a0, a1) = self.split_at_limb(half);
        let (b0, b1) = other.split_at_limb(half);
        let z0 = a0.mul_impl(&b0);
        let z2 = a1.mul_impl(&b1);
        let z1 = (&a0 + &a1).mul_impl(&(&b0 + &b1));
        // z1 - z0 - z2 is always non-negative.
        let mid = z1.sub_unchecked(&z0).sub_unchecked(&z2);
        &(&z0 + &mid.shl_bits(half * LIMB_BITS)) + &z2.shl_bits(2 * half * LIMB_BITS)
    }

    fn split_at_limb(&self, at: usize) -> (BigUint, BigUint) {
        if at >= self.limbs.len() {
            (self.clone(), BigUint::zero())
        } else {
            (
                BigUint::from_limbs(&self.limbs[..at]),
                BigUint::from_limbs(&self.limbs[at..]),
            )
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(&[v as Limb, (v >> 32) as Limb])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_limbs(&[v])
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_impl(rhs)
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        self.add_impl(&rhs)
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics if `rhs > self` (the result would be negative).
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_impl(rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_impl(&rhs)
    }
}

impl Div for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).expect("division by zero").0
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).expect("division by zero").1
    }
}

impl Rem for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        &self % &rhs
    }
}

impl Rem<&BigUint> for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        &self % rhs
    }
}

impl Add<&BigUint> for BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        &self + rhs
    }
}

impl Sub<&BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        &self - rhs
    }
}

impl Mul<&BigUint> for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        &self * rhs
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, rhs: usize) -> BigUint {
        self.shl_bits(rhs)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, rhs: usize) -> BigUint {
        self.shr_bits(rhs)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^9 (the largest power of ten in a limb).
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().enumerate().rev() {
            if i == chunks.len() - 1 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{chunk:09}"));
            }
        }
        write!(f, "{s}")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl fmt::UpperHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex().to_uppercase())
    }
}

impl fmt::Binary for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for i in (0..self.bit_len()).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    /// Parses a decimal string.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigUintError::Empty);
        }
        let mut out = BigUint::zero();
        let ten = BigUint::from(10u64);
        for ch in s.chars() {
            let d = ch.to_digit(10).ok_or(ParseBigUintError::InvalidDigit(ch))?;
            out = &(&out * &ten) + &BigUint::from(d as u64);
        }
        Ok(out)
    }
}

impl std::iter::Sum for BigUint {
    fn sum<I: Iterator<Item = BigUint>>(iter: I) -> Self {
        iter.fold(BigUint::zero(), |acc, x| &acc + &x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_str(s).unwrap()
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn from_and_to_u64() {
        let v = BigUint::from(0xDEAD_BEEF_1234_5678u64);
        assert_eq!(v.to_u64(), Some(0xDEAD_BEEF_1234_5678));
        assert_eq!(v.bit_len(), 64);
    }

    #[test]
    fn hex_roundtrip() {
        let v = BigUint::from_hex("deadbeef0123456789abcdef").unwrap();
        assert_eq!(v.to_hex(), "deadbeef0123456789abcdef");
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert!(BigUint::from_hex("").is_err());
        assert!(BigUint::from_hex("xyz").is_err());
    }

    #[test]
    fn decimal_roundtrip() {
        let v = big("123456789012345678901234567890");
        assert_eq!(v.to_string(), "123456789012345678901234567890");
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = BigUint::from_hex("0102030405060708090a").unwrap();
        assert_eq!(v.to_be_bytes(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(BigUint::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn addition_and_subtraction() {
        let a = big("340282366920938463463374607431768211455");
        let b = big("18446744073709551615");
        let sum = &a + &b;
        assert_eq!(&sum - &b, a);
        assert_eq!(&sum - &a, b);
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = &BigUint::one() - &BigUint::from(2u64);
    }

    #[test]
    fn multiplication_matches_u128() {
        let a = 0xFFFF_FFFF_FFFFu64;
        let b = 0x1234_5678_9ABCu64;
        let prod = (a as u128) * (b as u128);
        let got = &BigUint::from(a) * &BigUint::from(b);
        assert_eq!(got.to_hex(), format!("{prod:x}"));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        let mut rng = rand::thread_rng();
        for _ in 0..10 {
            let a = BigUint::random_bits(&mut rng, 2000);
            let b = BigUint::random_bits(&mut rng, 1800);
            assert_eq!(a.schoolbook_mul(&b), a.karatsuba(&b));
        }
    }

    #[test]
    fn division_basics() {
        let a = big("123456789012345678901234567890");
        let b = big("987654321");
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
        assert!(a.div_rem(&BigUint::zero()).is_err());
        // Dividend smaller than divisor.
        let (q, r) = b.div_rem(&a).unwrap();
        assert!(q.is_zero());
        assert_eq!(r, b);
    }

    #[test]
    fn division_by_limb() {
        let a = big("1000000000000000000000000000007");
        let (q, r) = a.div_rem_limb(7);
        assert_eq!(&(&q * &BigUint::from(7u64)) + &BigUint::from(r as u64), a);
    }

    #[test]
    fn shifts() {
        let v = BigUint::from(0b1011u64);
        assert_eq!(v.shl_bits(100).shr_bits(100), v);
        assert_eq!(v.shl_bits(3).to_u64(), Some(0b1011000));
        assert_eq!(v.shr_bits(2).to_u64(), Some(0b10));
        assert_eq!(v.shr_bits(64), BigUint::zero());
    }

    #[test]
    fn bit_accessors() {
        let v = BigUint::from_hex("8000000000000001").unwrap();
        assert!(v.bit(0));
        assert!(v.bit(63));
        assert!(!v.bit(32));
        assert!(!v.bit(1000));
        assert_eq!(v.bit_len(), 64);
        assert_eq!(v.trailing_zeros(), 0);
        assert_eq!(BigUint::from(8u64).trailing_zeros(), 3);
    }

    #[test]
    fn ordering() {
        let a = big("100000000000000000000");
        let b = big("99999999999999999999");
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn pow_small() {
        assert_eq!(BigUint::from(3u64).pow(5).to_u64(), Some(243));
        assert_eq!(BigUint::from(2u64).pow(100).bit_len(), 101);
        assert_eq!(BigUint::from(7u64).pow(0), BigUint::one());
    }

    #[test]
    fn random_below_is_in_range() {
        let mut rng = rand::thread_rng();
        let bound = big("1000000007");
        for _ in 0..50 {
            assert!(BigUint::random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = rand::thread_rng();
        for bits in [1usize, 7, 32, 33, 170, 1024] {
            assert_eq!(BigUint::random_bits(&mut rng, bits).bit_len(), bits);
        }
    }

    #[test]
    fn binary_and_hex_formatting() {
        let v = BigUint::from(10u64);
        assert_eq!(format!("{v:b}"), "1010");
        assert_eq!(format!("{v:x}"), "a");
        assert_eq!(format!("{v:X}"), "A");
        assert_eq!(format!("{:b}", BigUint::zero()), "0");
    }

    #[test]
    fn limb_padding() {
        let v = BigUint::from(1u64);
        assert_eq!(v.to_limbs_padded(4), vec![1, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn limb_padding_too_small_panics() {
        let v = BigUint::from_hex("ffffffffffffffffff").unwrap();
        let _ = v.to_limbs_padded(1);
    }

    #[test]
    fn sum_iterator() {
        let total: BigUint = (1..=10u64).map(BigUint::from).sum();
        assert_eq!(total.to_u64(), Some(55));
    }
}

//! Limb-level primitives.
//!
//! A [`Limb`] is one machine word of the radix-2^w representation used by
//! [`BigUint`](crate::BigUint). The paper's coprocessor uses a `w`-bit
//! datapath built from the FPGA's dedicated multipliers; on the host side we
//! use 32-bit limbs with 64-bit intermediates, which keeps the carry logic
//! identical in shape to the hardware's multiply-accumulate datapath.

/// One machine word of a multi-precision integer (radix 2^32).
pub type Limb = u32;

/// A double-width intermediate used for multiply-accumulate operations.
pub type DoubleLimb = u64;

/// Number of bits in a [`Limb`].
pub const LIMB_BITS: usize = 32;

/// Add with carry: returns `(sum, carry_out)` of `a + b + carry_in`.
#[inline]
pub(crate) fn adc(a: Limb, b: Limb, carry: Limb) -> (Limb, Limb) {
    let t = a as DoubleLimb + b as DoubleLimb + carry as DoubleLimb;
    (t as Limb, (t >> LIMB_BITS) as Limb)
}

/// Subtract with borrow: returns `(diff, borrow_out)` of `a - b - borrow_in`.
#[inline]
pub(crate) fn sbb(a: Limb, b: Limb, borrow: Limb) -> (Limb, Limb) {
    let t = (a as DoubleLimb)
        .wrapping_sub(b as DoubleLimb)
        .wrapping_sub(borrow as DoubleLimb);
    (t as Limb, ((t >> LIMB_BITS) as Limb) & 1)
}

/// Multiply-accumulate: returns `(low, high)` of `a + b * c + carry`.
#[inline]
pub(crate) fn mac(a: Limb, b: Limb, c: Limb, carry: Limb) -> (Limb, Limb) {
    let t = a as DoubleLimb + (b as DoubleLimb) * (c as DoubleLimb) + carry as DoubleLimb;
    (t as Limb, (t >> LIMB_BITS) as Limb)
}

/// Computes `-m^{-1} mod 2^32` for odd `m` using Newton–Hensel lifting.
///
/// This is the per-modulus constant `p'` of Algorithm 1 (FIOS) in the paper.
#[inline]
pub(crate) fn inv_mod_limb(m: Limb) -> Limb {
    debug_assert!(m & 1 == 1, "modulus must be odd");
    // Newton iteration: x_{k+1} = x_k * (2 - m * x_k) doubles correct bits.
    let mut x: Limb = 1;
    for _ in 0..5 {
        x = x.wrapping_mul(2u32.wrapping_sub(m.wrapping_mul(x)));
    }
    x.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u32::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u32::MAX, u32::MAX, 1), (u32::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u32::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u32::MAX, 1));
    }

    #[test]
    fn mac_accumulates() {
        // a + b*c + carry = 3 + 7*9 + 1 = 67
        assert_eq!(mac(3, 7, 9, 1), (67, 0));
        // Max everything still fits in a double limb.
        let (lo, hi) = mac(u32::MAX, u32::MAX, u32::MAX, u32::MAX);
        let expected = u32::MAX as u64 + (u32::MAX as u64) * (u32::MAX as u64) + u32::MAX as u64;
        assert_eq!(lo as u64 | ((hi as u64) << 32), expected);
    }

    #[test]
    fn inv_mod_limb_is_negative_inverse() {
        for &m in &[1u32, 3, 5, 0xFFFF_FFFF, 0x1234_5677, 2_147_483_659_u32] {
            if m & 1 == 0 {
                continue;
            }
            let inv = inv_mod_limb(m);
            // inv == -m^{-1} mod 2^32  <=>  m * inv == -1 mod 2^32
            assert_eq!(m.wrapping_mul(inv).wrapping_add(1), 0, "m = {m}");
        }
    }
}

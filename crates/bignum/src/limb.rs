//! Limb-level primitives.
//!
//! A [`Limb`] is one machine word of the radix-2^w representation used by
//! [`BigUint`](crate::BigUint). The paper's coprocessor uses a `w`-bit
//! datapath built from the FPGA's dedicated multipliers; on the host side we
//! use 32-bit limbs with 64-bit intermediates, which keeps the carry logic
//! identical in shape to the hardware's multiply-accumulate datapath.

/// One machine word of a multi-precision integer (radix 2^32).
pub type Limb = u32;

/// A double-width intermediate used for multiply-accumulate operations.
pub type DoubleLimb = u64;

/// Number of bits in a [`Limb`].
pub const LIMB_BITS: usize = 32;

/// Add with carry: returns `(sum, carry_out)` of `a + b + carry_in`.
#[inline]
pub(crate) fn adc(a: Limb, b: Limb, carry: Limb) -> (Limb, Limb) {
    let t = a as DoubleLimb + b as DoubleLimb + carry as DoubleLimb;
    (t as Limb, (t >> LIMB_BITS) as Limb)
}

/// Subtract with borrow: returns `(diff, borrow_out)` of `a - b - borrow_in`.
#[inline]
pub(crate) fn sbb(a: Limb, b: Limb, borrow: Limb) -> (Limb, Limb) {
    let t = (a as DoubleLimb)
        .wrapping_sub(b as DoubleLimb)
        .wrapping_sub(borrow as DoubleLimb);
    (t as Limb, ((t >> LIMB_BITS) as Limb) & 1)
}

/// Multiply-accumulate: returns `(low, high)` of `a + b * c + carry`.
#[inline]
pub(crate) fn mac(a: Limb, b: Limb, c: Limb, carry: Limb) -> (Limb, Limb) {
    let t = a as DoubleLimb + (b as DoubleLimb) * (c as DoubleLimb) + carry as DoubleLimb;
    (t as Limb, (t >> LIMB_BITS) as Limb)
}

/// Computes `-m^{-1} mod 2^32` for odd `m` using Newton–Hensel lifting.
///
/// This is the per-modulus constant `p'` of Algorithm 1 (FIOS) in the paper.
#[inline]
pub(crate) fn inv_mod_limb(m: Limb) -> Limb {
    debug_assert!(m & 1 == 1, "modulus must be odd");
    // Newton iteration: x_{k+1} = x_k * (2 - m * x_k) doubles correct bits.
    let mut x: Limb = 1;
    for _ in 0..5 {
        x = x.wrapping_mul(2u32.wrapping_sub(m.wrapping_mul(x)));
    }
    x.wrapping_neg()
}

// --- u64 primitives for the fixed-width backend (`crate::fixed`) ---
//
// Same carry/borrow shapes as the u32 family above, but one radix up:
// u64 limbs with u128 intermediates. Stable Rust's `u64::carrying_add`
// and `u64::widening_mul` are nightly-only, so these spell out the u128
// arithmetic by hand.

/// Add with carry at radix 2^64: `(sum, carry_out)` of `a + b + carry_in`.
///
/// `carry_in` must be 0 or 1; `carry_out` is always 0 or 1.
#[inline]
pub fn carrying_add64(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Subtract with borrow at radix 2^64: `(diff, borrow_out)` of
/// `a - b - borrow_in`.
///
/// `borrow_in` must be 0 or 1; `borrow_out` is always 0 or 1.
#[inline]
pub fn borrowing_sub64(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Widening multiply at radix 2^64: `(low, high)` of the 128-bit product
/// `b * c`.
#[inline]
pub fn widening_mul64(b: u64, c: u64) -> (u64, u64) {
    let t = (b as u128) * (c as u128);
    (t as u64, (t >> 64) as u64)
}

/// Multiply-accumulate at radix 2^64: `(low, high)` of `a + b * c + carry`.
///
/// Never overflows: the maximum value is
/// `(2^64-1) + (2^64-1)^2 + (2^64-1) = 2^128 - 1`.
#[inline]
pub fn mac64(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Computes `-m^{-1} mod 2^64` for odd `m` — the CIOS constant `p'` of the
/// fixed-width backend, one Newton–Hensel iteration deeper than the u32
/// variant (6 doublings reach 64 correct bits).
#[inline]
pub(crate) fn inv_mod_limb64(m: u64) -> u64 {
    debug_assert!(m & 1 == 1, "modulus must be odd");
    let mut x: u64 = 1;
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(x)));
    }
    x.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u32::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u32::MAX, u32::MAX, 1), (u32::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u32::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u32::MAX, 1));
    }

    #[test]
    fn mac_accumulates() {
        // a + b*c + carry = 3 + 7*9 + 1 = 67
        assert_eq!(mac(3, 7, 9, 1), (67, 0));
        // Max everything still fits in a double limb.
        let (lo, hi) = mac(u32::MAX, u32::MAX, u32::MAX, u32::MAX);
        let expected = u32::MAX as u64 + (u32::MAX as u64) * (u32::MAX as u64) + u32::MAX as u64;
        assert_eq!(lo as u64 | ((hi as u64) << 32), expected);
    }

    #[test]
    fn inv_mod_limb_is_negative_inverse() {
        for &m in &[1u32, 3, 5, 0xFFFF_FFFF, 0x1234_5677, 2_147_483_659_u32] {
            if m & 1 == 0 {
                continue;
            }
            let inv = inv_mod_limb(m);
            // inv == -m^{-1} mod 2^32  <=>  m * inv == -1 mod 2^32
            assert_eq!(m.wrapping_mul(inv).wrapping_add(1), 0, "m = {m}");
        }
    }

    #[test]
    fn carrying_add64_carries() {
        assert_eq!(carrying_add64(u64::MAX, 1, 0), (0, 1));
        assert_eq!(carrying_add64(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(carrying_add64(1, 2, 0), (3, 0));
    }

    #[test]
    fn borrowing_sub64_borrows() {
        assert_eq!(borrowing_sub64(0, 1, 0), (u64::MAX, 1));
        assert_eq!(borrowing_sub64(5, 3, 1), (1, 0));
        assert_eq!(borrowing_sub64(0, 0, 1), (u64::MAX, 1));
    }

    #[test]
    fn widening_mul64_matches_u128() {
        let (lo, hi) = widening_mul64(u64::MAX, u64::MAX);
        let expected = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(lo as u128 | ((hi as u128) << 64), expected);
    }

    #[test]
    fn mac64_accumulates_without_overflow() {
        assert_eq!(mac64(3, 7, 9, 1), (67, 0));
        let (lo, hi) = mac64(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        let expected =
            u64::MAX as u128 + (u64::MAX as u128) * (u64::MAX as u128) + u64::MAX as u128;
        assert_eq!(lo as u128 | ((hi as u128) << 64), expected);
    }

    #[test]
    fn inv_mod_limb64_is_negative_inverse() {
        for &m in &[
            1u64,
            3,
            5,
            u64::MAX,
            0x1234_5677_89AB_CDEF,
            0xFFFF_FFFE_FFFF_FC2F, // secp256k1 low limb
        ] {
            let inv = inv_mod_limb64(m);
            assert_eq!(m.wrapping_mul(inv).wrapping_add(1), 0, "m = {m}");
        }
    }
}

//! Greatest common divisor and the extended Euclidean algorithm.

use crate::uint::BigUint;

/// A signed multi-precision value used for Bézout coefficients.
///
/// Only the extended-GCD result needs a sign, so this intentionally stays a
/// minimal magnitude/sign pair rather than a full signed integer type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedBig {
    /// Absolute value.
    pub magnitude: BigUint,
    /// Sign flag; `true` means the value is negative. Zero is never negative.
    pub negative: bool,
}

impl SignedBig {
    fn zero() -> Self {
        SignedBig {
            magnitude: BigUint::zero(),
            negative: false,
        }
    }

    fn one() -> Self {
        SignedBig {
            magnitude: BigUint::one(),
            negative: false,
        }
    }

    /// Computes `self - q * other` with full sign handling.
    fn sub_mul(&self, q: &BigUint, other: &SignedBig) -> SignedBig {
        let prod = SignedBig {
            magnitude: q * &other.magnitude,
            negative: other.negative,
        };
        // self - prod
        if self.negative == prod.negative {
            // Same sign: subtract magnitudes.
            if self.magnitude >= prod.magnitude {
                let m = &self.magnitude - &prod.magnitude;
                SignedBig {
                    negative: self.negative && !m.is_zero(),
                    magnitude: m,
                }
            } else {
                let m = &prod.magnitude - &self.magnitude;
                SignedBig {
                    negative: !self.negative && !m.is_zero(),
                    magnitude: m,
                }
            }
        } else {
            // Opposite sign: add magnitudes, keep self's sign.
            SignedBig {
                magnitude: &self.magnitude + &prod.magnitude,
                negative: self.negative,
            }
        }
    }

    /// Reduces the value into `[0, modulus)`.
    pub fn rem_euclid(&self, modulus: &BigUint) -> BigUint {
        let r = &self.magnitude % modulus;
        if self.negative && !r.is_zero() {
            modulus - &r
        } else {
            r
        }
    }
}

/// Result of [`extended_gcd`]: `a*x + b*y = gcd(a, b)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedGcd {
    /// `gcd(a, b)`.
    pub gcd: BigUint,
    /// Bézout coefficient of `a`.
    pub x: SignedBig,
    /// Bézout coefficient of `b`.
    pub y: SignedBig,
}

/// Computes `gcd(a, b)` by the Euclidean algorithm.
///
/// ```
/// use bignum::{gcd, BigUint};
/// assert_eq!(gcd(&BigUint::from(54u64), &BigUint::from(24u64)).to_u64(), Some(6));
/// ```
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    let mut r0 = a.clone();
    let mut r1 = b.clone();
    while !r1.is_zero() {
        let r2 = &r0 % &r1;
        r0 = r1;
        r1 = r2;
    }
    r0
}

/// Computes the extended GCD of `a` and `b`: coefficients `x`, `y` with
/// `a*x + b*y = gcd(a, b)`.
///
/// ```
/// use bignum::{extended_gcd, BigUint};
/// let g = extended_gcd(&BigUint::from(240u64), &BigUint::from(46u64));
/// assert_eq!(g.gcd.to_u64(), Some(2));
/// ```
pub fn extended_gcd(a: &BigUint, b: &BigUint) -> ExtendedGcd {
    let mut r0 = a.clone();
    let mut r1 = b.clone();
    let mut s0 = SignedBig::one();
    let mut s1 = SignedBig::zero();
    let mut t0 = SignedBig::zero();
    let mut t1 = SignedBig::one();

    while !r1.is_zero() {
        let (q, r2) = r0.div_rem(&r1).expect("r1 checked non-zero");
        let s2 = s0.sub_mul(&q, &s1);
        let t2 = t0.sub_mul(&q, &t1);
        r0 = r1;
        r1 = r2;
        s0 = s1;
        s1 = s2;
        t0 = t1;
        t1 = t2;
    }

    ExtendedGcd {
        gcd: r0,
        x: s0,
        y: t0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bezout(a: u64, b: u64) {
        let ba = BigUint::from(a);
        let bb = BigUint::from(b);
        let e = extended_gcd(&ba, &bb);
        // Verify a*x + b*y == gcd using i128 arithmetic.
        let x = e.x.magnitude.to_u64().unwrap() as i128 * if e.x.negative { -1 } else { 1 };
        let y = e.y.magnitude.to_u64().unwrap() as i128 * if e.y.negative { -1 } else { 1 };
        let g = e.gcd.to_u64().unwrap() as i128;
        assert_eq!(a as i128 * x + b as i128 * y, g, "a={a} b={b}");
    }

    #[test]
    fn gcd_small_values() {
        assert_eq!(
            gcd(&BigUint::from(0u64), &BigUint::from(5u64)).to_u64(),
            Some(5)
        );
        assert_eq!(
            gcd(&BigUint::from(5u64), &BigUint::from(0u64)).to_u64(),
            Some(5)
        );
        assert_eq!(
            gcd(&BigUint::from(12u64), &BigUint::from(18u64)).to_u64(),
            Some(6)
        );
        assert_eq!(
            gcd(&BigUint::from(17u64), &BigUint::from(31u64)).to_u64(),
            Some(1)
        );
    }

    #[test]
    fn bezout_identity_holds() {
        check_bezout(240, 46);
        check_bezout(46, 240);
        check_bezout(1, 1);
        check_bezout(99991, 65537);
        check_bezout(1000000007, 998244353);
        check_bezout(12, 0);
        check_bezout(0, 12);
    }

    #[test]
    fn rem_euclid_wraps_negative() {
        let m = BigUint::from(7u64);
        let v = SignedBig {
            magnitude: BigUint::from(3u64),
            negative: true,
        };
        assert_eq!(v.rem_euclid(&m).to_u64(), Some(4));
        let v = SignedBig {
            magnitude: BigUint::from(10u64),
            negative: false,
        };
        assert_eq!(v.rem_euclid(&m).to_u64(), Some(3));
    }
}

//! Error types for the `bignum` crate.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a [`BigUint`](crate::BigUint) from a string fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseBigUintError {
    /// The input string was empty.
    Empty,
    /// The input contained a character that is not a valid digit in the
    /// requested radix.
    InvalidDigit(char),
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBigUintError::Empty => write!(f, "cannot parse integer from empty string"),
            ParseBigUintError::InvalidDigit(c) => {
                write!(f, "invalid digit {c:?} in integer literal")
            }
        }
    }
}

impl Error for ParseBigUintError {}

/// Error returned when a division or modular reduction by zero is attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivideByZeroError;

impl fmt::Display for DivideByZeroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "division by zero")
    }
}

impl Error for DivideByZeroError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ParseBigUintError::Empty.to_string(),
            "cannot parse integer from empty string"
        );
        assert!(ParseBigUintError::InvalidDigit('z')
            .to_string()
            .contains("'z'"));
        assert_eq!(DivideByZeroError.to_string(), "division by zero");
    }
}

//! The work queue: request types, batching classes and arrival processes.
//!
//! A [`Request`] is one public-key operation a client asked the fleet to
//! perform — signing, key agreement, RSA decryption or a torus (CEILIDH)
//! exponentiation — stamped with a **virtual-time** arrival cycle. The
//! engine never looks at a wall clock: arrivals, service and completion
//! all live on the coprocessor's cycle axis, which is what makes every
//! simulation bit-reproducible.
//!
//! Each request maps to a [`WorkClass`] — the equivalence key under which
//! the [`crate::batch`] layer groups requests so one
//! [`platform::CompiledProgram`] fetch amortises across the whole batch.
//! Signing and ECDH over the same curve share a class: both are one
//! scalar multiplication, driven by the same ladder programs.
//!
//! [`TrafficProfile`] turns a weighted operation mix plus a mean
//! inter-arrival gap into a deterministic request trace via the seeded
//! shim RNG:
//!
//! ```
//! use engine::queue::TrafficProfile;
//!
//! let profile = TrafficProfile::mixed_date2008();
//! let trace = profile.generate(7, 100);
//! assert_eq!(trace.len(), 100);
//! // Same seed, same trace — arrivals are virtual cycles, not wall time.
//! assert_eq!(trace, profile.generate(7, 100));
//! assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One public-key operation a client can ask the fleet to perform.
///
/// The variants mirror the paper's three workload families (ECC, RSA,
/// torus); curves are named through [`ecc::Curve::by_name`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Operation {
    /// An ECDSA-style signature: one scalar multiplication over `curve`.
    Sign {
        /// Registered curve name (e.g. `"p256"`).
        curve: String,
    },
    /// An ECDH key agreement: one scalar multiplication over `curve`.
    KeyAgreement {
        /// Registered curve name (e.g. `"secp256k1"`).
        curve: String,
    },
    /// An RSA private-key operation: one `bits`-bit modular
    /// exponentiation driven MM-by-MM by the MicroBlaze.
    RsaDecrypt {
        /// Modulus length in bits (e.g. `1024`).
        bits: usize,
    },
    /// A torus (CEILIDH) exponentiation: a square-and-multiply ladder of
    /// `Fp6` multiplications at `bits`-bit operands.
    TorusExp {
        /// Base-field length in bits (the paper's system uses `170`).
        bits: usize,
    },
}

impl Operation {
    /// The batching class this operation belongs to.
    ///
    /// ```
    /// use engine::queue::Operation;
    ///
    /// let sign = Operation::Sign { curve: "p256".into() };
    /// let ecdh = Operation::KeyAgreement { curve: "p256".into() };
    /// // Both are one scalar multiplication: they batch together.
    /// assert_eq!(sign.work_class(), ecdh.work_class());
    /// ```
    pub fn work_class(&self) -> WorkClass {
        match self {
            Operation::Sign { curve } | Operation::KeyAgreement { curve } => WorkClass::Ecc {
                curve: curve.clone(),
            },
            Operation::RsaDecrypt { bits } => WorkClass::Rsa { bits: *bits },
            Operation::TorusExp { bits } => WorkClass::Torus { bits: *bits },
        }
    }

    /// Short human-readable label (used by examples and reports).
    pub fn label(&self) -> String {
        match self {
            Operation::Sign { curve } => format!("sign/{curve}"),
            Operation::KeyAgreement { curve } => format!("ecdh/{curve}"),
            Operation::RsaDecrypt { bits } => format!("rsa-{bits}"),
            Operation::TorusExp { bits } => format!("torus-{bits}"),
        }
    }
}

/// The equivalence key batch formation groups requests under.
///
/// Two requests in the same class run the same compiled program(s) at the
/// same operand length, so a batch of them pays the program fetch once.
/// The ordering is derived so classes can key deterministic `BTreeMap`s.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkClass {
    /// Scalar multiplication over a named curve (signing and ECDH).
    Ecc {
        /// Registered curve name.
        curve: String,
    },
    /// RSA modular exponentiation at `bits`-bit moduli. RSA has no
    /// level-2 program — the MicroBlaze drives raw Montgomery
    /// multiplications — so this class carries no compile overhead.
    Rsa {
        /// Modulus length in bits.
        bits: usize,
    },
    /// Torus exponentiation at `bits`-bit base fields.
    Torus {
        /// Base-field length in bits.
        bits: usize,
    },
}

impl std::fmt::Display for WorkClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkClass::Ecc { curve } => write!(f, "ecc/{curve}"),
            WorkClass::Rsa { bits } => write!(f, "rsa/{bits}"),
            WorkClass::Torus { bits } => write!(f, "torus/{bits}"),
        }
    }
}

/// One queued unit of work: an operation plus its virtual arrival time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Monotone request identifier (assigned by the trace generator).
    pub id: u64,
    /// The operation to perform.
    pub op: Operation,
    /// Arrival time in virtual cycles.
    pub arrival: u64,
    class: WorkClass,
}

impl Request {
    /// Creates a request, precomputing its batching class once so the
    /// scheduler's per-dispatch comparisons are cheap.
    pub fn new(id: u64, op: Operation, arrival: u64) -> Self {
        let class = op.work_class();
        Request {
            id,
            op,
            arrival,
            class,
        }
    }

    /// The batching class (precomputed at construction).
    pub fn class(&self) -> &WorkClass {
        &self.class
    }
}

/// A weighted operation mix plus an arrival process, from which
/// deterministic request traces are drawn.
///
/// Inter-arrival gaps are sampled **uniformly over `0..=2·mean`** integer
/// cycles rather than exponentially: the mean is the same, but the model
/// stays in pure integer arithmetic (no `ln`, no platform-dependent libm
/// rounding), which keeps traces — and therefore the gated throughput
/// rows — bit-identical everywhere.
#[derive(Debug, Clone)]
pub struct TrafficProfile {
    /// `(operation template, weight)` pairs; draws are proportional to
    /// weight. Must be non-empty with a positive total weight.
    pub mix: Vec<(Operation, u64)>,
    /// Mean inter-arrival gap in virtual cycles (0 = a pure burst).
    pub mean_interarrival: u64,
}

impl TrafficProfile {
    /// The mixed reproduction workload: mostly 256-bit ECDSA signing with
    /// ECDH, 1024-bit RSA decryption and 170-bit torus exponentiation
    /// alongside — the paper's three families at its own parameter sizes.
    pub fn mixed_date2008() -> Self {
        TrafficProfile {
            mix: vec![
                (
                    Operation::Sign {
                        curve: "p256".into(),
                    },
                    4,
                ),
                (
                    Operation::KeyAgreement {
                        curve: "secp256k1".into(),
                    },
                    2,
                ),
                (Operation::RsaDecrypt { bits: 1024 }, 1),
                (Operation::TorusExp { bits: 170 }, 1),
            ],
            mean_interarrival: 200_000,
        }
    }

    /// Draws a deterministic trace of `n` requests from the seeded shim
    /// RNG, with non-decreasing arrival times starting at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or its total weight is zero.
    pub fn generate(&self, seed: u64, n: usize) -> Vec<Request> {
        let total: u64 = self.mix.iter().map(|(_, w)| *w).sum();
        assert!(total > 0, "traffic mix needs a positive total weight");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrival = 0u64;
        (0..n as u64)
            .map(|id| {
                let mut ticket = rng.gen_range(0..total);
                let op = self
                    .mix
                    .iter()
                    .find(|(_, w)| {
                        if ticket < *w {
                            true
                        } else {
                            ticket -= *w;
                            false
                        }
                    })
                    .map(|(op, _)| op.clone())
                    .expect("ticket is below the total weight");
                let request = Request::new(id, op, arrival);
                if self.mean_interarrival > 0 {
                    arrival += rng.gen_range(0..=2 * self.mean_interarrival);
                }
                request
            })
            .collect()
    }

    /// Draws a deterministic **burst** trace: the same operation mix, but
    /// every request arrives at cycle 0 (a closed workload). Burst traces
    /// make batch formation independent of the instance count, which is
    /// what the throughput-monotonicity property is pinned on.
    pub fn burst(&self, seed: u64, n: usize) -> Vec<Request> {
        TrafficProfile {
            mix: self.mix.clone(),
            mean_interarrival: 0,
        }
        .generate(seed, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_group_scalar_multiplications_and_split_sizes() {
        let sign = Operation::Sign {
            curve: "p256".into(),
        };
        let ecdh = Operation::KeyAgreement {
            curve: "p256".into(),
        };
        let other = Operation::KeyAgreement {
            curve: "secp256k1".into(),
        };
        assert_eq!(sign.work_class(), ecdh.work_class());
        assert_ne!(sign.work_class(), other.work_class());
        assert_ne!(
            Operation::RsaDecrypt { bits: 1024 }.work_class(),
            Operation::RsaDecrypt { bits: 2048 }.work_class()
        );
        assert_eq!(
            Operation::TorusExp { bits: 170 }.work_class().to_string(),
            "torus/170"
        );
    }

    #[test]
    fn traces_are_deterministic_and_ordered() {
        let profile = TrafficProfile::mixed_date2008();
        let a = profile.generate(42, 250);
        let b = profile.generate(42, 250);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.windows(2).all(|w| w[0].id + 1 == w[1].id));
        // A different seed reshuffles the mix.
        assert_ne!(a, profile.generate(43, 250));
    }

    #[test]
    fn every_mix_entry_is_drawn() {
        let profile = TrafficProfile::mixed_date2008();
        let trace = profile.generate(1, 400);
        for (op, _) in &profile.mix {
            assert!(
                trace.iter().any(|r| &r.op == op),
                "{} never drawn in 400 requests",
                op.label()
            );
        }
    }

    #[test]
    fn bursts_arrive_at_cycle_zero() {
        let profile = TrafficProfile::mixed_date2008();
        let trace = profile.burst(9, 50);
        assert!(trace.iter().all(|r| r.arrival == 0));
        assert_eq!(trace.len(), 50);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn empty_mix_is_rejected() {
        let profile = TrafficProfile {
            mix: vec![],
            mean_interarrival: 10,
        };
        profile.generate(0, 1);
    }
}

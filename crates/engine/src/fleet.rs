//! The fleet: a farm of coprocessor instances behind one scheduler.
//!
//! A [`Fleet`] models `n` identical coprocessor instances (each a
//! [`platform::Platform`] — cores + control hierarchy + cost model) that
//! share **one** [`platform::ProgramCache`]: a level-2 program compiles
//! at most once fleet-wide, and every later batch of that class hits the
//! cache no matter which instance serves it.
//!
//! [`Fleet::run`] is a deterministic **virtual-time event loop** — the
//! "async scheduler" of the crate title is a model, not an OS runtime.
//! Time is an integer cycle counter; nothing reads a wall clock:
//!
//! 1. Advance to the earliest instant an instance is idle (or, when the
//!    queue is drained, to the next arrival).
//! 2. Admit every request that has arrived by then into the queue.
//! 3. Form one batch ([`crate::batch::BatchPolicy::take_batch`]) and
//!    dispatch it to the longest-idle instance.
//! 4. The batch pays each compiled-program **miss** once (MicroBlaze
//!    writes the generated sequence into the instruction ROM:
//!    `steps × issue_cycles + interrupt_cycles`), then serves its
//!    requests back-to-back at the class's service cost; each request
//!    completes as its slice finishes, which is what staggers latencies
//!    inside a batch.
//!
//! Service costs are priced once per class through the same pipelined
//! `schedule` model the golden cycle rows are gated on (see
//! [`Fleet::service_cycles`]), so fleet throughput numbers inherit the
//! calibration of Tables 1–3.
//!
//! ```
//! use engine::fleet::{Fleet, FleetConfig};
//! use engine::queue::TrafficProfile;
//!
//! let trace = TrafficProfile::mixed_date2008().burst(11, 24);
//! let single = Fleet::new(FleetConfig::date2008(1)).run(trace.clone());
//! let quad = Fleet::new(FleetConfig::date2008(4)).run(trace);
//!
//! assert_eq!(single.completed, 24);
//! // More instances never serve a closed workload slower...
//! assert!(quad.ops_per_sec >= single.ops_per_sec);
//! // ...and nearest-rank percentiles are ordered by construction.
//! assert!(quad.p50_latency_cycles <= quad.p99_latency_cycles);
//! ```

use std::collections::{BTreeMap, VecDeque};

use ecc::Curve;
use platform::{CostModel, Hierarchy, OpKind, Platform, ProgramCache};

use crate::batch::BatchPolicy;
use crate::metrics::{percentile, RunSummary};
use crate::queue::{Request, WorkClass};

/// Shape of a fleet: how many instances, and what each one is.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of coprocessor instances (must be at least 1).
    pub instances: usize,
    /// Montgomery-multiplier cores per instance (Fig. 5's multicore
    /// dimension).
    pub cores_per_instance: usize,
    /// Control hierarchy of every instance.
    pub hierarchy: Hierarchy,
    /// Cycle-cost calibration of every instance.
    pub cost: CostModel,
    /// Batch-formation rule.
    pub policy: BatchPolicy,
}

impl FleetConfig {
    /// The paper's platform replicated `instances` times: 4-core Type-B
    /// instances under the Table 1–3 calibration, default batching.
    pub fn date2008(instances: usize) -> Self {
        FleetConfig {
            instances,
            cores_per_instance: 4,
            hierarchy: Hierarchy::TypeB,
            cost: CostModel::paper(),
            policy: BatchPolicy::default(),
        }
    }
}

/// Occupancy state of one instance inside the event loop.
#[derive(Debug, Clone, Copy, Default)]
struct InstanceState {
    /// Virtual cycle at which the instance next goes idle.
    free_at: u64,
    /// Total cycles spent serving batches.
    busy_cycles: u64,
}

/// A farm of identical coprocessor instances sharing one program cache.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    cache: ProgramCache,
    instances: Vec<Platform>,
    /// Pricing platform with a private cache, so cost probes never touch
    /// the fleet cache's hit/miss telemetry.
    pricer: Platform,
    curves: BTreeMap<String, Curve>,
    prices: BTreeMap<WorkClass, u64>,
}

impl Fleet {
    /// Builds the fleet: `instances` platforms drawing from one shared
    /// [`ProgramCache`].
    ///
    /// # Panics
    ///
    /// Panics if `config.instances` is zero.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.instances > 0, "a fleet needs at least one instance");
        let cache = ProgramCache::new();
        let instances = (0..config.instances)
            .map(|_| {
                Platform::with_program_cache(
                    config.cost,
                    config.cores_per_instance,
                    config.hierarchy,
                    cache.clone(),
                )
            })
            .collect();
        let pricer = Platform::new(config.cost, config.cores_per_instance, config.hierarchy);
        Fleet {
            config,
            cache,
            instances,
            pricer,
            curves: BTreeMap::new(),
            prices: BTreeMap::new(),
        }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shared program cache (hit/miss counters accumulate across
    /// runs; [`Fleet::run`] reports per-run deltas).
    pub fn cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// The curve registry entry for `name`, resolved once per fleet.
    ///
    /// # Panics
    ///
    /// Panics if the name is not registered (see [`Curve::by_name`]).
    fn curve(&mut self, name: &str) -> &Curve {
        self.curves.entry(name.to_string()).or_insert_with(|| {
            Curve::by_name(name).unwrap_or_else(|e| panic!("unknown curve in request: {e:?}"))
        })
    }

    /// The level-2 programs a batch of `class` fetches before serving:
    /// the ladder's PD + PA pair for ECC (honouring the cost-model
    /// knobs), the `Fp6` multiplication for the torus, and none for RSA
    /// (whose ladder is raw MicroBlaze-driven Montgomery
    /// multiplications).
    fn class_programs(&mut self, class: &WorkClass) -> Vec<(OpKind, usize)> {
        let cost = self.config.cost;
        match class {
            WorkClass::Ecc { curve } => {
                let curve = self.curve(&curve.clone());
                let bits = curve.fp().modulus().bit_len();
                let pd = if cost.uses_fast_pd() && curve.a_is_minus_three() {
                    OpKind::EccPdFast
                } else {
                    OpKind::EccPd
                };
                let pa = if cost.uses_mixed_pa() {
                    OpKind::EccPaMixed
                } else {
                    OpKind::EccPaGeneral
                };
                vec![(pd, bits), (pa, bits)]
            }
            WorkClass::Rsa { .. } => vec![],
            WorkClass::Torus { bits } => vec![(OpKind::Fp6Mul, *bits)],
        }
    }

    /// Service cost of one request of `class` in cycles, priced once per
    /// class through the schedule model and memoized.
    ///
    /// Each family composes exactly as the paper's Table 3 composes its
    /// Table 1/2 entries over a `b`-bit double-and-add ladder (`b`
    /// doubling-steps plus `b/2` addition-steps on average):
    ///
    /// * **ECC** — `b·PD + (b/2)·PA` with the PD/PA sequences the ladder
    ///   would run under the current knobs;
    /// * **torus** — `(b + b/2)` `Fp6` multiplications (squarings and
    ///   multiplications run the same program);
    /// * **RSA** — `(b + b/2)` Montgomery multiplications, each paying
    ///   the MicroBlaze register-access + interrupt overhead.
    pub fn service_cycles(&mut self, class: &WorkClass) -> u64 {
        if let Some(&cycles) = self.prices.get(class) {
            return cycles;
        }
        let cycles = match class {
            WorkClass::Ecc { curve } => {
                let programs = self.class_programs(class);
                let bits = self.curve(&curve.clone()).fp().modulus().bit_len() as u64;
                let (pd, pa) = (programs[0], programs[1]);
                let pd_cycles = self.pricer.composite_report(pd.0, pd.1).cycles;
                let pa_cycles = self.pricer.composite_report(pa.0, pa.1).cycles;
                bits * pd_cycles + (bits / 2) * pa_cycles
            }
            WorkClass::Rsa { bits } => {
                let mm = self.pricer.montgomery_multiplication_report(*bits).cycles
                    + self.pricer.interrupt_cycles();
                (*bits as u64 + *bits as u64 / 2) * mm
            }
            WorkClass::Torus { bits } => {
                let fp6 = self.pricer.fp6_multiplication_report(*bits).cycles;
                (*bits as u64 + *bits as u64 / 2) * fp6
            }
        };
        self.prices.insert(class.clone(), cycles);
        cycles
    }

    /// One-time cost of a program-cache **miss** at dispatch: the
    /// MicroBlaze issues every step of the generated sequence into the
    /// instruction ROM and takes one interrupt round-trip.
    fn compile_cycles(&self, steps: u64) -> u64 {
        steps * self.config.cost.issue_cycles + self.config.cost.interrupt_cycles
    }

    /// Serves a request trace to completion and returns the run's
    /// telemetry. Deterministic: the same trace on the same config
    /// produces bit-identical summaries.
    ///
    /// Requests are admitted in arrival order (ties keep trace order);
    /// every dispatch picks the longest-idle instance (ties pick the
    /// lowest index).
    pub fn run(&mut self, mut trace: Vec<Request>) -> RunSummary {
        trace.sort_by_key(|r| r.arrival);
        let (hits_before, misses_before) = (self.cache.hits(), self.cache.misses());
        let mut states = vec![InstanceState::default(); self.config.instances];
        let mut queue: VecDeque<Request> = VecDeque::new();
        let mut next = 0; // index of the first not-yet-admitted arrival
        let mut latencies: Vec<u64> = Vec::with_capacity(trace.len());
        let mut batch_size_histogram: BTreeMap<usize, u64> = BTreeMap::new();
        let mut peak_queue_depth = 0;
        let mut makespan = 0;

        loop {
            let idle_at = states
                .iter()
                .map(|s| s.free_at)
                .min()
                .expect("fleet is non-empty");
            let now = if !queue.is_empty() {
                idle_at
            } else if next < trace.len() {
                idle_at.max(trace[next].arrival)
            } else {
                break;
            };
            while next < trace.len() && trace[next].arrival <= now {
                queue.push_back(trace[next].clone());
                next += 1;
            }
            peak_queue_depth = peak_queue_depth.max(queue.len());
            let batch = self
                .config
                .policy
                .take_batch(&mut queue)
                .expect("queue is non-empty at dispatch");
            let instance = states
                .iter()
                .enumerate()
                .min_by_key(|(i, s)| (s.free_at, *i))
                .map(|(i, _)| i)
                .expect("fleet is non-empty");

            let mut cursor = now;
            for (kind, bits) in self.class_programs(&batch.class) {
                let misses = self.cache.misses();
                let program = self.instances[instance].compiled(kind, bits);
                if self.cache.misses() > misses {
                    cursor += self.compile_cycles(program.stats().steps as u64);
                }
            }
            let service = self.service_cycles(&batch.class);
            for request in &batch.requests {
                cursor += service;
                latencies.push(cursor - request.arrival);
            }
            *batch_size_histogram.entry(batch.len()).or_insert(0) += 1;
            states[instance].busy_cycles += cursor - now;
            states[instance].free_at = cursor;
            makespan = makespan.max(cursor);
        }

        latencies.sort_unstable();
        let completed = latencies.len() as u64;
        let clock_hz = (self.config.cost.clock_mhz * 1e6).round() as u64;
        let ops_per_sec = if makespan == 0 {
            0
        } else {
            (completed as u128 * clock_hz as u128 / makespan as u128) as u64
        };
        RunSummary {
            instances: self.config.instances,
            completed,
            makespan_cycles: makespan,
            p50_latency_cycles: if completed == 0 {
                0
            } else {
                percentile(&latencies, 50)
            },
            p99_latency_cycles: if completed == 0 {
                0
            } else {
                percentile(&latencies, 99)
            },
            max_latency_cycles: latencies.last().copied().unwrap_or(0),
            ops_per_sec,
            peak_queue_depth,
            batch_size_histogram,
            cache_hits: self.cache.hits() - hits_before,
            cache_misses: self.cache.misses() - misses_before,
            instance_busy_cycles: states.iter().map(|s| s.busy_cycles).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{Operation, TrafficProfile};

    fn sign_burst(n: usize) -> Vec<Request> {
        (0..n as u64)
            .map(|id| {
                Request::new(
                    id,
                    Operation::Sign {
                        curve: "p160-reproduction".into(),
                    },
                    0,
                )
            })
            .collect()
    }

    #[test]
    fn empty_trace_yields_empty_summary() {
        let summary = Fleet::new(FleetConfig::date2008(2)).run(vec![]);
        assert_eq!(summary.completed, 0);
        assert_eq!(summary.makespan_cycles, 0);
        assert_eq!(summary.ops_per_sec, 0);
        assert_eq!(summary.batches(), 0);
    }

    #[test]
    fn single_class_burst_compiles_each_program_once_fleet_wide() {
        let mut fleet = Fleet::new(FleetConfig::date2008(3));
        let summary = fleet.run(sign_burst(12));
        assert_eq!(summary.completed, 12);
        // PD + PA compile once; every later batch hits both lookups.
        assert_eq!(summary.cache_misses, 2);
        let batches = summary.batches();
        assert_eq!(summary.cache_hits, 2 * (batches - 1));
        assert!(summary.cache_hit_rate_pct() > 0);
    }

    #[test]
    fn runs_report_cache_deltas_not_totals() {
        let mut fleet = Fleet::new(FleetConfig::date2008(2));
        let first = fleet.run(sign_burst(8));
        assert_eq!(first.cache_misses, 2);
        let second = fleet.run(sign_burst(8));
        // The second run re-fetches warm programs: all hits, no misses.
        assert_eq!(second.cache_misses, 0);
        assert!(second.cache_hits > 0);
        // Warm-cache throughput is at least the cold-cache throughput.
        assert!(second.ops_per_sec >= first.ops_per_sec);
    }

    #[test]
    fn percentiles_are_ordered_and_latency_positive() {
        let trace = TrafficProfile::mixed_date2008().generate(5, 40);
        let summary = Fleet::new(FleetConfig::date2008(2)).run(trace);
        assert_eq!(summary.completed, 40);
        assert!(summary.p50_latency_cycles > 0);
        assert!(summary.p50_latency_cycles <= summary.p99_latency_cycles);
        assert!(summary.p99_latency_cycles <= summary.max_latency_cycles);
        assert!(summary.peak_queue_depth >= 1);
    }

    #[test]
    fn more_instances_never_slow_a_burst_down() {
        let trace = TrafficProfile::mixed_date2008().burst(3, 32);
        let mut last = 0;
        for instances in [1, 2, 4, 8] {
            let summary = Fleet::new(FleetConfig::date2008(instances)).run(trace.clone());
            assert!(
                summary.ops_per_sec >= last,
                "{instances} instances: {} < {last} ops/s",
                summary.ops_per_sec
            );
            last = summary.ops_per_sec;
        }
    }

    #[test]
    fn occupancy_accounts_every_service_cycle() {
        let mut fleet = Fleet::new(FleetConfig::date2008(1));
        let summary = fleet.run(sign_burst(4));
        // One instance: busy time is the whole makespan (a burst has no
        // idle gaps), and utilization is exactly 100%.
        assert_eq!(summary.instance_busy_cycles.len(), 1);
        assert_eq!(summary.instance_busy_cycles[0], summary.makespan_cycles);
        assert_eq!(summary.utilization_pct(), 100);
    }

    #[test]
    fn rsa_class_has_no_program_lookups() {
        let trace: Vec<Request> = (0..6)
            .map(|id| Request::new(id, Operation::RsaDecrypt { bits: 512 }, 0))
            .collect();
        let summary = Fleet::new(FleetConfig::date2008(2)).run(trace);
        assert_eq!(summary.completed, 6);
        assert_eq!(summary.cache_hits + summary.cache_misses, 0);
        assert_eq!(summary.cache_hit_rate_pct(), 0);
    }

    #[test]
    fn service_pricing_is_memoized_and_knob_sensitive() {
        let class = WorkClass::Ecc {
            curve: "p256".into(),
        };
        let mut fast = Fleet::new(FleetConfig::date2008(1));
        let price = fast.service_cycles(&class);
        assert_eq!(price, fast.service_cycles(&class));
        // P-256 has a = -3: disabling fast-PD must price the ladder higher.
        let mut general = Fleet::new(FleetConfig {
            cost: CostModel::paper().with_fast_pd(false),
            ..FleetConfig::date2008(1)
        });
        assert!(general.service_cycles(&class) > price);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instance_fleets_are_rejected() {
        Fleet::new(FleetConfig::date2008(0));
    }

    #[test]
    #[should_panic(expected = "unknown curve")]
    fn unknown_curves_are_rejected_at_dispatch() {
        let trace = vec![Request::new(
            0,
            Operation::Sign {
                curve: "curve25519".into(),
            },
            0,
        )];
        Fleet::new(FleetConfig::date2008(1)).run(trace);
    }
}

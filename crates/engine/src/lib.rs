//! Throughput engine: a batched request scheduler over a fleet of
//! simulated coprocessor instances.
//!
//! The paper's Fig. 5 scales **cores per Montgomery multiplication**;
//! this crate extends the same story one level up, to **requests per
//! second per coprocessor instance**. It models a farm of the platform's
//! coprocessors behind an asynchronous request scheduler:
//!
//! * [`queue`] — request types (signing / ECDH / RSA / torus), the
//!   [`queue::WorkClass`] batching key, and deterministic shim-RNG
//!   arrival processes ([`queue::TrafficProfile`]);
//! * [`batch`] — batch formation: group queued same-class requests so
//!   one [`platform::CompiledProgram`] fetch amortises across the batch
//!   ([`batch::BatchPolicy`]);
//! * [`fleet`] — the farm itself: `n` instances sharing one
//!   [`platform::ProgramCache`], per-instance occupancy, per-class
//!   service pricing through the calibrated `schedule` model, and the
//!   deterministic **virtual-time** event loop ([`fleet::Fleet::run`]);
//! * [`metrics`] — nearest-rank latency percentiles, integer ops/sec,
//!   queue-depth and batch-size telemetry ([`metrics::RunSummary`]).
//!
//! Everything is integer cycle arithmetic over a seeded RNG — no wall
//! clock, no floats in the hot path — so every run is bit-reproducible
//! and the headline numbers can be gated in `golden/cycles.json` exactly
//! like cycle rows.
//!
//! # Example
//!
//! Serve one burst of mixed traffic on fleets of 1 and 4 instances:
//!
//! ```
//! use engine::prelude::*;
//!
//! let trace = TrafficProfile::mixed_date2008().burst(2, 96);
//! let mut single = Fleet::new(FleetConfig::date2008(1));
//! let mut quad = Fleet::new(FleetConfig::date2008(4));
//! let (s, q) = (single.run(trace.clone()), quad.run(trace));
//!
//! assert_eq!((s.completed, q.completed), (96, 96));
//! assert!(q.ops_per_sec >= s.ops_per_sec, "scaling never hurts a burst");
//! assert!(q.p50_latency_cycles <= q.p99_latency_cycles);
//! // Batching amortises compiles: far more cache hits than misses.
//! assert!(q.cache_hits > q.cache_misses);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod fleet;
pub mod metrics;
pub mod queue;

pub use batch::{Batch, BatchPolicy};
pub use fleet::{Fleet, FleetConfig};
pub use metrics::{percentile, RunSummary};
pub use queue::{Operation, Request, TrafficProfile, WorkClass};

/// One-line import for examples and tests.
///
/// ```
/// use engine::prelude::*;
///
/// let profile = TrafficProfile::mixed_date2008();
/// assert!(!profile.mix.is_empty());
/// ```
pub mod prelude {
    pub use crate::batch::{Batch, BatchPolicy};
    pub use crate::fleet::{Fleet, FleetConfig};
    pub use crate::metrics::{percentile, RunSummary};
    pub use crate::queue::{Operation, Request, TrafficProfile, WorkClass};
}

//! Batch formation: grouping queued requests by [`WorkClass`].
//!
//! The scheduler dispatches work to an instance one **batch** at a time.
//! A batch is a run of queued requests sharing one [`WorkClass`], so the
//! instance fetches each compiled program once (a single
//! [`platform::ProgramCache`] lookup per program) and then executes the
//! whole batch against it — the request-level analogue of the ladder
//! drivers' compile-once loops.
//!
//! Formation is deliberately simple and deterministic: take the class of
//! the **oldest** queued request (no starvation — the head of the queue
//! is always served next), then sweep the queue front-to-back collecting
//! requests of that class up to [`BatchPolicy::max_batch_size`]. Requests
//! of other classes keep their relative order.
//!
//! ```
//! use std::collections::VecDeque;
//! use engine::batch::BatchPolicy;
//! use engine::queue::{Operation, Request};
//!
//! let mut queue: VecDeque<Request> = [
//!     Request::new(0, Operation::Sign { curve: "p256".into() }, 0),
//!     Request::new(1, Operation::RsaDecrypt { bits: 1024 }, 0),
//!     Request::new(2, Operation::KeyAgreement { curve: "p256".into() }, 0),
//! ]
//! .into_iter()
//! .collect();
//!
//! let policy = BatchPolicy::default();
//! let batch = policy.take_batch(&mut queue).unwrap();
//! // The sign and the ECDH over p256 batch together, past the RSA job...
//! assert_eq!(batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 2]);
//! // ...which stays queued and forms the next batch.
//! assert_eq!(policy.take_batch(&mut queue).unwrap().requests[0].id, 1);
//! assert!(queue.is_empty());
//! ```

use std::collections::VecDeque;

use crate::queue::{Request, WorkClass};

/// Knobs of the batch-formation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest number of requests one batch may carry. Bigger batches
    /// amortise the program fetch further but lengthen the tail latency
    /// of the last request in the batch.
    pub max_batch_size: usize,
}

impl Default for BatchPolicy {
    /// Eight requests per batch — deep enough to amortise every program
    /// fetch into the noise, shallow enough to keep p99 bounded.
    fn default() -> Self {
        BatchPolicy { max_batch_size: 8 }
    }
}

/// A dispatched unit of work: same-class requests served back-to-back on
/// one instance against one program fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// The class every member shares.
    pub class: WorkClass,
    /// The member requests, oldest first.
    pub requests: Vec<Request>,
}

impl Batch {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when the batch carries no requests (never produced by
    /// [`BatchPolicy::take_batch`], which returns `None` instead).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

impl BatchPolicy {
    /// Forms the next batch from the queue, or `None` if it is empty.
    ///
    /// The batch takes the oldest request's class and collects up to
    /// [`BatchPolicy::max_batch_size`] requests of that class in queue
    /// order; everything else stays queued in its original relative
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch_size` is zero.
    pub fn take_batch(&self, queue: &mut VecDeque<Request>) -> Option<Batch> {
        assert!(self.max_batch_size > 0, "max_batch_size must be positive");
        let class = queue.front()?.class().clone();
        let mut requests = Vec::new();
        let mut i = 0;
        while i < queue.len() && requests.len() < self.max_batch_size {
            if queue[i].class() == &class {
                requests.push(queue.remove(i).expect("index is in bounds"));
            } else {
                i += 1;
            }
        }
        Some(Batch { class, requests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Operation;

    fn sign(id: u64) -> Request {
        Request::new(
            id,
            Operation::Sign {
                curve: "p256".into(),
            },
            0,
        )
    }

    fn rsa(id: u64) -> Request {
        Request::new(id, Operation::RsaDecrypt { bits: 1024 }, 0)
    }

    #[test]
    fn empty_queue_yields_no_batch() {
        let mut queue = VecDeque::new();
        assert_eq!(BatchPolicy::default().take_batch(&mut queue), None);
    }

    #[test]
    fn batches_cap_at_max_size_and_preserve_order() {
        let mut queue: VecDeque<Request> = (0..5).map(sign).collect();
        let policy = BatchPolicy { max_batch_size: 3 };
        let first = policy.take_batch(&mut queue).unwrap();
        assert_eq!(
            first.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            [0, 1, 2]
        );
        let second = policy.take_batch(&mut queue).unwrap();
        assert_eq!(
            second.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            [3, 4]
        );
        assert!(queue.is_empty());
    }

    #[test]
    fn other_classes_keep_their_relative_order() {
        let mut queue: VecDeque<Request> = [sign(0), rsa(1), sign(2), rsa(3), sign(4)]
            .into_iter()
            .collect();
        let policy = BatchPolicy::default();
        let ecc = policy.take_batch(&mut queue).unwrap();
        assert_eq!(
            ecc.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            [0, 2, 4]
        );
        assert_eq!(queue.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 3]);
        let rsa_batch = policy.take_batch(&mut queue).unwrap();
        assert_eq!(rsa_batch.class, WorkClass::Rsa { bits: 1024 });
        assert_eq!(rsa_batch.len(), 2);
        assert!(!rsa_batch.is_empty());
    }

    #[test]
    fn head_of_queue_is_always_served_first() {
        // Even when a later class has more members, the oldest request
        // picks the class: no starvation of minority traffic.
        let mut queue: VecDeque<Request> =
            [rsa(0), sign(1), sign(2), sign(3)].into_iter().collect();
        let batch = BatchPolicy::default().take_batch(&mut queue).unwrap();
        assert_eq!(batch.class, WorkClass::Rsa { bits: 1024 });
        assert_eq!(batch.len(), 1);
    }
}

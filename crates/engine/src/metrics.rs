//! Run summaries: latency percentiles, throughput and batching telemetry.
//!
//! Everything here is integer arithmetic over virtual cycles, so the same
//! trace on the same fleet produces bit-identical numbers on every host —
//! which is what lets `bench` gate ops/sec and cache-hit-rate rows in
//! `golden/cycles.json` exactly like cycle rows.
//!
//! ```
//! use engine::metrics::percentile;
//!
//! let sorted = [10, 20, 30, 40];
//! assert_eq!(percentile(&sorted, 50), 20);
//! assert_eq!(percentile(&sorted, 99), 40);
//! ```

use std::collections::BTreeMap;

/// The `pct`-th percentile of an ascending-sorted sample, by the
/// **nearest-rank** method: the `ceil(pct/100 · n)`-th smallest value.
///
/// Nearest-rank always returns an observed sample (no interpolation), is
/// exact in integer arithmetic, and is monotone in `pct` — so
/// `percentile(s, 50) <= percentile(s, 99)` holds for every sample.
///
/// # Panics
///
/// Panics if `sorted` is empty, unsorted, or `pct` is outside `1..=100`.
pub fn percentile(sorted: &[u64], pct: u64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!((1..=100).contains(&pct), "percentile rank must be 1..=100");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "sample unsorted");
    let rank = (pct * sorted.len() as u64).div_ceil(100);
    sorted[rank as usize - 1]
}

/// Everything one [`crate::fleet::Fleet::run`] measured, in virtual
/// cycles and exact integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of instances the fleet ran.
    pub instances: usize,
    /// Requests completed (every request completes; the model never
    /// drops work).
    pub completed: u64,
    /// Virtual cycle at which the last request completed.
    pub makespan_cycles: u64,
    /// Median request latency (arrival → completion), nearest-rank.
    pub p50_latency_cycles: u64,
    /// 99th-percentile request latency, nearest-rank.
    pub p99_latency_cycles: u64,
    /// Worst request latency.
    pub max_latency_cycles: u64,
    /// Completed requests per wall second at the modeled clock:
    /// `completed · clock_hz / makespan_cycles`, in integer arithmetic.
    pub ops_per_sec: u64,
    /// Deepest the queue got, observed at each dispatch after admitting
    /// arrivals.
    pub peak_queue_depth: usize,
    /// `batch size → number of batches` histogram.
    pub batch_size_histogram: BTreeMap<usize, u64>,
    /// Program-cache hits recorded by this run's dispatches.
    pub cache_hits: u64,
    /// Program-cache misses (compiles) recorded by this run's dispatches.
    pub cache_misses: u64,
    /// Busy cycles per instance (occupancy), indexed by instance.
    pub instance_busy_cycles: Vec<u64>,
}

impl RunSummary {
    /// Batch program-cache hit rate in integer percent (`0` when the run
    /// performed no program lookups, e.g. pure-RSA traffic).
    pub fn cache_hit_rate_pct(&self) -> u64 {
        let total = self.cache_hits + self.cache_misses;
        (self.cache_hits * 100).checked_div(total).unwrap_or(0)
    }

    /// Total batches dispatched.
    pub fn batches(&self) -> u64 {
        self.batch_size_histogram.values().sum()
    }

    /// Mean batch size ×100 (integer fixed-point, e.g. `250` = 2.5
    /// requests per batch); `0` for an empty run.
    pub fn mean_batch_size_x100(&self) -> u64 {
        (self.completed * 100)
            .checked_div(self.batches())
            .unwrap_or(0)
    }

    /// Fleet-wide occupancy in integer percent: busy cycles summed over
    /// instances against `instances · makespan` offered cycles (`0` for
    /// an empty run).
    pub fn utilization_pct(&self) -> u64 {
        let offered = self.makespan_cycles * self.instances as u64;
        (self.instance_busy_cycles.iter().sum::<u64>() * 100)
            .checked_div(offered)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_single_sample_is_that_sample() {
        // n = 1: every rank rounds to the only observation.
        assert_eq!(percentile(&[42], 1), 42);
        assert_eq!(percentile(&[42], 50), 42);
        assert_eq!(percentile(&[42], 99), 42);
        assert_eq!(percentile(&[42], 100), 42);
    }

    #[test]
    fn percentile_hand_computed_distribution() {
        // n = 10, values 10..=100: rank(p50) = ceil(0.5·10) = 5 → 50,
        // rank(p99) = ceil(9.9) = 10 → 100, rank(p10) = 1 → 10.
        let sorted: Vec<u64> = (1..=10).map(|i| i * 10).collect();
        assert_eq!(percentile(&sorted, 10), 10);
        assert_eq!(percentile(&sorted, 50), 50);
        assert_eq!(percentile(&sorted, 90), 90);
        assert_eq!(percentile(&sorted, 99), 100);
        assert_eq!(percentile(&sorted, 100), 100);
    }

    #[test]
    fn percentile_tied_values() {
        // Ties collapse ranks onto the same observation: with nine 7s and
        // one 1000, every rank up to 90 sees 7 and only p91+ sees the
        // outlier.
        let sorted = [7, 7, 7, 7, 7, 7, 7, 7, 7, 1000];
        assert_eq!(percentile(&sorted, 50), 7);
        assert_eq!(percentile(&sorted, 90), 7);
        assert_eq!(percentile(&sorted, 91), 1000);
        assert_eq!(percentile(&sorted, 99), 1000);
        // All-tied sample: every percentile is the tie.
        let flat = [5; 17];
        assert_eq!(percentile(&flat, 1), 5);
        assert_eq!(percentile(&flat, 99), 5);
    }

    #[test]
    fn percentile_is_monotone_in_rank() {
        let sorted = [1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89];
        for pct in 1..100 {
            assert!(percentile(&sorted, pct) <= percentile(&sorted, pct + 1));
        }
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_rejects_empty_samples() {
        percentile(&[], 50);
    }

    #[test]
    #[should_panic(expected = "must be 1..=100")]
    fn percentile_rejects_rank_zero() {
        percentile(&[1], 0);
    }

    #[test]
    fn hit_rate_and_batch_means_are_integer_exact() {
        let mut histogram = BTreeMap::new();
        histogram.insert(1usize, 2u64);
        histogram.insert(4, 3);
        let summary = RunSummary {
            instances: 2,
            completed: 14,
            makespan_cycles: 1000,
            p50_latency_cycles: 10,
            p99_latency_cycles: 20,
            max_latency_cycles: 25,
            ops_per_sec: 0,
            peak_queue_depth: 9,
            batch_size_histogram: histogram,
            cache_hits: 7,
            cache_misses: 3,
            instance_busy_cycles: vec![900, 600],
        };
        assert_eq!(summary.cache_hit_rate_pct(), 70);
        assert_eq!(summary.batches(), 5);
        // 14 requests over 5 batches = 2.8 → 280 in ×100 fixed-point.
        assert_eq!(summary.mean_batch_size_x100(), 280);
        // 1500 busy cycles over 2 × 1000 offered = 75%.
        assert_eq!(summary.utilization_pct(), 75);
    }

    #[test]
    fn zero_lookup_runs_report_zero_hit_rate() {
        let summary = RunSummary {
            instances: 1,
            completed: 0,
            makespan_cycles: 0,
            p50_latency_cycles: 0,
            p99_latency_cycles: 0,
            max_latency_cycles: 0,
            ops_per_sec: 0,
            peak_queue_depth: 0,
            batch_size_histogram: BTreeMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            instance_busy_cycles: vec![0],
        };
        assert_eq!(summary.cache_hit_rate_pct(), 0);
        assert_eq!(summary.mean_batch_size_x100(), 0);
        assert_eq!(summary.utilization_pct(), 0);
    }
}

//! Umbrella crate hosting the workspace-level examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! It re-exports the public crates of the reproduction so that examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use suite::prelude::*;
//!
//! let params = CeilidhParams::toy().expect("toy parameters");
//! assert_eq!(params.p().to_u64(), Some(101));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bignum;
pub use ceilidh;
pub use ecc;
pub use engine;
pub use field;
pub use platform;
pub use rsa_torus;

/// Commonly used items across the reproduction.
pub mod prelude {
    pub use bignum::{BigUint, MontgomeryParams};
    pub use ceilidh::{compress, decompress, shared_secret, CeilidhParams, KeyPair, TorusElement};
    pub use ecc::prelude::*;
    pub use engine::{Fleet, FleetConfig, TrafficProfile};
    pub use field::{Fp6Context, FpContext};
    pub use platform::{CostModel, Hierarchy, Platform};
    pub use rsa_torus::RsaKeyPair;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_links_all_crates() {
        let params = CeilidhParams::toy().unwrap();
        let curve = Curve::toy().unwrap();
        let plat = Platform::new(CostModel::paper(), 4, Hierarchy::TypeB);
        assert!(params.q().to_u64().unwrap() > 1);
        assert!(curve.fp().bit_len() > 8);
        assert_eq!(plat.interrupt_cycles(), 184);
    }
}

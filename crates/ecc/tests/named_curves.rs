//! Known-answer tests for the named standards curves and trait-level
//! invariants over the whole registry.
//!
//! The secp256k1 and P-256 vectors are published generator multiples
//! (SEC 2 / FIPS 186-4 reference implementations agree on them), so a pass
//! here means the host ladders — Jacobian doubling (general on secp256k1,
//! shortened `a = -3` on P-256), mixed-coordinate addition, and all three
//! scalar-multiplication algorithms — compute the real curves correctly
//! end-to-end, not just our own toy constructions.

use bignum::BigUint;
use ecc::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

fn hex(s: &str) -> BigUint {
    BigUint::from_hex(s).expect("valid hex test vector")
}

/// `k · G` on `curve` through the given algorithm.
fn mul_base(curve: &Curve, k: u64, algorithm: ScalarMulAlgorithm) -> AffinePoint {
    curve.scalar_mul(curve.base_point(), &BigUint::from(k), algorithm)
}

/// Asserts `k · G = (x, y)` under all three ladder algorithms.
fn assert_generator_multiple(curve: &Curve, k: u64, x: &str, y: &str) {
    let expected = curve
        .lift(
            &curve.fp().from_biguint(&hex(x)),
            &curve.fp().from_biguint(&hex(y)),
        )
        .expect("published vector lies on the curve");
    for algorithm in [
        ScalarMulAlgorithm::DoubleAndAdd,
        ScalarMulAlgorithm::Naf,
        ScalarMulAlgorithm::Window4,
    ] {
        assert_eq!(
            mul_base(curve, k, algorithm),
            expected,
            "{}: {k}G mismatch under {algorithm:?}",
            curve.name()
        );
    }
}

#[test]
fn secp256k1_generator_multiples_match_published_vectors() {
    let curve = Curve::from_parameters::<Secp256k1>().unwrap();
    assert!(!curve.a_is_minus_three(), "secp256k1 has a = 0");
    assert_generator_multiple(
        &curve,
        2,
        "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5",
        "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a",
    );
    // 6G exercises both doubling and mixed addition in one ladder run.
    let six_g = mul_base(&curve, 6, ScalarMulAlgorithm::DoubleAndAdd);
    let (x, _) = curve.compress_point(&six_g).unwrap();
    assert_eq!(
        x,
        hex("fff97bd5755eeea420453a14355235d382f6472f8568a18b2f057a1460297556")
    );
}

#[test]
fn p256_generator_multiples_match_published_vectors() {
    let curve = Curve::from_parameters::<P256>().unwrap();
    assert!(curve.a_is_minus_three(), "P-256 has a = -3");
    assert_generator_multiple(
        &curve,
        2,
        "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978",
        "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1",
    );
    let six_g = mul_base(&curve, 6, ScalarMulAlgorithm::Naf);
    let (x, _) = curve.compress_point(&six_g).unwrap();
    assert_eq!(
        x,
        hex("b01a172a76a4602c92d3242cb897dde3024c740debb215b4c6b0aae93c2291a9")
    );
}

#[test]
fn group_order_annihilates_the_generator_on_named_curves() {
    for name in ["secp256k1", "p256"] {
        let curve = Curve::by_name(name).unwrap();
        let n = curve.order().expect("standards curves publish n").clone();
        assert!(
            curve.scalar_mul_base(&n).is_infinity(),
            "{name}: n·G must be the identity"
        );
        // (n-1)·G = -G: one short of the order lands on the inverse.
        let n_minus_one = &n - &BigUint::one();
        assert_eq!(
            curve.scalar_mul_base(&n_minus_one),
            curve.negate(curve.base_point()),
            "{name}: (n-1)·G must equal -G"
        );
    }
}

#[test]
fn ecdh_shared_secret_matches_the_generator_multiple() {
    // d_A = 2, d_B = 3: both sides must land on x(6·G), which doubles as a
    // published-vector check of the whole key-exchange path.
    for (name, expected_x) in [
        (
            "secp256k1",
            "fff97bd5755eeea420453a14355235d382f6472f8568a18b2f057a1460297556",
        ),
        (
            "p256",
            "b01a172a76a4602c92d3242cb897dde3024c740debb215b4c6b0aae93c2291a9",
        ),
    ] {
        let curve = Curve::by_name(name).unwrap();
        let alice = EccKeyPair::from_scalar(&curve, BigUint::from(2u64));
        let bob = EccKeyPair::from_scalar(&curve, BigUint::from(3u64));
        let k_a = curve.shared_secret(alice.secret(), bob.public()).unwrap();
        let k_b = curve.shared_secret(bob.secret(), alice.public()).unwrap();
        assert_eq!(k_a, k_b, "{name}: the two sides must agree");
        assert_eq!(k_a, hex(expected_x), "{name}: shared secret is x(6G)");
    }
}

#[test]
fn trait_invariants_hold_for_every_registered_curve() {
    for name in Curve::registered_names() {
        let curve = Curve::by_name(name).unwrap();
        assert_eq!(curve.name(), *name);
        // The generator is a valid finite point.
        assert!(curve.is_on_curve(curve.base_point()), "{name}");
        assert!(!curve.base_point().is_infinity(), "{name}");
        // The declared order (when known) annihilates the generator.
        if let Some(n) = curve.order() {
            assert!(
                curve.scalar_mul_base(n).is_infinity(),
                "{name}: declared order must annihilate the generator"
            );
        }
        // The canonical bit width matches the field.
        assert_eq!(curve.bits(), curve.fp().bit_len(), "{name}");
        // Random key agreement works on every curve in the catalogue.
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let alice = EccKeyPair::generate(&curve, &mut rng);
        let bob = EccKeyPair::generate(&curve, &mut rng);
        assert_eq!(
            curve.shared_secret(alice.secret(), bob.public()).unwrap(),
            curve.shared_secret(bob.secret(), alice.public()).unwrap(),
            "{name}"
        );
    }
}

/// The curves the deprecated positional constructor used to hardwire,
/// rebuilt through it, for equivalence with the trait path.
#[allow(deprecated)]
fn legacy_curve(name: &str) -> Curve {
    match name {
        "p160-reproduction" => {
            let p = hex("ffffffffffffffffffffffffffffffff7fffffff");
            let a = &p - &BigUint::from(3u64);
            Curve::new(
                &p,
                &a,
                &BigUint::from(7u64),
                &BigUint::from(2u64),
                &hex("ffffffffffffffffffffffffffffffff7ffffffc"),
                None,
                "p160-reproduction",
            )
            .unwrap()
        }
        "toy-1009" => Curve::new(
            &BigUint::from(1009u64),
            &BigUint::from(1u64),
            &BigUint::from(6u64),
            &BigUint::from(1u64),
            &BigUint::from(878u64),
            Some(BigUint::from(1020u64)),
            "toy-1009",
        )
        .unwrap(),
        other => panic!("no legacy constructor for {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `from_parameters::<P160Reproduction>()` is the same group as the
    /// legacy positional construction: same generator, and the same ladder
    /// output on random scalars.
    #[test]
    fn p160_trait_path_matches_legacy_constructor(seed in 0u64..1_000_000) {
        let trait_curve = Curve::from_parameters::<P160Reproduction>().unwrap();
        let legacy = legacy_curve("p160-reproduction");
        prop_assert_eq!(trait_curve.base_point(), legacy.base_point());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = BigUint::random_bits(&mut rng, 160);
        prop_assert_eq!(trait_curve.scalar_mul_base(&k), legacy.scalar_mul_base(&k));
    }

    /// Same equivalence for the toy curve, including the declared order.
    #[test]
    fn toy_trait_path_matches_legacy_constructor(seed in 0u64..1_000_000) {
        let trait_curve = Curve::from_parameters::<Toy>().unwrap();
        let legacy = legacy_curve("toy-1009");
        prop_assert_eq!(trait_curve.base_point(), legacy.base_point());
        prop_assert_eq!(trait_curve.order(), legacy.order());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = BigUint::random_bits(&mut rng, 16);
        prop_assert_eq!(trait_curve.scalar_mul_base(&k), legacy.scalar_mul_base(&k));
    }
}

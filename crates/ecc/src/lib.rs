//! Elliptic-curve cryptography over prime fields.
//!
//! The paper implements 160-bit ECC over `Fp` on the same multicore
//! platform as CEILIDH and RSA, and reports it to be roughly twice as fast
//! as the torus at equivalent security (Table 3). This crate provides the
//! comparator: short-Weierstrass curves `y² = x³ + ax + b`, affine and
//! Jacobian group laws, scalar multiplication (double-and-add, NAF and
//! fixed-window), point compression and Diffie–Hellman, together with the
//! per-operation `Fp` multiplication/addition counts that feed the platform
//! cycle model.
//!
//! Curves are described by the [`WeierstrassParameters`] trait — constants
//! as associated data on zero-sized marker types — and built through
//! [`Curve::from_parameters`] (or [`Curve::by_name`] at runtime). The
//! registry ships the standards curves [`Secp256k1`] and [`P256`] alongside
//! the paper's [`P160Reproduction`] and the tiny [`Toy`] validation curve;
//! one-off curves use the [`CurveSpec`] builder directly.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), ecc::EccError> {
//! use ecc::prelude::*;
//!
//! let mut rng = rand::thread_rng();
//! let curve = Curve::from_parameters::<Secp256k1>()?;
//! let alice = EccKeyPair::generate(&curve, &mut rng);
//! let bob = EccKeyPair::generate(&curve, &mut rng);
//! let k1 = curve.shared_secret(alice.secret(), bob.public())?;
//! let k2 = curve.shared_secret(bob.secret(), alice.public())?;
//! assert_eq!(k1, k2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod ecdh;
mod error;
pub mod fixed;
mod params;
mod point;
mod scalar;

pub use curve::{Curve, CurveSpec};
pub use ecdh::EccKeyPair;
pub use error::EccError;
pub use fixed::FixedCurve;
pub use params::{P160Reproduction, Secp256k1, Toy, WeierstrassParameters, P256};
pub use point::{AffinePoint, JacobianPoint};
#[allow(deprecated)] // re-exported for one release alongside the Curve methods
pub use scalar::{affine_window_table, scalar_mul, scalar_mul_base};
pub use scalar::{naf_digits, window_digits, ScalarMulAlgorithm};

/// One-line import for the common ECC surface: the parameter trait, the
/// registered marker types, the curve and point types, and the key-exchange
/// helpers.
///
/// ```
/// use ecc::prelude::*;
///
/// let curve = Curve::by_name("p256")?;
/// assert!(curve.a_is_minus_three());
/// # Ok::<(), EccError>(())
/// ```
pub mod prelude {
    pub use crate::curve::{Curve, CurveSpec};
    pub use crate::ecdh::EccKeyPair;
    pub use crate::error::EccError;
    pub use crate::params::{P160Reproduction, Secp256k1, Toy, WeierstrassParameters, P256};
    pub use crate::point::{AffinePoint, JacobianPoint};
    pub use crate::scalar::{naf_digits, ScalarMulAlgorithm};
}

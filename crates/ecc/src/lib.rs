//! Elliptic-curve cryptography over prime fields.
//!
//! The paper implements 160-bit ECC over `Fp` on the same multicore
//! platform as CEILIDH and RSA, and reports it to be roughly twice as fast
//! as the torus at equivalent security (Table 3). This crate provides the
//! comparator: short-Weierstrass curves `y² = x³ + ax + b`, affine and
//! Jacobian group laws, scalar multiplication (double-and-add, NAF and
//! fixed-window), point compression and Diffie–Hellman, together with the
//! per-operation `Fp` multiplication/addition counts that feed the platform
//! cycle model.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), ecc::EccError> {
//! use ecc::{Curve, EccKeyPair};
//!
//! let mut rng = rand::thread_rng();
//! let curve = Curve::p160_reproduction()?;
//! let alice = EccKeyPair::generate(&curve, &mut rng);
//! let bob = EccKeyPair::generate(&curve, &mut rng);
//! let k1 = curve.shared_secret(alice.secret(), bob.public())?;
//! let k2 = curve.shared_secret(bob.secret(), alice.public())?;
//! assert_eq!(k1, k2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod ecdh;
mod error;
mod point;
mod scalar;

pub use curve::Curve;
pub use ecdh::EccKeyPair;
pub use error::EccError;
pub use point::{AffinePoint, JacobianPoint};
pub use scalar::{
    affine_window_table, naf_digits, scalar_mul, scalar_mul_base, ScalarMulAlgorithm,
};

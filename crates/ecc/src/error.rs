//! Error type for the ECC crate.

use std::error::Error;
use std::fmt;

use field::FieldError;

/// Errors raised by curve construction and point operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EccError {
    /// The curve parameters are invalid (singular curve or bad field).
    InvalidCurve(&'static str),
    /// The point does not satisfy the curve equation.
    PointNotOnCurve,
    /// A compressed point could not be decompressed (x has no matching y).
    InvalidCompressedPoint,
    /// The operation produced or required the point at infinity where a
    /// finite point was expected.
    PointAtInfinity,
    /// The name passed to [`Curve::by_name`](crate::Curve::by_name) is not
    /// in the registry (the offending name is carried verbatim).
    UnknownCurve(String),
    /// A [`CurveSpec`](crate::CurveSpec) or
    /// [`WeierstrassParameters`](crate::WeierstrassParameters) field failed
    /// validation; `field` names the offending parameter.
    InvalidParameters {
        /// The spec/trait field that failed validation (e.g. `"p"`,
        /// `"generator"`, `"A_IS_MINUS_THREE"`).
        field: &'static str,
        /// Why the field was rejected.
        reason: &'static str,
    },
    /// An underlying field operation failed.
    Field(FieldError),
}

impl fmt::Display for EccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccError::InvalidCurve(msg) => write!(f, "invalid curve: {msg}"),
            EccError::PointNotOnCurve => write!(f, "point is not on the curve"),
            EccError::InvalidCompressedPoint => write!(f, "compressed point has no square root"),
            EccError::PointAtInfinity => write!(f, "unexpected point at infinity"),
            EccError::UnknownCurve(name) => write!(f, "unknown curve: {name:?}"),
            EccError::InvalidParameters { field, reason } => {
                write!(f, "invalid curve parameter {field:?}: {reason}")
            }
            EccError::Field(e) => write!(f, "field error: {e}"),
        }
    }
}

impl Error for EccError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EccError::Field(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FieldError> for EccError {
    fn from(e: FieldError) -> Self {
        EccError::Field(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EccError::InvalidCurve("singular")
            .to_string()
            .contains("singular"));
        assert!(EccError::PointNotOnCurve.to_string().contains("curve"));
        assert!(EccError::InvalidCompressedPoint
            .to_string()
            .contains("square root"));
        assert!(EccError::PointAtInfinity.to_string().contains("infinity"));
        assert!(EccError::UnknownCurve("curve448".to_string())
            .to_string()
            .contains("curve448"));
        let e = EccError::InvalidParameters {
            field: "generator",
            reason: "not on the curve",
        };
        assert!(e.to_string().contains("generator"));
        assert!(e.to_string().contains("not on the curve"));
        assert!(EccError::from(FieldError::DivisionByZero)
            .source()
            .is_some());
    }
}

//! Error type for the ECC crate.

use std::error::Error;
use std::fmt;

use field::FieldError;

/// Errors raised by curve construction and point operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EccError {
    /// The curve parameters are invalid (singular curve or bad field).
    InvalidCurve(&'static str),
    /// The point does not satisfy the curve equation.
    PointNotOnCurve,
    /// A compressed point could not be decompressed (x has no matching y).
    InvalidCompressedPoint,
    /// The operation produced or required the point at infinity where a
    /// finite point was expected.
    PointAtInfinity,
    /// An underlying field operation failed.
    Field(FieldError),
}

impl fmt::Display for EccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccError::InvalidCurve(msg) => write!(f, "invalid curve: {msg}"),
            EccError::PointNotOnCurve => write!(f, "point is not on the curve"),
            EccError::InvalidCompressedPoint => write!(f, "compressed point has no square root"),
            EccError::PointAtInfinity => write!(f, "unexpected point at infinity"),
            EccError::Field(e) => write!(f, "field error: {e}"),
        }
    }
}

impl Error for EccError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EccError::Field(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FieldError> for EccError {
    fn from(e: FieldError) -> Self {
        EccError::Field(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EccError::InvalidCurve("singular")
            .to_string()
            .contains("singular"));
        assert!(EccError::PointNotOnCurve.to_string().contains("curve"));
        assert!(EccError::InvalidCompressedPoint
            .to_string()
            .contains("square root"));
        assert!(EccError::PointAtInfinity.to_string().contains("infinity"));
        assert!(EccError::from(FieldError::DivisionByZero)
            .source()
            .is_some());
    }
}

//! Elliptic-curve Diffie–Hellman on a [`Curve`].

use bignum::BigUint;
use rand::Rng;

use crate::curve::Curve;
use crate::error::EccError;
use crate::point::AffinePoint;
use crate::scalar::ScalarMulAlgorithm;

/// An ECC key pair `(d, d·G)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EccKeyPair {
    secret: BigUint,
    public: AffinePoint,
}

impl EccKeyPair {
    /// Generates a key pair. The secret scalar is drawn below the group
    /// order when it is known and below `p` otherwise (sufficient for the
    /// performance reproduction; see DESIGN.md).
    pub fn generate<R: Rng + ?Sized>(curve: &Curve, rng: &mut R) -> Self {
        let bound = curve
            .order()
            .cloned()
            .unwrap_or_else(|| curve.fp().modulus().clone());
        let one = BigUint::one();
        let secret = &BigUint::random_below(rng, &(&bound - &one)) + &one;
        Self::from_scalar(curve, secret)
    }

    /// Builds a key pair from an explicit secret scalar.
    pub fn from_scalar(curve: &Curve, secret: BigUint) -> Self {
        let public = curve.scalar_mul(
            curve.base_point(),
            &secret,
            ScalarMulAlgorithm::DoubleAndAdd,
        );
        EccKeyPair { secret, public }
    }

    /// The secret scalar.
    pub fn secret(&self) -> &BigUint {
        &self.secret
    }

    /// The public point.
    pub fn public(&self) -> &AffinePoint {
        &self.public
    }
}

impl Curve {
    /// Computes the ECDH shared x-coordinate `(d_A · Q_B).x`.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::PointNotOnCurve`] if the peer's point does not
    /// satisfy the curve equation (invalid-curve attack), and
    /// [`EccError::PointAtInfinity`] if the shared point degenerates
    /// (e.g. a malicious peer sent a small-order point):
    ///
    /// ```
    /// use bignum::BigUint;
    /// use ecc::prelude::*;
    ///
    /// let curve = Curve::by_name("secp256k1")?;
    /// let d = BigUint::from(2u64);
    ///
    /// // A peer point off the curve is rejected before any scalar math.
    /// let forged = AffinePoint::new(curve.fp().from_u64(0), curve.fp().from_u64(1));
    /// assert_eq!(
    ///     curve.shared_secret(&d, &forged),
    ///     Err(EccError::PointNotOnCurve)
    /// );
    ///
    /// // A degenerate shared point (here: the identity itself) is reported.
    /// assert_eq!(
    ///     curve.shared_secret(&d, &AffinePoint::Infinity),
    ///     Err(EccError::PointAtInfinity)
    /// );
    /// # Ok::<(), EccError>(())
    /// ```
    pub fn shared_secret(
        &self,
        secret: &BigUint,
        peer_public: &AffinePoint,
    ) -> Result<BigUint, EccError> {
        if !self.is_on_curve(peer_public) {
            return Err(EccError::PointNotOnCurve);
        }
        let shared = self.scalar_mul(peer_public, secret, ScalarMulAlgorithm::Naf);
        match shared.coordinates() {
            Some((x, _)) => Ok(self.fp().to_biguint(x)),
            None => Err(EccError::PointAtInfinity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn key_agreement_on_both_curves() {
        for curve in [Curve::toy().unwrap(), Curve::p160_reproduction().unwrap()] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(21);
            let alice = EccKeyPair::generate(&curve, &mut rng);
            let bob = EccKeyPair::generate(&curve, &mut rng);
            let k1 = curve.shared_secret(alice.secret(), bob.public()).unwrap();
            let k2 = curve.shared_secret(bob.secret(), alice.public()).unwrap();
            assert_eq!(k1, k2);
        }
    }

    #[test]
    fn public_keys_are_on_curve() {
        let curve = Curve::p160_reproduction().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let kp = EccKeyPair::generate(&curve, &mut rng);
        assert!(curve.is_on_curve(kp.public()));
        assert!(!kp.secret().is_zero());
    }

    #[test]
    fn off_curve_peer_is_rejected() {
        let curve = Curve::toy().unwrap();
        let fake = AffinePoint::new(curve.fp().from_u64(3), curve.fp().from_u64(4));
        if !curve.is_on_curve(&fake) {
            assert_eq!(
                curve
                    .shared_secret(&BigUint::from(7u64), &fake)
                    .unwrap_err(),
                EccError::PointNotOnCurve
            );
        }
    }

    #[test]
    fn infinity_shared_point_is_reported() {
        let curve = Curve::toy().unwrap();
        let order = curve.order().unwrap().clone();
        let alice = EccKeyPair::from_scalar(&curve, order);
        // alice.public is the identity, so the shared point degenerates.
        assert!(alice.public().is_infinity());
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let bob = EccKeyPair::generate(&curve, &mut rng);
        assert_eq!(
            curve
                .shared_secret(bob.secret(), alice.public())
                .unwrap_err(),
            EccError::PointAtInfinity
        );
    }
}

//! Short-Weierstrass curves `y² = x³ + ax + b` over `Fp` and their group law.

use bignum::BigUint;
use field::{FpContext, FpElement};
use rand::Rng;

use crate::error::EccError;
use crate::fixed::FixedCurve;
use crate::params::{P160Reproduction, Toy};
use crate::point::{AffinePoint, JacobianPoint};

/// A short-Weierstrass curve over a prime field, together with a base point.
///
/// See the crate-level docs for a key-exchange example. Curves come from
/// three places, all funnelling through the same validation:
///
/// * [`Curve::from_parameters::<E>()`](Curve::from_parameters) — a
///   registered marker type ([`crate::WeierstrassParameters`]): the
///   standards curves [`crate::Secp256k1`] and [`crate::P256`], the
///   paper's [`crate::P160Reproduction`] and the tiny [`crate::Toy`]
///   validation curve (or [`Curve::by_name`] for the string-keyed lookup);
/// * [`CurveSpec`] — explicit parameters with named fields, for curves
///   outside the registry;
/// * [`Curve::p160_reproduction`] / [`Curve::toy`] — shorthands for the
///   two reproduction markers.
#[derive(Clone)]
pub struct Curve {
    fp: FpContext,
    a: FpElement,
    b: FpElement,
    base: AffinePoint,
    order: Option<BigUint>,
    cofactor: BigUint,
    bits: usize,
    name: &'static str,
    // Whether a ≡ -3 (mod p), precomputed so the per-doubling dispatch
    // to the shortened formulas costs a bool instead of a conversion.
    a_minus_three: bool,
    // The stack-allocated ladder backend, present exactly when the field
    // has a fixed-width 256-bit context (see `Curve::fixed_backend`).
    fixed: Option<FixedCurve>,
}

/// Explicit curve parameters with named fields — the builder behind every
/// [`Curve`] constructor.
///
/// [`CurveSpec::new`] takes the five parameters every curve needs (field
/// prime, coefficients, generator coordinates); the optional ones chain:
///
/// ```
/// use bignum::BigUint;
/// use ecc::{Curve, CurveSpec};
///
/// let curve = CurveSpec::new(
///     BigUint::from(1009u64), // p
///     BigUint::from(1u64),    // a
///     BigUint::from(6u64),    // b
///     BigUint::from(1u64),    // generator x
///     BigUint::from(878u64),  // generator y
/// )
/// .order(BigUint::from(1020u64))
/// .name("toy-1009")
/// .build()?;
/// assert_eq!(curve.name(), "toy-1009");
/// # Ok::<(), ecc::EccError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CurveSpec {
    /// The field prime `p`.
    pub p: BigUint,
    /// The coefficient `a`.
    pub a: BigUint,
    /// The coefficient `b`.
    pub b: BigUint,
    /// Affine x-coordinate of the generator.
    pub generator_x: BigUint,
    /// Affine y-coordinate of the generator.
    pub generator_y: BigUint,
    /// The group order, when known (`None` for uncertified curves).
    pub order: Option<BigUint>,
    /// The cofactor `h` (defaults to 1).
    pub cofactor: BigUint,
    /// Canonical operand size in bits (defaults to the prime's bit
    /// length) — the size the platform cycle model quotes rows at.
    pub bits: Option<usize>,
    /// Curve name, carried into [`Curve::name`] (defaults to
    /// `"custom"`).
    pub name: &'static str,
}

impl CurveSpec {
    /// Starts a spec from the required parameters: field prime,
    /// coefficients and generator coordinates.
    pub fn new(
        p: BigUint,
        a: BigUint,
        b: BigUint,
        generator_x: BigUint,
        generator_y: BigUint,
    ) -> Self {
        CurveSpec {
            p,
            a,
            b,
            generator_x,
            generator_y,
            order: None,
            cofactor: BigUint::one(),
            bits: None,
            name: "custom",
        }
    }

    /// Declares the group order.
    pub fn order(mut self, order: BigUint) -> Self {
        self.order = Some(order);
        self
    }

    /// Declares the group order from an `Option` (chaining convenience
    /// for trait-driven construction).
    pub fn maybe_order(mut self, order: Option<BigUint>) -> Self {
        self.order = order;
        self
    }

    /// Declares the cofactor.
    pub fn cofactor(mut self, cofactor: BigUint) -> Self {
        self.cofactor = cofactor;
        self
    }

    /// Declares the canonical operand size in bits.
    pub fn bits(mut self, bits: usize) -> Self {
        self.bits = Some(bits);
        self
    }

    /// Names the curve.
    pub fn name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Validates the spec and builds the [`Curve`] — shorthand for
    /// [`Curve::from_spec`].
    ///
    /// # Errors
    ///
    /// See [`Curve::from_spec`].
    pub fn build(self) -> Result<Curve, EccError> {
        Curve::from_spec(self)
    }
}

/// Computes the [`Curve::a_is_minus_three`] invariant once, at
/// construction time.
fn a_is_minus_three(fp: &FpContext, a: &FpElement) -> bool {
    let p = fp.modulus();
    *p > BigUint::from(3u64) && fp.to_biguint(a) == p - &BigUint::from(3u64)
}

impl std::fmt::Debug for Curve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Curve({}, {} bits)", self.name, self.fp.bit_len())
    }
}

impl Curve {
    /// Validates a [`CurveSpec`] and builds the curve.
    ///
    /// This is the single construction path: the trait-driven
    /// [`Curve::from_parameters`] and the deprecated positional
    /// [`Curve::new`] both funnel through it, so every curve gets the
    /// same checks — `p` must make a usable field, the discriminant
    /// `4a³ + 27b²` must be non-zero, and the generator must satisfy the
    /// curve equation.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::InvalidParameters`] naming the offending spec
    /// field (`"p"`, `"a/b"` or `"generator"`).
    pub fn from_spec(spec: CurveSpec) -> Result<Self, EccError> {
        let CurveSpec {
            p,
            a,
            b,
            generator_x,
            generator_y,
            order,
            cofactor,
            bits,
            name,
        } = spec;
        let fp = FpContext::new(&p).map_err(|_| EccError::InvalidParameters {
            field: "p",
            reason: "not a usable field modulus",
        })?;
        let a = fp.from_biguint(&a);
        let b = fp.from_biguint(&b);
        // Discriminant 4a³ + 27b² must be non-zero.
        let disc = fp.add(
            &fp.mul(&fp.from_u64(4), &fp.mul(&a, &fp.square(&a))),
            &fp.mul(&fp.from_u64(27), &fp.square(&b)),
        );
        if disc.is_zero() {
            return Err(EccError::InvalidParameters {
                field: "a/b",
                reason: "discriminant 4a³ + 27b² vanishes (singular curve)",
            });
        }
        let a_minus_three = a_is_minus_three(&fp, &a);
        let bits = bits.unwrap_or_else(|| fp.bit_len());
        let fixed = fp
            .fixed256()
            .map(|ctx| FixedCurve::new(ctx.clone(), &a, a_minus_three));
        let curve = Curve {
            fp: fp.clone(),
            a,
            b,
            base: AffinePoint::Infinity,
            order,
            cofactor,
            bits,
            name,
            a_minus_three,
            fixed,
        };
        let base = curve
            .lift(
                &fp.from_biguint(&generator_x),
                &fp.from_biguint(&generator_y),
            )
            .map_err(|_| EccError::InvalidParameters {
                field: "generator",
                reason: "not on the curve",
            })?;
        Ok(Curve { base, ..curve })
    }

    /// Builds a curve from positional parameters.
    ///
    /// # Errors
    ///
    /// See [`Curve::from_spec`].
    #[deprecated(
        note = "use CurveSpec::new(..).build(), Curve::from_parameters::<E>() or Curve::by_name(..)"
    )]
    pub fn new(
        p: &BigUint,
        a: &BigUint,
        b: &BigUint,
        base_x: &BigUint,
        base_y: &BigUint,
        order: Option<BigUint>,
        name: &'static str,
    ) -> Result<Self, EccError> {
        CurveSpec::new(
            p.clone(),
            a.clone(),
            b.clone(),
            base_x.clone(),
            base_y.clone(),
        )
        .maybe_order(order)
        .name(name)
        .build()
    }

    /// The 160-bit curve used to reproduce the paper's "160-bit ECC" rows —
    /// shorthand for
    /// [`Curve::from_parameters::<P160Reproduction>()`](crate::P160Reproduction):
    /// `p = 2^160 - 2^31 - 1`, `a = -3`, and a small `b` chosen so the curve
    /// is non-singular.
    ///
    /// The group order of this locally generated curve is *not* certified
    /// (point counting is out of scope); the reproduction only needs field
    /// and curve arithmetic at the 160-bit operand size (see DESIGN.md).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` mirrors
    /// [`Curve::from_spec`].
    pub fn p160_reproduction() -> Result<Self, EccError> {
        Curve::from_parameters::<P160Reproduction>()
    }

    /// A tiny curve over `p = 1009` whose group order was computed by
    /// exhaustive point counting — shorthand for
    /// [`Curve::from_parameters::<Toy>()`](crate::Toy); used to validate
    /// the group law and scalar multiplication against first principles.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants.
    pub fn toy() -> Result<Self, EccError> {
        Curve::from_parameters::<Toy>()
    }

    /// The base prime-field context.
    pub fn fp(&self) -> &FpContext {
        &self.fp
    }

    /// The coefficient `a`.
    pub fn a(&self) -> &FpElement {
        &self.a
    }

    /// Returns `true` when the curve coefficient satisfies `a = -3`
    /// (i.e. `a ≡ p - 3 mod p`), the precondition of the shortened
    /// doubling formulas ([`Curve::jacobian_double_fast`]). Holds for
    /// [`Curve::p160_reproduction`], as for most standardized curves.
    pub fn a_is_minus_three(&self) -> bool {
        self.a_minus_three
    }

    /// The coefficient `b`.
    pub fn b(&self) -> &FpElement {
        &self.b
    }

    /// The stack-allocated ladder backend, present exactly when the field
    /// prime is 256-bit (e.g. [`crate::Secp256k1`] and [`crate::P256`];
    /// see [`field::FpContext::fixed256`]). [`Curve::scalar_mul`] uses it
    /// automatically for double-and-add ladders; benchmarks and
    /// differential tests reach it through this accessor.
    pub fn fixed_backend(&self) -> Option<&FixedCurve> {
        self.fixed.as_ref()
    }

    /// A twin of this curve with every fixed-width fast path disabled:
    /// the field context is [`field::FpContext::heap_only`] (single
    /// products run on heap `BigUint`s, sharing the original operation
    /// counter) and the stack-allocated ladder backend is dropped.
    ///
    /// This is the honest baseline for `fixed_vs_heap`-style comparisons:
    /// with [`field::FpContext::mul`] routing through the fixed backend on
    /// 256-bit fields, a reference ladder must run on a heap-only twin or
    /// it would benchmark the fixed backend against itself.
    /// [`Curve::scalar_mul_reference`] uses it internally.
    pub fn heap_only(&self) -> Curve {
        Curve {
            fp: self.fp.heap_only(),
            a: self.a.clone(),
            b: self.b.clone(),
            base: self.base.clone(),
            order: self.order.clone(),
            cofactor: self.cofactor.clone(),
            bits: self.bits,
            name: self.name,
            a_minus_three: self.a_minus_three,
            fixed: None,
        }
    }

    /// The curve name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The base point.
    pub fn base_point(&self) -> &AffinePoint {
        &self.base
    }

    /// The group order, when known (the published `n` for the standards
    /// curves, the exhaustively counted order for [`Curve::toy`]; `None`
    /// for curves whose order was never declared).
    pub fn order(&self) -> Option<&BigUint> {
        self.order.as_ref()
    }

    /// The cofactor `h` (`#E(Fp) = h · n`); 1 for every registered curve.
    pub fn cofactor(&self) -> &BigUint {
        &self.cofactor
    }

    /// Canonical operand size in bits — the bit-length the platform cycle
    /// model quotes this curve's rows at (the prime's bit length unless
    /// the spec declared otherwise).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Checks the curve equation for a point.
    pub fn is_on_curve(&self, point: &AffinePoint) -> bool {
        match point {
            AffinePoint::Infinity => true,
            AffinePoint::Point { x, y } => {
                let fp = &self.fp;
                let rhs = fp.add(
                    &fp.add(&fp.mul(x, &fp.square(x)), &fp.mul(&self.a, x)),
                    &self.b,
                );
                fp.square(y) == rhs
            }
        }
    }

    /// Validates coordinates and returns the corresponding point.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::PointNotOnCurve`] if the equation is not satisfied.
    pub fn lift(&self, x: &FpElement, y: &FpElement) -> Result<AffinePoint, EccError> {
        let p = AffinePoint::new(x.clone(), y.clone());
        if self.is_on_curve(&p) {
            Ok(p)
        } else {
            Err(EccError::PointNotOnCurve)
        }
    }

    /// Negates a point.
    pub fn negate(&self, point: &AffinePoint) -> AffinePoint {
        match point {
            AffinePoint::Infinity => AffinePoint::Infinity,
            AffinePoint::Point { x, y } => AffinePoint::Point {
                x: x.clone(),
                y: self.fp.neg(y),
            },
        }
    }

    /// Affine point addition (one inversion per addition).
    pub fn add(&self, p: &AffinePoint, q: &AffinePoint) -> AffinePoint {
        let fp = &self.fp;
        match (p, q) {
            (AffinePoint::Infinity, _) => q.clone(),
            (_, AffinePoint::Infinity) => p.clone(),
            (AffinePoint::Point { x: x1, y: y1 }, AffinePoint::Point { x: x2, y: y2 }) => {
                if x1 == x2 {
                    if y1 == y2 && !y1.is_zero() {
                        return self.double(p);
                    }
                    return AffinePoint::Infinity;
                }
                let lambda = fp.mul(&fp.sub(y2, y1), &fp.inv(&fp.sub(x2, x1)).expect("x2 != x1"));
                let x3 = fp.sub(&fp.sub(&fp.square(&lambda), x1), x2);
                let y3 = fp.sub(&fp.mul(&lambda, &fp.sub(x1, &x3)), y1);
                AffinePoint::Point { x: x3, y: y3 }
            }
        }
    }

    /// Affine point doubling.
    pub fn double(&self, p: &AffinePoint) -> AffinePoint {
        let fp = &self.fp;
        match p {
            AffinePoint::Infinity => AffinePoint::Infinity,
            AffinePoint::Point { x, y } => {
                if y.is_zero() {
                    return AffinePoint::Infinity;
                }
                let numer = fp.add(&fp.mul(&fp.from_u64(3), &fp.square(x)), &self.a);
                let lambda = fp.mul(&numer, &fp.inv(&fp.double(y)).expect("y != 0"));
                let x3 = fp.sub(&fp.sub(&fp.square(&lambda), x), x);
                let y3 = fp.sub(&fp.mul(&lambda, &fp.sub(x, &x3)), y);
                AffinePoint::Point { x: x3, y: y3 }
            }
        }
    }

    /// Converts an affine point to Jacobian coordinates.
    pub fn to_jacobian(&self, p: &AffinePoint) -> JacobianPoint {
        match p {
            AffinePoint::Infinity => JacobianPoint {
                x: self.fp.one(),
                y: self.fp.one(),
                z: self.fp.zero(),
            },
            AffinePoint::Point { x, y } => JacobianPoint {
                x: x.clone(),
                y: y.clone(),
                z: self.fp.one(),
            },
        }
    }

    /// Converts a Jacobian point back to affine coordinates (one inversion).
    pub fn to_affine(&self, p: &JacobianPoint) -> AffinePoint {
        if p.is_infinity() {
            return AffinePoint::Infinity;
        }
        let fp = &self.fp;
        let z_inv = fp.inv(&p.z).expect("finite point has z != 0");
        let z_inv2 = fp.square(&z_inv);
        let z_inv3 = fp.mul(&z_inv2, &z_inv);
        AffinePoint::Point {
            x: fp.mul(&p.x, &z_inv2),
            y: fp.mul(&p.y, &z_inv3),
        }
    }

    /// Jacobian point doubling (the paper's PD sequence; inversion-free).
    ///
    /// On curves with `a = -3` this dispatches to the shortened
    /// [`Curve::jacobian_double_fast`] formulas (identical result, two
    /// fewer field multiplications) — the same substitution the
    /// platform's ladder driver makes with its `fast_pd` cost-model knob.
    pub fn jacobian_double(&self, p: &JacobianPoint) -> JacobianPoint {
        if self.a_is_minus_three() {
            return self.jacobian_double_fast(p);
        }
        let fp = &self.fp;
        if p.is_infinity() || p.y.is_zero() {
            return JacobianPoint {
                x: fp.one(),
                y: fp.one(),
                z: fp.zero(),
            };
        }
        let a_sq = fp.square(&p.x); // X1²
        let b_sq = fp.square(&p.y); // Y1²
        let c = fp.square(&b_sq); // Y1⁴
                                  // D = 2((X1 + B)² - A - C)
        let d = fp.double(&fp.sub(&fp.sub(&fp.square(&fp.add(&p.x, &b_sq)), &a_sq), &c));
        // E = 3A + a·Z1⁴
        let z2 = fp.square(&p.z);
        let e = fp.add(
            &fp.add(&fp.double(&a_sq), &a_sq),
            &fp.mul(&self.a, &fp.square(&z2)),
        );
        let f = fp.square(&e);
        let x3 = fp.sub(&f, &fp.double(&d));
        let eight_c = fp.double(&fp.double(&fp.double(&c)));
        let y3 = fp.sub(&fp.mul(&e, &fp.sub(&d, &x3)), &eight_c);
        let z3 = fp.double(&fp.mul(&p.y, &p.z));
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Shortened Jacobian doubling for curves with `a = -3` (the
    /// "dbl-2001-b" formulas): the tangent numerator factors as
    /// `3·X1² + a·Z1⁴ = 3·(X1 - Z1²)·(X1 + Z1²)`, saving two field
    /// multiplications over the general [`Curve::jacobian_double`]. This
    /// is the host-level counterpart of the platform's 8-MM
    /// `ecc_pd_fast` sequence.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `a = -3`; on other curves the result would be
    /// wrong, so callers must check [`Curve::a_is_minus_three`] first
    /// (the general doubling does this and dispatches automatically).
    pub fn jacobian_double_fast(&self, p: &JacobianPoint) -> JacobianPoint {
        debug_assert!(self.a_is_minus_three(), "fast doubling requires a = -3");
        let fp = &self.fp;
        if p.is_infinity() || p.y.is_zero() {
            return JacobianPoint {
                x: fp.one(),
                y: fp.one(),
                z: fp.zero(),
            };
        }
        let delta = fp.square(&p.z); // Z1²
        let gamma = fp.square(&p.y); // Y1²
        let beta = fp.mul(&p.x, &gamma); // X1·Y1²
        let alpha = fp.mul(
            &fp.from_u64(3),
            &fp.mul(&fp.sub(&p.x, &delta), &fp.add(&p.x, &delta)),
        );
        let beta4 = fp.double(&fp.double(&beta));
        let x3 = fp.sub(&fp.square(&alpha), &fp.double(&beta4));
        let y3 = fp.sub(
            &fp.mul(&alpha, &fp.sub(&beta4, &x3)),
            &fp.double(&fp.double(&fp.double(&fp.square(&gamma)))),
        );
        let z3 = fp.double(&fp.mul(&p.y, &p.z));
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Jacobian point addition (the paper's PA sequence; inversion-free).
    pub fn jacobian_add(&self, p: &JacobianPoint, q: &JacobianPoint) -> JacobianPoint {
        let fp = &self.fp;
        if p.is_infinity() {
            return q.clone();
        }
        if q.is_infinity() {
            return p.clone();
        }
        let z1z1 = fp.square(&p.z);
        let z2z2 = fp.square(&q.z);
        let u1 = fp.mul(&p.x, &z2z2);
        let u2 = fp.mul(&q.x, &z1z1);
        let s1 = fp.mul(&p.y, &fp.mul(&q.z, &z2z2));
        let s2 = fp.mul(&q.y, &fp.mul(&p.z, &z1z1));
        if u1 == u2 {
            if s1 == s2 {
                return self.jacobian_double(p);
            }
            return JacobianPoint {
                x: fp.one(),
                y: fp.one(),
                z: fp.zero(),
            };
        }
        let h = fp.sub(&u2, &u1);
        let i = fp.square(&fp.double(&h));
        let j = fp.mul(&h, &i);
        let r = fp.double(&fp.sub(&s2, &s1));
        let v = fp.mul(&u1, &i);
        let x3 = fp.sub(&fp.sub(&fp.square(&r), &j), &fp.double(&v));
        let y3 = fp.sub(&fp.mul(&r, &fp.sub(&v, &x3)), &fp.double(&fp.mul(&s1, &j)));
        let z3 = fp.mul(
            &fp.sub(&fp.sub(&fp.square(&fp.add(&p.z, &q.z)), &z1z1), &z2z2),
            &h,
        );
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed-coordinate point addition: Jacobian `p` plus **affine** `q`
    /// (the `Z2 = 1` special case of [`Curve::jacobian_add`]).
    ///
    /// This is the addition the scalar-multiplication ladder performs on
    /// every set bit — the addend is the one-time-normalized base point —
    /// and the shape the platform formula database's 13-multiplication
    /// `madd` entry prices: `Z2 = 1` makes `U1 = X1` and
    /// `S1 = Y1`, eliminating three of the general sequence's Montgomery
    /// products and collapsing the `Z3` tail to `2·Z1·H`. Functionally it
    /// agrees with `jacobian_add(p, to_jacobian(q))` on all inputs,
    /// including the degenerate ones (either operand at infinity, `q = ±p`).
    pub fn jacobian_add_mixed(&self, p: &JacobianPoint, q: &AffinePoint) -> JacobianPoint {
        let fp = &self.fp;
        let (x2, y2) = match q.coordinates() {
            None => return p.clone(),
            Some(c) => c,
        };
        if p.is_infinity() {
            return self.to_jacobian(q);
        }
        let z1z1 = fp.square(&p.z);
        let u2 = fp.mul(x2, &z1z1);
        let s2 = fp.mul(y2, &fp.mul(&p.z, &z1z1));
        if u2 == p.x {
            if s2 == p.y {
                return self.jacobian_double(p);
            }
            return JacobianPoint {
                x: fp.one(),
                y: fp.one(),
                z: fp.zero(),
            };
        }
        let h = fp.sub(&u2, &p.x);
        let i = fp.square(&fp.double(&h));
        let j = fp.mul(&h, &i);
        let r = fp.double(&fp.sub(&s2, &p.y));
        let v = fp.mul(&p.x, &i);
        let x3 = fp.sub(&fp.sub(&fp.square(&r), &j), &fp.double(&v));
        let y3 = fp.sub(&fp.mul(&r, &fp.sub(&v, &x3)), &fp.double(&fp.mul(&p.y, &j)));
        let z3 = fp.double(&fp.mul(&p.z, &h));
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Compresses a finite point to `(x, parity-of-y)`.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::PointAtInfinity`] for the identity.
    pub fn compress_point(&self, p: &AffinePoint) -> Result<(BigUint, bool), EccError> {
        match p {
            AffinePoint::Infinity => Err(EccError::PointAtInfinity),
            AffinePoint::Point { x, y } => {
                Ok((self.fp.to_biguint(x), self.fp.to_biguint(y).bit(0)))
            }
        }
    }

    /// Decompresses `(x, parity)` back to a point.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::InvalidCompressedPoint`] if `x³ + ax + b` is not
    /// a square.
    pub fn decompress_point(&self, x: &BigUint, y_is_odd: bool) -> Result<AffinePoint, EccError> {
        let fp = &self.fp;
        let x = fp.from_biguint(x);
        let rhs = fp.add(
            &fp.add(&fp.mul(&x, &fp.square(&x)), &fp.mul(&self.a, &x)),
            &self.b,
        );
        let y = if rhs.is_zero() {
            fp.zero()
        } else {
            fp.sqrt(&rhs).ok_or(EccError::InvalidCompressedPoint)?
        };
        let y = if fp.to_biguint(&y).bit(0) == y_is_odd {
            y
        } else {
            fp.neg(&y)
        };
        Ok(AffinePoint::Point { x, y })
    }

    /// A uniformly random point obtained by sampling x-coordinates until the
    /// curve equation has a solution.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> AffinePoint {
        loop {
            let x = self.fp.random(rng);
            if let Some(p) = self.lift_x(&x, rng.gen()) {
                return p;
            }
        }
    }

    /// Lifts an x-coordinate to a point if possible, choosing the root by
    /// `odd_y`.
    pub fn lift_x(&self, x: &FpElement, odd_y: bool) -> Option<AffinePoint> {
        let fp = &self.fp;
        let rhs = fp.add(
            &fp.add(&fp.mul(x, &fp.square(x)), &fp.mul(&self.a, x)),
            &self.b,
        );
        if rhs.is_zero() {
            return Some(AffinePoint::Point {
                x: x.clone(),
                y: fp.zero(),
            });
        }
        let y = fp.sqrt(&rhs)?;
        let y = if fp.to_biguint(&y).bit(0) == odd_y {
            y
        } else {
            fp.neg(&y)
        };
        Some(AffinePoint::Point { x: x.clone(), y })
    }

    /// Finds the first point with `x >= start` by scanning x-coordinates
    /// (test-side pin for the hardcoded generators in `params.rs`).
    #[cfg(test)]
    fn find_point_from(&self, start: u64) -> Option<AffinePoint> {
        for xi in start..start + 1000 {
            let x = self.fp.from_u64(xi);
            if let Some(p) = self.lift_x(&x, false) {
                return Some(p);
            }
        }
        None
    }

    /// Exhaustively counts the points on the curve (tiny fields only;
    /// test-side pin for the hardcoded toy order in `params.rs`).
    #[cfg(test)]
    fn count_points_exhaustively(&self) -> BigUint {
        let p = self.fp.modulus().to_u64().expect("toy field fits in u64");
        let mut count = 1u64; // point at infinity
        for xi in 0..p {
            let x = self.fp.from_u64(xi);
            let rhs = self.fp.add(
                &self.fp.add(
                    &self.fp.mul(&x, &self.fp.square(&x)),
                    &self.fp.mul(&self.a, &x),
                ),
                &self.b,
            );
            if rhs.is_zero() {
                count += 1;
            } else if self.fp.is_square(&rhs) {
                count += 2;
            }
        }
        BigUint::from(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WeierstrassParameters;
    use rand::SeedableRng;

    #[test]
    fn p160_prime_and_curve_are_sane() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = P160Reproduction::prime();
        assert_eq!(p.bit_len(), 160);
        assert!(
            bignum::is_prime(&p, &mut rng),
            "2^160 - 2^31 - 1 must be prime"
        );
        let curve = Curve::p160_reproduction().unwrap();
        assert!(curve.is_on_curve(curve.base_point()));
        assert!(!curve.base_point().is_infinity());
    }

    #[test]
    fn unusable_moduli_are_rejected_naming_p() {
        // Even p cannot back a Montgomery field context.
        let err = CurveSpec::new(
            BigUint::from(4u64),
            BigUint::one(),
            BigUint::from(6u64),
            BigUint::one(),
            BigUint::one(),
        )
        .build()
        .unwrap_err();
        assert!(matches!(
            err,
            EccError::InvalidParameters { field: "p", .. }
        ));
    }

    #[test]
    fn singular_curves_are_rejected() {
        // y² = x³ (a = b = 0) is singular.
        let err = CurveSpec::new(
            BigUint::from(1009u64),
            BigUint::zero(),
            BigUint::zero(),
            BigUint::one(),
            BigUint::one(),
        )
        .name("singular")
        .build()
        .unwrap_err();
        assert!(matches!(
            err,
            EccError::InvalidParameters { field: "a/b", .. }
        ));
    }

    #[test]
    fn base_point_must_be_on_curve() {
        let err = CurveSpec::new(
            BigUint::from(1009u64),
            BigUint::one(),
            BigUint::from(6u64),
            BigUint::from(123u64),
            BigUint::from(456u64),
        )
        .name("bad-base")
        .build();
        assert!(matches!(
            err,
            Err(EccError::InvalidParameters {
                field: "generator",
                ..
            })
        ));
    }

    #[test]
    fn deprecated_positional_constructor_matches_spec_path() {
        // The shim must keep building the same curve as the CurveSpec path
        // until it is removed.
        #[allow(deprecated)]
        let shimmed = Curve::new(
            &BigUint::from(1009u64),
            &BigUint::one(),
            &BigUint::from(6u64),
            &BigUint::from(1u64),
            &BigUint::from(878u64),
            Some(BigUint::from(1020u64)),
            "toy-1009",
        )
        .unwrap();
        let speced = CurveSpec::new(
            BigUint::from(1009u64),
            BigUint::one(),
            BigUint::from(6u64),
            BigUint::from(1u64),
            BigUint::from(878u64),
        )
        .order(BigUint::from(1020u64))
        .name("toy-1009")
        .build()
        .unwrap();
        assert_eq!(shimmed.base_point(), speced.base_point());
        assert_eq!(shimmed.order(), speced.order());
        assert_eq!(shimmed.name(), speced.name());
        assert_eq!(shimmed.bits(), speced.bits());
    }

    #[test]
    fn hardcoded_generators_match_a_fresh_scan() {
        // params.rs pins the generators the original constructors found by
        // scanning x = 1, 2, ... — re-run the scan and compare.
        for curve in [Curve::toy().unwrap(), Curve::p160_reproduction().unwrap()] {
            let scanned = curve.find_point_from(1).expect("scan finds a point");
            assert_eq!(
                &scanned,
                curve.base_point(),
                "{}: hardcoded generator drifted from the scan",
                curve.name()
            );
        }
    }

    #[test]
    fn hardcoded_toy_order_matches_a_fresh_count() {
        let curve = Curve::toy().unwrap();
        assert_eq!(
            curve.count_points_exhaustively(),
            curve.order().unwrap().clone(),
            "hardcoded toy order drifted from the exhaustive count"
        );
    }

    #[test]
    fn toy_group_order_annihilates_points() {
        let curve = Curve::toy().unwrap();
        let order = curve.order().unwrap().clone();
        // Hasse bound: |N - (p+1)| <= 2*sqrt(p)  (sqrt(1009) ≈ 31.8)
        let n = order.to_u64().unwrap() as i64;
        assert!((n - 1010).abs() <= 64, "order {n} violates the Hasse bound");
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let p = curve.random_point(&mut rng);
            let result = curve.scalar_mul(&p, &order, crate::ScalarMulAlgorithm::DoubleAndAdd);
            assert!(result.is_infinity(), "N·P must be the identity");
        }
    }

    #[test]
    fn affine_group_laws() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let p = curve.random_point(&mut rng);
            let q = curve.random_point(&mut rng);
            let r = curve.random_point(&mut rng);
            // Commutativity and associativity.
            assert_eq!(curve.add(&p, &q), curve.add(&q, &p));
            assert_eq!(
                curve.add(&curve.add(&p, &q), &r),
                curve.add(&p, &curve.add(&q, &r))
            );
            // Identity and inverse.
            assert_eq!(curve.add(&p, &AffinePoint::Infinity), p);
            assert!(curve.add(&p, &curve.negate(&p)).is_infinity());
            // Closure.
            assert!(curve.is_on_curve(&curve.add(&p, &q)));
            assert!(curve.is_on_curve(&curve.double(&p)));
            // Doubling consistency.
            assert_eq!(curve.double(&p), curve.add(&p, &p));
        }
    }

    #[test]
    fn jacobian_matches_affine() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let p = curve.random_point(&mut rng);
            let q = curve.random_point(&mut rng);
            let jp = curve.to_jacobian(&p);
            let jq = curve.to_jacobian(&q);
            assert_eq!(
                curve.to_affine(&curve.jacobian_add(&jp, &jq)),
                curve.add(&p, &q)
            );
            assert_eq!(
                curve.to_affine(&curve.jacobian_double(&jp)),
                curve.double(&p)
            );
            // Adding a point to itself through the Jacobian path degrades to
            // doubling correctly.
            assert_eq!(
                curve.to_affine(&curve.jacobian_add(&jp, &jp)),
                curve.double(&p)
            );
        }
        // Infinity handling.
        let inf = curve.to_jacobian(&AffinePoint::Infinity);
        let p = curve.random_point(&mut rng);
        let jp = curve.to_jacobian(&p);
        assert_eq!(curve.to_affine(&curve.jacobian_add(&inf, &jp)), p);
        assert_eq!(curve.to_affine(&curve.jacobian_add(&jp, &inf)), p);
    }

    #[test]
    fn fast_doubling_matches_general_on_minus_three_curves() {
        let curve = Curve::p160_reproduction().unwrap();
        assert!(curve.a_is_minus_three());
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..5 {
            let p = curve.random_point(&mut rng);
            let jp = curve.to_jacobian(&p);
            // Against first principles (affine doubling) and with a
            // generic-Z input.
            assert_eq!(
                curve.to_affine(&curve.jacobian_double_fast(&jp)),
                curve.double(&p)
            );
            let generic_z = curve.jacobian_add(&jp, &jp);
            assert_eq!(
                curve.to_affine(&curve.jacobian_double_fast(&generic_z)),
                curve.double(&curve.to_affine(&generic_z))
            );
        }
        // Degenerate inputs collapse to infinity, as in the general path.
        let inf = curve.to_jacobian(&AffinePoint::Infinity);
        assert!(curve.jacobian_double_fast(&inf).is_infinity());
        // The toy curve (a = 1) must not qualify.
        assert!(!Curve::toy().unwrap().a_is_minus_three());
    }

    #[test]
    fn point_compression_roundtrip() {
        for curve in [Curve::toy().unwrap(), Curve::p160_reproduction().unwrap()] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            for _ in 0..5 {
                let p = curve.random_point(&mut rng);
                let (x, odd) = curve.compress_point(&p).unwrap();
                assert_eq!(curve.decompress_point(&x, odd).unwrap(), p);
            }
            assert!(matches!(
                curve.compress_point(&AffinePoint::Infinity),
                Err(EccError::PointAtInfinity)
            ));
        }
    }

    #[test]
    fn lift_rejects_points_off_curve() {
        let curve = Curve::toy().unwrap();
        let bad = curve.lift(&curve.fp().from_u64(5), &curve.fp().from_u64(5));
        // Either (5,5) happens to be on the curve (unlikely) or it is rejected.
        if let Err(e) = bad {
            assert_eq!(e, EccError::PointNotOnCurve);
        }
    }
}

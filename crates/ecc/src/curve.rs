//! Short-Weierstrass curves `y² = x³ + ax + b` over `Fp` and their group law.

use bignum::BigUint;
use field::{FpContext, FpElement};
use rand::Rng;

use crate::error::EccError;
use crate::point::{AffinePoint, JacobianPoint};

/// A short-Weierstrass curve over a prime field, together with a base point.
///
/// See the crate-level docs for a key-exchange example. Curves for the
/// reproduction come from [`Curve::p160_reproduction`] (the paper's 160-bit
/// operand size) and [`Curve::toy`] (a small curve with an exhaustively
/// counted group order, used to validate the group law).
#[derive(Clone)]
pub struct Curve {
    fp: FpContext,
    a: FpElement,
    b: FpElement,
    base: AffinePoint,
    order: Option<BigUint>,
    name: &'static str,
    // Whether a ≡ -3 (mod p), precomputed so the per-doubling dispatch
    // to the shortened formulas costs a bool instead of a conversion.
    a_minus_three: bool,
}

/// Computes the [`Curve::a_is_minus_three`] invariant once, at
/// construction time.
fn a_is_minus_three(fp: &FpContext, a: &FpElement) -> bool {
    let p = fp.modulus();
    *p > BigUint::from(3u64) && fp.to_biguint(a) == p - &BigUint::from(3u64)
}

impl std::fmt::Debug for Curve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Curve({}, {} bits)", self.name, self.fp.bit_len())
    }
}

/// 160-bit prime used by the reproduction curve: `2^160 - 2^31 - 1`.
const P_160_HEX: &str = "ffffffffffffffffffffffffffffffff7fffffff";

impl Curve {
    /// Builds a curve from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::InvalidCurve`] if the field is unusable or the
    /// discriminant `4a³ + 27b²` vanishes, and [`EccError::PointNotOnCurve`]
    /// if the base point does not satisfy the curve equation.
    pub fn new(
        p: &BigUint,
        a: &BigUint,
        b: &BigUint,
        base_x: &BigUint,
        base_y: &BigUint,
        order: Option<BigUint>,
        name: &'static str,
    ) -> Result<Self, EccError> {
        let fp = FpContext::new(p).map_err(|_| EccError::InvalidCurve("p is not usable"))?;
        let a = fp.from_biguint(a);
        let b = fp.from_biguint(b);
        // Discriminant 4a³ + 27b² must be non-zero.
        let disc = fp.add(
            &fp.mul(&fp.from_u64(4), &fp.mul(&a, &fp.square(&a))),
            &fp.mul(&fp.from_u64(27), &fp.square(&b)),
        );
        if disc.is_zero() {
            return Err(EccError::InvalidCurve("curve is singular"));
        }
        let a_minus_three = a_is_minus_three(&fp, &a);
        let curve = Curve {
            fp: fp.clone(),
            a,
            b,
            base: AffinePoint::Infinity,
            order,
            name,
            a_minus_three,
        };
        let base = curve.lift(&fp.from_biguint(base_x), &fp.from_biguint(base_y))?;
        Ok(Curve { base, ..curve })
    }

    /// The 160-bit curve used to reproduce the paper's "160-bit ECC" rows:
    /// `p = 2^160 - 2^31 - 1`, `a = -3`, and a small `b` chosen so the curve
    /// is non-singular.
    ///
    /// The group order of this locally generated curve is *not* certified
    /// (point counting is out of scope); the reproduction only needs field
    /// and curve arithmetic at the 160-bit operand size (see DESIGN.md).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` mirrors
    /// [`Curve::new`].
    pub fn p160_reproduction() -> Result<Self, EccError> {
        let p = BigUint::from_hex(P_160_HEX).expect("valid hex constant");
        let a = &p - &BigUint::from(3u64); // a = -3
        let b = BigUint::from(7u64);
        // Base point found by scanning x = 1, 2, ... for a quadratic residue.
        let fp = FpContext::new(&p).map_err(|_| EccError::InvalidCurve("p is not usable"))?;
        let a_elem = fp.from_biguint(&a);
        let a_minus_three = a_is_minus_three(&fp, &a_elem);
        let curve_no_base = Curve {
            fp: fp.clone(),
            a: a_elem,
            b: fp.from_biguint(&b),
            base: AffinePoint::Infinity,
            order: None,
            name: "p160-reproduction",
            a_minus_three,
        };
        let base = curve_no_base
            .find_point_from(1)
            .ok_or(EccError::InvalidCurve("no base point found"))?;
        Ok(Curve {
            base,
            ..curve_no_base
        })
    }

    /// A tiny curve over `p = 1009` whose group order is computed by
    /// exhaustive point counting; used to validate the group law and scalar
    /// multiplication against first principles.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants.
    pub fn toy() -> Result<Self, EccError> {
        let p = BigUint::from(1009u64);
        let fp = FpContext::new(&p).map_err(|_| EccError::InvalidCurve("p is not usable"))?;
        let a = fp.from_u64(1);
        let a_minus_three = a_is_minus_three(&fp, &a);
        let mut curve = Curve {
            fp: fp.clone(),
            a,
            b: fp.from_u64(6),
            base: AffinePoint::Infinity,
            order: None,
            name: "toy-1009",
            a_minus_three,
        };
        let order = curve.count_points_exhaustively();
        curve.order = Some(order);
        curve.base = curve
            .find_point_from(1)
            .ok_or(EccError::InvalidCurve("no base point found"))?;
        Ok(curve)
    }

    /// The base prime-field context.
    pub fn fp(&self) -> &FpContext {
        &self.fp
    }

    /// The coefficient `a`.
    pub fn a(&self) -> &FpElement {
        &self.a
    }

    /// Returns `true` when the curve coefficient satisfies `a = -3`
    /// (i.e. `a ≡ p - 3 mod p`), the precondition of the shortened
    /// doubling formulas ([`Curve::jacobian_double_fast`]). Holds for
    /// [`Curve::p160_reproduction`], as for most standardized curves.
    pub fn a_is_minus_three(&self) -> bool {
        self.a_minus_three
    }

    /// The coefficient `b`.
    pub fn b(&self) -> &FpElement {
        &self.b
    }

    /// The curve name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The base point.
    pub fn base_point(&self) -> &AffinePoint {
        &self.base
    }

    /// The group order, when known (only for [`Curve::toy`] and curves
    /// constructed with an explicit order).
    pub fn order(&self) -> Option<&BigUint> {
        self.order.as_ref()
    }

    /// Checks the curve equation for a point.
    pub fn is_on_curve(&self, point: &AffinePoint) -> bool {
        match point {
            AffinePoint::Infinity => true,
            AffinePoint::Point { x, y } => {
                let fp = &self.fp;
                let rhs = fp.add(
                    &fp.add(&fp.mul(x, &fp.square(x)), &fp.mul(&self.a, x)),
                    &self.b,
                );
                fp.square(y) == rhs
            }
        }
    }

    /// Validates coordinates and returns the corresponding point.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::PointNotOnCurve`] if the equation is not satisfied.
    pub fn lift(&self, x: &FpElement, y: &FpElement) -> Result<AffinePoint, EccError> {
        let p = AffinePoint::new(x.clone(), y.clone());
        if self.is_on_curve(&p) {
            Ok(p)
        } else {
            Err(EccError::PointNotOnCurve)
        }
    }

    /// Negates a point.
    pub fn negate(&self, point: &AffinePoint) -> AffinePoint {
        match point {
            AffinePoint::Infinity => AffinePoint::Infinity,
            AffinePoint::Point { x, y } => AffinePoint::Point {
                x: x.clone(),
                y: self.fp.neg(y),
            },
        }
    }

    /// Affine point addition (one inversion per addition).
    pub fn add(&self, p: &AffinePoint, q: &AffinePoint) -> AffinePoint {
        let fp = &self.fp;
        match (p, q) {
            (AffinePoint::Infinity, _) => q.clone(),
            (_, AffinePoint::Infinity) => p.clone(),
            (AffinePoint::Point { x: x1, y: y1 }, AffinePoint::Point { x: x2, y: y2 }) => {
                if x1 == x2 {
                    if y1 == y2 && !y1.is_zero() {
                        return self.double(p);
                    }
                    return AffinePoint::Infinity;
                }
                let lambda = fp.mul(&fp.sub(y2, y1), &fp.inv(&fp.sub(x2, x1)).expect("x2 != x1"));
                let x3 = fp.sub(&fp.sub(&fp.square(&lambda), x1), x2);
                let y3 = fp.sub(&fp.mul(&lambda, &fp.sub(x1, &x3)), y1);
                AffinePoint::Point { x: x3, y: y3 }
            }
        }
    }

    /// Affine point doubling.
    pub fn double(&self, p: &AffinePoint) -> AffinePoint {
        let fp = &self.fp;
        match p {
            AffinePoint::Infinity => AffinePoint::Infinity,
            AffinePoint::Point { x, y } => {
                if y.is_zero() {
                    return AffinePoint::Infinity;
                }
                let numer = fp.add(&fp.mul(&fp.from_u64(3), &fp.square(x)), &self.a);
                let lambda = fp.mul(&numer, &fp.inv(&fp.double(y)).expect("y != 0"));
                let x3 = fp.sub(&fp.sub(&fp.square(&lambda), x), x);
                let y3 = fp.sub(&fp.mul(&lambda, &fp.sub(x, &x3)), y);
                AffinePoint::Point { x: x3, y: y3 }
            }
        }
    }

    /// Converts an affine point to Jacobian coordinates.
    pub fn to_jacobian(&self, p: &AffinePoint) -> JacobianPoint {
        match p {
            AffinePoint::Infinity => JacobianPoint {
                x: self.fp.one(),
                y: self.fp.one(),
                z: self.fp.zero(),
            },
            AffinePoint::Point { x, y } => JacobianPoint {
                x: x.clone(),
                y: y.clone(),
                z: self.fp.one(),
            },
        }
    }

    /// Converts a Jacobian point back to affine coordinates (one inversion).
    pub fn to_affine(&self, p: &JacobianPoint) -> AffinePoint {
        if p.is_infinity() {
            return AffinePoint::Infinity;
        }
        let fp = &self.fp;
        let z_inv = fp.inv(&p.z).expect("finite point has z != 0");
        let z_inv2 = fp.square(&z_inv);
        let z_inv3 = fp.mul(&z_inv2, &z_inv);
        AffinePoint::Point {
            x: fp.mul(&p.x, &z_inv2),
            y: fp.mul(&p.y, &z_inv3),
        }
    }

    /// Jacobian point doubling (the paper's PD sequence; inversion-free).
    ///
    /// On curves with `a = -3` this dispatches to the shortened
    /// [`Curve::jacobian_double_fast`] formulas (identical result, two
    /// fewer field multiplications) — the same substitution the
    /// platform's ladder driver makes with its `fast_pd` cost-model knob.
    pub fn jacobian_double(&self, p: &JacobianPoint) -> JacobianPoint {
        if self.a_is_minus_three() {
            return self.jacobian_double_fast(p);
        }
        let fp = &self.fp;
        if p.is_infinity() || p.y.is_zero() {
            return JacobianPoint {
                x: fp.one(),
                y: fp.one(),
                z: fp.zero(),
            };
        }
        let a_sq = fp.square(&p.x); // X1²
        let b_sq = fp.square(&p.y); // Y1²
        let c = fp.square(&b_sq); // Y1⁴
                                  // D = 2((X1 + B)² - A - C)
        let d = fp.double(&fp.sub(&fp.sub(&fp.square(&fp.add(&p.x, &b_sq)), &a_sq), &c));
        // E = 3A + a·Z1⁴
        let z2 = fp.square(&p.z);
        let e = fp.add(
            &fp.add(&fp.double(&a_sq), &a_sq),
            &fp.mul(&self.a, &fp.square(&z2)),
        );
        let f = fp.square(&e);
        let x3 = fp.sub(&f, &fp.double(&d));
        let eight_c = fp.double(&fp.double(&fp.double(&c)));
        let y3 = fp.sub(&fp.mul(&e, &fp.sub(&d, &x3)), &eight_c);
        let z3 = fp.double(&fp.mul(&p.y, &p.z));
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Shortened Jacobian doubling for curves with `a = -3` (the
    /// "dbl-2001-b" formulas): the tangent numerator factors as
    /// `3·X1² + a·Z1⁴ = 3·(X1 - Z1²)·(X1 + Z1²)`, saving two field
    /// multiplications over the general [`Curve::jacobian_double`]. This
    /// is the host-level counterpart of the platform's 8-MM
    /// `ecc_pd_fast` sequence.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `a = -3`; on other curves the result would be
    /// wrong, so callers must check [`Curve::a_is_minus_three`] first
    /// (the general doubling does this and dispatches automatically).
    pub fn jacobian_double_fast(&self, p: &JacobianPoint) -> JacobianPoint {
        debug_assert!(self.a_is_minus_three(), "fast doubling requires a = -3");
        let fp = &self.fp;
        if p.is_infinity() || p.y.is_zero() {
            return JacobianPoint {
                x: fp.one(),
                y: fp.one(),
                z: fp.zero(),
            };
        }
        let delta = fp.square(&p.z); // Z1²
        let gamma = fp.square(&p.y); // Y1²
        let beta = fp.mul(&p.x, &gamma); // X1·Y1²
        let alpha = fp.mul(
            &fp.from_u64(3),
            &fp.mul(&fp.sub(&p.x, &delta), &fp.add(&p.x, &delta)),
        );
        let beta4 = fp.double(&fp.double(&beta));
        let x3 = fp.sub(&fp.square(&alpha), &fp.double(&beta4));
        let y3 = fp.sub(
            &fp.mul(&alpha, &fp.sub(&beta4, &x3)),
            &fp.double(&fp.double(&fp.double(&fp.square(&gamma)))),
        );
        let z3 = fp.double(&fp.mul(&p.y, &p.z));
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Jacobian point addition (the paper's PA sequence; inversion-free).
    pub fn jacobian_add(&self, p: &JacobianPoint, q: &JacobianPoint) -> JacobianPoint {
        let fp = &self.fp;
        if p.is_infinity() {
            return q.clone();
        }
        if q.is_infinity() {
            return p.clone();
        }
        let z1z1 = fp.square(&p.z);
        let z2z2 = fp.square(&q.z);
        let u1 = fp.mul(&p.x, &z2z2);
        let u2 = fp.mul(&q.x, &z1z1);
        let s1 = fp.mul(&p.y, &fp.mul(&q.z, &z2z2));
        let s2 = fp.mul(&q.y, &fp.mul(&p.z, &z1z1));
        if u1 == u2 {
            if s1 == s2 {
                return self.jacobian_double(p);
            }
            return JacobianPoint {
                x: fp.one(),
                y: fp.one(),
                z: fp.zero(),
            };
        }
        let h = fp.sub(&u2, &u1);
        let i = fp.square(&fp.double(&h));
        let j = fp.mul(&h, &i);
        let r = fp.double(&fp.sub(&s2, &s1));
        let v = fp.mul(&u1, &i);
        let x3 = fp.sub(&fp.sub(&fp.square(&r), &j), &fp.double(&v));
        let y3 = fp.sub(&fp.mul(&r, &fp.sub(&v, &x3)), &fp.double(&fp.mul(&s1, &j)));
        let z3 = fp.mul(
            &fp.sub(&fp.sub(&fp.square(&fp.add(&p.z, &q.z)), &z1z1), &z2z2),
            &h,
        );
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed-coordinate point addition: Jacobian `p` plus **affine** `q`
    /// (the `Z2 = 1` special case of [`Curve::jacobian_add`]).
    ///
    /// This is the addition the scalar-multiplication ladder performs on
    /// every set bit — the addend is the one-time-normalized base point —
    /// and the shape the platform's 13-multiplication
    /// `ecc_pa_mixed_sequence` prices: `Z2 = 1` makes `U1 = X1` and
    /// `S1 = Y1`, eliminating three of the general sequence's Montgomery
    /// products and collapsing the `Z3` tail to `2·Z1·H`. Functionally it
    /// agrees with `jacobian_add(p, to_jacobian(q))` on all inputs,
    /// including the degenerate ones (either operand at infinity, `q = ±p`).
    pub fn jacobian_add_mixed(&self, p: &JacobianPoint, q: &AffinePoint) -> JacobianPoint {
        let fp = &self.fp;
        let (x2, y2) = match q.coordinates() {
            None => return p.clone(),
            Some(c) => c,
        };
        if p.is_infinity() {
            return self.to_jacobian(q);
        }
        let z1z1 = fp.square(&p.z);
        let u2 = fp.mul(x2, &z1z1);
        let s2 = fp.mul(y2, &fp.mul(&p.z, &z1z1));
        if u2 == p.x {
            if s2 == p.y {
                return self.jacobian_double(p);
            }
            return JacobianPoint {
                x: fp.one(),
                y: fp.one(),
                z: fp.zero(),
            };
        }
        let h = fp.sub(&u2, &p.x);
        let i = fp.square(&fp.double(&h));
        let j = fp.mul(&h, &i);
        let r = fp.double(&fp.sub(&s2, &p.y));
        let v = fp.mul(&p.x, &i);
        let x3 = fp.sub(&fp.sub(&fp.square(&r), &j), &fp.double(&v));
        let y3 = fp.sub(&fp.mul(&r, &fp.sub(&v, &x3)), &fp.double(&fp.mul(&p.y, &j)));
        let z3 = fp.double(&fp.mul(&p.z, &h));
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Compresses a finite point to `(x, parity-of-y)`.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::PointAtInfinity`] for the identity.
    pub fn compress_point(&self, p: &AffinePoint) -> Result<(BigUint, bool), EccError> {
        match p {
            AffinePoint::Infinity => Err(EccError::PointAtInfinity),
            AffinePoint::Point { x, y } => {
                Ok((self.fp.to_biguint(x), self.fp.to_biguint(y).bit(0)))
            }
        }
    }

    /// Decompresses `(x, parity)` back to a point.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::InvalidCompressedPoint`] if `x³ + ax + b` is not
    /// a square.
    pub fn decompress_point(&self, x: &BigUint, y_is_odd: bool) -> Result<AffinePoint, EccError> {
        let fp = &self.fp;
        let x = fp.from_biguint(x);
        let rhs = fp.add(
            &fp.add(&fp.mul(&x, &fp.square(&x)), &fp.mul(&self.a, &x)),
            &self.b,
        );
        let y = if rhs.is_zero() {
            fp.zero()
        } else {
            fp.sqrt(&rhs).ok_or(EccError::InvalidCompressedPoint)?
        };
        let y = if fp.to_biguint(&y).bit(0) == y_is_odd {
            y
        } else {
            fp.neg(&y)
        };
        Ok(AffinePoint::Point { x, y })
    }

    /// A uniformly random point obtained by sampling x-coordinates until the
    /// curve equation has a solution.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> AffinePoint {
        loop {
            let x = self.fp.random(rng);
            if let Some(p) = self.lift_x(&x, rng.gen()) {
                return p;
            }
        }
    }

    /// Lifts an x-coordinate to a point if possible, choosing the root by
    /// `odd_y`.
    pub fn lift_x(&self, x: &FpElement, odd_y: bool) -> Option<AffinePoint> {
        let fp = &self.fp;
        let rhs = fp.add(
            &fp.add(&fp.mul(x, &fp.square(x)), &fp.mul(&self.a, x)),
            &self.b,
        );
        if rhs.is_zero() {
            return Some(AffinePoint::Point {
                x: x.clone(),
                y: fp.zero(),
            });
        }
        let y = fp.sqrt(&rhs)?;
        let y = if fp.to_biguint(&y).bit(0) == odd_y {
            y
        } else {
            fp.neg(&y)
        };
        Some(AffinePoint::Point { x: x.clone(), y })
    }

    /// Finds the first point with `x >= start` by scanning x-coordinates.
    fn find_point_from(&self, start: u64) -> Option<AffinePoint> {
        for xi in start..start + 1000 {
            let x = self.fp.from_u64(xi);
            if let Some(p) = self.lift_x(&x, false) {
                return Some(p);
            }
        }
        None
    }

    /// Exhaustively counts the points on the curve (tiny fields only).
    fn count_points_exhaustively(&self) -> BigUint {
        let p = self.fp.modulus().to_u64().expect("toy field fits in u64");
        let mut count = 1u64; // point at infinity
        for xi in 0..p {
            let x = self.fp.from_u64(xi);
            let rhs = self.fp.add(
                &self.fp.add(
                    &self.fp.mul(&x, &self.fp.square(&x)),
                    &self.fp.mul(&self.a, &x),
                ),
                &self.b,
            );
            if rhs.is_zero() {
                count += 1;
            } else if self.fp.is_square(&rhs) {
                count += 2;
            }
        }
        BigUint::from(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn p160_prime_and_curve_are_sane() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = BigUint::from_hex(P_160_HEX).unwrap();
        assert_eq!(p.bit_len(), 160);
        assert!(
            bignum::is_prime(&p, &mut rng),
            "2^160 - 2^31 - 1 must be prime"
        );
        let curve = Curve::p160_reproduction().unwrap();
        assert!(curve.is_on_curve(curve.base_point()));
        assert!(!curve.base_point().is_infinity());
    }

    #[test]
    fn singular_curves_are_rejected() {
        // y² = x³ (a = b = 0) is singular.
        let err = Curve::new(
            &BigUint::from(1009u64),
            &BigUint::zero(),
            &BigUint::zero(),
            &BigUint::one(),
            &BigUint::one(),
            None,
            "singular",
        )
        .unwrap_err();
        assert!(matches!(err, EccError::InvalidCurve(_)));
    }

    #[test]
    fn base_point_must_be_on_curve() {
        let err = Curve::new(
            &BigUint::from(1009u64),
            &BigUint::one(),
            &BigUint::from(6u64),
            &BigUint::from(123u64),
            &BigUint::from(456u64),
            None,
            "bad-base",
        );
        assert!(matches!(err, Err(EccError::PointNotOnCurve)));
    }

    #[test]
    fn toy_group_order_annihilates_points() {
        let curve = Curve::toy().unwrap();
        let order = curve.order().unwrap().clone();
        // Hasse bound: |N - (p+1)| <= 2*sqrt(p)  (sqrt(1009) ≈ 31.8)
        let n = order.to_u64().unwrap() as i64;
        assert!((n - 1010).abs() <= 64, "order {n} violates the Hasse bound");
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let p = curve.random_point(&mut rng);
            let result = crate::scalar::scalar_mul(
                &curve,
                &p,
                &order,
                crate::ScalarMulAlgorithm::DoubleAndAdd,
            );
            assert!(result.is_infinity(), "N·P must be the identity");
        }
    }

    #[test]
    fn affine_group_laws() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let p = curve.random_point(&mut rng);
            let q = curve.random_point(&mut rng);
            let r = curve.random_point(&mut rng);
            // Commutativity and associativity.
            assert_eq!(curve.add(&p, &q), curve.add(&q, &p));
            assert_eq!(
                curve.add(&curve.add(&p, &q), &r),
                curve.add(&p, &curve.add(&q, &r))
            );
            // Identity and inverse.
            assert_eq!(curve.add(&p, &AffinePoint::Infinity), p);
            assert!(curve.add(&p, &curve.negate(&p)).is_infinity());
            // Closure.
            assert!(curve.is_on_curve(&curve.add(&p, &q)));
            assert!(curve.is_on_curve(&curve.double(&p)));
            // Doubling consistency.
            assert_eq!(curve.double(&p), curve.add(&p, &p));
        }
    }

    #[test]
    fn jacobian_matches_affine() {
        let curve = Curve::toy().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let p = curve.random_point(&mut rng);
            let q = curve.random_point(&mut rng);
            let jp = curve.to_jacobian(&p);
            let jq = curve.to_jacobian(&q);
            assert_eq!(
                curve.to_affine(&curve.jacobian_add(&jp, &jq)),
                curve.add(&p, &q)
            );
            assert_eq!(
                curve.to_affine(&curve.jacobian_double(&jp)),
                curve.double(&p)
            );
            // Adding a point to itself through the Jacobian path degrades to
            // doubling correctly.
            assert_eq!(
                curve.to_affine(&curve.jacobian_add(&jp, &jp)),
                curve.double(&p)
            );
        }
        // Infinity handling.
        let inf = curve.to_jacobian(&AffinePoint::Infinity);
        let p = curve.random_point(&mut rng);
        let jp = curve.to_jacobian(&p);
        assert_eq!(curve.to_affine(&curve.jacobian_add(&inf, &jp)), p);
        assert_eq!(curve.to_affine(&curve.jacobian_add(&jp, &inf)), p);
    }

    #[test]
    fn fast_doubling_matches_general_on_minus_three_curves() {
        let curve = Curve::p160_reproduction().unwrap();
        assert!(curve.a_is_minus_three());
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..5 {
            let p = curve.random_point(&mut rng);
            let jp = curve.to_jacobian(&p);
            // Against first principles (affine doubling) and with a
            // generic-Z input.
            assert_eq!(
                curve.to_affine(&curve.jacobian_double_fast(&jp)),
                curve.double(&p)
            );
            let generic_z = curve.jacobian_add(&jp, &jp);
            assert_eq!(
                curve.to_affine(&curve.jacobian_double_fast(&generic_z)),
                curve.double(&curve.to_affine(&generic_z))
            );
        }
        // Degenerate inputs collapse to infinity, as in the general path.
        let inf = curve.to_jacobian(&AffinePoint::Infinity);
        assert!(curve.jacobian_double_fast(&inf).is_infinity());
        // The toy curve (a = 1) must not qualify.
        assert!(!Curve::toy().unwrap().a_is_minus_three());
    }

    #[test]
    fn point_compression_roundtrip() {
        for curve in [Curve::toy().unwrap(), Curve::p160_reproduction().unwrap()] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            for _ in 0..5 {
                let p = curve.random_point(&mut rng);
                let (x, odd) = curve.compress_point(&p).unwrap();
                assert_eq!(curve.decompress_point(&x, odd).unwrap(), p);
            }
            assert!(matches!(
                curve.compress_point(&AffinePoint::Infinity),
                Err(EccError::PointAtInfinity)
            ));
        }
    }

    #[test]
    fn lift_rejects_points_off_curve() {
        let curve = Curve::toy().unwrap();
        let bad = curve.lift(&curve.fp().from_u64(5), &curve.fp().from_u64(5));
        // Either (5,5) happens to be on the curve (unlikely) or it is rejected.
        if let Err(e) = bad {
            assert_eq!(e, EccError::PointNotOnCurve);
        }
    }
}
